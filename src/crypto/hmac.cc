#include "crypto/hmac.hh"

#include <cstring>

namespace cllm::crypto {

Digest256
hmacSha256(const std::vector<std::uint8_t> &key, const void *data,
           std::size_t len)
{
    std::uint8_t block_key[64] = {0};
    if (key.size() > 64) {
        const Digest256 kd = sha256(key.data(), key.size());
        std::memcpy(block_key, kd.data(), kd.size());
    } else {
        std::memcpy(block_key, key.data(), key.size());
    }

    std::uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, len);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

Digest256
hmacSha256(const std::string &key, const std::string &data)
{
    std::vector<std::uint8_t> k(key.begin(), key.end());
    return hmacSha256(k, data.data(), data.size());
}

Digest256
deriveKey(const Digest256 &master, const std::string &label)
{
    std::vector<std::uint8_t> key(master.begin(), master.end());
    std::string info = label;
    info.push_back('\x01');
    return hmacSha256(key, info.data(), info.size());
}

AesKey
toAesKey(const Digest256 &digest)
{
    AesKey key;
    std::memcpy(key.data(), digest.data(), key.size());
    return key;
}

bool
digestEqual(const Digest256 &a, const Digest256 &b)
{
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace cllm::crypto
