/**
 * @file
 * Tests for the synthetic BEIR generator and the IR metrics.
 */

#include <gtest/gtest.h>

#include "rag/beir.hh"

using namespace cllm::rag;

namespace {

BeirConfig
smallConfig()
{
    BeirConfig cfg;
    cfg.numDocs = 200;
    cfg.numQueries = 20;
    cfg.numTopics = 10;
    cfg.seed = 5;
    return cfg;
}

} // namespace

TEST(Beir, GeneratesRequestedCounts)
{
    const auto ds = generateBeir(smallConfig());
    EXPECT_EQ(ds.corpus.size(), 200u);
    EXPECT_EQ(ds.queries.size(), 20u);
}

TEST(Beir, Deterministic)
{
    const auto a = generateBeir(smallConfig());
    const auto b = generateBeir(smallConfig());
    ASSERT_EQ(a.corpus.size(), b.corpus.size());
    EXPECT_EQ(a.corpus[13].body, b.corpus[13].body);
    EXPECT_EQ(a.queries[7].text, b.queries[7].text);
}

TEST(Beir, SeedChangesData)
{
    auto cfg = smallConfig();
    const auto a = generateBeir(cfg);
    cfg.seed = 6;
    const auto b = generateBeir(cfg);
    EXPECT_NE(a.corpus[0].body, b.corpus[0].body);
}

TEST(Beir, EveryQueryHasAHighlyRelevantDoc)
{
    const auto ds = generateBeir(smallConfig());
    for (const auto &q : ds.queries) {
        bool has_grade2 = false;
        for (const auto &[id, g] : q.qrels) {
            EXPECT_LT(id, ds.corpus.size());
            has_grade2 |= g == 2;
        }
        EXPECT_TRUE(has_grade2);
        EXPECT_FALSE(q.text.empty());
    }
}

TEST(Beir, DocsHaveExpectedLength)
{
    auto cfg = smallConfig();
    cfg.docLen = 50;
    const auto ds = generateBeir(cfg);
    // Body is docLen space-separated words.
    int words = 1;
    for (char c : ds.corpus[0].body)
        words += c == ' ';
    EXPECT_EQ(words, 50);
}

TEST(Ndcg, PerfectRankingIsOne)
{
    Qrels q = {{1, 2}, {2, 1}};
    const std::vector<SearchHit> ranked = {{1, 0.9}, {2, 0.8}, {3, 0.1}};
    EXPECT_NEAR(ndcgAtK(ranked, q, 10), 1.0, 1e-9);
}

TEST(Ndcg, WorseRankingScoresLess)
{
    Qrels q = {{1, 2}, {2, 1}};
    const std::vector<SearchHit> good = {{1, 0.9}, {2, 0.8}};
    const std::vector<SearchHit> swapped = {{2, 0.9}, {1, 0.8}};
    EXPECT_GT(ndcgAtK(good, q, 10), ndcgAtK(swapped, q, 10));
}

TEST(Ndcg, IrrelevantOnlyIsZero)
{
    Qrels q = {{1, 2}};
    const std::vector<SearchHit> ranked = {{5, 1.0}, {6, 0.9}};
    EXPECT_EQ(ndcgAtK(ranked, q, 10), 0.0);
}

TEST(Ndcg, CutoffApplies)
{
    Qrels q = {{1, 2}};
    const std::vector<SearchHit> ranked = {{9, 1.0}, {1, 0.9}};
    EXPECT_EQ(ndcgAtK(ranked, q, 1), 0.0);
    EXPECT_GT(ndcgAtK(ranked, q, 2), 0.0);
}

TEST(Ndcg, GradedGainsPreferHighGrade)
{
    // Putting the grade-2 doc first must beat grade-1 first.
    Qrels q = {{1, 2}, {2, 1}};
    const std::vector<SearchHit> two_first = {{1, 1.0}, {2, 0.9}};
    const std::vector<SearchHit> one_first = {{2, 1.0}, {1, 0.9}};
    EXPECT_GT(ndcgAtK(two_first, q, 10), ndcgAtK(one_first, q, 10));
}

TEST(Recall, CountsFractionFound)
{
    Qrels q = {{1, 2}, {2, 1}, {3, 1}, {4, 1}};
    const std::vector<SearchHit> ranked = {{1, 1.0}, {9, 0.9}, {3, 0.8}};
    EXPECT_NEAR(recallAtK(ranked, q, 3), 0.5, 1e-9);
    EXPECT_NEAR(recallAtK(ranked, q, 1), 0.25, 1e-9);
}

TEST(Recall, EmptyQrelsIsZero)
{
    EXPECT_EQ(recallAtK({{1, 1.0}}, {}, 10), 0.0);
}

TEST(Mrr, FirstRelevantPosition)
{
    Qrels q = {{7, 1}};
    EXPECT_NEAR(reciprocalRank({{1, 1.0}, {7, 0.9}}, q), 0.5, 1e-9);
    EXPECT_NEAR(reciprocalRank({{7, 1.0}}, q), 1.0, 1e-9);
    EXPECT_EQ(reciprocalRank({{1, 1.0}}, q), 0.0);
}

TEST(BeirDeath, DegenerateConfigFatal)
{
    BeirConfig cfg;
    cfg.numTopics = 0;
    EXPECT_DEATH(generateBeir(cfg), "degenerate");
}
