/**
 * @file
 * Synthetic BEIR-style retrieval benchmark (the paper evaluates RAG
 * on BEIR, Section VI). A topic-mixture generator produces a corpus,
 * queries derived from relevant documents, and graded relevance
 * judgements (qrels); standard IR metrics (nDCG@k, recall@k, MRR)
 * evaluate ranked result lists against them.
 */

#ifndef CLLM_RAG_BEIR_HH
#define CLLM_RAG_BEIR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rag/elastic_lite.hh"

namespace cllm::rag {

/** Graded relevance judgements for one query: doc -> grade (1, 2). */
using Qrels = std::map<DocId, int>;

/** One benchmark query. */
struct BeirQuery
{
    std::string text;
    Qrels qrels;
};

/** A generated benchmark. */
struct BeirDataset
{
    std::vector<Document> corpus;
    std::vector<BeirQuery> queries;
};

/** Generator parameters. */
struct BeirConfig
{
    std::size_t numDocs = 2000;
    std::size_t numQueries = 50;
    std::size_t numTopics = 40;
    std::size_t vocabSize = 5000;
    std::size_t docLen = 80;         //!< words per document
    std::size_t queryLen = 6;
    double topicalFraction = 0.55;   //!< words drawn from topic pool
    double zipfExponent = 1.1;
    std::uint64_t seed = 99;
};

/** Generate a synthetic dataset. */
BeirDataset generateBeir(const BeirConfig &cfg = {});

/** Normalized discounted cumulative gain at cutoff k. */
double ndcgAtK(const std::vector<SearchHit> &ranked, const Qrels &qrels,
               std::size_t k);

/** Fraction of relevant documents present in the top k. */
double recallAtK(const std::vector<SearchHit> &ranked, const Qrels &qrels,
                 std::size_t k);

/** Reciprocal rank of the first relevant result. */
double reciprocalRank(const std::vector<SearchHit> &ranked,
                      const Qrels &qrels);

} // namespace cllm::rag

#endif // CLLM_RAG_BEIR_HH
