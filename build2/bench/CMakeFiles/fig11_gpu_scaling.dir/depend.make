# Empty dependencies file for fig11_gpu_scaling.
# This may be replaced when dependencies are built.
