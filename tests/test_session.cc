/**
 * @file
 * Tests for attested secure sessions: DH math, handshake binding,
 * and the authenticated channel's tamper/replay behaviour.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hh"
#include "tee/session.hh"

using namespace cllm;
using namespace cllm::tee;

namespace {

Measurement
measureOf(const std::string &binary)
{
    MeasurementBuilder b;
    b.extend("binary", binary);
    return b.finish();
}

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Dh, ModPowBasics)
{
    EXPECT_EQ(dhModPow(3, 0), 1u);
    EXPECT_EQ(dhModPow(3, 1), 3u);
    EXPECT_EQ(dhModPow(3, 2), 9u);
    // Fermat: g^(p-1) = 1 mod p for prime p.
    EXPECT_EQ(dhModPow(3, kDhPrime - 1), 1u);
}

TEST(Dh, SharedSecretAgrees)
{
    DhKeyPair alice(1), bob(2);
    EXPECT_NE(alice.publicValue(), bob.publicValue());
    EXPECT_EQ(alice.sharedSecret(bob.publicValue()),
              bob.sharedSecret(alice.publicValue()));
}

TEST(Dh, DistinctPairsDistinctSecrets)
{
    DhKeyPair a(1), b(2), c(3);
    EXPECT_NE(a.sharedSecret(b.publicValue()),
              a.sharedSecret(c.publicValue()));
}

TEST(Dh, PublicValueInGroup)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        DhKeyPair kp(seed);
        EXPECT_GE(kp.publicValue(), 2u);
        EXPECT_LT(kp.publicValue(), kDhPrime);
    }
}

TEST(DhDeath, OutOfRangePeerFatal)
{
    DhKeyPair kp(1);
    EXPECT_DEATH(kp.sharedSecret(0), "group range");
    EXPECT_DEATH(kp.sharedSecret(kDhPrime), "group range");
}

TEST(Handshake, SucceedsForAttestedEnclave)
{
    const auto hw_key = crypto::sha256(std::string("platform"));
    QuotingEnclave platform(hw_key);
    const Measurement enclave = measureOf("inference-v1");

    DhKeyPair server(42), client(43);
    const ServerHello hello =
        makeServerHello(platform, enclave, server);

    QuoteVerifier verifier(platform.verificationKey());
    verifier.allow(enclave);
    const HandshakeResult hr =
        completeHandshake(verifier, hello, client);
    ASSERT_TRUE(hr.ok);

    // Both sides derive the same directional keys.
    const SessionKeys server_keys =
        deriveSessionKeys(server.sharedSecret(client.publicValue()));
    EXPECT_TRUE(crypto::digestEqual(hr.keys.clientToServer,
                                    server_keys.clientToServer));
    EXPECT_FALSE(crypto::digestEqual(hr.keys.clientToServer,
                                     hr.keys.serverToClient));
}

TEST(Handshake, RejectsUnknownMeasurement)
{
    const auto hw_key = crypto::sha256(std::string("platform"));
    QuotingEnclave platform(hw_key);
    DhKeyPair server(1), client(2);
    const ServerHello hello =
        makeServerHello(platform, measureOf("malware"), server);

    QuoteVerifier verifier(platform.verificationKey());
    verifier.allow(measureOf("inference-v1"));
    const HandshakeResult hr =
        completeHandshake(verifier, hello, client);
    EXPECT_FALSE(hr.ok);
    EXPECT_EQ(hr.status, VerifyStatus::UnexpectedMeasurement);
}

TEST(Handshake, DetectsDhSubstitution)
{
    // A MITM swaps the advertised DH public for their own; the quote
    // still verifies but the binding check must fail.
    const auto hw_key = crypto::sha256(std::string("platform"));
    QuotingEnclave platform(hw_key);
    const Measurement enclave = measureOf("inference-v1");
    DhKeyPair server(7), client(8), mitm(9);

    ServerHello hello = makeServerHello(platform, enclave, server);
    hello.dhPublic = mitm.publicValue(); // substitution

    QuoteVerifier verifier(platform.verificationKey());
    verifier.allow(enclave);
    const HandshakeResult hr =
        completeHandshake(verifier, hello, client);
    EXPECT_FALSE(hr.ok);
}

TEST(Channel, RoundtripsMessages)
{
    const auto key = crypto::sha256(std::string("session"));
    SecureChannel tx(key), rx(key);
    for (int i = 0; i < 5; ++i) {
        const auto plain = bytes("prompt " + std::to_string(i));
        const SealedMessage msg = tx.seal(plain);
        EXPECT_NE(msg.ciphertext, plain); // actually encrypted
        const auto out = rx.open(msg);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, plain);
    }
}

TEST(Channel, DetectsTampering)
{
    const auto key = crypto::sha256(std::string("session"));
    SecureChannel tx(key), rx(key);
    SealedMessage msg = tx.seal(bytes("sensitive health record"));
    msg.ciphertext[3] ^= 0x01;
    EXPECT_FALSE(rx.open(msg).has_value());
}

TEST(Channel, RejectsReplay)
{
    const auto key = crypto::sha256(std::string("session"));
    SecureChannel tx(key), rx(key);
    const SealedMessage msg = tx.seal(bytes("one-time"));
    ASSERT_TRUE(rx.open(msg).has_value());
    EXPECT_FALSE(rx.open(msg).has_value()); // replay
}

TEST(Channel, RejectsReordering)
{
    const auto key = crypto::sha256(std::string("session"));
    SecureChannel tx(key), rx(key);
    const SealedMessage m1 = tx.seal(bytes("first"));
    const SealedMessage m2 = tx.seal(bytes("second"));
    EXPECT_FALSE(rx.open(m2).has_value()); // skipped ahead
    EXPECT_TRUE(rx.open(m1).has_value());
    EXPECT_TRUE(rx.open(m2).has_value());
}

TEST(Channel, WrongKeyFails)
{
    SecureChannel tx(crypto::sha256(std::string("key-a")));
    SecureChannel rx(crypto::sha256(std::string("key-b")));
    EXPECT_FALSE(rx.open(tx.seal(bytes("hello"))).has_value());
}

TEST(Channel, DirectionalKeysIsolateStreams)
{
    const SessionKeys keys = deriveSessionKeys(123456789);
    SecureChannel c2s_tx(keys.clientToServer);
    SecureChannel s2c_rx(keys.serverToClient);
    EXPECT_FALSE(s2c_rx.open(c2s_tx.seal(bytes("x"))).has_value());
}

TEST(Channel, EmptyMessageSupported)
{
    const auto key = crypto::sha256(std::string("session"));
    SecureChannel tx(key), rx(key);
    const auto out = rx.open(tx.seal({}));
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->empty());
}
