/**
 * @file
 * Minimal INI-style configuration: `[section]` headers and
 * `key = value` pairs with `#`/`;` comments. Powers the config-driven
 * experiment runner so reproductions can be described as data rather
 * than recompiled C++.
 */

#ifndef CLLM_UTIL_CONFIG_HH
#define CLLM_UTIL_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace cllm {

/**
 * Parsed configuration with typed accessors.
 */
class Config
{
  public:
    struct ParseResult; // defined below (needs a complete Config)

    /** Parse INI text. */
    static ParseResult parse(const std::string &text);

    /** Load and parse a file. */
    static ParseResult load(const std::string &path);

    /** Whether a key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** String value or default. */
    std::string getString(const std::string &section,
                          const std::string &key,
                          const std::string &fallback = "") const;

    /** Integer value or default; fatal on malformed numbers. */
    long getInt(const std::string &section, const std::string &key,
                long fallback = 0) const;

    /** Floating value or default; fatal on malformed numbers. */
    double getDouble(const std::string &section, const std::string &key,
                     double fallback = 0.0) const;

    /** Boolean: true/false/yes/no/1/0. */
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback = false) const;

    /** Section names in file order. */
    std::vector<std::string> sections() const;

    /** Keys of one section in file order. */
    std::vector<std::string> keys(const std::string &section) const;

  private:
    // section -> key -> value, plus orderings.
    std::map<std::string, std::map<std::string, std::string>> data_;
    std::vector<std::string> sectionOrder_;
    std::map<std::string, std::vector<std::string>> keyOrder_;
};

/** Outcome of parsing; `config` is valid only when ok. */
struct Config::ParseResult
{
    bool ok = false;
    std::string error;
    Config config;
};

} // namespace cllm

#endif // CLLM_UTIL_CONFIG_HH
