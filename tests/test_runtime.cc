/**
 * @file
 * Tests for the functional transformer runtime: determinism, KV-cache
 * consistency, decoding algorithms, GQA, and the numeric modes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "llm/runtime.hh"
#include "llm/tokenizer.hh"
#include "util/rng.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

ModelConfig
tinyConfig()
{
    ModelConfig m;
    m.name = "tiny";
    m.layers = 2;
    m.hidden = 32;
    m.heads = 4;
    m.kvHeads = 4;
    m.ffn = 64;
    m.vocab = ByteTokenizer::kVocabSize;
    return m;
}

std::vector<TokenId>
prompt()
{
    return ByteTokenizer().encode("hello world");
}

} // namespace

TEST(Runtime, ForwardIsDeterministic)
{
    const TinyLlama a(tinyConfig(), hw::Dtype::Fp32, 42);
    const TinyLlama b(tinyConfig(), hw::Dtype::Fp32, 42);
    KvCache ca = a.makeCache(), cb = b.makeCache();
    const auto la = a.forward(65, ca);
    const auto lb = b.forward(65, cb);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);
}

TEST(Runtime, DifferentSeedsDifferentModels)
{
    const TinyLlama a(tinyConfig(), hw::Dtype::Fp32, 1);
    const TinyLlama b(tinyConfig(), hw::Dtype::Fp32, 2);
    KvCache ca = a.makeCache(), cb = b.makeCache();
    EXPECT_NE(a.forward(65, ca), b.forward(65, cb));
}

TEST(Runtime, CacheGrowsPerToken)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 7);
    KvCache c = m.makeCache();
    EXPECT_EQ(c.length(), 0u);
    m.forward(1, c);
    EXPECT_EQ(c.length(), 1u);
    m.forward(2, c);
    m.forward(3, c);
    EXPECT_EQ(c.length(), 3u);
}

TEST(Runtime, ContextChangesPrediction)
{
    // Same final token, different prefix -> different logits (the
    // attention over the KV cache is real).
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 7);
    KvCache c1 = m.makeCache(), c2 = m.makeCache();
    m.forward(10, c1);
    m.forward(99, c2);
    const auto l1 = m.forward(50, c1);
    const auto l2 = m.forward(50, c2);
    EXPECT_NE(l1, l2);
}

TEST(Runtime, GreedyIsDeterministic)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 9);
    const auto g1 = m.generateGreedy(prompt(), 16);
    const auto g2 = m.generateGreedy(prompt(), 16);
    EXPECT_EQ(g1, g2);
    EXPECT_LE(g1.size(), 16u);
    EXPECT_GE(g1.size(), 1u);
}

TEST(Runtime, GreedyTokensInVocab)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 11);
    for (TokenId t : m.generateGreedy(prompt(), 12))
        EXPECT_LT(t, tinyConfig().vocab);
}

TEST(Runtime, BeamOneMatchesGreedy)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 13);
    const auto greedy = m.generateGreedy(prompt(), 8);
    const auto beams = m.generateBeam(prompt(), 8, 1);
    ASSERT_EQ(beams.size(), 1u);
    // Greedy may stop early on EOS; compare the common prefix.
    const std::size_t n = std::min(greedy.size(),
                                   beams[0].tokens.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(greedy[i], beams[0].tokens[i]) << "at " << i;
}

TEST(Runtime, BeamScoresSortedAndFinite)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 17);
    const auto beams = m.generateBeam(prompt(), 6, 4);
    ASSERT_EQ(beams.size(), 4u);
    for (std::size_t i = 1; i < beams.size(); ++i)
        EXPECT_GE(beams[i - 1].logProb, beams[i].logProb);
    for (const auto &h : beams) {
        EXPECT_TRUE(std::isfinite(h.logProb));
        EXPECT_LE(h.logProb, 0.0); // log prob of a sequence
        EXPECT_EQ(h.tokens.size(), 6u);
    }
}

TEST(Runtime, BeamSearchFindsAtLeastGreedyScore)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 19);
    const auto b1 = m.generateBeam(prompt(), 6, 1);
    const auto b4 = m.generateBeam(prompt(), 6, 4);
    EXPECT_GE(b4.front().logProb, b1.front().logProb - 1e-9);
}

TEST(Runtime, BeamHypothesesDistinct)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 23);
    const auto beams = m.generateBeam(prompt(), 5, 3);
    EXPECT_FALSE(beams[0].tokens == beams[1].tokens &&
                 beams[1].tokens == beams[2].tokens);
}

TEST(Runtime, GqaConfigRuns)
{
    ModelConfig cfg = tinyConfig();
    cfg.kvHeads = 2; // grouped-query attention
    const TinyLlama m(cfg, hw::Dtype::Fp32, 29);
    const auto out = m.generateGreedy(prompt(), 8);
    EXPECT_GE(out.size(), 1u);
}

TEST(Runtime, MqaConfigRuns)
{
    ModelConfig cfg = tinyConfig();
    cfg.kvHeads = 1;
    const TinyLlama m(cfg, hw::Dtype::Fp32, 31);
    EXPECT_GE(m.generateGreedy(prompt(), 4).size(), 1u);
}

TEST(Runtime, Bf16CloseToFp32)
{
    const TinyLlama f(tinyConfig(), hw::Dtype::Fp32, 37);
    const TinyLlama b(tinyConfig(), hw::Dtype::Bf16, 37);
    KvCache cf = f.makeCache(), cb = b.makeCache();
    const auto lf = f.forward(65, cf);
    const auto lb = b.forward(65, cb);
    double max_rel = 0.0;
    for (std::size_t i = 0; i < lf.size(); ++i) {
        max_rel = std::max(
            max_rel, std::abs(lf[i] - lb[i]) /
                         (std::abs(lf[i]) + 1.0));
    }
    EXPECT_LT(max_rel, 0.15);
}

TEST(Runtime, Int8ProducesReasonableLogits)
{
    const TinyLlama f(tinyConfig(), hw::Dtype::Fp32, 41);
    const TinyLlama q(tinyConfig(), hw::Dtype::Int8, 41);
    KvCache cf = f.makeCache(), cq = q.makeCache();
    const auto lf = f.forward(65, cf);
    const auto lq = q.forward(65, cq);
    // Quantization noise compounds across layers; require correlation
    // rather than closeness: the top-8 fp32 tokens should overlap the
    // top-8 int8 tokens.
    auto topk = [](const std::vector<float> &l) {
        std::vector<std::size_t> idx(l.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::partial_sort(idx.begin(), idx.begin() + 8, idx.end(),
                          [&](std::size_t a, std::size_t b) {
                              return l[a] > l[b];
                          });
        idx.resize(8);
        return idx;
    };
    const auto tf = topk(lf), tq = topk(lq);
    int overlap = 0;
    for (auto a : tf)
        for (auto b : tq)
            overlap += a == b;
    EXPECT_GE(overlap, 3);
}

TEST(Runtime, LogitsCoverVocab)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 43);
    KvCache c = m.makeCache();
    EXPECT_EQ(m.forward(0, c).size(), tinyConfig().vocab);
}

TEST(RuntimeDeath, TokenOutOfVocabFatal)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 47);
    KvCache c = m.makeCache();
    EXPECT_DEATH(m.forward(100000, c), "vocab");
}

TEST(RuntimeDeath, EmptyPromptFatal)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 53);
    EXPECT_DEATH(m.generateGreedy({}, 4), "empty prompt");
    EXPECT_DEATH(m.generateBeam({}, 4, 2), "empty prompt");
}

TEST(RuntimeDeath, MisalignedHeadsFatal)
{
    ModelConfig bad = tinyConfig();
    bad.kvHeads = 3; // 4 heads not divisible by 3
    EXPECT_DEATH(TinyLlama(bad, hw::Dtype::Fp32, 1), "multiple");
}

TEST(Tokenizer, RoundtripsText)
{
    ByteTokenizer tok;
    const std::string text = "Confidential LLMs in TEEs!";
    EXPECT_EQ(tok.decode(tok.encode(text)), text);
}

TEST(Tokenizer, BosPrepended)
{
    ByteTokenizer tok;
    const auto ids = tok.encode("a");
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], ByteTokenizer::kBos);
    EXPECT_EQ(ids[1], static_cast<TokenId>('a'));
    EXPECT_EQ(tok.encode("a", false).size(), 1u);
}

TEST(Tokenizer, SpecialsSkippedInDecode)
{
    ByteTokenizer tok;
    EXPECT_EQ(tok.decode({ByteTokenizer::kBos, 'h', 'i',
                          ByteTokenizer::kEos}),
              "hi");
}

TEST(KvCacheDeath, WrongLayerPanics)
{
    KvCache c(2, 16);
    std::vector<float> k(16), v(16);
    EXPECT_DEATH(c.append(5, k, v), "layer");
}

TEST(KvCacheDeath, WrongWidthPanics)
{
    KvCache c(2, 16);
    std::vector<float> k(8), v(16);
    EXPECT_DEATH(c.append(0, k, v), "width");
}

TEST(RuntimeBatch, MatchesSequentialForwardExactly)
{
    // The batched GEMM path accumulates in the same per-row order as
    // matvec, so fp32 results are bit-identical.
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 71);
    const std::vector<TokenId> toks = {10, 200, 57};

    std::vector<KvCache> seq_caches(3, m.makeCache());
    std::vector<std::vector<float>> expect;
    for (int i = 0; i < 3; ++i)
        expect.push_back(m.forward(toks[i], seq_caches[i]));

    std::vector<KvCache> bat_caches(3, m.makeCache());
    std::vector<KvCache *> ptrs = {&bat_caches[0], &bat_caches[1],
                                   &bat_caches[2]};
    const auto got = m.forwardBatch(toks, ptrs);
    ASSERT_EQ(got.size(), 3u);
    for (int b = 0; b < 3; ++b)
        EXPECT_EQ(got[b], expect[b]) << "sequence " << b;
}

TEST(RuntimeBatch, WorksAcrossModes)
{
    for (hw::Dtype mode :
         {hw::Dtype::Fp32, hw::Dtype::Bf16, hw::Dtype::Int8}) {
        const TinyLlama m(tinyConfig(), mode, 73);
        const std::vector<TokenId> toks = {1, 2};
        std::vector<KvCache> caches(2, m.makeCache());
        std::vector<KvCache *> ptrs = {&caches[0], &caches[1]};
        const auto got = m.forwardBatch(toks, ptrs);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0].size(), tinyConfig().vocab);
        EXPECT_EQ(caches[0].length(), 1u);
        EXPECT_EQ(caches[1].length(), 1u);
    }
}

TEST(RuntimeBatch, MixedPositionsSupported)
{
    // Sequences at different cache depths decode together, as in
    // continuous batching.
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 79);
    KvCache deep = m.makeCache(), shallow = m.makeCache();
    m.forward(5, deep);
    m.forward(6, deep); // depth 2
    std::vector<KvCache *> ptrs = {&deep, &shallow};
    const auto got = m.forwardBatch({7, 8}, ptrs);
    EXPECT_EQ(deep.length(), 3u);
    EXPECT_EQ(shallow.length(), 1u);

    // The deep sequence's result must equal a sequential forward with
    // the same history.
    KvCache replay = m.makeCache();
    m.forward(5, replay);
    m.forward(6, replay);
    EXPECT_EQ(got[0], m.forward(7, replay));
}

TEST(RuntimeBatchDeath, MismatchedSizesFatal)
{
    const TinyLlama m(tinyConfig(), hw::Dtype::Fp32, 83);
    KvCache c = m.makeCache();
    std::vector<KvCache *> ptrs = {&c};
    EXPECT_DEATH(m.forwardBatch({1, 2}, ptrs), "mismatch");
}

TEST(GemmTransB, MatchesMatvecPerRow)
{
    // gemmTransB(A, W) row i must equal matvec(W, A.row(i)).
    Tensor a(3, 16), w(8, 16);
    Rng rng(91);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (std::size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    Tensor c(3, 8);
    gemmTransB(a, w, c);
    for (std::size_t r = 0; r < 3; ++r) {
        std::vector<float> y(8);
        matvec(w, a.row(r), y.data());
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_EQ(c.at(r, j), y[j]);
    }
}

TEST(GemmTransBDeath, ShapeMismatchPanics)
{
    Tensor a(2, 4), b(3, 5), c(2, 3);
    EXPECT_DEATH(gemmTransB(a, b, c), "shape mismatch");
}
