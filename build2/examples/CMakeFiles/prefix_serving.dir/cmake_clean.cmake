file(REMOVE_RECURSE
  "CMakeFiles/prefix_serving.dir/prefix_serving.cpp.o"
  "CMakeFiles/prefix_serving.dir/prefix_serving.cpp.o.d"
  "prefix_serving"
  "prefix_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
