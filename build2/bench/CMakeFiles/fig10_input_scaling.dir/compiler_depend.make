# Empty compiler generated dependencies file for fig10_input_scaling.
# This may be replaced when dependencies are built.
