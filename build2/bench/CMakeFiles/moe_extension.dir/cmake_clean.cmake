file(REMOVE_RECURSE
  "CMakeFiles/moe_extension.dir/moe_extension.cpp.o"
  "CMakeFiles/moe_extension.dir/moe_extension.cpp.o.d"
  "moe_extension"
  "moe_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
