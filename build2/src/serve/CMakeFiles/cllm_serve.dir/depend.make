# Empty dependencies file for cllm_serve.
# This may be replaced when dependencies are built.
