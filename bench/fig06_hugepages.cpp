/**
 * @file
 * Figure 6: hugepage backing on two sockets — VM with preallocated
 * 1 GiB pages (VM FH), VM with 2 MiB transparent hugepages (VM TH),
 * and TDX (which silently uses 2 MiB THP regardless, Insight 7).
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 6",
           "hugepage strategies on two sockets, Llama2-13B (EMR1)",
           "VM TH costs 3.19-5.20% over VM FH; TDX over VM TH stays "
           "at single-socket magnitude (4-10%)");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_13b();

    const auto tput = throughputParams(cpu, 2);
    const auto lat = latencyParams(cpu, 2);

    const auto fh_t = exp.runCpu(cpu, core::Backend::Vm, model, tput);
    const auto fh_l = exp.runCpu(cpu, core::Backend::Vm, model, lat);

    Table t({"backend", "pages", "tput [tok/s]", "tput ovh vs VM FH",
             "latency [ms]", "lat ovh vs VM FH"});
    struct Row
    {
        core::Backend b;
        const char *pages;
    };
    for (const Row &row : {Row{core::Backend::Vm, "1G prealloc"},
                           Row{core::Backend::VmTh, "2M THP"},
                           Row{core::Backend::Tdx, "2M THP (forced)"}}) {
        const auto rt = exp.runCpu(cpu, row.b, model, tput);
        const auto rl = exp.runCpu(cpu, row.b, model, lat);
        t.addRow({rt.backend, row.pages, fmt(rt.timing.decodeTput),
                  fmtPct(core::Experiment::compare(rt, fh_t)
                             .tputOverheadPct),
                  fmt(1e3 * rl.timing.meanTokenLatency),
                  fmtPct(core::Experiment::compare(rl, fh_l)
                             .latencyOverheadPct)});
    }
    t.print(std::cout);

    const auto th_t = exp.runCpu(cpu, core::Backend::VmTh, model, tput);
    const auto tdx_t = exp.runCpu(cpu, core::Backend::Tdx, model, tput);
    std::cout << "\nTDX over VM TH (same page size): "
              << fmtPct(core::Experiment::compare(tdx_t, th_t)
                            .tputOverheadPct)
              << "\n";
    return 0;
}
