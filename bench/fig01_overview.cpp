/**
 * @file
 * Figure 1: headline results — Llama2-7B inference throughput and
 * latency inside a VM TEE (TDX), an application TEE (Gramine-SGX),
 * and a confidential GPU, against their natural baselines.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 1",
           "Llama2-7B in CPU TEEs (TDX, SGX) and a GPU TEE (cGPU)",
           "TEEs for LLMs incur only 4-7% throughput reduction");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();

    const auto tput = throughputParams(cpu);
    const auto lat = latencyParams(cpu);

    Table t({"system", "tput [tok/s]", "tput overhead",
             "latency [ms/tok]", "latency overhead"});

    const auto bare_t = exp.runCpu(cpu, core::Backend::Bare, model, tput);
    const auto bare_l = exp.runCpu(cpu, core::Backend::Bare, model, lat);
    for (auto b : {core::Backend::Bare, core::Backend::Vm,
                   core::Backend::Sgx, core::Backend::Tdx}) {
        const auto rt = exp.runCpu(cpu, b, model, tput);
        const auto rl = exp.runCpu(cpu, b, model, lat);
        t.addRow({rt.backend, fmt(rt.timing.decodeTput),
                  fmtPct(core::Experiment::compare(rt, bare_t)
                             .tputOverheadPct),
                  fmt(1e3 * rl.timing.meanTokenLatency),
                  fmtPct(core::Experiment::compare(rl, bare_l)
                             .latencyOverheadPct)});
    }

    const hw::GpuSpec gpu = hw::h100Nvl();
    llm::GpuRunParams g;
    g.batch = 16;
    g.inLen = 1024;
    g.outLen = 128;
    const auto graw = exp.runGpu(gpu, model, g);
    g.confidential = true;
    const auto gcc = exp.runGpu(gpu, model, g);
    t.addRow({"GPU (H100)", fmt(graw.timing.decodeTput), "0.0%",
              fmt(1e3 * graw.timing.meanTokenLatency), "0.0%"});
    t.addRow({"cGPU (H100 CC)", fmt(gcc.timing.decodeTput),
              fmtPct(core::Experiment::compare(gcc, graw)
                         .tputOverheadPct),
              fmt(1e3 * gcc.timing.meanTokenLatency),
              fmtPct(core::Experiment::compare(gcc, graw)
                         .latencyOverheadPct)});
    t.print(std::cout);
    return 0;
}
