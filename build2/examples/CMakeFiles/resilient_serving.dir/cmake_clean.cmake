file(REMOVE_RECURSE
  "CMakeFiles/resilient_serving.dir/resilient_serving.cpp.o"
  "CMakeFiles/resilient_serving.dir/resilient_serving.cpp.o.d"
  "resilient_serving"
  "resilient_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
