#include "fault/schedule.hh"

#include <algorithm>
#include <cmath>

#include "mem/epc.hh"
#include "util/config.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::AttestFail:
        return "attest_fail";
      case FaultKind::EnclaveRestart:
        return "enclave_restart";
      case FaultKind::EpcStorm:
        return "epc_storm";
      case FaultKind::KvExhaustion:
        return "kv_exhaustion";
    }
    return "?";
}

namespace {

/** Draw one Poisson window process into the schedule. */
void
drawProcess(FaultSchedule &sched, Rng &rng, FaultKind kind,
            const FaultProcess &proc, double horizon)
{
    if (proc.rate <= 0.0)
        return;
    if (proc.magnitude < 0.0)
        cllm_fatal("fault process ", faultKindName(kind),
                   ": negative magnitude");
    if (kind == FaultKind::KvExhaustion && proc.magnitude > 1.0)
        cllm_fatal("kv_exhaustion magnitude must be a fraction in "
                   "[0, 1], got ",
                   proc.magnitude);
    double clock = 0.0;
    for (;;) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        clock += -std::log(u) / proc.rate;
        if (clock >= horizon)
            break;
        FaultEvent e;
        e.kind = kind;
        e.time = clock;
        if (proc.meanDuration > 0.0) {
            double v = 0.0;
            while (v == 0.0)
                v = rng.uniform();
            e.duration = -std::log(v) * proc.meanDuration;
        }
        e.magnitude = proc.magnitude;
        sched.add(e);
    }
}

} // namespace

FaultSchedule
FaultSchedule::generate(const FaultScheduleConfig &cfg)
{
    if (cfg.horizon <= 0.0)
        cllm_fatal("FaultSchedule::generate: non-positive horizon");
    FaultSchedule sched;
    // One Rng per process, split from the master seed, so enabling a
    // new fault class never perturbs the draws of the others.
    std::uint64_t s = cfg.seed;
    const std::uint64_t seeds[4] = {splitmix64(s), splitmix64(s),
                                    splitmix64(s), splitmix64(s)};
    Rng r0(seeds[0]), r1(seeds[1]), r2(seeds[2]), r3(seeds[3]);
    drawProcess(sched, r0, FaultKind::AttestFail, cfg.attestFail,
                cfg.horizon);
    drawProcess(sched, r1, FaultKind::EnclaveRestart,
                cfg.enclaveRestart, cfg.horizon);
    drawProcess(sched, r2, FaultKind::EpcStorm, cfg.epcStorm,
                cfg.horizon);
    drawProcess(sched, r3, FaultKind::KvExhaustion, cfg.kvExhaustion,
                cfg.horizon);
    return sched;
}

FaultScheduleConfig
FaultSchedule::configFrom(const Config &cfg)
{
    FaultScheduleConfig out;
    out.seed = static_cast<std::uint64_t>(
        cfg.getInt("fault", "seed", static_cast<long>(out.seed)));
    out.horizon = cfg.getDouble("fault", "horizon", out.horizon);
    struct Binding
    {
        const char *prefix;
        FaultProcess *proc;
    };
    const Binding bindings[] = {
        {"attest", &out.attestFail},
        {"restart", &out.enclaveRestart},
        {"epc_storm", &out.epcStorm},
        {"kv_exhaustion", &out.kvExhaustion},
    };
    for (const Binding &b : bindings) {
        const std::string p(b.prefix);
        b.proc->rate = cfg.getDouble("fault", p + "_rate", 0.0);
        b.proc->meanDuration =
            cfg.getDouble("fault", p + "_duration", 0.0);
        b.proc->magnitude =
            cfg.getDouble("fault", p + "_magnitude", 0.0);
    }
    return out;
}

void
FaultSchedule::add(const FaultEvent &e)
{
    if (e.time < 0.0 || e.duration < 0.0)
        cllm_fatal("FaultEvent with negative time or duration");
    auto it = std::upper_bound(
        events_.begin(), events_.end(), e,
        [](const FaultEvent &a, const FaultEvent &b) {
            return a.time < b.time;
        });
    events_.insert(it, e);
}

double
epcStormSlowdown(std::uint64_t working_set_bytes,
                 std::uint64_t epc_bytes, double baseline_step_sec)
{
    if (baseline_step_sec <= 0.0)
        cllm_fatal("epcStormSlowdown: non-positive baseline step");
    const mem::EpcCostModel model;
    return 1.0 + model.passSeconds(working_set_bytes, epc_bytes) /
                     baseline_step_sec;
}

} // namespace cllm::fault
