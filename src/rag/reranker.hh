/**
 * @file
 * Cross-encoder reranker for the "Reranked BM25" pipeline: scores a
 * (query, document) pair from lexical-overlap and embedding features
 * through a small fixed MLP. Deterministic, and monotone in genuine
 * overlap, so reranking measurably improves nDCG on the synthetic
 * BEIR benchmark (which the tests assert).
 */

#ifndef CLLM_RAG_RERANKER_HH
#define CLLM_RAG_RERANKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rag/dense.hh"
#include "rag/elastic_lite.hh"

namespace cllm::rag {

/** Work counters for reranking. */
struct RerankStats
{
    std::uint64_t pairsScored = 0;
    std::uint64_t flops = 0;
};

/**
 * Feature-based cross-encoder.
 */
class CrossEncoder
{
  public:
    explicit CrossEncoder(unsigned hidden = 16, std::uint64_t seed = 11);

    /** Relevance score of a (query, document) pair. */
    double score(const std::string &query, const Document &doc,
                 RerankStats *stats = nullptr) const;

    /** Rerank hits by cross-encoder score (descending). */
    std::vector<SearchHit> rerank(const std::string &query,
                                  const ElasticLite &store,
                                  const std::vector<SearchHit> &hits,
                                  RerankStats *stats = nullptr) const;

    /** FLOPs per scored pair. */
    std::uint64_t flopsPerPair() const;

  private:
    std::vector<double> features(const std::string &query,
                                 const Document &doc) const;

    unsigned hidden_;
    std::vector<float> w1_; // [hidden x nFeatures]
    std::vector<float> b1_;
    std::vector<float> w2_; // [hidden]
    Analyzer analyzer_;
    MiniSbert embedder_;

    static constexpr unsigned kFeatures = 6;
};

} // namespace cllm::rag

#endif // CLLM_RAG_RERANKER_HH
