/**
 * @file
 * Figure 8: AMX versus no-AMX across batch sizes for Llama2-7B
 * (128 in/out, EMR2). Overheads are reported relative to a VM running
 * AMX, matching the figure's caption. bf16 shows a small AMX edge at
 * batch 1 growing to hundreds of percent; int8 without AMX falls off
 * a cliff (no AVX int8 kernels in IPEX).
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 8", "AMX effect across batch sizes (EMR2)",
           "AMX: 1-4% edge at batch 1, hundreds of percent at large "
           "batches; int8 without AMX: up to 96% tput / 1700% latency "
           "overhead");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();

    for (hw::Dtype dtype : {hw::Dtype::Bf16, hw::Dtype::Int8}) {
        std::cout << "--- dtype " << hw::dtypeName(dtype) << " ---\n";
        Table t({"batch", "VM+AMX [tok/s]", "TDX+AMX ovh",
                 "TDX noAMX ovh", "AMX speedup"});
        for (unsigned batch : {1u, 8u, 32u, 128u, 512u}) {
            llm::RunParams p;
            p.batch = batch;
            p.inLen = 128;
            p.outLen = 128;
            p.sockets = 1;
            p.cores = cpu.coresPerSocket;
            p.dtype = dtype;

            p.amx = true;
            const auto vm_amx =
                exp.runCpu(cpu, core::Backend::Vm, model, p);
            const auto tdx_amx =
                exp.runCpu(cpu, core::Backend::Tdx, model, p);
            p.amx = false;
            const auto tdx_noamx =
                exp.runCpu(cpu, core::Backend::Tdx, model, p);

            t.addRow({std::to_string(batch),
                      fmt(vm_amx.timing.decodeTput),
                      fmtPct(core::Experiment::compare(tdx_amx, vm_amx)
                                 .tputOverheadPct),
                      fmtPct(core::Experiment::compare(tdx_noamx,
                                                       vm_amx)
                                 .tputOverheadPct),
                      fmt(tdx_amx.timing.decodeTput /
                              tdx_noamx.timing.decodeTput,
                          2) +
                          "x"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
