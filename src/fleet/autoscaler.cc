#include "fleet/autoscaler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::fleet {

Autoscaler::Autoscaler(AutoscalerConfig cfg) : cfg_(cfg)
{
    if (!cfg_.enabled)
        return;
    if (cfg_.intervalSec <= 0.0)
        cllm_fatal("Autoscaler: non-positive interval");
    if (cfg_.minNodes == 0 || cfg_.maxNodes < cfg_.minNodes)
        cllm_fatal("Autoscaler: bad node bounds");
    if (cfg_.queueLowPerNode >= cfg_.queueHighPerNode)
        cllm_fatal("Autoscaler: low watermark above high");
    if (cfg_.kvHighUtil < 0.0 || cfg_.kvHighUtil > 1.0)
        cllm_fatal("Autoscaler: KV watermark outside [0, 1]");
}

ScaleDecision
Autoscaler::tick(const std::vector<std::unique_ptr<Node>> &nodes,
                 std::size_t backlog, double now)
{
    // Live = commissioned or still provisioning, not draining. A
    // provisioning node counts toward capacity so one burst does not
    // trigger an add per tick while the first replacement cold-starts.
    std::size_t live = 0;
    std::size_t outstanding = backlog;
    double kv_util_max = 0.0;
    for (const auto &n : nodes) {
        if (n->decommissioned() || n->draining())
            continue;
        ++live;
        outstanding += n->engine().outstanding();
        kv_util_max =
            std::max(kv_util_max, n->engine().kvUtilization());
    }
    if (live == 0)
        return {};
    const double per_node = static_cast<double>(outstanding) /
                            static_cast<double>(live);
    const bool cooled = now - lastActionAt_ >= cfg_.cooldownSec;
    const bool kv_pressure =
        cfg_.kvHighUtil > 0.0 && kv_util_max >= cfg_.kvHighUtil;

    if (per_node >= cfg_.queueHighPerNode || kv_pressure) {
        lowTicks_ = 0;
        if (live < cfg_.maxNodes && cooled) {
            lastActionAt_ = now;
            return {ScaleDecision::Kind::Add, -1};
        }
        return {};
    }

    if (per_node <= cfg_.queueLowPerNode) {
        ++lowTicks_;
        if (lowTicks_ >= cfg_.drainAfterTicks && live > cfg_.minNodes &&
            cooled) {
            // Drain the priciest of the least-loaded routable nodes:
            // frees the most spend for the least disruption.
            int pick = -1;
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                const auto &n = nodes[i];
                if (!n->routable(now))
                    continue;
                if (pick < 0)
                    pick = static_cast<int>(i);
                const auto &b = nodes[pick];
                const std::size_t oi = n->engine().outstanding();
                const std::size_t ob = b->engine().outstanding();
                if (oi < ob ||
                    (oi == ob &&
                     n->pricePerHour() > b->pricePerHour()))
                    pick = static_cast<int>(i);
            }
            if (pick >= 0) {
                lowTicks_ = 0;
                lastActionAt_ = now;
                return {ScaleDecision::Kind::Drain, pick};
            }
        }
        return {};
    }

    lowTicks_ = 0;
    return {};
}

} // namespace cllm::fleet
