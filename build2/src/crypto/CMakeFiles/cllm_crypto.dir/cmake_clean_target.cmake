file(REMOVE_RECURSE
  "libcllm_crypto.a"
)
