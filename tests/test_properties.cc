/**
 * @file
 * Property-style parameterized sweeps over the whole model surface:
 * invariants that must hold for EVERY (backend x dtype x batch)
 * combination, every page-size/translation regime, every message
 * size, rather than the single points the unit tests pin down.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "util/stats.hh"
#include "crypto/sha256.hh"
#include "llm/perf_cpu.hh"
#include "mem/kv_paged.hh"
#include "mem/mee_tree.hh"
#include "mem/tlb.hh"
#include "serve/engine.hh"
#include "serve/serving.hh"
#include "tee/session.hh"
#include "util/rng.hh"
#include "util/units.hh"

using namespace cllm;

// ---- CPU timing-model invariants over the configuration grid ----------

using PerfCase = std::tuple<core::Backend, hw::Dtype, unsigned>;

class PerfGrid : public ::testing::TestWithParam<PerfCase>
{
};

TEST_P(PerfGrid, RunInvariantsHold)
{
    const auto [backend, dtype, batch] = GetParam();
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    llm::RunParams p;
    p.batch = batch;
    p.dtype = dtype;
    p.inLen = 256;
    p.outLen = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    const auto r = exp.runCpu(cpu, backend, llm::llama2_7b(), p);

    // Structural invariants.
    EXPECT_EQ(r.timing.tokenLatencies.size(), p.outLen);
    EXPECT_GT(r.timing.prefillSeconds, 0.0);
    EXPECT_GT(r.timing.decodeTput, 0.0);
    EXPECT_GT(r.timing.e2eTput, 0.0);
    EXPECT_LT(r.timing.e2eTput, r.timing.decodeTput * 1.0001);
    for (double t : r.timing.tokenLatencies)
        EXPECT_GT(t, 0.0);

    // Consistency: mean latency matches the filtered sample mean and
    // throughput is its inverse scaled by batch.
    EXPECT_NEAR(r.timing.decodeTput * r.timing.meanTokenLatency,
                p.batch, 1e-6);

    // No protected backend may be faster than bare metal.
    const auto bare =
        exp.runCpu(cpu, core::Backend::Bare, llm::llama2_7b(), p);
    EXPECT_LE(r.timing.decodeTput, bare.timing.decodeTput * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfGrid,
    ::testing::Combine(::testing::Values(core::Backend::Bare,
                                         core::Backend::Vm,
                                         core::Backend::VmTh,
                                         core::Backend::Sgx,
                                         core::Backend::Tdx),
                       ::testing::Values(hw::Dtype::Fp32,
                                         hw::Dtype::Bf16,
                                         hw::Dtype::Int8),
                       ::testing::Values(1u, 8u, 64u)),
    [](const ::testing::TestParamInfo<PerfCase> &info) {
        std::string name =
            std::string(core::backendName(std::get<0>(info.param))) +
            "_" + hw::dtypeName(std::get<1>(info.param)) + "_b" +
            std::to_string(std::get<2>(info.param));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---- Throughput monotonicity in cores, for every backend --------------

class CoreSweep : public ::testing::TestWithParam<core::Backend>
{
};

TEST_P(CoreSweep, MoreCoresNeverSlower)
{
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.batch = 8;
    p.inLen = 128;
    p.outLen = 16;
    p.sockets = 1;
    double prev = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u, 60u}) {
        p.cores = cores;
        const auto r = exp.runCpu(cpu, GetParam(), llm::llama2_7b(), p);
        EXPECT_GE(r.timing.decodeTput, prev * 0.999) << cores;
        prev = r.timing.decodeTput;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CoreSweep,
    ::testing::Values(core::Backend::Bare, core::Backend::Vm,
                      core::Backend::Sgx, core::Backend::Tdx),
    [](const ::testing::TestParamInfo<core::Backend> &info) {
        std::string n = core::backendName(info.param);
        for (auto &c : n)
            if (c == ' ')
                c = '_';
        return n;
    });

// ---- TLB model monotonicity over regimes -------------------------------

using TlbCase = std::tuple<mem::PageSize, mem::TranslationMode>;

class TlbGrid : public ::testing::TestWithParam<TlbCase>
{
};

TEST_P(TlbGrid, FactorMonotoneInWorkingSet)
{
    const auto [page, mode] = GetParam();
    mem::TlbModel m;
    double prev = 1.0;
    for (std::uint64_t ws_gb : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
        mem::AccessPattern p;
        p.workingSetBytes = ws_gb * GiB;
        const double f = m.bandwidthFactor(300e9, page, mode, p);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, prev + 1e-12) << ws_gb << " GiB";
        prev = f;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, TlbGrid,
    ::testing::Combine(::testing::Values(mem::PageSize::Page4K,
                                         mem::PageSize::Page2M,
                                         mem::PageSize::Page1G),
                       ::testing::Values(mem::TranslationMode::Native,
                                         mem::TranslationMode::Nested,
                                         mem::TranslationMode::NestedTdx)),
    [](const ::testing::TestParamInfo<TlbCase> &info) {
        const char *pages =
            std::get<0>(info.param) == mem::PageSize::Page4K   ? "p4k"
            : std::get<0>(info.param) == mem::PageSize::Page2M ? "p2m"
                                                               : "p1g";
        const char *mode =
            std::get<1>(info.param) == mem::TranslationMode::Native
                ? "native"
            : std::get<1>(info.param) == mem::TranslationMode::Nested
                ? "nested"
                : "tdx";
        return std::string(pages) + "_" + mode;
    });

// ---- MEE roundtrip across geometries -----------------------------------

using MeeCase = std::tuple<unsigned, unsigned>; // lines, arity

class MeeGrid : public ::testing::TestWithParam<MeeCase>
{
};

TEST_P(MeeGrid, RoundtripAndTamperDetection)
{
    const auto [lines, arity] = GetParam();
    mem::PhysMem phys(lines);
    mem::MeeTree mee(phys, crypto::sha256(std::string("k")), arity);

    // Write a pattern to every 7th line, verify all, tamper one.
    for (std::size_t i = 0; i < lines; i += 7) {
        mem::CacheLine l{};
        for (std::size_t b = 0; b < l.size(); ++b)
            l[b] = static_cast<std::uint8_t>(i + b);
        mee.writeLine(i, l);
    }
    for (std::size_t i = 0; i < lines; i += 7) {
        const auto r = mee.readLine(i);
        ASSERT_TRUE(r.ok) << "line " << i;
        EXPECT_EQ(r.data[1], static_cast<std::uint8_t>(i + 1));
    }
    phys.raw()[(lines / 2) * mem::kLineBytes] ^= 0xff;
    EXPECT_FALSE(mee.readLine(lines / 2).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeeGrid,
    ::testing::Combine(::testing::Values(8u, 64u, 513u),
                       ::testing::Values(2u, 8u, 16u)),
    [](const ::testing::TestParamInfo<MeeCase> &info) {
        return "l" + std::to_string(std::get<0>(info.param)) + "_a" +
               std::to_string(std::get<1>(info.param));
    });

// ---- SHA-256 incremental == one-shot across lengths --------------------

class ShaLengths : public ::testing::TestWithParam<int>
{
};

TEST_P(ShaLengths, IncrementalMatchesOneShot)
{
    const int len = GetParam();
    std::string msg(len, '\0');
    for (int i = 0; i < len; ++i)
        msg[i] = static_cast<char>('a' + i % 26);

    crypto::Sha256 h;
    // Absorb in awkward chunk sizes.
    std::size_t off = 0;
    std::size_t chunk = 1;
    while (off < msg.size()) {
        const std::size_t take =
            std::min(chunk, msg.size() - off);
        h.update(msg.data() + off, take);
        off += take;
        chunk = chunk * 2 + 1;
    }
    EXPECT_EQ(crypto::toHex(h.finish()),
              crypto::toHex(crypto::sha256(msg)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ShaLengths,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65,
                                           127, 128, 1000));

// ---- Secure channel across message sizes -------------------------------

class ChannelSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(ChannelSizes, SealOpenRoundtrip)
{
    const auto key = crypto::sha256(std::string("sweep"));
    tee::SecureChannel tx(key), rx(key);
    std::vector<std::uint8_t> msg(GetParam());
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 17);
    const auto out = rx.open(tx.seal(msg));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096,
                                           65536));

// ---- GPU overhead band across the full figure-11 grid ------------------

using GpuCase = std::tuple<unsigned, unsigned>; // batch, input

class GpuGrid : public ::testing::TestWithParam<GpuCase>
{
};

TEST_P(GpuGrid, ConfidentialOverheadBounded)
{
    const auto [batch, input] = GetParam();
    llm::GpuPerfModel m;
    llm::GpuRunParams p;
    p.batch = batch;
    p.inLen = input;
    p.outLen = 64;
    const auto raw = m.run(hw::h100Nvl(), llm::llama2_7b(), p);
    p.confidential = true;
    const auto cc = m.run(hw::h100Nvl(), llm::llama2_7b(), p);
    const double ov = overheadPct(raw.decodeTput, cc.decodeTput);
    EXPECT_GT(ov, 1.0);
    EXPECT_LT(ov, 10.0);
    EXPECT_GT(cc.prefillSeconds, raw.prefillSeconds * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Fig11Grid, GpuGrid,
    ::testing::Combine(::testing::Values(1u, 8u, 32u),
                       ::testing::Values(128u, 1024u, 4096u)),
    [](const ::testing::TestParamInfo<GpuCase> &info) {
        return "b" + std::to_string(std::get<0>(info.param)) + "_in" +
               std::to_string(std::get<1>(info.param));
    });

// ---- Paged-KV allocator: conservation under random op storms -----------

using KvStormCase = std::tuple<unsigned, unsigned, unsigned>;
// (totalBlocks, blockTokens, seed)

class KvStormGrid : public ::testing::TestWithParam<KvStormCase>
{
};

// Block conservation (used + free == total, refcounts match tables)
// must survive any interleaving of add / append / fork / release,
// including calls that fail on exhaustion — and a full drain must
// return every block to the free list.
TEST_P(KvStormGrid, ConservationHoldsThroughRandomOps)
{
    const auto [blocks, block_tokens, seed] = GetParam();
    mem::PagedKvCache kv({blocks, block_tokens});
    Rng rng(seed);

    std::vector<mem::KvSeqId> live;
    mem::KvSeqId next_id = 1;
    for (int op = 0; op < 400; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.35 || live.empty()) {
            const unsigned toks = static_cast<unsigned>(
                rng.uniformInt(1, 3ULL * block_tokens));
            if (kv.addSequence(next_id, toks))
                live.push_back(next_id);
            ++next_id;
        } else if (roll < 0.70) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            kv.appendToken(live[i]); // may fail; must not corrupt
        } else if (roll < 0.85) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            if (kv.fork(live[i], next_id))
                live.push_back(next_id);
            ++next_id;
        } else {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            kv.release(live[i]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(i));
        }
        ASSERT_TRUE(kv.consistent()) << "op " << op;
        ASSERT_EQ(kv.usedBlocks() + kv.freeBlocks(),
                  kv.totalBlocks());
    }

    // Drain: no leaked blocks, alloc/free ledger balances.
    for (mem::KvSeqId id : live)
        kv.release(id);
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.freeBlocks(), kv.totalBlocks());
    EXPECT_EQ(kv.sequences(), 0u);
    EXPECT_EQ(kv.stats().blockAllocs, kv.stats().blockFrees);
    EXPECT_TRUE(kv.consistent());
}

// The same storm with the prefix cache's pin plumbing in the mix:
// external pins on full-block prefixes, admissions that re-reference
// pinned blocks (addSequenceWithPrefix), and unpins, interleaved with
// the add/append/release churn. The extended conservation law —
// table refs + pins equal refcounts, pinned blocks never on the free
// list — must hold after every op, and a full drain (release all,
// unpin all) must return every block.
TEST_P(KvStormGrid, ConservationHoldsWithPinsAndPrefixSharing)
{
    const auto [blocks, block_tokens, seed] = GetParam();
    mem::PagedKvCache kv({blocks, block_tokens});
    Rng rng(seed + 1000);

    std::vector<mem::KvSeqId> live;
    // Each entry: pinned full-block prefix + the tokens it covers.
    std::vector<std::pair<std::vector<std::uint32_t>, unsigned>> pins;
    mem::KvSeqId next_id = 1;
    for (int op = 0; op < 400; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.30 || (live.empty() && pins.empty())) {
            const unsigned toks = static_cast<unsigned>(
                rng.uniformInt(1, 3ULL * block_tokens));
            if (kv.addSequence(next_id, toks))
                live.push_back(next_id);
            ++next_id;
        } else if (roll < 0.45 && !live.empty()) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            kv.appendToken(live[i]); // may fail; must not corrupt
        } else if (roll < 0.60 && !live.empty()) {
            // Pin a live sequence's full-block prefix (what the
            // radix cache pins on insert; the mutable tail never
            // qualifies).
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            const unsigned full =
                kv.tokens(live[i]) / block_tokens;
            if (full > 0) {
                const auto &table = kv.blockTable(live[i]);
                std::vector<std::uint32_t> prefix(
                    table.begin(), table.begin() + full);
                kv.pin(prefix);
                pins.emplace_back(std::move(prefix),
                                  full * block_tokens);
            }
        } else if (roll < 0.75 && !pins.empty()) {
            // Admit a sharer over a pinned prefix, tail allocated
            // fresh.
            const std::size_t j = static_cast<std::size_t>(
                rng.uniformInt(0, pins.size() - 1));
            const unsigned toks =
                pins[j].second +
                static_cast<unsigned>(
                    rng.uniformInt(1, 2ULL * block_tokens));
            if (kv.addSequenceWithPrefix(next_id, toks,
                                         pins[j].first,
                                         pins[j].second))
                live.push_back(next_id);
            ++next_id;
        } else if (roll < 0.90 && !pins.empty()) {
            const std::size_t j = static_cast<std::size_t>(
                rng.uniformInt(0, pins.size() - 1));
            kv.unpin(pins[j].first);
            pins.erase(pins.begin() +
                       static_cast<std::ptrdiff_t>(j));
        } else if (!live.empty()) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            kv.release(live[i]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(i));
        }
        ASSERT_TRUE(kv.consistent()) << "op " << op;
        ASSERT_EQ(kv.usedBlocks() + kv.freeBlocks(),
                  kv.totalBlocks());
    }

    // Drain both the tables and the pins: nothing may leak.
    for (mem::KvSeqId id : live)
        kv.release(id);
    for (auto &[prefix, toks] : pins) {
        (void)toks;
        kv.unpin(prefix);
    }
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.freeBlocks(), kv.totalBlocks());
    EXPECT_EQ(kv.pinnedBlocks(), 0u);
    EXPECT_EQ(kv.stats().blockAllocs, kv.stats().blockFrees);
    EXPECT_TRUE(kv.consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Storms, KvStormGrid,
    ::testing::Combine(::testing::Values(16u, 64u, 256u),
                       ::testing::Values(4u, 16u),
                       ::testing::Values(1u, 7u, 42u)),
    [](const ::testing::TestParamInfo<KvStormCase> &info) {
        return "blk" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_s" +
               std::to_string(std::get<2>(info.param));
    });

// ---- Serving-engine accounting across KV modes and pool sizes ----------

using KvEngineCase = std::tuple<serve::KvMode, std::uint64_t, unsigned,
                                serve::ChunkMode>;
// (mode, kvBlocks, workload seed, prefill scheduling)

class KvEngineGrid : public ::testing::TestWithParam<KvEngineCase>
{
};

namespace {

std::unique_ptr<serve::StepModel>
kvGridModel()
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return serve::makeCpuStepModel(
        cpu,
        std::shared_ptr<const tee::TeeBackend>(tee::makeTdx()),
        llm::llama2_7b(), p);
}

} // namespace

// For every (discipline x pool size x trace): request accounting
// sums, output tokens match completed requests exactly, and — the
// paged scheduler's core guarantee — preemption never re-emits a
// token (batch-slot steps == output tokens in a fault-free run).
TEST_P(KvEngineGrid, AccountingClosesAndTokensAreEmittedOnce)
{
    const auto [mode, blocks, seed, chunk] = GetParam();

    serve::WorkloadConfig load;
    load.arrivalRate = 1.0;
    load.numRequests = 40;
    load.meanInLen = 96;
    load.meanOutLen = 160;
    load.seed = seed;
    auto trace = serve::generateWorkload(load);

    serve::ServerConfig cfg;
    cfg.policy = serve::BatchPolicy::Continuous;
    cfg.maxBatch = 16;
    cfg.kvBlocks = blocks;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = mode;
    cfg.paged.kvBytesPerToken = 1.0; // unused by Recompute
    cfg.chunkedPrefill.mode = chunk;
    cfg.chunkedPrefill.chunkTokens = 48; // ~2 slices per prompt

    auto step = kvGridModel();
    serve::ContinuousEngine eng(*step, cfg);
    for (auto &r : trace)
        eng.submit(&r, r.arrival);
    while (!eng.idle())
        eng.iterate();

    std::size_t completed = 0;
    std::uint64_t out_tokens = 0;
    for (const auto &r : trace) {
        if (r.finish >= 0.0) {
            ++completed;
            out_tokens += r.outLen;
            EXPECT_GE(r.firstToken, r.arrival);
            EXPECT_GE(r.finish, r.firstToken);
        }
    }
    const serve::ServeTally &t = eng.tally();
    // Fault-free, no deadline: every request completes or is shed.
    EXPECT_EQ(t.timedOut, 0u);
    EXPECT_EQ(t.failed, 0u);
    EXPECT_EQ(completed + t.shed, trace.size());
    EXPECT_DOUBLE_EQ(eng.occupancySum(),
                     static_cast<double>(out_tokens));
    EXPECT_LE(eng.peakBatch(), 16u);
    EXPECT_GE(eng.kvUtilizationMean(), 0.0);
    EXPECT_LE(eng.kvUtilizationMean(), 1.0);
    if (mode == serve::KvMode::Reserved) {
        EXPECT_EQ(t.kvPreemptions, 0u);
        EXPECT_EQ(t.kvSwapOuts, 0u);
    }
    if (chunk != serve::ChunkMode::Off) {
        EXPECT_TRUE(t.chunkedEnabled);
        // Chunked accounting closure: absent recompute (which
        // legitimately re-prefills) and prefix caching (off here),
        // every admitted prompt token is sliced exactly once.
        if (t.kvPreemptions == 0) {
            std::uint64_t prompt_tokens = 0;
            for (const auto &r : trace)
                if (r.finish >= 0.0)
                    prompt_tokens += r.inLen;
            EXPECT_EQ(t.chunkPrefillTokens, prompt_tokens);
        }
    } else {
        EXPECT_EQ(t.chunkSlices, 0u);
        EXPECT_EQ(t.chunkPrefillTokens, 0u);
    }
    // The drained pool must be empty in either discipline.
    EXPECT_EQ(eng.kvUsedBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPools, KvEngineGrid,
    ::testing::Combine(
        ::testing::Values(serve::KvMode::Reserved,
                          serve::KvMode::Paged),
        ::testing::Values(96ULL, 256ULL, 4096ULL),
        ::testing::Values(5u, 21u),
        ::testing::Values(serve::ChunkMode::Off,
                          serve::ChunkMode::DecodePriority)),
    [](const ::testing::TestParamInfo<KvEngineCase> &info) {
        return std::string(serve::kvModeName(
                   std::get<0>(info.param))) +
               "_blk" + std::to_string(std::get<1>(info.param)) +
               "_s" + std::to_string(std::get<2>(info.param)) + "_" +
               serve::chunkModeName(std::get<3>(info.param));
    });

// Scheduling must never change what gets served: with an ample pool
// the reserved, paged, and chunked engines complete the identical
// request set with identical per-request output token counts.
TEST(KvEngineEquivalence, ReservedPagedChunkedServeTheSameSet)
{
    serve::WorkloadConfig load;
    load.arrivalRate = 1.0;
    load.numRequests = 40;
    load.meanInLen = 96;
    load.meanOutLen = 160;
    load.seed = 13;

    struct Variant
    {
        serve::KvMode kv;
        serve::ChunkMode chunk;
    };
    const Variant variants[] = {
        {serve::KvMode::Reserved, serve::ChunkMode::Off},
        {serve::KvMode::Paged, serve::ChunkMode::Off},
        {serve::KvMode::Reserved, serve::ChunkMode::DecodePriority},
        {serve::KvMode::Paged, serve::ChunkMode::DecodePriority},
        {serve::KvMode::Paged, serve::ChunkMode::PrefillPriority},
    };

    std::vector<std::vector<serve::Request>> traces;
    for (const Variant &v : variants) {
        serve::ServerConfig cfg;
        cfg.policy = serve::BatchPolicy::Continuous;
        cfg.maxBatch = 16;
        cfg.kvBlocks = 4096;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = v.kv;
        cfg.paged.kvBytesPerToken = 1.0;
        cfg.chunkedPrefill.mode = v.chunk;
        cfg.chunkedPrefill.chunkTokens = 48;

        auto trace = serve::generateWorkload(load);
        auto step = kvGridModel();
        serve::ContinuousEngine eng(*step, cfg);
        for (auto &r : trace)
            eng.submit(&r, r.arrival);
        while (!eng.idle())
            eng.iterate();
        traces.push_back(std::move(trace));
    }

    const auto &base = traces.front();
    for (std::size_t v = 1; v < traces.size(); ++v) {
        ASSERT_EQ(traces[v].size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(traces[v][i].finish >= 0.0,
                      base[i].finish >= 0.0)
                << "variant " << v << " request " << base[i].id;
            EXPECT_EQ(traces[v][i].outLen, base[i].outLen);
        }
    }
}

// ---- Speculation never changes what gets served ------------------------

using SpecEngineCase =
    std::tuple<serve::KvMode, serve::ChunkMode, unsigned>;
// (KV discipline, prefill scheduling, workload seed)

class SpecEngineGrid : public ::testing::TestWithParam<SpecEngineCase>
{
};

// For every (discipline x scheduling x trace): replaying with
// speculation off, k=2, and k=4 completes the identical request set
// with identical per-request output token counts, and the acceptance
// accounting closes on the emitted total. Speculation changes when
// tokens arrive, never which tokens arrive.
TEST_P(SpecEngineGrid, CompletionSetInvariantAcrossDraftDepths)
{
    const auto [mode, chunk, seed] = GetParam();

    serve::WorkloadConfig load;
    load.arrivalRate = 1.0;
    load.numRequests = 40;
    load.meanInLen = 96;
    load.meanOutLen = 160;
    load.seed = seed;

    std::vector<std::vector<serve::Request>> traces;
    std::vector<serve::ServeTally> tallies;
    for (unsigned k : {0u, 2u, 4u}) {
        serve::ServerConfig cfg;
        cfg.policy = serve::BatchPolicy::Continuous;
        cfg.maxBatch = 16;
        cfg.kvBlocks = 4096;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = mode;
        cfg.paged.kvBytesPerToken = 1.0;
        cfg.chunkedPrefill.mode = chunk;
        cfg.chunkedPrefill.chunkTokens = 48;
        if (k) {
            cfg.specDecode.enabled = true;
            cfg.specDecode.draftTokens = k;
        }

        auto trace = serve::generateWorkload(load);
        auto step = kvGridModel();
        serve::ContinuousEngine eng(*step, cfg);
        for (auto &r : trace)
            eng.submit(&r, r.arrival);
        while (!eng.idle())
            eng.iterate();
        traces.push_back(std::move(trace));
        tallies.push_back(eng.tally());
    }

    const auto &base = traces.front();
    for (std::size_t v = 1; v < traces.size(); ++v) {
        ASSERT_EQ(traces[v].size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(traces[v][i].finish >= 0.0,
                      base[i].finish >= 0.0)
                << "variant " << v << " request " << base[i].id;
            EXPECT_EQ(traces[v][i].outLen, base[i].outLen);
        }
        std::uint64_t out_tokens = 0;
        for (const auto &r : traces[v])
            if (r.finish >= 0.0)
                out_tokens += r.outLen;
        const serve::ServeTally &t = tallies[v];
        EXPECT_TRUE(t.specEnabled);
        EXPECT_EQ(t.specAccepted + t.specRejected + t.specBonus,
                  out_tokens)
            << "variant " << v;
        EXPECT_LT(t.decodeSteps, tallies.front().decodeSteps)
            << "variant " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DraftDepths, SpecEngineGrid,
    ::testing::Combine(
        ::testing::Values(serve::KvMode::Reserved,
                          serve::KvMode::Paged),
        ::testing::Values(serve::ChunkMode::Off,
                          serve::ChunkMode::DecodePriority),
        ::testing::Values(5u, 21u)),
    [](const ::testing::TestParamInfo<SpecEngineCase> &info) {
        return std::string(serve::kvModeName(
                   std::get<0>(info.param))) +
               "_" +
               serve::chunkModeName(std::get<1>(info.param)) +
               "_s" + std::to_string(std::get<2>(info.param));
    });

// ---- Reserved and paged complete the same request set ------------------

class KvEquivalenceSeeds : public ::testing::TestWithParam<unsigned>
{
};

// Both disciplines shed exactly the never-fits requests and complete
// everything else, for any seeded trace: the discipline changes
// timing, never outcomes.
TEST_P(KvEquivalenceSeeds, CompletionSetsMatch)
{
    serve::WorkloadConfig load;
    load.arrivalRate = 0.8;
    load.numRequests = 50;
    load.meanInLen = 128;
    load.meanOutLen = 192;
    load.seed = GetParam();
    auto reserved_trace = serve::generateWorkload(load);
    auto paged_trace = reserved_trace;

    serve::ServerConfig cfg;
    cfg.policy = serve::BatchPolicy::Continuous;
    cfg.maxBatch = 16;
    cfg.kvBlocks = 512;
    cfg.kvBlockTokens = 16;

    {
        auto step = kvGridModel();
        serve::ContinuousEngine eng(*step, cfg);
        for (auto &r : reserved_trace)
            eng.submit(&r, r.arrival);
        while (!eng.idle())
            eng.iterate();
    }
    cfg.kvMode = serve::KvMode::Paged;
    {
        auto step = kvGridModel();
        serve::ContinuousEngine eng(*step, cfg);
        for (auto &r : paged_trace)
            eng.submit(&r, r.arrival);
        while (!eng.idle())
            eng.iterate();
    }

    for (std::size_t i = 0; i < reserved_trace.size(); ++i)
        EXPECT_EQ(reserved_trace[i].finish >= 0.0,
                  paged_trace[i].finish >= 0.0)
            << "request " << reserved_trace[i].id;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvEquivalenceSeeds,
                         ::testing::Values(3u, 17u, 99u, 123u));
