#include "tee/backend.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace cllm::tee {

namespace {

/**
 * Per-backend attributed-overhead counters: how many tax evaluations
 * each TEE mechanism priced and how many working-set bytes crossed
 * its encryption engine. Integer adds only (the registry's
 * thread-count-determinism contract).
 */
void
countTax(obs::Counter &evals, obs::Counter &enc_bytes,
         const TeeRequest &req)
{
    evals.inc();
    enc_bytes.add(req.workingSetBytes);
}

/**
 * Bare-metal environment: no taxes; honours all placement requests.
 */
class BareMetalBackend : public TeeBackend
{
  public:
    std::string name() const override { return "bare"; }

    SecurityProfile
    security() const override
    {
        SecurityProfile s;
        s.trustBoundary = "everything (no protection)";
        return s;
    }

    ExecTax
    tax(const hw::CpuSpec &cpu, const TeeRequest &req) const override
    {
        (void)cpu;
        ExecTax t;
        t.effectivePage = req.requestedPage;
        t.xlate = mem::TranslationMode::Native;
        t.placement = req.numaBindRequested ? mem::NumaPlacement::Local
                                            : mem::NumaPlacement::Unbound;
        return t;
    }
};

/**
 * Raw VM: virtualization tax and nested translation, no security.
 */
class VmBackend : public TeeBackend
{
  public:
    explicit VmBackend(const VmConfig &cfg) : cfg_(cfg) {}

    std::string name() const override
    {
        if (!cfg_.numaBound)
            return "VM NB";
        return cfg_.hugepages1G ? "VM" : "VM TH";
    }

    SecurityProfile
    security() const override
    {
        SecurityProfile s;
        s.trustBoundary = "VM + hypervisor + host (no protection)";
        return s;
    }

    ExecTax
    tax(const hw::CpuSpec &cpu, const TeeRequest &req) const override
    {
        (void)cpu;
        ExecTax t;
        t.computeFactor = 1.0 - cfg_.virtComputeTax;
        t.effectivePage = cfg_.hugepages1G ? mem::PageSize::Page1G
                                           : mem::PageSize::Page2M;
        // A guest cannot use a larger page than the host backing.
        if (pageBytes(req.requestedPage) < pageBytes(t.effectivePage))
            t.effectivePage = req.requestedPage;
        t.xlate = mem::TranslationMode::Nested;
        t.placement = (cfg_.numaBound && req.numaBindRequested)
                          ? mem::NumaPlacement::Local
                          : mem::NumaPlacement::Unbound;
        t.perOpFixedSec = cfg_.perOpFixedUs * MICRO;
        t.noiseSigma = 0.010;
        return t;
    }

  private:
    VmConfig cfg_;
};

/**
 * TDX: VM plus TME-MK memory encryption, SEPT checks, and the paper's
 * driver limitations (no NUMA binding fidelity, no 1 GiB hugepages,
 * no sub-NUMA awareness).
 */
class TdxBackend : public TeeBackend
{
  public:
    explicit TdxBackend(const TdxConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "TDX"; }

    SecurityProfile
    security() const override
    {
        SecurityProfile s;
        s.memoryEncrypted = true;
        s.memoryIntegrity = true;
        s.interconnectProtected = true; // UPI link encryption
        s.protectsFromHost = true;
        s.trustBoundary = "entire guest VM (OS + services + app)";
        return s;
    }

    ExecTax
    tax(const hw::CpuSpec &cpu, const TeeRequest &req) const override
    {
        (void)cpu;
        static obs::Counter &evals =
            obs::Registry::global().counter("tee.tdx.tax_evals");
        static obs::Counter &enc_bytes =
            obs::Registry::global().counter("tee.tdx.enc_bytes");
        countTax(evals, enc_bytes, req);
        ExecTax t;
        t.computeFactor = 1.0 - cfg_.vm.virtComputeTax;
        // Insight 7: TDX ignores reserved 1 GiB pages and uses 2 MiB
        // transparent hugepages underneath.
        t.effectivePage = mem::PageSize::Page2M;
        t.xlate = mem::TranslationMode::NestedTdx;
        // Insight 6: the TDX KVM driver does not honour NUMA bindings.
        t.placement = req.sockets > 1 ? mem::NumaPlacement::Striped
                                      : mem::NumaPlacement::Local;
        t.upiEncrypted = true;
        t.encBwFactor = 1.0 - cfg_.tmeBwTax;
        // Section IV-A: sub-NUMA clustering misplaces TD memory,
        // raising overheads from ~5% to ~42% in the paper's test runs.
        if (req.sncEnabled)
            t.encBwFactor *= 0.72;
        t.perOpFixedSec = cfg_.perOpFixedUs * MICRO;
        t.noiseSigma = cfg_.noiseSigma;
        t.outlierProb = cfg_.outlierProb;
        t.outlierScale = cfg_.outlierScale;
        return t;
    }

  private:
    TdxConfig cfg_;
};

/**
 * Gramine-SGX: process enclave on bare metal. Native translation, but
 * MEE encryption+integrity on all enclave traffic, EPC paging beyond
 * the EPC size, enclave transitions for non-emulated syscalls, and a
 * unified NUMA view (Section IV-A).
 */
class SgxBackend : public TeeBackend
{
  public:
    explicit SgxBackend(const SgxConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "SGX"; }

    SecurityProfile
    security() const override
    {
        SecurityProfile s;
        s.memoryEncrypted = true;
        s.memoryIntegrity = true;
        s.interconnectProtected = true;
        s.protectsFromHost = true;
        s.trustBoundary = "application + library OS only";
        return s;
    }

    ExecTax
    tax(const hw::CpuSpec &cpu, const TeeRequest &req) const override
    {
        static obs::Counter &evals =
            obs::Registry::global().counter("tee.sgx.tax_evals");
        static obs::Counter &enc_bytes =
            obs::Registry::global().counter("tee.sgx.enc_bytes");
        countTax(evals, enc_bytes, req);
        ExecTax t;
        // Enclave heap is backed by EPC sections; model 2 MiB-grained
        // mappings on the native (non-nested) walk path.
        t.effectivePage = mem::PageSize::Page2M;
        t.xlate = mem::TranslationMode::Native;
        // SGX exposes memory as a single unified NUMA node.
        t.placement = req.sockets > 1 ? mem::NumaPlacement::SingleNode
                                      : mem::NumaPlacement::Local;
        t.upiEncrypted = true;
        t.encBwFactor = 1.0 - cfg_.meeBwTax;
        if (req.sncEnabled)
            t.encBwFactor *= 0.72;

        // EPC paging once the working set exceeds the EPC.
        const std::uint64_t epc =
            std::min<std::uint64_t>(cfg_.epcBytes,
                                    cpu.epcBytesPerSocket * req.sockets);
        mem::EpcCostModel epc_cost;
        t.extraSecPerByte =
            epc_cost.extraSecondsPerByte(req.workingSetBytes, epc);

        // Enclave transitions for syscalls Gramine cannot emulate.
        const double exits =
            req.syscallsPerToken * (1.0 - cfg_.inEnclaveSyscallFrac);
        t.perTokenFixedSec = exits * cfg_.enclaveTransitionUs * MICRO;
        t.perOpFixedSec = cfg_.perOpFixedUs * MICRO;
        t.noiseSigma = cfg_.noiseSigma;
        t.outlierProb = cfg_.outlierProb;
        t.outlierScale = cfg_.outlierScale;
        return t;
    }

  private:
    SgxConfig cfg_;
};

} // namespace

std::unique_ptr<TeeBackend>
makeBareMetal()
{
    return std::make_unique<BareMetalBackend>();
}

std::unique_ptr<TeeBackend>
makeVm(const VmConfig &cfg)
{
    return std::make_unique<VmBackend>(cfg);
}

std::unique_ptr<TeeBackend>
makeTdx(const TdxConfig &cfg)
{
    return std::make_unique<TdxBackend>(cfg);
}

std::unique_ptr<TeeBackend>
makeSgx(const SgxConfig &cfg)
{
    return std::make_unique<SgxBackend>(cfg);
}

GpuTax
cgpuTax(const hw::GpuSpec &gpu)
{
    GpuTax t;
    t.launchExtraSec = gpu.ccLaunchExtraUs * MICRO;
    t.hostLinkBwBytes = gpu.ccBounceBwBytes;
    t.hbmBwFactor = gpu.hbmEncrypted ? 0.95 : 1.0;
    return t;
}

SecurityProfile
cgpuSecurity()
{
    SecurityProfile s;
    s.memoryEncrypted = false; // H100 HBM is not encrypted
    s.memoryIntegrity = false;
    s.interconnectProtected = false; // NVLINK unprotected; PCIe via
                                     // bounce buffer only
    s.protectsFromHost = true;
    s.trustBoundary = "GPU + host CPU TEE";
    return s;
}

} // namespace cllm::tee
