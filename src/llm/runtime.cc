#include "llm/runtime.hh"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "par/pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::llm {

// ---------------------------------------------------------------- KvCache

KvCache::KvCache(unsigned layers, unsigned kv_dim)
    : kvDim_(kv_dim), keys_(layers), values_(layers)
{
}

void
KvCache::append(unsigned layer, const std::vector<float> &k,
                const std::vector<float> &v)
{
    if (layer >= keys_.size())
        cllm_panic("KvCache::append: layer ", layer, " out of range");
    if (k.size() != kvDim_ || v.size() != kvDim_)
        cllm_panic("KvCache::append: wrong KV width");
    keys_[layer].push_back(k);
    values_[layer].push_back(v);
}

std::size_t
KvCache::length() const
{
    return keys_.empty() ? 0 : keys_[0].size();
}

const std::vector<float> &
KvCache::key(unsigned layer, std::size_t pos) const
{
    return keys_.at(layer).at(pos);
}

const std::vector<float> &
KvCache::value(unsigned layer, std::size_t pos) const
{
    return values_.at(layer).at(pos);
}

// --------------------------------------------------------------- TinyLlama

namespace {

/** Fill a tensor with scaled Gaussian init. */
void
initTensor(Tensor &t, Rng &rng, double scale)
{
    float *p = t.data();
    for (std::size_t i = 0; i < t.size(); ++i)
        p[i] = static_cast<float>(rng.gaussian(0.0, scale));
}

} // namespace

TinyLlama::TinyLlama(const ModelConfig &cfg, hw::Dtype mode,
                     std::uint64_t seed)
    : cfg_(cfg), mode_(mode)
{
    if (cfg_.hidden % cfg_.heads != 0)
        cllm_fatal("hidden must divide heads");
    if (cfg_.heads % cfg_.kvHeads != 0)
        cllm_fatal("heads must be a multiple of kvHeads");

    Rng rng(seed);
    const unsigned d = cfg_.hidden;
    const unsigned dkv = cfg_.kvDim();
    const unsigned f = cfg_.ffn;
    const double scale = 0.6 / std::sqrt(static_cast<double>(d));

    embedding_ = Tensor(cfg_.vocab, d);
    initTensor(embedding_, rng, scale);
    lmHead_ = Tensor(cfg_.vocab, d);
    initTensor(lmHead_, rng, scale);
    finalNorm_.assign(d, 1.0f);

    layers_.resize(cfg_.layers);
    for (auto &l : layers_) {
        l.wq = Tensor(d, d);
        l.wk = Tensor(dkv, d);
        l.wv = Tensor(dkv, d);
        l.wo = Tensor(d, d);
        l.wGate = Tensor(f, d);
        l.wUp = Tensor(f, d);
        l.wDown = Tensor(d, f);
        initTensor(l.wq, rng, scale);
        initTensor(l.wk, rng, scale);
        initTensor(l.wv, rng, scale);
        initTensor(l.wo, rng, scale);
        initTensor(l.wGate, rng, scale);
        initTensor(l.wUp, rng, scale);
        initTensor(l.wDown, rng, scale);
        l.inputNorm.assign(d, 1.0f);
        l.postNorm.assign(d, 1.0f);
    }

    applyModeConversions();
}

void
TinyLlama::applyModeConversions()
{
    if (mode_ == hw::Dtype::Bf16) {
        quantizeBf16(embedding_);
        quantizeBf16(lmHead_);
        for (auto &l : layers_) {
            quantizeBf16(l.wq);
            quantizeBf16(l.wk);
            quantizeBf16(l.wv);
            quantizeBf16(l.wo);
            quantizeBf16(l.wGate);
            quantizeBf16(l.wUp);
            quantizeBf16(l.wDown);
        }
    } else if (mode_ == hw::Dtype::Int8) {
        qLmHead_ = QuantizedTensor::quantize(lmHead_);
        for (auto &l : layers_) {
            l.qwq = QuantizedTensor::quantize(l.wq);
            l.qwk = QuantizedTensor::quantize(l.wk);
            l.qwv = QuantizedTensor::quantize(l.wv);
            l.qwo = QuantizedTensor::quantize(l.wo);
            l.qwGate = QuantizedTensor::quantize(l.wGate);
            l.qwUp = QuantizedTensor::quantize(l.wUp);
            l.qwDown = QuantizedTensor::quantize(l.wDown);
        }
    }
}


namespace {

/** Append a u32 little-endian. */
void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Read a u32 little-endian at offset; false when out of bounds. */
bool
getU32(const std::vector<std::uint8_t> &in, std::size_t &off,
       std::uint32_t &v)
{
    if (off + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[off + i]) << (8 * i);
    off += 4;
    return true;
}

void
putTensor(std::vector<std::uint8_t> &out, const Tensor &t)
{
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(t.data());
    out.insert(out.end(), bytes, bytes + t.size() * sizeof(float));
}

bool
getTensor(const std::vector<std::uint8_t> &in, std::size_t &off,
          Tensor &t)
{
    const std::size_t n = t.size() * sizeof(float);
    if (off + n > in.size())
        return false;
    std::memcpy(t.data(), in.data() + off, n);
    off += n;
    return true;
}

void
putVec(std::vector<std::uint8_t> &out, const std::vector<float> &v)
{
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(v.data());
    out.insert(out.end(), bytes, bytes + v.size() * sizeof(float));
}

bool
getVec(const std::vector<std::uint8_t> &in, std::size_t &off,
       std::vector<float> &v)
{
    const std::size_t n = v.size() * sizeof(float);
    if (off + n > in.size())
        return false;
    std::memcpy(v.data(), in.data() + off, n);
    off += n;
    return true;
}

constexpr std::uint32_t kWeightsMagic = 0x434c4d31; // "CLM1"

} // namespace

std::vector<std::uint8_t>
TinyLlama::saveWeights() const
{
    std::vector<std::uint8_t> out;
    putU32(out, kWeightsMagic);
    putU32(out, cfg_.layers);
    putU32(out, cfg_.hidden);
    putU32(out, cfg_.heads);
    putU32(out, cfg_.kvHeads);
    putU32(out, cfg_.ffn);
    putU32(out, cfg_.vocab);
    putTensor(out, embedding_);
    putTensor(out, lmHead_);
    putVec(out, finalNorm_);
    for (const auto &l : layers_) {
        putTensor(out, l.wq);
        putTensor(out, l.wk);
        putTensor(out, l.wv);
        putTensor(out, l.wo);
        putTensor(out, l.wGate);
        putTensor(out, l.wUp);
        putTensor(out, l.wDown);
        putVec(out, l.inputNorm);
        putVec(out, l.postNorm);
    }
    return out;
}

bool
TinyLlama::loadWeights(const std::vector<std::uint8_t> &blob)
{
    std::size_t off = 0;
    std::uint32_t magic, layers, hidden, heads, kv_heads, ffn, vocab;
    if (!getU32(blob, off, magic) || magic != kWeightsMagic)
        return false;
    if (!getU32(blob, off, layers) || !getU32(blob, off, hidden) ||
        !getU32(blob, off, heads) || !getU32(blob, off, kv_heads) ||
        !getU32(blob, off, ffn) || !getU32(blob, off, vocab)) {
        return false;
    }
    if (layers != cfg_.layers || hidden != cfg_.hidden ||
        heads != cfg_.heads || kv_heads != cfg_.kvHeads ||
        ffn != cfg_.ffn || vocab != cfg_.vocab) {
        return false;
    }

    // Stage into a copy so a truncated blob leaves *this untouched.
    TinyLlama staged = *this;
    if (!getTensor(blob, off, staged.embedding_) ||
        !getTensor(blob, off, staged.lmHead_) ||
        !getVec(blob, off, staged.finalNorm_)) {
        return false;
    }
    for (auto &l : staged.layers_) {
        if (!getTensor(blob, off, l.wq) || !getTensor(blob, off, l.wk) ||
            !getTensor(blob, off, l.wv) || !getTensor(blob, off, l.wo) ||
            !getTensor(blob, off, l.wGate) ||
            !getTensor(blob, off, l.wUp) ||
            !getTensor(blob, off, l.wDown) ||
            !getVec(blob, off, l.inputNorm) ||
            !getVec(blob, off, l.postNorm)) {
            return false;
        }
    }
    if (off != blob.size())
        return false; // trailing garbage

    staged.applyModeConversions();
    *this = std::move(staged);
    return true;
}

void
TinyLlama::project(const Tensor &w, const QuantizedTensor &q,
                   const float *x, float *y) const
{
    if (mode_ == hw::Dtype::Int8)
        matvecQuantized(q, x, y);
    else
        matvec(w, x, y);
}

void
TinyLlama::roundActs(std::vector<float> &v) const
{
    if (mode_ != hw::Dtype::Bf16)
        return;
    for (auto &x : v)
        x = toBf16(x);
}

KvCache
TinyLlama::makeCache() const
{
    return KvCache(cfg_.layers, cfg_.kvDim());
}

std::vector<float>
TinyLlama::forward(TokenId token, KvCache &cache) const
{
    if (token >= cfg_.vocab)
        cllm_fatal("token ", token, " outside vocab ", cfg_.vocab);

    const unsigned d = cfg_.hidden;
    const unsigned dkv = cfg_.kvDim();
    const unsigned f = cfg_.ffn;
    const unsigned hd = cfg_.headDim();
    const unsigned group = cfg_.heads / cfg_.kvHeads;
    const std::size_t pos = cache.length();

    std::vector<float> x(embedding_.row(token), embedding_.row(token) + d);
    roundActs(x);

    std::vector<float> normed(d), q(d), k(dkv), v(dkv), attn_out(d),
        proj(d), gate(f), up(f), mlp(d);

    for (unsigned li = 0; li < cfg_.layers; ++li) {
        const Layer &l = layers_[li];

        // Attention sub-block.
        rmsnorm(x.data(), l.inputNorm.data(), normed.data(), d);
        project(l.wq, l.qwq, normed.data(), q.data());
        project(l.wk, l.qwk, normed.data(), k.data());
        project(l.wv, l.qwv, normed.data(), v.data());

        for (unsigned h = 0; h < cfg_.heads; ++h)
            applyRope(q.data() + h * hd, hd, pos);
        for (unsigned h = 0; h < cfg_.kvHeads; ++h)
            applyRope(k.data() + h * hd, hd, pos);

        cache.append(li, k, v);
        const std::size_t ctx = cache.length();

        std::fill(attn_out.begin(), attn_out.end(), 0.0f);
        const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
        // Heads are independent: each owns a disjoint slice of
        // attn_out and a private score buffer, so the per-head math
        // is identical at any thread count.
        par::parallelFor(0, cfg_.heads, 1, [&](std::size_t h0,
                                               std::size_t h1) {
            std::vector<float> scores(ctx);
            for (std::size_t h = h0; h < h1; ++h) {
                const unsigned kv_h = static_cast<unsigned>(h) / group;
                const float *qh = q.data() + h * hd;
                for (std::size_t p = 0; p < ctx; ++p) {
                    const float *kh =
                        cache.key(li, p).data() + kv_h * hd;
                    float s = 0.0f;
                    for (unsigned i = 0; i < hd; ++i)
                        s += qh[i] * kh[i];
                    scores[p] = s * inv_sqrt;
                }
                softmaxInPlace(scores.data(), ctx);
                float *out_h = attn_out.data() + h * hd;
                for (std::size_t p = 0; p < ctx; ++p) {
                    const float *vh =
                        cache.value(li, p).data() + kv_h * hd;
                    const float w = scores[p];
                    for (unsigned i = 0; i < hd; ++i)
                        out_h[i] += w * vh[i];
                }
            }
        });

        project(l.wo, l.qwo, attn_out.data(), proj.data());
        for (unsigned i = 0; i < d; ++i)
            x[i] += proj[i];
        roundActs(x);

        // MLP sub-block (SwiGLU).
        rmsnorm(x.data(), l.postNorm.data(), normed.data(), d);
        project(l.wGate, l.qwGate, normed.data(), gate.data());
        project(l.wUp, l.qwUp, normed.data(), up.data());
        siluInPlace(gate.data(), f);
        for (unsigned i = 0; i < f; ++i)
            gate[i] *= up[i];
        project(l.wDown, l.qwDown, gate.data(), mlp.data());
        for (unsigned i = 0; i < d; ++i)
            x[i] += mlp[i];
        roundActs(x);
    }

    rmsnorm(x.data(), finalNorm_.data(), normed.data(), d);
    std::vector<float> logits(cfg_.vocab);
    if (mode_ == hw::Dtype::Int8)
        matvecQuantized(qLmHead_, normed.data(), logits.data());
    else
        matvec(lmHead_, normed.data(), logits.data());
    return logits;
}


std::vector<std::vector<float>>
TinyLlama::forwardBatch(const std::vector<TokenId> &tokens,
                        std::vector<KvCache *> &caches) const
{
    const std::size_t bsz = tokens.size();
    if (bsz == 0 || caches.size() != bsz)
        cllm_fatal("forwardBatch: tokens/caches size mismatch");
    for (TokenId t : tokens) {
        if (t >= cfg_.vocab)
            cllm_fatal("token ", t, " outside vocab ", cfg_.vocab);
    }

    const unsigned d = cfg_.hidden;
    const unsigned dkv = cfg_.kvDim();
    const unsigned f = cfg_.ffn;
    const unsigned hd = cfg_.headDim();
    const unsigned group = cfg_.heads / cfg_.kvHeads;

    // Residual stream, one row per sequence.
    Tensor x(bsz, d);
    for (std::size_t b = 0; b < bsz; ++b) {
        const float *row = embedding_.row(tokens[b]);
        for (unsigned i = 0; i < d; ++i)
            x.at(b, i) = mode_ == hw::Dtype::Bf16 ? toBf16(row[i])
                                                  : row[i];
    }

    // Snapshot positions before any layer appends to the caches.
    std::vector<std::size_t> pos(bsz);
    for (std::size_t b = 0; b < bsz; ++b)
        pos[b] = caches[b]->length();

    Tensor normed(bsz, d), q(bsz, d), k(bsz, dkv), v(bsz, dkv);
    Tensor attn_out(bsz, d), proj(bsz, d);
    Tensor gate(bsz, f), up(bsz, f), mlp(bsz, d);

    auto project_batch = [&](const Tensor &w, const QuantizedTensor &qw,
                             const Tensor &in, Tensor &out) {
        if (mode_ == hw::Dtype::Int8) {
            for (std::size_t b = 0; b < bsz; ++b)
                matvecQuantized(qw, in.row(b), out.row(b));
        } else {
            gemmTransB(in, w, out);
        }
    };

    for (unsigned li = 0; li < cfg_.layers; ++li) {
        const Layer &l = layers_[li];

        for (std::size_t b = 0; b < bsz; ++b)
            rmsnorm(x.row(b), l.inputNorm.data(), normed.row(b), d);
        project_batch(l.wq, l.qwq, normed, q);
        project_batch(l.wk, l.qwk, normed, k);
        project_batch(l.wv, l.qwv, normed, v);

        for (std::size_t b = 0; b < bsz; ++b) {
            for (unsigned h = 0; h < cfg_.heads; ++h)
                applyRope(q.row(b) + h * hd, hd, pos[b]);
            for (unsigned h = 0; h < cfg_.kvHeads; ++h)
                applyRope(k.row(b) + h * hd, hd, pos[b]);
            caches[b]->append(
                li, std::vector<float>(k.row(b), k.row(b) + dkv),
                std::vector<float>(v.row(b), v.row(b) + dkv));
        }

        attn_out.fill(0.0f);
        const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
        // Sequences are independent (disjoint caches and attn_out
        // rows), so the batch axis is the parallel unit; per-sequence
        // head order stays serial and bit-identical.
        par::parallelFor(0, bsz, 1, [&](std::size_t b0,
                                        std::size_t b1) {
            for (std::size_t b = b0; b < b1; ++b) {
                const std::size_t ctx = caches[b]->length();
                std::vector<float> scores(ctx);
                for (unsigned h = 0; h < cfg_.heads; ++h) {
                    const unsigned kv_h = h / group;
                    const float *qh = q.row(b) + h * hd;
                    for (std::size_t p = 0; p < ctx; ++p) {
                        const float *kh =
                            caches[b]->key(li, p).data() + kv_h * hd;
                        float s = 0.0f;
                        for (unsigned i = 0; i < hd; ++i)
                            s += qh[i] * kh[i];
                        scores[p] = s * inv_sqrt;
                    }
                    softmaxInPlace(scores.data(), ctx);
                    float *out_h = attn_out.row(b) + h * hd;
                    for (std::size_t p = 0; p < ctx; ++p) {
                        const float *vh =
                            caches[b]->value(li, p).data() + kv_h * hd;
                        const float w = scores[p];
                        for (unsigned i = 0; i < hd; ++i)
                            out_h[i] += w * vh[i];
                    }
                }
            }
        });

        project_batch(l.wo, l.qwo, attn_out, proj);
        for (std::size_t b = 0; b < bsz; ++b) {
            float *xr = x.row(b);
            const float *pr = proj.row(b);
            for (unsigned i = 0; i < d; ++i) {
                xr[i] += pr[i];
                if (mode_ == hw::Dtype::Bf16)
                    xr[i] = toBf16(xr[i]);
            }
        }

        for (std::size_t b = 0; b < bsz; ++b)
            rmsnorm(x.row(b), l.postNorm.data(), normed.row(b), d);
        project_batch(l.wGate, l.qwGate, normed, gate);
        project_batch(l.wUp, l.qwUp, normed, up);
        for (std::size_t b = 0; b < bsz; ++b) {
            siluInPlace(gate.row(b), f);
            float *gr = gate.row(b);
            const float *ur = up.row(b);
            for (unsigned i = 0; i < f; ++i)
                gr[i] *= ur[i];
        }
        project_batch(l.wDown, l.qwDown, gate, mlp);
        for (std::size_t b = 0; b < bsz; ++b) {
            float *xr = x.row(b);
            const float *mr = mlp.row(b);
            for (unsigned i = 0; i < d; ++i) {
                xr[i] += mr[i];
                if (mode_ == hw::Dtype::Bf16)
                    xr[i] = toBf16(xr[i]);
            }
        }
    }

    std::vector<std::vector<float>> logits(bsz);
    Tensor final_norm(bsz, d), head(bsz, cfg_.vocab);
    for (std::size_t b = 0; b < bsz; ++b)
        rmsnorm(x.row(b), finalNorm_.data(), final_norm.row(b), d);
    project_batch(lmHead_, qLmHead_, final_norm, head);
    for (std::size_t b = 0; b < bsz; ++b)
        logits[b].assign(head.row(b), head.row(b) + cfg_.vocab);
    return logits;
}

std::vector<TokenId>
TinyLlama::generateGreedy(const std::vector<TokenId> &prompt,
                          unsigned steps) const
{
    if (prompt.empty())
        cllm_fatal("generateGreedy: empty prompt");
    KvCache cache = makeCache();
    std::vector<float> logits;
    for (TokenId t : prompt)
        logits = forward(t, cache);

    std::vector<TokenId> out;
    for (unsigned s = 0; s < steps; ++s) {
        const auto best =
            std::max_element(logits.begin(), logits.end());
        const TokenId next = static_cast<TokenId>(
            std::distance(logits.begin(), best));
        out.push_back(next);
        if (next == ByteTokenizer::kEos && cfg_.vocab >= 258)
            break;
        if (s + 1 < steps)
            logits = forward(next, cache);
    }
    return out;
}

std::vector<Hypothesis>
TinyLlama::generateBeam(const std::vector<TokenId> &prompt,
                        unsigned steps, unsigned beams) const
{
    if (prompt.empty())
        cllm_fatal("generateBeam: empty prompt");
    if (beams == 0)
        cllm_fatal("generateBeam: zero beams");

    struct Beam
    {
        KvCache cache;
        std::vector<TokenId> tokens;
        double logProb;
        std::vector<float> logits;
    };

    // Seed with the prompt.
    Beam seed{makeCache(), {}, 0.0, {}};
    for (TokenId t : prompt)
        seed.logits = forward(t, seed.cache);

    std::vector<Beam> frontier;
    frontier.push_back(std::move(seed));

    for (unsigned s = 0; s < steps; ++s) {
        struct Cand
        {
            std::size_t beam;
            TokenId token;
            double logProb;
        };
        std::vector<Cand> cands;
        for (std::size_t b = 0; b < frontier.size(); ++b) {
            // Log-softmax over the logits.
            const auto &lg = frontier[b].logits;
            float max_v = *std::max_element(lg.begin(), lg.end());
            double sum = 0.0;
            for (float v : lg)
                sum += std::exp(v - max_v);
            const double log_z = max_v + std::log(sum);
            // Keep each beam's top `beams` continuations.
            std::vector<std::size_t> idx(lg.size());
            for (std::size_t i = 0; i < idx.size(); ++i)
                idx[i] = i;
            const std::size_t keep =
                std::min<std::size_t>(beams, idx.size());
            std::partial_sort(idx.begin(), idx.begin() + keep, idx.end(),
                              [&](std::size_t a, std::size_t c) {
                                  return lg[a] > lg[c];
                              });
            for (std::size_t i = 0; i < keep; ++i) {
                cands.push_back({b, static_cast<TokenId>(idx[i]),
                                 frontier[b].logProb + lg[idx[i]] -
                                     log_z});
            }
        }
        const std::size_t keep = std::min<std::size_t>(beams,
                                                       cands.size());
        std::partial_sort(cands.begin(), cands.begin() + keep,
                          cands.end(), [](const Cand &a, const Cand &b) {
                              return a.logProb > b.logProb;
                          });
        cands.resize(keep);

        std::vector<Beam> next;
        next.reserve(keep);
        for (const Cand &c : cands) {
            Beam nb = frontier[c.beam]; // deep copy incl. cache
            nb.tokens.push_back(c.token);
            nb.logProb = c.logProb;
            if (s + 1 < steps)
                nb.logits = forward(c.token, nb.cache);
            next.push_back(std::move(nb));
        }
        frontier = std::move(next);
    }

    std::vector<Hypothesis> out;
    out.reserve(frontier.size());
    for (auto &b : frontier)
        out.push_back({std::move(b.tokens), b.logProb});
    std::sort(out.begin(), out.end(),
              [](const Hypothesis &a, const Hypothesis &b) {
                  return a.logProb > b.logProb;
              });
    return out;
}

} // namespace cllm::llm
