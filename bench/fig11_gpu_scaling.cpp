/**
 * @file
 * Figure 11: H100 GPU throughput as a function of batch size and
 * input length, raw versus confidential. The paper: cGPU overheads
 * oscillate between 7.5% and 4.4% and shrink as batch and input grow
 * (fixed launch/bounce-buffer costs amortize; HBM is not encrypted).
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 11", "H100 batch & input scaling, raw vs cGPU",
           "overheads oscillate between 7.5% and 4.4%, shrinking with "
           "batch and input size");

    core::Experiment exp;
    const hw::GpuSpec gpu = hw::h100Nvl();
    const llm::ModelConfig model = llm::llama2_7b();

    std::cout << "--- batch sweep (input 128) ---\n";
    Table tb({"batch", "GPU [tok/s]", "cGPU [tok/s]", "overhead"});
    for (unsigned batch : {1u, 4u, 16u, 64u, 128u}) {
        llm::GpuRunParams p;
        p.batch = batch;
        p.inLen = 128;
        p.outLen = 128;
        const auto raw = exp.runGpu(gpu, model, p);
        p.confidential = true;
        const auto cc = exp.runGpu(gpu, model, p);
        tb.addRow({std::to_string(batch), fmt(raw.timing.decodeTput),
                   fmt(cc.timing.decodeTput),
                   fmtPct(core::Experiment::compare(cc, raw)
                              .tputOverheadPct)});
    }
    tb.print(std::cout);

    std::cout << "\n--- input sweep (batch 4) ---\n";
    Table ti({"input", "GPU [tok/s]", "cGPU [tok/s]", "overhead"});
    for (unsigned in_len : {128u, 512u, 2048u, 8192u}) {
        llm::GpuRunParams p;
        p.batch = 4;
        p.inLen = in_len;
        p.outLen = 128;
        const auto raw = exp.runGpu(gpu, model, p);
        p.confidential = true;
        const auto cc = exp.runGpu(gpu, model, p);
        ti.addRow({std::to_string(in_len), fmt(raw.timing.decodeTput),
                   fmt(cc.timing.decodeTput),
                   fmtPct(core::Experiment::compare(cc, raw)
                              .tputOverheadPct)});
    }
    ti.print(std::cout);
    return 0;
}
