# Empty dependencies file for cllm_mem.
# This may be replaced when dependencies are built.
