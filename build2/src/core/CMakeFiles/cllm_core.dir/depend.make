# Empty dependencies file for cllm_core.
# This may be replaced when dependencies are built.
