file(REMOVE_RECURSE
  "CMakeFiles/ablate_tdx.dir/ablate_tdx.cpp.o"
  "CMakeFiles/ablate_tdx.dir/ablate_tdx.cpp.o.d"
  "ablate_tdx"
  "ablate_tdx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tdx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
