#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/logging.hh"

namespace cllm {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        cllm_panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        cllm_panic("Table row has ", cells.size(), " cells, expected ",
                   headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPct(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
    return buf;
}

std::string
fmtInt(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace cllm
