/**
 * @file
 * Crypto primitive tests against published vectors: SHA-256 (FIPS
 * 180-4 / NIST CAVP), AES-128 (FIPS 197 Appendix C), AES-CTR
 * (NIST SP 800-38A F.5.1), and HMAC-SHA256 (RFC 4231).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "par/pool.hh"

using namespace cllm;
using namespace cllm::crypto;

namespace {

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(
            std::stoul(hex.substr(i, 2), nullptr, 16)));
    }
    return out;
}

} // namespace

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(toHex(sha256(std::string())),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(toHex(sha256(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(toHex(sha256(std::string(
                  "abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(toHex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg = "The quick brown fox jumps over the lazy dog";
    Sha256 h;
    for (char c : msg)
        h.update(&c, 1);
    EXPECT_EQ(toHex(h.finish()), toHex(sha256(msg)));
}

TEST(Sha256, ExactBlockBoundary)
{
    // 64-byte message exercises the padding-into-new-block path.
    const std::string msg(64, 'x');
    const std::string msg63(63, 'x');
    const std::string msg65(65, 'x');
    EXPECT_NE(toHex(sha256(msg)), toHex(sha256(msg63)));
    EXPECT_NE(toHex(sha256(msg)), toHex(sha256(msg65)));
    // Determinism.
    EXPECT_EQ(toHex(sha256(msg)), toHex(sha256(msg)));
}

TEST(Sha256Death, FinishTwicePanics)
{
    Sha256 h;
    h.update(std::string("x"));
    h.finish();
    EXPECT_DEATH(h.finish(), "finish");
}

TEST(Aes128, Fips197Vector)
{
    // FIPS 197 Appendix C.1.
    AesKey key;
    const auto kbytes = fromHex("000102030405060708090a0b0c0d0e0f");
    std::memcpy(key.data(), kbytes.data(), 16);
    Aes128 aes(key);

    AesBlock block;
    const auto pbytes = fromHex("00112233445566778899aabbccddeeff");
    std::memcpy(block.data(), pbytes.data(), 16);
    aes.encryptBlock(block);

    const auto expect = fromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(0, std::memcmp(block.data(), expect.data(), 16));

    aes.decryptBlock(block);
    EXPECT_EQ(0, std::memcmp(block.data(), pbytes.data(), 16));
}

TEST(Aes128, EncryptDecryptRoundtripMany)
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 1);
    Aes128 aes(key);
    for (int t = 0; t < 50; ++t) {
        AesBlock b{}, orig{};
        for (int i = 0; i < 16; ++i)
            b[i] = orig[i] = static_cast<std::uint8_t>(t * 16 + i);
        aes.encryptBlock(b);
        EXPECT_NE(0, std::memcmp(b.data(), orig.data(), 16));
        aes.decryptBlock(b);
        EXPECT_EQ(0, std::memcmp(b.data(), orig.data(), 16));
    }
}

TEST(AesCtr, Sp80038aVector)
{
    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
    // Counter block f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff splits into our
    // (nonce, counter) halves.
    AesKey key;
    const auto kb = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    std::memcpy(key.data(), kb.data(), 16);
    AesCtr ctr(key);

    auto plain = fromHex("6bc1bee22e409f96e93d7e117393172a");
    ctr.transform(0xf0f1f2f3f4f5f6f7ULL, 0xf8f9fafbfcfdfeffULL,
                  plain.data(), plain.size());
    EXPECT_EQ(plain, fromHex("874d6191b620e3261bef6864990db6ce"));
}

TEST(AesCtr, TransformIsInvolution)
{
    AesKey key{};
    key[0] = 1;
    AesCtr ctr(key);
    std::vector<std::uint8_t> data(1000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    auto orig = data;
    ctr.transform(42, 0, data);
    EXPECT_NE(data, orig);
    ctr.transform(42, 0, data);
    EXPECT_EQ(data, orig);
}

TEST(AesCtr, DistinctNoncesDistinctStreams)
{
    AesKey key{};
    AesCtr ctr(key);
    std::vector<std::uint8_t> a(64, 0), b(64, 0);
    ctr.transform(1, 0, a);
    ctr.transform(2, 0, b);
    EXPECT_NE(a, b);
}

TEST(AesCtr, CounterOffsetsKeystream)
{
    AesKey key{};
    AesCtr ctr(key);
    // Encrypting the second 16-byte block alone must equal the tail
    // of a 32-byte encryption starting at counter 0.
    std::vector<std::uint8_t> whole(32, 0), tail(16, 0);
    ctr.transform(9, 0, whole);
    ctr.transform(9, 1, tail);
    EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                           whole.begin() + 16));
}

TEST(AesCtr, NonBlockMultipleLength)
{
    AesKey key{};
    AesCtr ctr(key);
    std::vector<std::uint8_t> data(21, 0xab);
    auto orig = data;
    ctr.transform(5, 7, data);
    ctr.transform(5, 7, data);
    EXPECT_EQ(data, orig);
}

TEST(HmacSha256, Rfc4231Case1)
{
    const std::vector<std::uint8_t> key(20, 0x0b);
    const std::string data = "Hi There";
    EXPECT_EQ(toHex(hmacSha256(key, data.data(), data.size())),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    const std::string key = "Jefe";
    const std::string data = "what do ya want for nothing?";
    EXPECT_EQ(toHex(hmacSha256(key, data)),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3)
{
    const std::vector<std::uint8_t> key(20, 0xaa);
    const std::vector<std::uint8_t> data(50, 0xdd);
    EXPECT_EQ(toHex(hmacSha256(key, data.data(), data.size())),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst)
{
    // RFC 4231 case 6: 131-byte key.
    const std::vector<std::uint8_t> key(131, 0xaa);
    const std::string data = "Test Using Larger Than Block-Size Key - "
                             "Hash Key First";
    EXPECT_EQ(toHex(hmacSha256(key, data.data(), data.size())),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(DeriveKey, DistinctLabelsDistinctKeys)
{
    const Digest256 master = sha256(std::string("master"));
    const Digest256 a = deriveKey(master, "mee-data");
    const Digest256 b = deriveKey(master, "mee-mac");
    EXPECT_FALSE(digestEqual(a, b));
    EXPECT_TRUE(digestEqual(a, deriveKey(master, "mee-data")));
}

TEST(DigestEqual, DetectsSingleBitFlip)
{
    Digest256 a = sha256(std::string("x"));
    Digest256 b = a;
    EXPECT_TRUE(digestEqual(a, b));
    b[31] ^= 0x01;
    EXPECT_FALSE(digestEqual(a, b));
}

TEST(ToAesKey, TakesFirstSixteenBytes)
{
    const Digest256 d = sha256(std::string("k"));
    const AesKey k = toAesKey(d);
    EXPECT_EQ(0, std::memcmp(k.data(), d.data(), 16));
}

TEST(AesCtr, ParallelTransformBitIdenticalAcrossThreadCounts)
{
    AesKey key{};
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i + 1);
    const AesCtr ctr(key);

    // Cover multiple parallel chunks (256 blocks each) plus a ragged
    // tail that is not a multiple of the 16-byte block size.
    std::vector<std::uint8_t> plain(256 * 16 * 5 + 7);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i * 31 + 3);

    par::setThreadCount(1);
    std::vector<std::uint8_t> serial = plain;
    ctr.transform(0xdeadbeef, 42, serial);

    for (unsigned threads : {2u, 4u, 8u}) {
        par::setThreadCount(threads);
        std::vector<std::uint8_t> parallel = plain;
        ctr.transform(0xdeadbeef, 42, parallel);
        EXPECT_EQ(serial, parallel) << threads << " threads";
        // Round-trip: decrypting restores the plaintext.
        ctr.transform(0xdeadbeef, 42, parallel);
        EXPECT_EQ(plain, parallel);
    }
    par::setThreadCount(0);
}
