/**
 * @file
 * Per-operator FLOP/byte profiles of a decoder block, powering both
 * the roofline timing and the paper's Figure 7 per-block breakdown.
 * Counts follow the standard dense-transformer accounting (2 FLOPs
 * per multiply-accumulate); bytes separate weight traffic (shared
 * across a batch) from per-sequence activation and KV-cache traffic.
 */

#ifndef CLLM_LLM_OPS_HH
#define CLLM_LLM_OPS_HH

#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "llm/model_config.hh"

namespace cllm::llm {

/** Operator kinds inside one decoder block (plus model-level ops). */
enum class OpKind
{
    InputNorm,
    QkvProj,
    Rope,
    Attention,
    OutProj,
    PostNorm,
    Router,     //!< MoE gating projection
    GateUpProj, //!< the paper's "linear SiLU multiplication" input
    SiluMul,
    DownProj,
    Embed,
    FinalNorm,
    LmHead,
};

/** Printable operator name. */
const char *opName(OpKind k);

/** FLOPs and traffic of one operator for ONE new token. */
struct OpProfile
{
    OpKind kind{};
    double flopsPerSeq = 0.0;   //!< per sequence in the batch
    double weightBytes = 0.0;   //!< read once per step, batch-shared
    double actBytesPerSeq = 0.0;//!< activations read+written
    double kvBytesPerSeq = 0.0; //!< KV cache read+appended
};

/**
 * Operator profiles for ONE decoder block during decode at context
 * position `pos` (0-based length of the attended prefix). For MoE
 * models, `nseq` (concurrent sequences) determines how many distinct
 * experts the step streams from memory.
 */
std::vector<OpProfile> blockDecodeOps(const ModelConfig &m,
                                      hw::Dtype dtype, double pos,
                                      double nseq = 1.0);

/** Model-level ops outside the blocks (embed, final norm, LM head). */
std::vector<OpProfile> topLevelDecodeOps(const ModelConfig &m,
                                         hw::Dtype dtype);

/** Aggregate totals for one decode step of the whole model. */
struct StepTotals
{
    double flopsPerSeq = 0.0;
    double weightBytes = 0.0;
    double actBytesPerSeq = 0.0;
    double kvBytesPerSeq = 0.0;
    unsigned opCount = 0;       //!< kernel launches per step
};

/** Sum block ops over all layers plus top-level ops. */
StepTotals stepTotals(const ModelConfig &m, hw::Dtype dtype, double pos,
                      double nseq = 1.0);

} // namespace cllm::llm

#endif // CLLM_LLM_OPS_HH
