/**
 * @file
 * Figure 9: next-token latency (two sockets) and throughput (one
 * socket) versus batch size, 128 in/out tokens, on EMR2. Overheads
 * are relative to bare metal. The paper: int8 saturates throughput
 * around batch 64, bf16 around 512, and TDX overheads fall once the
 * workload turns compute-bound (Insights 8-9).
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 9", "batch-size scaling, Llama2-7B (EMR2)",
           "int8 saturates ~batch 64 (ovh 9-11% -> <=6%); bf16 "
           "~batch 512 (7-10% -> 4-7%), minimum ~2% near batch 64");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();

    const std::vector<unsigned> batches = {1u,   4u,   16u, 64u,
                                           128u, 256u, 512u};
    for (hw::Dtype dtype : {hw::Dtype::Bf16, hw::Dtype::Int8}) {
        std::cout << "--- dtype " << hw::dtypeName(dtype) << " ---\n";
        Table t({"batch", "tput 1-socket [tok/s]", "TDX tput ovh",
                 "latency 2-socket [ms]", "TDX lat ovh", "bound"});
        // Each batch point is an independent model evaluation; fan
        // the grid out across cores and print in order afterwards.
        const auto rows = runGrid<std::vector<std::string>>(
            batches.size(), [&](std::size_t gi) {
                const unsigned batch = batches[gi];
                llm::RunParams tp;
                tp.batch = batch;
                tp.inLen = 128;
                tp.outLen = 128;
                tp.dtype = dtype;
                tp.sockets = 1;
                tp.cores = cpu.coresPerSocket;
                llm::RunParams lp = tp;
                lp.sockets = 2;
                lp.cores = cpu.totalCores();

                const auto bare_t =
                    exp.runCpu(cpu, core::Backend::Bare, model, tp);
                const auto tdx_t =
                    exp.runCpu(cpu, core::Backend::Tdx, model, tp);
                const auto bare_l =
                    exp.runCpu(cpu, core::Backend::Bare, model, lp);
                const auto tdx_l =
                    exp.runCpu(cpu, core::Backend::Tdx, model, lp);

                return std::vector<std::string>{
                    std::to_string(batch),
                    fmt(bare_t.timing.decodeTput),
                    fmtPct(core::Experiment::compare(tdx_t, bare_t)
                               .tputOverheadPct),
                    fmt(1e3 * tdx_l.timing.meanTokenLatency),
                    fmtPct(core::Experiment::compare(tdx_l, bare_l)
                               .latencyOverheadPct),
                    bare_t.timing.memoryBound ? "memory" : "compute"};
            });
        for (const auto &row : rows)
            t.addRow(row);
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
