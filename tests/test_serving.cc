/**
 * @file
 * Tests for the confidential-serving simulator: workload generation,
 * batching policies, SLO accounting, TEE-induced capacity loss, and
 * the per-request timeline invariants that must hold for every
 * (batching policy x deployment backend) combination.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "obs/trace.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

llm::RunParams
deployParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.inLen = 1024;  // sizing context for the working set
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return p;
}

std::unique_ptr<StepModel>
cpuModel(std::unique_ptr<tee::TeeBackend> be)
{
    const hw::CpuSpec cpu = hw::emr2();
    return makeCpuStepModel(cpu, shared(std::move(be)),
                            llm::llama2_7b(), deployParams(cpu));
}

WorkloadConfig
lightLoad()
{
    WorkloadConfig w;
    w.arrivalRate = 0.5;
    w.numRequests = 60;
    w.meanInLen = 256;
    w.meanOutLen = 64;
    w.seed = 11;
    return w;
}

} // namespace

TEST(Workload, DeterministicAndOrdered)
{
    const auto a = generateWorkload(lightLoad());
    const auto b = generateWorkload(lightLoad());
    ASSERT_EQ(a.size(), 60u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].inLen, b[i].inLen);
        if (i) {
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
        }
    }
}

// Pins the exact doubles the seed-99 Poisson generator produced
// before the arrival-process seam existed. Any change to the draw
// order (an extra uniform, a reordered rejection loop) shifts every
// seeded trace in the repo and breaks this first.
TEST(Workload, PoissonDrawsPinnedAcrossSeam)
{
    WorkloadConfig w;
    w.arrivalRate = 0.45;
    w.numRequests = 250;
    w.meanInLen = 512;
    w.meanOutLen = 128;
    w.seed = 99;
    const auto t = generateWorkload(w);
    ASSERT_EQ(t.size(), 250u);
    EXPECT_DOUBLE_EQ(t[0].arrival, 2.3411828131693633);
    EXPECT_DOUBLE_EQ(t[1].arrival, 2.6876707034671834);
    EXPECT_DOUBLE_EQ(t[2].arrival, 5.533455224026782);
    EXPECT_DOUBLE_EQ(t[3].arrival, 6.7281300946823768);
    EXPECT_EQ(t[0].inLen, 375u);
    EXPECT_EQ(t[0].outLen, 172u);
    EXPECT_EQ(t[1].inLen, 552u);
    EXPECT_EQ(t[2].outLen, 58u);
    EXPECT_DOUBLE_EQ(t.back().arrival, 578.42735198247067);
}

TEST(Workload, DeterministicSpacingIsExact)
{
    WorkloadConfig w = lightLoad();
    w.process = ArrivalProcess::Deterministic;
    w.arrivalRate = 1.25;
    const auto t = generateWorkload(w);
    double expected = 0.0;
    for (const auto &r : t) {
        expected += 1.0 / w.arrivalRate;
        EXPECT_DOUBLE_EQ(r.arrival, expected);
    }
    // Lengths still come off the seeded RNG stream.
    const auto again = generateWorkload(w);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i].inLen, again[i].inLen);
        EXPECT_EQ(t[i].outLen, again[i].outLen);
    }
}

TEST(Workload, BurstyIsDeterministicAndDistinctFromPoisson)
{
    WorkloadConfig w = lightLoad();
    w.process = ArrivalProcess::BurstyOnOff;
    w.numRequests = 400;
    const auto a = generateWorkload(w);
    const auto b = generateWorkload(w);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        if (i)
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
    WorkloadConfig p = w;
    p.process = ArrivalProcess::Poisson;
    const auto pois = generateWorkload(p);
    EXPECT_NE(a[0].arrival, pois[0].arrival);
    // The on phase runs burstRateFactor times hotter than the mean,
    // so the shortest gaps are far tighter than Poisson's and the
    // off phase stretches the longest ones; compare spreads.
    auto gap_spread = [](const std::vector<Request> &t) {
        double lo = 1e300, hi = 0.0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            const double g = t[i].arrival - t[i - 1].arrival;
            lo = std::min(lo, g);
            hi = std::max(hi, g);
        }
        return hi / std::max(lo, 1e-12);
    };
    EXPECT_GT(gap_spread(a), gap_spread(pois));
}

TEST(Workload, ArrivalProcessNames)
{
    EXPECT_STREQ(arrivalProcessName(ArrivalProcess::Poisson),
                 "poisson");
    EXPECT_STREQ(arrivalProcessName(ArrivalProcess::Deterministic),
                 "deterministic");
    EXPECT_STREQ(arrivalProcessName(ArrivalProcess::BurstyOnOff),
                 "bursty");
}

TEST(Workload, MeanInterArrivalMatchesRate)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 4.0;
    w.numRequests = 4000;
    const auto trace = generateWorkload(w);
    const double span = trace.back().arrival - trace.front().arrival;
    const double mean_gap = span / (trace.size() - 1);
    EXPECT_NEAR(mean_gap, 0.25, 0.03);
}

TEST(Workload, LengthsHaveSensibleScale)
{
    const auto trace = generateWorkload(lightLoad());
    double in_sum = 0.0;
    for (const auto &r : trace) {
        EXPECT_GE(r.inLen, 8u);
        EXPECT_GE(r.outLen, 4u);
        in_sum += r.inLen;
    }
    const double mean_in = in_sum / trace.size();
    EXPECT_GT(mean_in, 150.0);
    EXPECT_LT(mean_in, 450.0);
}

TEST(WorkloadDeath, DegenerateConfigFatal)
{
    WorkloadConfig w;
    w.arrivalRate = 0.0;
    EXPECT_DEATH(generateWorkload(w), "degenerate");
}

TEST(Server, CompletesAllRequests)
{
    Server server(cpuModel(tee::makeTdx()), ServerConfig{});
    const auto m = server.run(generateWorkload(lightLoad()));
    EXPECT_EQ(m.completed, 60u);
    EXPECT_GT(m.makespan, 0.0);
    EXPECT_GT(m.tokensPerSecond, 0.0);
}

TEST(Server, Deterministic)
{
    Server server(cpuModel(tee::makeTdx()), ServerConfig{});
    const auto a = server.run(generateWorkload(lightLoad()));
    const auto b = server.run(generateWorkload(lightLoad()));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttft.mean, b.ttft.mean);
}

TEST(Server, TimelineInvariantsHold)
{
    // For every request: arrival <= firstToken <= finish; occupancy
    // is within batch capacity.
    ServerConfig cfg;
    cfg.maxBatch = 8;
    Server server(cpuModel(tee::makeBareMetal()), cfg);
    auto trace = generateWorkload(lightLoad());
    const auto m = server.run(trace);
    EXPECT_LE(m.meanBatchOccupancy, 8.0);
    EXPECT_GT(m.meanBatchOccupancy, 0.0);
    EXPECT_GE(m.ttft.min, 0.0);
    EXPECT_GE(m.tpot.min, 0.0);
}

TEST(Server, TdxServesFewerTokensPerSecondUnderLoad)
{
    WorkloadConfig heavy = lightLoad();
    heavy.arrivalRate = 50.0; // saturating: makespan is service-bound
    heavy.numRequests = 120;

    Server bare(cpuModel(tee::makeBareMetal()), ServerConfig{});
    Server tdx(cpuModel(tee::makeTdx()), ServerConfig{});
    const auto mb = bare.run(generateWorkload(heavy));
    const auto mt = tdx.run(generateWorkload(heavy));
    EXPECT_GT(mb.tokensPerSecond, mt.tokensPerSecond);
    // The capacity loss should be TEE-sized (a few %), not 2x.
    EXPECT_LT(mb.tokensPerSecond / mt.tokensPerSecond, 1.3);
}

TEST(Server, ContinuousBeatsStaticOnTtft)
{
    // Static batching holds early arrivals hostage to the whole
    // batch; continuous batching admits at step granularity.
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 8.0;
    w.numRequests = 100;

    ServerConfig cont;
    cont.policy = BatchPolicy::Continuous;
    ServerConfig stat;
    stat.policy = BatchPolicy::Static;

    Server s_cont(cpuModel(tee::makeTdx()), cont);
    Server s_stat(cpuModel(tee::makeTdx()), stat);
    const auto mc = s_cont.run(generateWorkload(w));
    const auto ms = s_stat.run(generateWorkload(w));
    EXPECT_LT(mc.tpot.p95, ms.tpot.p95 + 1.0);
    EXPECT_GE(mc.sloAttainment, ms.sloAttainment - 0.05);
}

TEST(Server, OverloadDegradesSloAttainment)
{
    WorkloadConfig light = lightLoad();
    WorkloadConfig heavy = lightLoad();
    heavy.arrivalRate = 100.0;
    heavy.numRequests = 150;

    Server server(cpuModel(tee::makeTdx()), ServerConfig{});
    const auto ml = server.run(generateWorkload(light));
    const auto mh = server.run(generateWorkload(heavy));
    EXPECT_GT(ml.sloAttainment, mh.sloAttainment);
    EXPECT_GT(ml.ttft.p50, 0.0);
    EXPECT_GT(mh.ttft.p95, ml.ttft.p95);
}

TEST(Server, GpuStepModelServesFasterThanCpu)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 50.0;
    w.numRequests = 100;

    Server cpu_server(cpuModel(tee::makeTdx()), ServerConfig{});
    Server gpu_server(makeGpuStepModel(hw::h100Nvl(), true,
                                       llm::llama2_7b(),
                                       hw::Dtype::Bf16),
                      ServerConfig{});
    const auto mc = cpu_server.run(generateWorkload(w));
    const auto mg = gpu_server.run(generateWorkload(w));
    EXPECT_GT(mg.tokensPerSecond, mc.tokensPerSecond * 3.0);
}

TEST(Server, ConfidentialGpuSlowerThanRaw)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 200.0;
    w.numRequests = 150;
    Server raw(makeGpuStepModel(hw::h100Nvl(), false, llm::llama2_7b(),
                                hw::Dtype::Bf16),
               ServerConfig{});
    Server cc(makeGpuStepModel(hw::h100Nvl(), true, llm::llama2_7b(),
                               hw::Dtype::Bf16),
              ServerConfig{});
    const auto mr = raw.run(generateWorkload(w));
    const auto mcc = cc.run(generateWorkload(w));
    EXPECT_GT(mr.tokensPerSecond, mcc.tokensPerSecond);
    // cGPU serving tax stays in the paper's single-digit band.
    EXPECT_LT(mr.tokensPerSecond / mcc.tokensPerSecond, 1.12);
}

TEST(Server, BatchPolicyNames)
{
    EXPECT_STREQ(batchPolicyName(BatchPolicy::Static), "static");
    EXPECT_STREQ(batchPolicyName(BatchPolicy::Continuous),
                 "continuous");
}

TEST(ServerDeath, EmptyTraceFatal)
{
    Server server(cpuModel(tee::makeBareMetal()), ServerConfig{});
    EXPECT_DEATH(server.run({}), "empty trace");
}

TEST(ServerDeath, ZeroBatchFatal)
{
    ServerConfig cfg;
    cfg.maxBatch = 0;
    EXPECT_DEATH(Server(cpuModel(tee::makeBareMetal()), cfg),
                 "batch");
}

TEST(ServerKv, ConstrainedPoolLimitsOccupancy)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 30.0; // everyone arrives quickly
    w.numRequests = 80;

    ServerConfig unbounded;
    ServerConfig tight;
    tight.kvBlocks = 64; // 64 blocks x 16 tokens = 1024 tokens of KV
    tight.kvBlockTokens = 16;

    Server su(cpuModel(tee::makeTdx()), unbounded);
    Server st(cpuModel(tee::makeTdx()), tight);
    const auto mu = su.run(generateWorkload(w));
    const auto mt = st.run(generateWorkload(w));

    EXPECT_LT(mt.meanBatchOccupancy, mu.meanBatchOccupancy);
    EXPECT_GT(mt.kvUtilizationPeak, 0.5);
    EXPECT_LE(mt.kvUtilizationPeak, 1.0);
    EXPECT_EQ(mu.kvUtilizationPeak, 0.0); // unbounded: not tracked
}

TEST(ServerKv, AllRequestsStillCompleteWhenConstrained)
{
    WorkloadConfig w = lightLoad();
    w.numRequests = 40;
    ServerConfig tight;
    tight.kvBlocks = 128;
    Server st(cpuModel(tee::makeTdx()), tight);
    const auto m = st.run(generateWorkload(w));
    EXPECT_EQ(m.completed, 40u);
}

TEST(ServerKv, OversizedRequestIsDroppedNotDeadlocked)
{
    ServerConfig tiny;
    tiny.kvBlocks = 4;
    tiny.kvBlockTokens = 16; // pool holds 64 tokens
    Server s(cpuModel(tee::makeTdx()), tiny);

    std::vector<Request> trace;
    Request big;
    big.id = 0;
    big.arrival = 0.0;
    big.inLen = 512; // cannot ever fit
    big.outLen = 64;
    trace.push_back(big);
    Request small;
    small.id = 1;
    small.arrival = 0.1;
    small.inLen = 16;
    small.outLen = 8;
    trace.push_back(small);

    const auto m = s.run(trace);
    EXPECT_EQ(m.completed, 1u); // the small one; no deadlock
}

// ---- Invariants across every (policy x backend) combination -----------

namespace {

/** Deployment backends the serving loop must behave under. */
enum class DeployKind
{
    CpuBare,
    CpuTdx,
    GpuRaw,
    GpuConfidential,
};

const char *
deployName(DeployKind k)
{
    switch (k) {
      case DeployKind::CpuBare:
        return "CpuBare";
      case DeployKind::CpuTdx:
        return "CpuTdx";
      case DeployKind::GpuRaw:
        return "GpuRaw";
      case DeployKind::GpuConfidential:
        return "GpuCc";
    }
    return "?";
}

std::unique_ptr<StepModel>
makeDeploy(DeployKind k)
{
    switch (k) {
      case DeployKind::CpuBare:
        return cpuModel(tee::makeBareMetal());
      case DeployKind::CpuTdx:
        return cpuModel(tee::makeTdx());
      case DeployKind::GpuRaw:
        return makeGpuStepModel(hw::h100Nvl(), false, llm::llama2_7b(),
                                hw::Dtype::Bf16);
      case DeployKind::GpuConfidential:
        return makeGpuStepModel(hw::h100Nvl(), true, llm::llama2_7b(),
                                hw::Dtype::Bf16);
    }
    return nullptr;
}

} // namespace

class ServingInvariants
    : public ::testing::TestWithParam<
          std::tuple<BatchPolicy, DeployKind>>
{
};

TEST_P(ServingInvariants, TimelineAndAccountingHold)
{
    const auto [policy, deploy] = GetParam();
    ServerConfig cfg;
    cfg.policy = policy;
    cfg.maxBatch = 16;
    Server server(makeDeploy(deploy), cfg);

    std::vector<Request> annotated;
    const auto m =
        server.run(generateWorkload(lightLoad()), annotated);

    // Per-request timeline: arrival <= firstToken <= finish.
    ASSERT_EQ(annotated.size(), 60u);
    std::uint64_t tokens = 0;
    for (const Request &r : annotated) {
        ASSERT_GE(r.finish, 0.0) << "request " << r.id << " dropped "
                                 << "in a fault-free run";
        EXPECT_GE(r.firstToken, r.arrival) << "request " << r.id;
        EXPECT_GE(r.finish, r.firstToken) << "request " << r.id;
        EXPECT_LE(r.finish, m.makespan) << "request " << r.id;
        tokens += r.outLen;
    }

    // Aggregate accounting.
    EXPECT_EQ(m.submitted, 60u);
    EXPECT_LE(m.completed, m.submitted);
    EXPECT_EQ(m.completed, 60u);
    EXPECT_EQ(m.outputTokens, tokens);
    EXPECT_GE(m.sloAttainment, 0.0);
    EXPECT_LE(m.sloAttainment, 1.0);
    EXPECT_GE(m.availability, 0.0);
    EXPECT_LE(m.availability, 1.0);
    EXPECT_GE(m.ttft.min, 0.0);
    EXPECT_LE(m.ttft.p50, m.ttft.p95);
    EXPECT_GT(m.meanBatchOccupancy, 0.0);
    EXPECT_LE(m.meanBatchOccupancy, 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByBackend, ServingInvariants,
    ::testing::Combine(::testing::Values(BatchPolicy::Static,
                                         BatchPolicy::Continuous),
                       ::testing::Values(DeployKind::CpuBare,
                                         DeployKind::CpuTdx,
                                         DeployKind::GpuRaw,
                                         DeployKind::GpuConfidential)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ==
                                   BatchPolicy::Static
                               ? "Static"
                               : "Continuous") +
               deployName(std::get<1>(info.param));
    });

TEST(ServingInvariants, StaticAndContinuousAgreeOnTotalTokens)
{
    // Batching policy changes latency, never the work: with unbounded
    // KV both policies complete every request, so the total output
    // token count must agree exactly.
    for (DeployKind deploy :
         {DeployKind::CpuTdx, DeployKind::GpuConfidential}) {
        ServerConfig stat;
        stat.policy = BatchPolicy::Static;
        ServerConfig cont;
        cont.policy = BatchPolicy::Continuous;
        const auto ms = Server(makeDeploy(deploy), stat)
                            .run(generateWorkload(lightLoad()));
        const auto mc = Server(makeDeploy(deploy), cont)
                            .run(generateWorkload(lightLoad()));
        EXPECT_EQ(ms.outputTokens, mc.outputTokens)
            << deployName(deploy);
        EXPECT_EQ(ms.completed, mc.completed) << deployName(deploy);
    }
}

// ---- Resilience policy without faults ---------------------------------

TEST(ServerResilience, TimeoutDropsLateRequestsUnderOverload)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 50.0; // a burst far beyond capacity
    w.numRequests = 120;

    ServerConfig cfg;
    cfg.resilience.requestTimeout = 30.0;
    Server server(cpuModel(tee::makeTdx()), cfg);
    std::vector<Request> annotated;
    const auto m = server.run(generateWorkload(w), annotated);

    EXPECT_GT(m.timedOut, 0u);
    EXPECT_LT(m.completed, m.submitted);
    EXPECT_EQ(m.completed + m.timedOut, m.submitted);
    EXPECT_LT(m.availability, 1.0);
    // Every completed request met its deadline at admission time.
    for (const Request &r : annotated) {
        if (r.finish >= 0.0)
            EXPECT_LE(r.firstToken - r.arrival, 30.0 + 60.0)
                << "request " << r.id;
    }
}

TEST(ServerResilience, SheddingKicksInUnderKvPressure)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 30.0;
    w.numRequests = 80;

    ServerConfig cfg;
    cfg.kvBlocks = 64; // 1024 tokens of KV: heavily contended
    cfg.kvBlockTokens = 16;
    cfg.resilience.shedOnKvPressure = true;
    cfg.resilience.shedThreshold = 0.5;
    Server server(cpuModel(tee::makeTdx()), cfg);
    const auto m = server.run(generateWorkload(w));

    EXPECT_GT(m.shed, 0u);
    EXPECT_EQ(m.completed + m.shed, m.submitted);
    EXPECT_DOUBLE_EQ(
        m.availability,
        static_cast<double>(m.completed) /
            static_cast<double>(m.submitted));
}

TEST(ServerResilienceDeath, BadPolicyFatal)
{
    ServerConfig cfg;
    cfg.resilience.backoffMultiplier = 0.5;
    EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), cfg), "multiplier");

    ServerConfig shed;
    shed.resilience.shedOnKvPressure = true;
    shed.resilience.shedThreshold = 1.5;
    EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), shed), "threshold");
}

// Tracing must be purely observational: attaching a tracer (or not)
// cannot perturb a single simulated double. Byte-compares the full
// metrics JSON of traced vs untraced runs over the same trace.
TEST(ServerTracing, AttachedTracerDoesNotPerturbMetrics)
{
    WorkloadConfig w = lightLoad();
    w.arrivalRate = 4.0; // enough pressure for retries/shed paths
    const auto trace = generateWorkload(w);

    auto runJson = [&](obs::Tracer *tr) {
        ServerConfig cfg;
        cfg.kvBlocks = 256;
        cfg.kvBlockTokens = 16;
        cfg.resilience.shedOnKvPressure = true;
        cfg.resilience.shedThreshold = 0.9;
        cfg.tracer = tr;
        Server server(cpuModel(tee::makeTdx()), cfg);
        const ServeMetrics m = server.run(trace);
        std::ostringstream os;
        JsonWriter json(os);
        writeMetrics(json, m);
        return os.str();
    };

    obs::Tracer tracer(obs::TraceMode::Sim);
    const std::string untraced = runJson(nullptr);
    const std::string traced = runJson(&tracer);
    EXPECT_EQ(untraced, traced);
    EXPECT_FALSE(tracer.simEvents().empty());

    // An attached tracer whose mode is Off records nothing and also
    // leaves the output untouched.
    obs::Tracer off(obs::TraceMode::Off);
    EXPECT_EQ(runJson(&off), untraced);
    EXPECT_TRUE(off.simEvents().empty());
}
