/**
 * @file
 * Config-driven experiment runner: describe a reproduction as an INI
 * file (see the configs directory) instead of C++. Each `[experiment:...]`
 * section is one run; results print as a table or, with --json, as a
 * machine-readable document for plotting.
 *
 * Usage: experiment_from_config <config.ini> [--json]
 */

#include <fstream>
#include <iostream>

#include "core/experiment.hh"
#include "util/config.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

llm::ModelConfig
modelByName(const std::string &name)
{
    if (name == "7b")
        return llm::llama2_7b();
    if (name == "13b")
        return llm::llama2_13b();
    if (name == "70b")
        return llm::llama2_70b();
    if (name == "llama3")
        return llm::llama3_8b();
    if (name == "mixtral")
        return llm::mixtral_8x7b();
    cllm_fatal("unknown model '", name, "'");
}

core::Backend
backendByName(const std::string &name)
{
    if (name == "bare")
        return core::Backend::Bare;
    if (name == "vm")
        return core::Backend::Vm;
    if (name == "vmth")
        return core::Backend::VmTh;
    if (name == "sgx")
        return core::Backend::Sgx;
    if (name == "tdx")
        return core::Backend::Tdx;
    cllm_fatal("unknown backend '", name, "'");
}

hw::Dtype
dtypeByName(const std::string &name)
{
    if (name == "fp32")
        return hw::Dtype::Fp32;
    if (name == "bf16")
        return hw::Dtype::Bf16;
    if (name == "int8")
        return hw::Dtype::Int8;
    cllm_fatal("unknown dtype '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: " << argv[0] << " <config.ini> [--json]\n";
        return 1;
    }
    const bool as_json = argc > 2 && std::string(argv[2]) == "--json";

    const auto parsed = Config::load(argv[1]);
    if (!parsed.ok) {
        std::cerr << "config error: " << parsed.error << "\n";
        return 1;
    }
    const Config &cfg = parsed.config;

    core::Experiment exp;
    const std::string machine =
        cfg.getString("machine", "name", "emr1");
    const hw::CpuSpec cpu = machine == "emr2"   ? hw::emr2()
                            : machine == "spr" ? hw::spr()
                                               : hw::emr1();

    struct Row
    {
        std::string name, backend;
        llm::TimingResult timing;
        double overhead_pct;
    };
    std::vector<Row> rows;

    for (const std::string &section : cfg.sections()) {
        if (section.rfind("experiment", 0) != 0)
            continue;
        llm::RunParams p;
        p.batch = static_cast<unsigned>(
            cfg.getInt(section, "batch", 1));
        p.beam =
            static_cast<unsigned>(cfg.getInt(section, "beam", 1));
        p.inLen = static_cast<unsigned>(
            cfg.getInt(section, "input", 1024));
        p.outLen = static_cast<unsigned>(
            cfg.getInt(section, "output", 128));
        p.sockets = static_cast<unsigned>(
            cfg.getInt(section, "sockets", 1));
        p.cores =
            static_cast<unsigned>(cfg.getInt(section, "cores", 0));
        p.dtype =
            dtypeByName(cfg.getString(section, "dtype", "bf16"));
        p.amx = cfg.getBool(section, "amx", true);

        const auto model =
            modelByName(cfg.getString(section, "model", "7b"));
        const auto backend =
            backendByName(cfg.getString(section, "backend", "tdx"));

        const auto r = exp.runCpu(cpu, backend, model, p);
        const auto base =
            exp.runCpu(cpu, core::Backend::Bare, model, p);
        rows.push_back(
            {section, r.backend, r.timing,
             core::Experiment::compare(r, base).tputOverheadPct});
    }

    if (rows.empty())
        cllm_fatal("no [experiment*] sections in ", argv[1]);

    if (as_json) {
        JsonWriter j(std::cout);
        j.beginObject();
        j.key("machine").value(cpu.name);
        j.key("experiments").beginArray();
        for (const auto &r : rows) {
            j.beginObject();
            j.key("name").value(r.name);
            j.key("backend").value(r.backend);
            j.key("tokens_per_s").value(r.timing.decodeTput);
            j.key("e2e_tokens_per_s").value(r.timing.e2eTput);
            j.key("mean_token_latency_s")
                .value(r.timing.meanTokenLatency);
            j.key("overhead_vs_bare_pct").value(r.overhead_pct);
            j.key("working_set_gb")
                .value(r.timing.workingSetBytes / 1e9);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        std::cout << "\n";
    } else {
        std::cout << "machine: " << cpu.name << "\n";
        Table t({"experiment", "backend", "tput [tok/s]",
                 "latency [ms]", "ovh vs bare"});
        for (const auto &r : rows) {
            t.addRow({r.name, r.backend, fmt(r.timing.decodeTput),
                      fmt(1e3 * r.timing.meanTokenLatency),
                      fmtPct(r.overhead_pct)});
        }
        t.print(std::cout);
    }
    return 0;
}
