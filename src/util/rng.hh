/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All cllm randomness flows through Rng so that experiments are exactly
 * reproducible from a seed. The generator is xoshiro256**, seeded via
 * SplitMix64, matching the reference implementations by Blackman and
 * Vigna.
 *
 * Thread compatibility: an Rng instance is NOT safe for concurrent
 * use, but distinct instances share no state, and splitSeed() is a
 * pure function of its arguments — so the supported concurrency
 * pattern is one Rng per task, seeded with splitSeed(root, stream).
 * Each stream's draw sequence is then independent of thread count,
 * scheduling, and how many sibling streams exist (the property
 * test_rng's concurrent-use test pins).
 */

#ifndef CLLM_UTIL_RNG_HH
#define CLLM_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace cllm {

/** SplitMix64 step; used for seeding and as a cheap stateless hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Derive an independent child seed from a root seed and a stream
 * index. The child depends only on (root, stream), never on how many
 * other streams exist — the property the fleet simulator relies on so
 * that adding a node cannot perturb any other node's fault or
 * workload draws.
 *
 * Pure and stateless (the by-value arguments are untouched), so it
 * may be called concurrently from any number of threads; parallel
 * tasks should derive one child seed per stream index and construct
 * a private Rng from it.
 */
std::uint64_t splitSeed(std::uint64_t root, std::uint64_t stream);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Deterministic across platforms; not cryptographically secure (the
 * crypto module handles anything security-relevant).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Log-normal such that the *median* of the output is `median`. */
    double lognormal(double median, double sigma);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Zipf-distributed integer in [0, n), exponent s.
     * Uses rejection-inversion (Hormann & Derflinger) for O(1) draws.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(0, i - 1);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace cllm

#endif // CLLM_UTIL_RNG_HH
