/**
 * @file
 * Discrete-event fleet simulator: many `serve::ContinuousEngine`
 * node simulations interleaved under one global event loop, with a
 * router dispatching the shared arrival stream, an optional
 * autoscaler reshaping the fleet, and node-second billing.
 *
 * Event model. Four event sources compete for the next global step:
 * the next unrouted arrival, the next node able to make progress
 * (each engine reports `nextReadyTime()`), the next autoscaler tick,
 * and — only while arrivals are backlogged — the next node
 * commission. Events are processed in time order with a fixed
 * priority on ties (commission, arrival, tick, node iteration), so a
 * run is a pure function of (trace, fleet seed, config): the same
 * inputs give bit-identical FleetMetrics, and a 1-node fleet under
 * the Null router replays exactly the iteration sequence of a bare
 * `serve::Server::run`.
 */

#ifndef CLLM_FLEET_SIMULATOR_HH
#define CLLM_FLEET_SIMULATOR_HH

#include <memory>
#include <vector>

#include "fleet/autoscaler.hh"
#include "fleet/metrics.hh"
#include "fleet/node.hh"
#include "fleet/router.hh"

namespace cllm::obs {
class Tracer;
}

namespace cllm::fleet {

/** Fleet-level configuration. */
struct FleetConfig
{
    /** Root seed; node fault seeds derive from it by split-seed. */
    std::uint64_t seed = 1;

    RouterPolicy policy = RouterPolicy::LeastOutstanding;

    /** Fleet-level SLOs (routing spill + aggregate attainment). */
    double ttftSlo = 2.0;
    double tpotSlo = 0.200;

    /** Template index of each initially provisioned node. */
    std::vector<std::size_t> initialNodes;

    AutoscalerConfig autoscaler{};

    /**
     * Optional span tracer (null = off). Fleet-level events (routing,
     * scaling, backlog) land on lane 0; node `i` serves on lane
     * `i + 1`. Observational only — attaching a tracer cannot change
     * FleetMetrics.
     */
    obs::Tracer *tracer = nullptr;
};

/** The fleet-of-servers simulator. */
class FleetSimulator
{
  public:
    FleetSimulator(FleetConfig cfg,
                   std::vector<NodeTemplate> templates);

    /** Simulate a shared arrival trace through the fleet. */
    FleetMetrics run(std::vector<serve::Request> trace);

    /** Nodes after a run (lifecycle state, per-node engines). */
    const std::vector<std::unique_ptr<Node>> &nodes() const
    {
        return nodes_;
    }

  private:
    void addNode(std::size_t template_index, double provision_start,
                 double available_at);
    FleetMetrics finalize(const std::vector<serve::Request> &trace,
                          std::size_t backlogged_total);

    FleetConfig cfg_;
    std::vector<NodeTemplate> templates_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::size_t scaleUps_ = 0;
    std::size_t drains_ = 0;
};

} // namespace cllm::fleet

#endif // CLLM_FLEET_SIMULATOR_HH
