file(REMOVE_RECURSE
  "libcllm_fleet.a"
)
