# Empty dependencies file for cllm_cost.
# This may be replaced when dependencies are built.
