# Empty compiler generated dependencies file for fig06_hugepages.
# This may be replaced when dependencies are built.
