/**
 * @file
 * Tests for Gramine-manifest parsing, validation, rendering, and its
 * contribution to the enclave measurement (Figure 2).
 */

#include <gtest/gtest.h>

#include "tee/attest.hh"
#include "tee/manifest.hh"
#include "util/rng.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::tee;

TEST(Manifest, ParsesExample)
{
    const auto r = parseManifest(exampleLlamaManifest());
    ASSERT_TRUE(r.ok) << r.error;
    const Manifest &m = r.manifest;
    EXPECT_EQ(m.entrypoint, "/usr/bin/python3");
    EXPECT_EQ(m.enclaveSizeBytes, 64ULL * GiB);
    EXPECT_EQ(m.maxThreads, 128u);
    EXPECT_TRUE(m.edmm);
    ASSERT_EQ(m.trustedFiles.size(), 2u);
    EXPECT_EQ(m.trustedFiles[0].uri, "file:/usr/bin/python3");
    ASSERT_EQ(m.encryptedFiles.size(), 1u);
    EXPECT_EQ(m.encryptedFiles[0], "file:/models/llama2-7b/");
    EXPECT_EQ(m.keyProvider, "kds://weights-key");
    EXPECT_EQ(m.env.at("OMP_NUM_THREADS"), "32");
}

TEST(Manifest, ExampleValidates)
{
    const auto parsed = parseManifest(exampleLlamaManifest());
    ASSERT_TRUE(parsed.ok);
    EXPECT_TRUE(validateManifest(parsed.manifest).ok);
}

TEST(Manifest, SizeSuffixes)
{
    const auto r = parseManifest("libos.entrypoint = \"/bin/x\"\n"
                                 "sgx.enclave_size = \"512M\"\n"
                                 "sgx.max_threads = 4\n");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.manifest.enclaveSizeBytes, 512ULL * MiB);
}

TEST(Manifest, RejectsGarbageSize)
{
    const auto r = parseManifest("sgx.enclave_size = \"lots\"\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("enclave size"), std::string::npos);
}

TEST(Manifest, RejectsMissingEquals)
{
    const auto r = parseManifest("this is not toml\n");
    EXPECT_FALSE(r.ok);
}

TEST(Manifest, CommentsAndBlanksIgnored)
{
    const auto r = parseManifest("# a comment\n\n"
                                 "libos.entrypoint = \"/bin/x\"\n");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.manifest.entrypoint, "/bin/x");
}

TEST(Manifest, TrustedFileHashesParsed)
{
    const std::string text =
        "sgx.trusted_files = [\n"
        "  { uri = \"file:/a\", sha256 = \"" +
        std::string(64, 'a') + "\" },\n"
        "  { uri = \"file:/b\" },\n"
        "]\n";
    const auto r = parseManifest(text);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.manifest.trustedFiles.size(), 2u);
    EXPECT_EQ(r.manifest.trustedFiles[0].sha256Hex, std::string(64, 'a'));
    EXPECT_TRUE(r.manifest.trustedFiles[1].sha256Hex.empty());
}

TEST(Manifest, UnterminatedArrayFails)
{
    const auto r = parseManifest("sgx.trusted_files = [\n"
                                 "  { uri = \"file:/a\" },\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unterminated"), std::string::npos);
}

TEST(Manifest, StrictModeRejectsUnknownKeys)
{
    const auto lax = parseManifest("sgx.mystery = \"1\"\n", false);
    EXPECT_TRUE(lax.ok);
    const auto strict = parseManifest("sgx.mystery = \"1\"\n", true);
    EXPECT_FALSE(strict.ok);
}

TEST(Validate, MissingEntrypoint)
{
    Manifest m;
    m.enclaveSizeBytes = 4 * GiB;
    m.maxThreads = 8;
    const auto r = validateManifest(m);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("entrypoint"), std::string::npos);
}

TEST(Validate, NonPowerOfTwoSize)
{
    Manifest m;
    m.entrypoint = "/bin/x";
    m.enclaveSizeBytes = 3 * GiB;
    m.maxThreads = 8;
    EXPECT_FALSE(validateManifest(m).ok);
}

TEST(Validate, TooSmallForLlm)
{
    Manifest m;
    m.entrypoint = "/bin/x";
    m.enclaveSizeBytes = 512 * MiB;
    m.maxThreads = 8;
    const auto r = validateManifest(m);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("too small"), std::string::npos);
}

TEST(Validate, ZeroThreads)
{
    Manifest m;
    m.entrypoint = "/bin/x";
    m.enclaveSizeBytes = 4 * GiB;
    m.maxThreads = 0;
    EXPECT_FALSE(validateManifest(m).ok);
}

TEST(Validate, MalformedTrustedHash)
{
    Manifest m;
    m.entrypoint = "/bin/x";
    m.enclaveSizeBytes = 4 * GiB;
    m.maxThreads = 8;
    m.trustedFiles.push_back({"file:/a", "deadbeef"});
    const auto r = validateManifest(m);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("sha256"), std::string::npos);
}

TEST(Manifest, RenderParseRoundtrip)
{
    const auto first = parseManifest(exampleLlamaManifest());
    ASSERT_TRUE(first.ok);
    const std::string rendered = renderManifest(first.manifest);
    const auto second = parseManifest(rendered);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.manifest.entrypoint, first.manifest.entrypoint);
    EXPECT_EQ(second.manifest.enclaveSizeBytes,
              first.manifest.enclaveSizeBytes);
    EXPECT_EQ(second.manifest.maxThreads, first.manifest.maxThreads);
    EXPECT_EQ(second.manifest.trustedFiles.size(),
              first.manifest.trustedFiles.size());
    EXPECT_EQ(second.manifest.encryptedFiles,
              first.manifest.encryptedFiles);
}

TEST(Manifest, MeasurementChangesWithManifest)
{
    auto a = parseManifest(exampleLlamaManifest());
    ASSERT_TRUE(a.ok);
    Manifest changed = a.manifest;
    changed.maxThreads = 64; // attacker shrinks the thread pool

    MeasurementBuilder ba, bb;
    a.manifest.extendMeasurement(ba);
    changed.extendMeasurement(bb);
    EXPECT_FALSE(ba.finish() == bb.finish());
}

TEST(Manifest, RandomizedRenderParseRoundtrips)
{
    // Property sweep: render(parse(render(m))) is a fixed point for
    // randomized manifests.
    cllm::Rng rng(2026);
    for (int trial = 0; trial < 50; ++trial) {
        Manifest m;
        m.entrypoint = "/bin/app" + std::to_string(trial);
        m.logLevel = trial % 2 ? "error" : "debug";
        m.enclaveSizeBytes = (1ULL << (30 + trial % 4));
        m.maxThreads = 1 + static_cast<unsigned>(rng.uniformInt(0, 255));
        m.edmm = rng.chance(0.5);
        const int files = static_cast<int>(rng.uniformInt(0, 5));
        for (int f = 0; f < files; ++f) {
            TrustedFile tf;
            tf.uri = "file:/data/f" + std::to_string(f);
            if (rng.chance(0.5))
                tf.sha256Hex = std::string(64, 'a' + f % 6);
            m.trustedFiles.push_back(tf);
        }
        if (rng.chance(0.7))
            m.encryptedFiles.push_back("file:/models/");
        if (rng.chance(0.5))
            m.env["OMP_NUM_THREADS"] =
                std::to_string(rng.uniformInt(1, 128));

        const std::string once = renderManifest(m);
        const auto parsed = parseManifest(once);
        ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << once;
        EXPECT_EQ(renderManifest(parsed.manifest), once)
            << "trial " << trial;
        EXPECT_TRUE(validateManifest(parsed.manifest).ok);
    }
}
