# Empty dependencies file for fig08_amx.
# This may be replaced when dependencies are built.
