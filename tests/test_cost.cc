/**
 * @file
 * Tests for the cloud pricing model (Figures 12-13 arithmetic).
 */

#include <gtest/gtest.h>

#include "cost/pricing.hh"

using namespace cllm::cost;

TEST(Pricing, InstanceHourMath)
{
    CpuPricing p{"test", 0.01, 0.001};
    EXPECT_NEAR(cpuInstanceHr(p, 32, 128.0), 0.32 + 0.128, 1e-12);
}

TEST(Pricing, MemoryDominatesSmallInstances)
{
    // The paper's observation: memory cost is fixed; at low vCPU
    // counts it dominates the bill.
    const CpuPricing p = gcpSpotUsEast1();
    const double hr8 = cpuInstanceHr(p, 8, 128.0);
    const double mem_part = p.memGbHr * 128.0;
    EXPECT_GT(mem_part / hr8, 0.5);
}

TEST(Pricing, CostPerMTokensInverseInThroughput)
{
    const double slow = costPerMTokens(10.0, 1.0);
    const double fast = costPerMTokens(100.0, 1.0);
    EXPECT_NEAR(slow / fast, 10.0, 1e-9);
}

TEST(Pricing, CostPerMTokensKnownValue)
{
    // 1M tokens at 100 tok/s = 10,000 s = 2.7778 hours at $3.60/hr.
    EXPECT_NEAR(costPerMTokens(100.0, 3.6), 10.0, 1e-9);
}

TEST(Pricing, SprCheaperPerVcpu)
{
    EXPECT_LT(gcpSpotSprUsEast1().vcpuHr, gcpSpotUsEast1().vcpuHr);
}

TEST(Pricing, ConfidentialGpuCostsMoreThanPlain)
{
    EXPECT_GT(cgpuH100().instanceHr, gpuH100().instanceHr);
}

TEST(PricingDeath, DegenerateInputsFatal)
{
    CpuPricing p = gcpSpotUsEast1();
    EXPECT_DEATH(cpuInstanceHr(p, 0, 128.0), "empty");
    EXPECT_DEATH(costPerMTokens(0.0, 1.0), "throughput");
}
