file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_cache.dir/test_prefix_cache.cc.o"
  "CMakeFiles/test_prefix_cache.dir/test_prefix_cache.cc.o.d"
  "test_prefix_cache"
  "test_prefix_cache.pdb"
  "test_prefix_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
