
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_sim.cc" "src/mem/CMakeFiles/cllm_mem.dir/cache_sim.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/cache_sim.cc.o.d"
  "/root/repo/src/mem/epc.cc" "src/mem/CMakeFiles/cllm_mem.dir/epc.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/epc.cc.o.d"
  "/root/repo/src/mem/kv_paged.cc" "src/mem/CMakeFiles/cllm_mem.dir/kv_paged.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/kv_paged.cc.o.d"
  "/root/repo/src/mem/mee_tree.cc" "src/mem/CMakeFiles/cllm_mem.dir/mee_tree.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/mee_tree.cc.o.d"
  "/root/repo/src/mem/numa.cc" "src/mem/CMakeFiles/cllm_mem.dir/numa.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/numa.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/mem/CMakeFiles/cllm_mem.dir/phys_mem.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/phys_mem.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/cllm_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/cllm_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/cllm_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
