/**
 * @file
 * Tests for the fault-injection subsystem: seed-driven schedule
 * generation, injector window semantics, and — the property the whole
 * layer hangs on — that a seeded fault run through serve::Server is
 * bit-for-bit reproducible, while different seeds produce different
 * timelines.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "fault/injector.hh"
#include "fault/schedule.hh"
#include "serve/serving.hh"
#include "util/config.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::fault;
using namespace cllm::serve;

namespace {

FaultScheduleConfig
busyConfig(std::uint64_t seed)
{
    FaultScheduleConfig fs;
    fs.seed = seed;
    fs.horizon = 400.0;
    fs.attestFail = {1.0 / 60.0, 4.0, 0.0};
    fs.enclaveRestart = {1.0 / 120.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 50.0, 8.0, 6.0};
    fs.kvExhaustion = {1.0 / 80.0, 10.0, 0.5};
    return fs;
}

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

std::unique_ptr<StepModel>
tdxModel()
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return makeCpuStepModel(cpu, shared(tee::makeTdx()),
                            llm::llama2_7b(), p);
}

WorkloadConfig
faultLoad()
{
    WorkloadConfig w;
    w.arrivalRate = 1.0;
    w.numRequests = 120;
    w.meanInLen = 256;
    w.meanOutLen = 64;
    w.seed = 5;
    return w;
}

ServerConfig
resilientConfig(const FaultSchedule &sched)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 2048;
    cfg.kvBlockTokens = 16;
    cfg.faults = sched;
    cfg.weightBytes = 1ULL << 30;
    cfg.resilience.requestTimeout = 60.0;
    cfg.resilience.maxRetries = 3;
    cfg.resilience.retryBackoff = 0.25;
    cfg.resilience.shedOnKvPressure = true;
    cfg.resilience.shedThreshold = 0.95;
    cfg.resilience.degradedMaxBatch = 8;
    return cfg;
}

bool
timelinesEqual(const std::vector<FaultRecord> &a,
               const std::vector<FaultRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].event.kind != b[i].event.kind ||
            a[i].event.time != b[i].event.time ||
            a[i].event.duration != b[i].event.duration ||
            a[i].event.magnitude != b[i].event.magnitude ||
            a[i].applied != b[i].applied ||
            a[i].affected != b[i].affected)
            return false;
    }
    return true;
}

} // namespace

// ---- Schedule generation ----------------------------------------------

TEST(FaultSchedule, GenerationIsDeterministic)
{
    const auto a = FaultSchedule::generate(busyConfig(3));
    const auto b = FaultSchedule::generate(busyConfig(3));
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].time, b.events()[i].time);
        EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    }
}

TEST(FaultSchedule, DifferentSeedsDifferentSchedules)
{
    const auto a = FaultSchedule::generate(busyConfig(3));
    const auto b = FaultSchedule::generate(busyConfig(4));
    bool differ = a.size() != b.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i)
        differ = a.events()[i].time != b.events()[i].time;
    EXPECT_TRUE(differ);
}

TEST(FaultSchedule, SortedAndWithinHorizon)
{
    const auto s = FaultSchedule::generate(busyConfig(11));
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_GE(s.events()[i].time, 0.0);
        EXPECT_LT(s.events()[i].time, 400.0);
        if (i)
            EXPECT_GE(s.events()[i].time, s.events()[i - 1].time);
    }
}

TEST(FaultSchedule, ZeroRatesYieldEmptySchedule)
{
    FaultScheduleConfig fs;
    fs.seed = 1;
    const auto s = FaultSchedule::generate(fs);
    EXPECT_TRUE(s.empty());
}

TEST(FaultSchedule, EnablingOneProcessDoesNotPerturbOthers)
{
    // Restart draws are split from the master seed, so switching the
    // attestation process on must not move the restart times.
    FaultScheduleConfig only_restart;
    only_restart.seed = 9;
    only_restart.enclaveRestart = {1.0 / 50.0, 0.0, 0.0};
    FaultScheduleConfig both = only_restart;
    both.attestFail = {1.0 / 30.0, 2.0, 0.0};

    std::vector<double> restarts_a, restarts_b;
    for (const auto &e : FaultSchedule::generate(only_restart).events())
        if (e.kind == FaultKind::EnclaveRestart)
            restarts_a.push_back(e.time);
    for (const auto &e : FaultSchedule::generate(both).events())
        if (e.kind == FaultKind::EnclaveRestart)
            restarts_b.push_back(e.time);
    EXPECT_EQ(restarts_a, restarts_b);
}

TEST(FaultSchedule, AddKeepsTimeOrder)
{
    FaultSchedule s;
    s.add({FaultKind::EpcStorm, 5.0, 1.0, 2.0});
    s.add({FaultKind::EnclaveRestart, 1.0, 0.0, 0.0});
    s.add({FaultKind::AttestFail, 3.0, 2.0, 0.0});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::EnclaveRestart);
    EXPECT_EQ(s.events()[1].kind, FaultKind::AttestFail);
    EXPECT_EQ(s.events()[2].kind, FaultKind::EpcStorm);
}

TEST(FaultSchedule, ConfigFromIniSection)
{
    const auto parsed = Config::parse("[fault]\n"
                                      "seed = 77\n"
                                      "horizon = 250\n"
                                      "attest_rate = 0.02\n"
                                      "attest_duration = 3\n"
                                      "restart_rate = 0.005\n"
                                      "epc_storm_rate = 0.01\n"
                                      "epc_storm_duration = 8\n"
                                      "epc_storm_magnitude = 5\n"
                                      "kv_exhaustion_rate = 0.004\n"
                                      "kv_exhaustion_magnitude = 0.4\n");
    ASSERT_TRUE(parsed.ok);
    const auto fs = FaultSchedule::configFrom(parsed.config);
    EXPECT_EQ(fs.seed, 77u);
    EXPECT_DOUBLE_EQ(fs.horizon, 250.0);
    EXPECT_DOUBLE_EQ(fs.attestFail.rate, 0.02);
    EXPECT_DOUBLE_EQ(fs.attestFail.meanDuration, 3.0);
    EXPECT_DOUBLE_EQ(fs.enclaveRestart.rate, 0.005);
    EXPECT_DOUBLE_EQ(fs.epcStorm.magnitude, 5.0);
    EXPECT_DOUBLE_EQ(fs.kvExhaustion.magnitude, 0.4);
}

TEST(FaultScheduleDeath, BadInputsFatal)
{
    FaultScheduleConfig fs;
    fs.horizon = 0.0;
    EXPECT_DEATH(FaultSchedule::generate(fs), "horizon");

    FaultScheduleConfig frac = busyConfig(1);
    frac.kvExhaustion.magnitude = 1.5;
    EXPECT_DEATH(FaultSchedule::generate(frac), "fraction");

    FaultSchedule s;
    EXPECT_DEATH(s.add({FaultKind::EpcStorm, -1.0, 0.0, 1.0}),
                 "negative");
}

// ---- EPC storm magnitude helper ---------------------------------------

TEST(FaultSchedule, EpcStormSlowdownShape)
{
    // Working set within the secure region: no storm.
    EXPECT_DOUBLE_EQ(
        epcStormSlowdown(1ULL << 30, 4ULL << 30, 0.5), 1.0);
    // Beyond it: a real slowdown that grows with the overshoot.
    const double mild = epcStormSlowdown(5ULL << 30, 4ULL << 30, 0.5);
    const double bad = epcStormSlowdown(16ULL << 30, 4ULL << 30, 0.5);
    EXPECT_GT(mild, 1.0);
    EXPECT_GT(bad, mild);
}

// ---- Injector window semantics ----------------------------------------

TEST(FaultInjector, WindowQueries)
{
    FaultSchedule s;
    s.add({FaultKind::EpcStorm, 10.0, 5.0, 3.0});
    s.add({FaultKind::AttestFail, 20.0, 2.0, 0.0});
    s.add({FaultKind::KvExhaustion, 30.0, 4.0, 0.25});
    FaultInjector inj(s);

    EXPECT_TRUE(inj.enabled());
    EXPECT_DOUBLE_EQ(inj.slowdown(5.0), 1.0);
    EXPECT_DOUBLE_EQ(inj.slowdown(12.0), 3.0);
    EXPECT_DOUBLE_EQ(inj.slowdown(15.0), 1.0); // end exclusive

    EXPECT_FALSE(inj.attestationFails(19.0));
    EXPECT_TRUE(inj.attestationFails(21.0));

    EXPECT_DOUBLE_EQ(inj.kvCapacityFactor(29.0), 1.0);
    EXPECT_DOUBLE_EQ(inj.kvCapacityFactor(31.0), 0.75);

    EXPECT_TRUE(inj.anyWindowActive(12.0));
    EXPECT_FALSE(inj.anyWindowActive(40.0));
    EXPECT_DOUBLE_EQ(inj.nextWindowEnd(31.0), 34.0);
    EXPECT_DOUBLE_EQ(inj.nextWindowEnd(40.0), 40.0);
}

TEST(FaultInjector, OverlappingStormsMultiply)
{
    FaultSchedule s;
    s.add({FaultKind::EpcStorm, 0.0, 10.0, 2.0});
    s.add({FaultKind::EpcStorm, 5.0, 10.0, 3.0});
    FaultInjector inj(s);
    EXPECT_DOUBLE_EQ(inj.slowdown(1.0), 2.0);
    EXPECT_DOUBLE_EQ(inj.slowdown(7.0), 6.0);
    EXPECT_DOUBLE_EQ(inj.slowdown(12.0), 3.0);
}

TEST(FaultInjector, RestartsConsumedOnceInOrder)
{
    FaultSchedule s;
    s.add({FaultKind::EnclaveRestart, 5.0, 0.0, 0.0});
    s.add({FaultKind::EnclaveRestart, 15.0, 0.0, 0.0});
    FaultInjector inj(s);
    EXPECT_EQ(inj.consumeRestarts(1.0, 4), 0u);
    EXPECT_EQ(inj.consumeRestarts(10.0, 4), 1u);
    EXPECT_EQ(inj.consumeRestarts(10.0, 4), 0u); // no double fire
    EXPECT_EQ(inj.consumeRestarts(20.0, 2), 1u);
    EXPECT_EQ(inj.timeline()[0].affected, 4u);
    EXPECT_EQ(inj.timeline()[1].affected, 2u);
}

TEST(FaultInjector, TimelineRecordsImpact)
{
    FaultSchedule s;
    s.add({FaultKind::AttestFail, 1.0, 2.0, 0.0});
    s.add({FaultKind::AttestFail, 100.0, 2.0, 0.0});
    FaultInjector inj(s);
    EXPECT_TRUE(inj.attestationFails(1.5));
    EXPECT_TRUE(inj.attestationFails(2.5));
    ASSERT_EQ(inj.timeline().size(), 2u);
    EXPECT_DOUBLE_EQ(inj.timeline()[0].applied, 1.5);
    EXPECT_EQ(inj.timeline()[0].affected, 2u);
    EXPECT_LT(inj.timeline()[1].applied, 0.0); // never fired
    EXPECT_EQ(inj.firedCount(), 1u);
}

TEST(FaultInjector, EmptyInjectorIsInert)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    EXPECT_DOUBLE_EQ(inj.slowdown(1.0), 1.0);
    EXPECT_FALSE(inj.attestationFails(1.0));
    EXPECT_DOUBLE_EQ(inj.kvCapacityFactor(1.0), 1.0);
    EXPECT_EQ(inj.consumeRestarts(1e9, 10), 0u);
    EXPECT_TRUE(inj.timeline().empty());
}

TEST(FaultInjector, TimelineJsonExport)
{
    FaultSchedule s;
    s.add({FaultKind::EpcStorm, 1.0, 2.0, 3.0});
    FaultInjector inj(s);
    inj.slowdown(1.5);
    std::ostringstream os;
    {
        JsonWriter json(os);
        writeTimeline(json, inj.timeline());
    }
    const std::string out = os.str();
    EXPECT_NE(out.find("\"kind\":\"epc_storm\""), std::string::npos);
    EXPECT_NE(out.find("\"fired\":true"), std::string::npos);
    EXPECT_NE(out.find("\"affected\":1"), std::string::npos);
}

// ---- End-to-end determinism through the server ------------------------

TEST(FaultServing, SameSeedBitIdenticalMetricsAndTimeline)
{
    const auto sched = FaultSchedule::generate(busyConfig(13));
    const auto cfg = resilientConfig(sched);
    Server a(tdxModel(), cfg);
    Server b(tdxModel(), cfg);
    const auto ma = a.run(generateWorkload(faultLoad()));
    const auto mb = b.run(generateWorkload(faultLoad()));

    EXPECT_EQ(ma.completed, mb.completed);
    EXPECT_EQ(ma.makespan, mb.makespan);
    EXPECT_EQ(ma.tokensPerSecond, mb.tokensPerSecond);
    EXPECT_EQ(ma.ttft.mean, mb.ttft.mean);
    EXPECT_EQ(ma.tpot.p95, mb.tpot.p95);
    EXPECT_EQ(ma.availability, mb.availability);
    EXPECT_EQ(ma.retries, mb.retries);
    EXPECT_EQ(ma.shed, mb.shed);
    EXPECT_EQ(ma.timedOut, mb.timedOut);
    EXPECT_EQ(ma.failed, mb.failed);
    EXPECT_EQ(ma.restarts, mb.restarts);
    EXPECT_EQ(ma.attestRejections, mb.attestRejections);
    EXPECT_EQ(ma.faultDowntime, mb.faultDowntime);
    EXPECT_TRUE(timelinesEqual(ma.faultTimeline, mb.faultTimeline));
}

TEST(FaultServing, DifferentSeedsDistinctTimelines)
{
    Server a(tdxModel(),
             resilientConfig(FaultSchedule::generate(busyConfig(13))));
    Server b(tdxModel(),
             resilientConfig(FaultSchedule::generate(busyConfig(14))));
    const auto ma = a.run(generateWorkload(faultLoad()));
    const auto mb = b.run(generateWorkload(faultLoad()));
    EXPECT_FALSE(timelinesEqual(ma.faultTimeline, mb.faultTimeline));
}

TEST(FaultServing, FaultFreeRunHasCleanCounters)
{
    ServerConfig cfg;
    Server s(tdxModel(), cfg);
    const auto m = s.run(generateWorkload(faultLoad()));
    EXPECT_EQ(m.submitted, 120u);
    EXPECT_EQ(m.completed, 120u);
    EXPECT_DOUBLE_EQ(m.availability, 1.0);
    EXPECT_EQ(m.retries, 0u);
    EXPECT_EQ(m.shed, 0u);
    EXPECT_EQ(m.timedOut, 0u);
    EXPECT_EQ(m.failed, 0u);
    EXPECT_EQ(m.restarts, 0u);
    EXPECT_EQ(m.attestRejections, 0u);
    EXPECT_DOUBLE_EQ(m.faultDowntime, 0.0);
    EXPECT_TRUE(m.faultTimeline.empty());
}

TEST(FaultServing, RestartsChargeReprovisioningDowntime)
{
    FaultSchedule s;
    s.add({FaultKind::EnclaveRestart, 10.0, 0.0, 0.0});
    ServerConfig cfg = resilientConfig(s);
    Server server(tdxModel(), cfg);
    const auto m = server.run(generateWorkload(faultLoad()));
    EXPECT_EQ(m.restarts, 1u);
    EXPECT_DOUBLE_EQ(m.faultDowntime,
                     cfg.reprovision.seconds(cfg.weightBytes));
    EXPECT_GT(m.faultDowntime, 0.2); // 1 GiB of weights is not free
}

TEST(FaultServing, AttestationWindowCausesRetriesOrDrops)
{
    FaultSchedule s;
    s.add({FaultKind::AttestFail, 0.0, 30.0, 0.0});
    const auto m = Server(tdxModel(), resilientConfig(s))
                       .run(generateWorkload(faultLoad()));
    EXPECT_GT(m.attestRejections, 0u);
    EXPECT_GT(m.retries, 0u);
    EXPECT_LE(m.availability, 1.0);
}

TEST(FaultServing, EpcStormStretchesMakespan)
{
    FaultSchedule storm;
    storm.add({FaultKind::EpcStorm, 0.0, 500.0, 8.0});
    ServerConfig with = resilientConfig(storm);
    ServerConfig without = resilientConfig(FaultSchedule{});
    // Only the storm differs; no deadline aborts muddying makespan.
    with.resilience.requestTimeout = 0.0;
    without.resilience.requestTimeout = 0.0;
    const auto mw =
        Server(tdxModel(), with).run(generateWorkload(faultLoad()));
    const auto mo =
        Server(tdxModel(), without).run(generateWorkload(faultLoad()));
    EXPECT_GT(mw.makespan, mo.makespan * 1.5);
}

TEST(FaultServingDeath, StaticPolicyRejectsFaults)
{
    FaultSchedule s;
    s.add({FaultKind::EnclaveRestart, 1.0, 0.0, 0.0});
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Static;
    cfg.faults = s;
    EXPECT_DEATH(Server(tdxModel(), cfg), "continuous");
}

TEST(FaultServingDeath, FaultsRequirePositiveBackoff)
{
    FaultSchedule s;
    s.add({FaultKind::AttestFail, 1.0, 2.0, 0.0});
    ServerConfig cfg;
    cfg.faults = s;
    cfg.resilience.retryBackoff = 0.0;
    EXPECT_DEATH(Server(tdxModel(), cfg), "backoff");
}
