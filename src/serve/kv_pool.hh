/**
 * @file
 * Paged KV-cache block pool, in the style of vLLM's PagedAttention
 * allocator: KV memory is carved into fixed-size blocks of tokens;
 * sequences allocate blocks as they grow and can fork (prefix
 * sharing) with copy-on-write reference counts. The serving simulator
 * uses it to bound batch admission by real KV capacity — inside a TEE
 * the whole pool lives in encrypted memory, so capacity is exactly
 * the enclave/TD memory the operator sized (Gramine's enclave_size,
 * the TD's memory).
 */

#ifndef CLLM_SERVE_KV_POOL_HH
#define CLLM_SERVE_KV_POOL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cllm::serve {

/** Sequence handle. */
using SeqId = std::uint32_t;

/** Pool configuration. */
struct KvPoolConfig
{
    std::uint64_t totalBlocks = 1024;
    unsigned blockTokens = 16; //!< tokens per block
};

/**
 * Reference-counted KV block allocator.
 */
class KvBlockPool
{
  public:
    explicit KvBlockPool(KvPoolConfig cfg = {});

    /**
     * Register a new sequence with `prompt_tokens` of prefilled KV.
     * Returns false (allocating nothing) when the pool cannot hold it.
     */
    bool addSequence(SeqId id, unsigned prompt_tokens);

    /**
     * Append one token to a sequence; may allocate one block. Returns
     * false on pool exhaustion (the sequence keeps its current
     * blocks; callers typically preempt or queue).
     */
    bool appendToken(SeqId id);

    /**
     * Fork `child` from `parent` (beam search / prefix sharing): the
     * child shares all of the parent's blocks copy-on-write. The last
     * (partial) block is copied eagerly, costing one block.
     */
    bool fork(SeqId parent, SeqId child);

    /** Release a sequence's blocks (decrement shared refcounts). */
    void release(SeqId id);

    /** Tokens currently stored for a sequence. */
    unsigned tokens(SeqId id) const;

    /** Blocks currently referenced by a sequence. */
    std::size_t blocksOf(SeqId id) const;

    /** Free blocks remaining. */
    std::uint64_t freeBlocks() const;

    /** Fraction of the pool in use. */
    double utilization() const;

    /** Whether a sequence of `tokens` more tokens could be admitted. */
    bool canAdmit(unsigned tokens) const;

    const KvPoolConfig &config() const { return cfg_; }

  private:
    struct Seq
    {
        std::vector<std::uint32_t> blocks;
        unsigned tokens = 0;
    };

    std::uint32_t allocBlock(); //!< returns index or kNoBlock
    void unref(std::uint32_t block);

    static constexpr std::uint32_t kNoBlock = 0xffffffffu;

    KvPoolConfig cfg_;
    std::vector<std::uint32_t> refCounts_;
    std::vector<std::uint32_t> freeList_;
    std::unordered_map<SeqId, Seq> seqs_;
};

} // namespace cllm::serve

#endif // CLLM_SERVE_KV_POOL_HH
