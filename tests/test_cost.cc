/**
 * @file
 * Tests for the cloud pricing model (Figures 12-13 arithmetic).
 */

#include <gtest/gtest.h>

#include "cost/pricing.hh"

using namespace cllm::cost;

TEST(Pricing, InstanceHourMath)
{
    CpuPricing p{"test", 0.01, 0.001};
    EXPECT_NEAR(cpuInstanceHr(p, 32, 128.0), 0.32 + 0.128, 1e-12);
}

TEST(Pricing, MemoryDominatesSmallInstances)
{
    // The paper's observation: memory cost is fixed; at low vCPU
    // counts it dominates the bill.
    const CpuPricing p = gcpSpotUsEast1();
    const double hr8 = cpuInstanceHr(p, 8, 128.0);
    const double mem_part = p.memGbHr * 128.0;
    EXPECT_GT(mem_part / hr8, 0.5);
}

TEST(Pricing, CostPerMTokensInverseInThroughput)
{
    const double slow = costPerMTokens(10.0, 1.0);
    const double fast = costPerMTokens(100.0, 1.0);
    EXPECT_NEAR(slow / fast, 10.0, 1e-9);
}

TEST(Pricing, CostPerMTokensKnownValue)
{
    // 1M tokens at 100 tok/s = 10,000 s = 2.7778 hours at $3.60/hr.
    EXPECT_NEAR(costPerMTokens(100.0, 3.6), 10.0, 1e-9);
}

TEST(Pricing, SprCheaperPerVcpu)
{
    EXPECT_LT(gcpSpotSprUsEast1().vcpuHr, gcpSpotUsEast1().vcpuHr);
}

TEST(Pricing, ConfidentialGpuCostsMoreThanPlain)
{
    EXPECT_GT(cgpuH100().instanceHr, gpuH100().instanceHr);
}

TEST(Pricing, PerSecondIsHourlyOver3600)
{
    EXPECT_DOUBLE_EQ(perSecondUsd(3600.0), 1.0);
    EXPECT_DOUBLE_EQ(perSecondUsd(cgpuH100().instanceHr),
                     10.50 / 3600.0);
    EXPECT_DOUBLE_EQ(perSecondUsd(0.0), 0.0);
}

TEST(Pricing, NodeSecondsMeterIsLinear)
{
    // One cGPU-H100 hour billed second-by-second equals one
    // instance-hour, and half the duration costs exactly half.
    const double hr = cgpuH100().instanceHr;
    EXPECT_DOUBLE_EQ(nodeSecondsUsd(hr, 3600.0), hr);
    EXPECT_DOUBLE_EQ(nodeSecondsUsd(hr, 1800.0), hr / 2.0);
    EXPECT_DOUBLE_EQ(nodeSecondsUsd(hr, 0.0), 0.0);
}

TEST(Pricing, CostPer1kTokensKnownValue)
{
    // $2 for 500k tokens -> $4 per million -> $0.004 per 1k.
    EXPECT_DOUBLE_EQ(costPer1kTokens(500000, 2.0), 0.004);
    EXPECT_DOUBLE_EQ(costPer1kTokens(1000, 0.0), 0.0);
}

TEST(Pricing, ConfidentialH100PremiumMatchesAzureListGap)
{
    // NCCads_H100_v5 over NCads_H100_v5: $10.50 vs $9.60 -- the
    // ~9% confidential-compute premium the paper's Fig. 13 prices in.
    EXPECT_DOUBLE_EQ(cgpuH100().instanceHr, 10.50);
    EXPECT_DOUBLE_EQ(gpuH100().instanceHr, 9.60);
    const double premium =
        cgpuH100().instanceHr / gpuH100().instanceHr - 1.0;
    EXPECT_NEAR(premium, 0.09375, 1e-12);
}

TEST(Pricing, SpotRatesMatchPaperSectionVD)
{
    // Figs. 12-13 price EMR at $0.0088/vCPU-hr and the cheaper SPR
    // machine type at $0.0047/vCPU-hr; memory is priced identically.
    EXPECT_DOUBLE_EQ(gcpSpotUsEast1().vcpuHr, 0.0088);
    EXPECT_DOUBLE_EQ(gcpSpotUsEast1().memGbHr, 0.00118);
    EXPECT_DOUBLE_EQ(gcpSpotSprUsEast1().vcpuHr, 0.0047);
    EXPECT_DOUBLE_EQ(gcpSpotSprUsEast1().memGbHr, 0.00118);
}

TEST(Pricing, FleetNodeHourlyRateComposes)
{
    // The fleet CPU preset's hourly rate is the separable sum, so a
    // node-second of it meters back to exactly that sum.
    const CpuPricing p = gcpSpotUsEast1();
    const double hr = cpuInstanceHr(p, 64, 128.0);
    EXPECT_DOUBLE_EQ(hr, 0.0088 * 64 + 0.00118 * 128.0);
    EXPECT_DOUBLE_EQ(nodeSecondsUsd(hr, 3600.0), hr);
}

TEST(PricingDeath, DegenerateInputsFatal)
{
    CpuPricing p = gcpSpotUsEast1();
    EXPECT_DEATH(cpuInstanceHr(p, 0, 128.0), "empty");
    EXPECT_DEATH(costPerMTokens(0.0, 1.0), "throughput");
    EXPECT_DEATH(perSecondUsd(-1.0), "negative");
    EXPECT_DEATH(nodeSecondsUsd(1.0, -1.0), "negative");
    EXPECT_DEATH(costPer1kTokens(0, 1.0), "tokens");
}
