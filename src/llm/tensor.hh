/**
 * @file
 * Minimal row-major float tensor used by the functional inference
 * runtime. This is deliberately simple: contiguous storage, 1-D/2-D
 * views, bounds-checked element access in debug paths.
 */

#ifndef CLLM_LLM_TENSOR_HH
#define CLLM_LLM_TENSOR_HH

#include <cstddef>
#include <vector>

namespace cllm::llm {

/**
 * A 2-D row-major matrix of floats (rows x cols). 1-D vectors are
 * represented as 1 x n.
 */
class Tensor
{
  public:
    /** Empty tensor. */
    Tensor() = default;

    /** rows x cols, zero-initialized. */
    Tensor(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    /** Element access (bounds-checked). */
    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    /** Raw row pointer. */
    float *row(std::size_t r);
    const float *row(std::size_t r) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with a constant. */
    void fill(float v);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace cllm::llm

#endif // CLLM_LLM_TENSOR_HH
