# Empty compiler generated dependencies file for rag_chatbot.
# This may be replaced when dependencies are built.
