# Empty dependencies file for test_attest.
# This may be replaced when dependencies are built.
