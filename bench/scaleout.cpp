/**
 * @file
 * Section V-D4 scale-out study: Llama2-70B across multiple H100s (raw
 * vs confidential vs confidential+IPsec) against a two-socket TDX CPU
 * deployment. The paper: cGPU instances lack RDMA/GPUdirect, so all
 * inter-GPU traffic crosses the host at ~3 GB/s versus ~40 GB/s,
 * eroding the GPU advantage for models that do not fit one GPU.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "llm/perf_cluster.hh"
#include "util/table.hh"

using namespace cllm;

int
main()
{
    bench::banner("Section V-D4", "scaling models beyond one device",
                  "confidential scale-out capped at ~3 GB/s (vs 40), "
                  "IPsec adds up to 90% on links");

    const llm::ModelConfig model = llm::llama2_70b();
    llm::GpuClusterPerfModel cluster;

    Table t({"deployment", "fits?", "latency [ms/tok]", "tput [tok/s]",
             "vs raw 4-GPU"});

    llm::ClusterRunParams p = bench::scaleoutClusterParams();

    p.gpus = 4;
    p.confidential = false;
    const auto raw4 = cluster.run(hw::h100Nvl(), model, p);
    t.addRow({"4x H100 (raw, RDMA)", "yes",
              fmt(1e3 * raw4.meanTokenLatency), fmt(raw4.decodeTput),
              "0.0%"});

    p.confidential = true;
    const auto cc4 = cluster.run(hw::h100Nvl(), model, p);
    t.addRow({"4x cGPU (host-routed)", "yes",
              fmt(1e3 * cc4.meanTokenLatency), fmt(cc4.decodeTput),
              fmtPct(100.0 * (raw4.decodeTput / cc4.decodeTput - 1.0))});

    p.ipsec = true;
    const auto cc4ip = cluster.run(hw::h100Nvl(), model, p);
    t.addRow({"4x cGPU + IPsec", "yes",
              fmt(1e3 * cc4ip.meanTokenLatency), fmt(cc4ip.decodeTput),
              fmtPct(100.0 *
                     (raw4.decodeTput / cc4ip.decodeTput - 1.0))});

    p.ipsec = false;
    p.gpus = 1;
    t.addRow({"1x H100", cluster.fits(hw::h100Nvl(), model, p)
                             ? "yes"
                             : "NO (weights 138 GB > 94 GB)",
              "-", "-", "-"});

    // The CPU alternative: two-socket TDX (Insight 11).
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::RunParams cp = bench::scaleoutCpuParams(cpu);
    const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, cp);
    t.addRow({"2-socket CPU TDX", "yes",
              fmt(1e3 * tdx.timing.meanTokenLatency),
              fmt(tdx.timing.decodeTput),
              fmtPct(100.0 *
                     (raw4.decodeTput / tdx.timing.decodeTput - 1.0))});

    t.print(std::cout);

    std::cout << "\nlink bandwidth: raw "
              << fmt(cluster.linkConfig().rawBwBytes / 1e9, 0)
              << " GB/s, confidential "
              << fmt(cluster.linkConfig().hostRoutedBwBytes / 1e9, 0)
              << " GB/s (no RDMA/GPUdirect on cGPU instances)\n";
    return 0;
}
