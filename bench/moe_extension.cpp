/**
 * @file
 * Extension: mixture-of-experts under TEEs. The paper's intro notes
 * that newer Llama generations introduce MoE on the same
 * computational patterns; this bench extends the Figure 4/9
 * methodology to a Mixtral-8x7B-class model: TEE overheads across
 * backends, and the MoE-specific batch behaviour (expert weight
 * traffic grows with batch until every expert is hot).
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("MoE extension",
           "Mixtral-8x7B (46.7B total / ~12.8B active) in CPU TEEs",
           "(beyond the paper; same mechanisms as dense models)");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::mixtral_8x7b();

    // Backend comparison at a serving-like point (2 sockets: the
    // 93 GB of bf16 weights want both).
    {
        llm::RunParams p;
        p.batch = 4;
        p.inLen = 512;
        p.outLen = 128;
        p.sockets = 2;
        p.cores = cpu.totalCores();
        const auto bare =
            exp.runCpu(cpu, core::Backend::Bare, model, p);
        Table t({"backend", "tput [tok/s]", "latency [ms/tok]",
                 "overhead"});
        for (auto b : {core::Backend::Bare, core::Backend::Vm,
                       core::Backend::Sgx, core::Backend::Tdx}) {
            const auto r = exp.runCpu(cpu, b, model, p);
            t.addRow({r.backend, fmt(r.timing.decodeTput),
                      fmt(1e3 * r.timing.meanTokenLatency),
                      fmtPct(core::Experiment::compare(r, bare)
                                 .tputOverheadPct)});
        }
        t.print(std::cout);
    }

    // MoE batch behaviour: expert traffic saturates.
    std::cout << "\n--- batch sweep (TDX, 2 sockets): expert traffic "
                 "saturation ---\n";
    Table t({"batch", "experts touched/step", "tput [tok/s]",
             "TDX overhead", "tput per seq"});
    for (unsigned batch : {1u, 2u, 4u, 8u, 16u, 64u}) {
        llm::RunParams p;
        p.batch = batch;
        p.inLen = 128;
        p.outLen = 64;
        p.sockets = 2;
        p.cores = cpu.totalCores();
        const auto bare = exp.runCpu(cpu, core::Backend::Bare, model, p);
        const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        t.addRow({std::to_string(batch),
                  fmt(model.expertsTouched(batch), 2),
                  fmt(tdx.timing.decodeTput),
                  fmtPct(core::Experiment::compare(tdx, bare)
                             .tputOverheadPct),
                  fmt(tdx.timing.decodeTput / batch, 2)});
    }
    t.print(std::cout);

    // Dense-equivalent sanity: batch-1 latency near a 13B dense model.
    {
        llm::RunParams p;
        p.batch = 1;
        p.inLen = 128;
        p.outLen = 64;
        p.sockets = 2;
        p.cores = cpu.totalCores();
        const auto moe = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        const auto d13 =
            exp.runCpu(cpu, core::Backend::Tdx, llm::llama2_13b(), p);
        std::cout << "\nbatch-1 TDX latency: Mixtral "
                  << fmt(1e3 * moe.timing.meanTokenLatency)
                  << " ms vs dense 13B "
                  << fmt(1e3 * d13.timing.meanTokenLatency)
                  << " ms (MoE decode streams only routed experts)\n";
    }
    return 0;
}
