# Empty dependencies file for cllm_obs.
# This may be replaced when dependencies are built.
