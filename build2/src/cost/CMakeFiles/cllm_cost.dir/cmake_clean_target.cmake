file(REMOVE_RECURSE
  "libcllm_cost.a"
)
