#include "serve/prefix_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::serve {

PrefixCache::PrefixCache(PrefixMode mode, mem::PagedKvCache *pool,
                         std::uint64_t maxBlocks)
    : mode_(mode), pool_(pool), maxBlocks_(maxBlocks)
{
    if (mode_ == PrefixMode::Off)
        cllm_fatal("PrefixCache constructed with prefix mode off");
    if (!pool_)
        cllm_fatal("PrefixCache requires a paged pool");
    blockTokens_ = pool_->config().blockTokens;
}

PrefixCache::Node *
PrefixCache::rootFor(std::uint32_t tenant)
{
    const std::uint64_t key =
        mode_ == PrefixMode::Global ? 0 : tenant;
    auto it = roots_.find(key);
    if (it == roots_.end()) {
        auto root = std::make_unique<Node>();
        root->id = nextId_++;
        it = roots_.emplace(key, std::move(root)).first;
    }
    return it->second.get();
}

PrefixMatch
PrefixCache::matchImpl(Node *root,
                       const std::vector<std::int32_t> &tokens,
                       double now, bool touch)
{
    PrefixMatch m;
    if (tokens.empty())
        return m;
    // Always leave at least one prompt token to compute: a request
    // whose whole prompt is cached would otherwise have nothing to
    // prefill, and the engine's first-token accounting assumes the
    // prefill step exists.
    const std::uint64_t max_blocks =
        (tokens.size() - 1) / blockTokens_;
    Node *cur = root;
    std::size_t pos = 0;
    while (m.blocks.size() < max_blocks) {
        auto it = cur->children.find(tokens[pos]);
        if (it == cur->children.end())
            break;
        Node *child = it->second.get();
        // Count contiguously matching tokens inside the child's span.
        std::size_t k = 0;
        while (k < child->tokens.size() && pos + k < tokens.size() &&
               child->tokens[k] == tokens[pos + k])
            ++k;
        const std::uint64_t mb =
            std::min<std::uint64_t>(k / blockTokens_,
                                    max_blocks - m.blocks.size());
        if (mb == 0)
            break;
        m.blocks.insert(m.blocks.end(), child->blocks.begin(),
                        child->blocks.begin() +
                            static_cast<std::ptrdiff_t>(mb));
        if (touch)
            child->lastUsed = now;
        pos += static_cast<std::size_t>(mb) * blockTokens_;
        if (mb < child->blocks.size())
            break; // diverged inside this node
        cur = child;
    }
    m.tokens = static_cast<unsigned>(pos);
    return m;
}

PrefixMatch
PrefixCache::peek(std::uint32_t tenant,
                  const std::vector<std::int32_t> &tokens)
{
    return matchImpl(rootFor(tenant), tokens, 0.0, false);
}

PrefixMatch
PrefixCache::commitMatch(std::uint32_t tenant,
                         const std::vector<std::int32_t> &tokens,
                         double now)
{
    PrefixMatch m = matchImpl(rootFor(tenant), tokens, now, true);
    if (m.tokens > 0) {
        ++stats_.hits;
        stats_.hitTokens += m.tokens;
    } else {
        ++stats_.misses;
    }
    return m;
}

void
PrefixCache::insert(std::uint32_t tenant,
                    const std::vector<std::int32_t> &tokens,
                    const std::vector<std::uint32_t> &table,
                    double now)
{
    // Only whole blocks are cacheable; the trailing partial block is
    // mutable (decode appends into it) and is never pinned.
    const std::uint64_t nblocks = std::min<std::uint64_t>(
        tokens.size() / blockTokens_, table.size());
    if (nblocks == 0)
        return;
    Node *cur = rootFor(tenant);
    std::uint64_t pos = 0; // blocks consumed so far
    while (pos < nblocks) {
        auto it = cur->children.find(
            tokens[static_cast<std::size_t>(pos) * blockTokens_]);
        if (it == cur->children.end()) {
            // Append a fresh leaf holding the remaining blocks.
            // Budget pressure first LRU-evicts cold leaves (the node
            // we are appending under is protected — we are inserting
            // into its subtree, so it is hot by definition); whatever
            // room remains truncates the take.
            std::uint64_t take = nblocks - pos;
            if (maxBlocks_ != 0) {
                while (pinnedBlocks_ + take > maxBlocks_) {
                    Node *victim = lruVictim(cur);
                    if (!victim)
                        break;
                    evictLeaf(victim);
                }
                if (pinnedBlocks_ >= maxBlocks_)
                    return;
                take = std::min(take, maxBlocks_ - pinnedBlocks_);
            }
            auto leaf = std::make_unique<Node>();
            leaf->parent = cur;
            leaf->lastUsed = now;
            leaf->id = nextId_++;
            const std::size_t t0 =
                static_cast<std::size_t>(pos) * blockTokens_;
            leaf->tokens.assign(
                tokens.begin() + static_cast<std::ptrdiff_t>(t0),
                tokens.begin() +
                    static_cast<std::ptrdiff_t>(t0 + take *
                                                         blockTokens_));
            leaf->blocks.assign(
                table.begin() + static_cast<std::ptrdiff_t>(pos),
                table.begin() +
                    static_cast<std::ptrdiff_t>(pos + take));
            pool_->pin(leaf->blocks);
            pinnedBlocks_ += take;
            stats_.insertedBlocks += take;
            ++nodes_;
            cur->children.emplace(leaf->tokens.front(),
                                  std::move(leaf));
            return;
        }
        Node *child = it->second.get();
        std::size_t k = 0;
        const std::size_t base =
            static_cast<std::size_t>(pos) * blockTokens_;
        const std::size_t limit = static_cast<std::size_t>(
            (nblocks - pos) * blockTokens_);
        while (k < child->tokens.size() && k < limit &&
               child->tokens[k] == tokens[base + k])
            ++k;
        const std::uint64_t mb = k / blockTokens_;
        if (mb == child->blocks.size()) {
            // Full node match: descend.
            child->lastUsed = now;
            cur = child;
            pos += mb;
            continue;
        }
        if (mb == 0) {
            // Divergence inside the node's first block. Splitting at
            // sub-block granularity would share a partial block,
            // which block-granular KV cannot express — leave the
            // remainder uncached. (Same first token, different block:
            // rare under realistic tokenizations.)
            return;
        }
        // Partial node match: split so the shared head becomes an
        // interior node the new suffix can hang off next time.
        auto mid = std::make_unique<Node>();
        mid->parent = cur;
        mid->lastUsed = child->lastUsed;
        mid->id = nextId_++;
        mid->tokens.assign(child->tokens.begin(),
                           child->tokens.begin() +
                               static_cast<std::ptrdiff_t>(
                                   mb * blockTokens_));
        mid->blocks.assign(child->blocks.begin(),
                           child->blocks.begin() +
                               static_cast<std::ptrdiff_t>(mb));
        // Re-home the child under mid with its head trimmed; pins
        // move with the blocks, so no pool traffic here.
        std::unique_ptr<Node> owned = std::move(it->second);
        cur->children.erase(it);
        owned->tokens.erase(owned->tokens.begin(),
                            owned->tokens.begin() +
                                static_cast<std::ptrdiff_t>(
                                    mb * blockTokens_));
        owned->blocks.erase(owned->blocks.begin(),
                            owned->blocks.begin() +
                                static_cast<std::ptrdiff_t>(mb));
        owned->parent = mid.get();
        mid->children.emplace(owned->tokens.front(),
                              std::move(owned));
        ++nodes_;
        Node *mid_raw = mid.get();
        cur->children.emplace(mid_raw->tokens.front(),
                              std::move(mid));
        mid_raw->lastUsed = now;
        cur = mid_raw;
        pos += mb;
    }
}

void
PrefixCache::evictLeaf(Node *leaf)
{
    stats_.evictedBlocks += leaf->blocks.size();
    ++stats_.evictions;
    pinnedBlocks_ -= leaf->blocks.size();
    pool_->unpin(leaf->blocks);
    --nodes_;
    Node *parent = leaf->parent;
    parent->children.erase(leaf->tokens.front());
}

PrefixCache::Node *
PrefixCache::lruVictim(const Node *exclude)
{
    // LRU over evictable leaves: childless, non-root, and every
    // block cache-only (no running sequence still reads it). Full
    // scan per round keeps the structure simple; ties break by
    // creation id for determinism.
    Node *victim = nullptr;
    for (auto &[key, root] : roots_) {
        (void)key;
        std::vector<Node *> stack{root.get()};
        while (!stack.empty()) {
            Node *n = stack.back();
            stack.pop_back();
            for (auto &[tok, child] : n->children) {
                (void)tok;
                stack.push_back(child.get());
            }
            if (n == exclude || n->parent == nullptr ||
                !n->children.empty())
                continue;
            const bool evictable = std::all_of(
                n->blocks.begin(), n->blocks.end(),
                [this](std::uint32_t b) {
                    return pool_->cacheOnly(b);
                });
            if (!evictable)
                continue;
            if (!victim || n->lastUsed < victim->lastUsed ||
                (n->lastUsed == victim->lastUsed &&
                 n->id < victim->id))
                victim = n;
        }
    }
    return victim;
}

std::uint64_t
PrefixCache::evictToFree(std::uint64_t want, double now)
{
    (void)now;
    std::uint64_t freed = 0;
    while (freed < want) {
        Node *victim = lruVictim(nullptr);
        if (!victim)
            break;
        const std::uint64_t before = pool_->freeBlocks();
        evictLeaf(victim);
        freed += pool_->freeBlocks() - before;
    }
    return freed;
}

bool
PrefixCache::consistent() const
{
    std::uint64_t blocks = 0;
    std::size_t nodes = 0;
    for (const auto &[key, root] : roots_) {
        (void)key;
        std::vector<const Node *> stack{root.get()};
        while (!stack.empty()) {
            const Node *n = stack.back();
            stack.pop_back();
            for (const auto &[tok, child] : n->children) {
                if (child->tokens.empty() ||
                    child->tokens.front() != tok)
                    return false;
                if (child->parent != n)
                    return false;
                stack.push_back(child.get());
            }
            if (n->parent == nullptr) {
                if (!n->tokens.empty() || !n->blocks.empty())
                    return false;
                continue;
            }
            ++nodes;
            if (n->tokens.size() !=
                n->blocks.size() * blockTokens_)
                return false;
            if (n->blocks.empty())
                return false;
            for (std::uint32_t b : n->blocks)
                if (pool_->pinCount(b) == 0)
                    return false;
            blocks += n->blocks.size();
        }
    }
    if (nodes != nodes_)
        return false;
    if (maxBlocks_ != 0 && blocks > maxBlocks_)
        return false;
    return blocks == pinnedBlocks_;
}

} // namespace cllm::serve
