/**
 * @file
 * Functional compute kernels of the inference runtime: blocked GEMM,
 * RMSNorm, softmax, rotary position embeddings, SiLU, bfloat16
 * emulation, and weight-only int8 quantization. These are the real
 * numerics behind the op graph the timing model prices; the unit
 * tests validate them against naive references and the quantization
 * error bounds.
 *
 * The matrix kernels (gemm, gemmTransB, matvec, matvecQuantized) run
 * on the cllm::par pool, partitioned so every parallel chunk owns a
 * disjoint slice of the output and accumulates in the same order as
 * the serial loop — results are bit-identical at any CLLM_THREADS.
 */

#ifndef CLLM_LLM_KERNELS_HH
#define CLLM_LLM_KERNELS_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "llm/tensor.hh"

namespace cllm::llm {

/**
 * C = A (m x k) * B (k x n), cache-blocked and row-parallel.
 * C is overwritten.
 */
void gemm(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * y = W (rows x cols) * x (cols), the decode-path workhorse.
 * y must have `rows` elements.
 */
void matvec(const Tensor &w, const float *x, float *y);

/**
 * C = A (m x k) * B^T where B is (n x k) — the batched-decode path:
 * activations row-major times a weight matrix stored [out x in].
 */
void gemmTransB(const Tensor &a, const Tensor &b, Tensor &c);

/** RMSNorm: y_i = x_i / rms(x) * w_i. */
void rmsnorm(const float *x, const float *weight, float *y,
             std::size_t n, float eps = 1e-5f);

/** In-place numerically-stable softmax over n elements. */
void softmaxInPlace(float *x, std::size_t n);

/**
 * Apply rotary position embeddings to one head vector of even size
 * `head_dim` at position `pos` (Llama convention, theta = 10000).
 */
void applyRope(float *vec, std::size_t head_dim, std::size_t pos,
               float theta = 10000.0f);

/** SiLU activation x * sigmoid(x), elementwise. */
void siluInPlace(float *x, std::size_t n);

/** Round a float to bfloat16 precision (round-to-nearest-even). */
float toBf16(float x);

/** Round every element of a tensor to bfloat16 precision. */
void quantizeBf16(Tensor &t);

/**
 * Weight-only int8 quantization with per-row scales (symmetric).
 */
struct QuantizedTensor
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int8_t> data;  //!< row-major quantized weights
    std::vector<float> scales;      //!< one scale per row

    /** Quantize from float. */
    static QuantizedTensor quantize(const Tensor &w);

    /** Dequantize back to float (for error analysis). */
    Tensor dequantize() const;
};

/** y = Wq * x with on-the-fly dequantization (int32 accumulate). */
void matvecQuantized(const QuantizedTensor &w, const float *x, float *y);

} // namespace cllm::llm

#endif // CLLM_LLM_KERNELS_HH
