# Empty dependencies file for cllm_rag.
# This may be replaced when dependencies are built.
