#include "obs/chrome_export.hh"

#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cllm::obs {

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

/** Seconds -> Chrome microseconds. */
double
usec(double seconds)
{
    return seconds * 1e6;
}

void
writeArgs(JsonWriter &j, const SimEvent &e)
{
    if (e.args.empty() && e.sargs.empty())
        return;
    j.key("args").beginObject();
    for (const auto &[k, v] : e.args)
        j.field(k, v);
    for (const auto &[k, v] : e.sargs)
        j.field(k, v);
    j.endObject();
}

void
writeMetaEvent(JsonWriter &j, int pid, int tid, const char *what,
               const std::string &name)
{
    j.beginObject();
    j.field("ph", "M");
    j.field("pid", pid);
    j.field("tid", tid);
    j.field("name", what);
    j.key("args").beginObject().field("name", name).endObject();
    j.endObject();
}

void
writeSimEvent(JsonWriter &j, const SimEvent &e)
{
    j.beginObject();
    switch (e.ph) {
      case SimEvent::Ph::Complete:
        j.field("ph", "X");
        j.field("ts", usec(e.t0));
        j.field("dur", usec(e.t1 - e.t0));
        break;
      case SimEvent::Ph::Instant:
        j.field("ph", "i");
        j.field("ts", usec(e.t0));
        j.field("s", "t");
        break;
      case SimEvent::Ph::AsyncBegin:
      case SimEvent::Ph::AsyncInstant:
      case SimEvent::Ph::AsyncEnd: {
        const char *ph = e.ph == SimEvent::Ph::AsyncBegin ? "b"
                         : e.ph == SimEvent::Ph::AsyncEnd ? "e"
                                                          : "n";
        j.field("ph", ph);
        j.field("ts", usec(e.t0));
        j.field("cat", e.cat);
        j.field("id", e.id);
        break;
      }
      case SimEvent::Ph::Counter:
        j.field("ph", "C");
        j.field("ts", usec(e.t0));
        break;
    }
    j.field("pid", kSimPid);
    j.field("tid", static_cast<std::int64_t>(e.lane));
    j.field("name", e.name);
    if (e.ph == SimEvent::Ph::Counter) {
        j.key("args").beginObject();
        j.field("value", e.value);
        j.endObject();
    } else {
        writeArgs(j, e);
    }
    j.endObject();
}

void
writeWallEvent(JsonWriter &j, const WallEvent &e)
{
    j.beginObject();
    j.field("ph", "X");
    j.field("ts", static_cast<double>(e.t0Ns) / 1e3);
    j.field("dur", static_cast<double>(e.t1Ns - e.t0Ns) / 1e3);
    j.field("pid", kWallPid);
    j.field("tid", static_cast<std::int64_t>(e.tid));
    j.field("name", e.name);
    j.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer,
                 const Registry *metrics)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("displayTimeUnit", "ms");
    j.key("traceEvents").beginArray();

    writeMetaEvent(j, kSimPid, 0, "process_name", "sim");
    for (const auto &[lane, name] : tracer.lanes())
        writeMetaEvent(j, kSimPid, static_cast<int>(lane),
                       "thread_name", name);

    for (const SimEvent &e : tracer.simEvents())
        writeSimEvent(j, e);

    const std::vector<WallEvent> wall = tracer.collectWall();
    if (!wall.empty()) {
        writeMetaEvent(j, kWallPid, 0, "process_name", "wall");
        for (const WallEvent &e : wall)
            writeWallEvent(j, e);
    }

    j.endArray();
    if (metrics) {
        j.key("metrics");
        metrics->snapshot(j);
    }
    j.endObject();
    os << "\n";
}

std::string
traceOutputPath(const std::string &path, const std::string &fallback)
{
    if (!path.empty())
        return path;
    if (const char *env = std::getenv("CLLM_TRACE_OUT");
        env && *env)
        return env;
    return fallback;
}

void
writeChromeTraceFile(const std::string &path, const Tracer &tracer,
                     const Registry *metrics,
                     const std::string &fallback)
{
    const std::string out = traceOutputPath(path, fallback);
    std::ofstream os(out);
    if (!os.good())
        cllm_fatal("cannot open trace output '", out, "'");
    writeChromeTrace(os, tracer, metrics);
}

} // namespace cllm::obs
