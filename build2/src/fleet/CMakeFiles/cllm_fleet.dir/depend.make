# Empty dependencies file for cllm_fleet.
# This may be replaced when dependencies are built.
