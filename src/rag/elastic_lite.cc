#include "rag/elastic_lite.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.hh"

namespace cllm::rag {

ElasticLite::ElasticLite(AnalyzerConfig analyzer, Bm25Params bm25)
    : analyzer_(analyzer), bm25_(bm25)
{
}

DocId
ElasticLite::index(const std::string &title, const std::string &body)
{
    const DocId id = static_cast<DocId>(docs_.size());
    docs_.push_back({id, title, body});

    const auto terms = analyzer_.analyze(title + " " + body);
    docLens_.push_back(static_cast<std::uint32_t>(terms.size()));
    totalLen_ += static_cast<double>(terms.size());

    std::unordered_map<std::string, std::uint32_t> freqs;
    for (const auto &t : terms)
        ++freqs[t];
    for (const auto &[term, freq] : freqs)
        postings_[term].push_back({id, freq});
    return id;
}

DocId
ElasticLite::bulkIndex(const std::vector<Document> &docs)
{
    if (docs.empty())
        cllm_fatal("bulkIndex: empty batch");
    const DocId first = static_cast<DocId>(docs_.size());
    for (const auto &d : docs)
        index(d.title, d.body);
    return first;
}

const Document &
ElasticLite::doc(DocId id) const
{
    if (id >= docs_.size())
        cllm_fatal("doc id ", id, " out of range");
    return docs_[id];
}

std::vector<SearchHit>
ElasticLite::search(const std::string &query, std::size_t k,
                    SearchStats *stats) const
{
    const auto terms = analyzer_.analyze(query);
    std::unordered_map<DocId, double> scores;
    const double n_docs = static_cast<double>(docs_.size());
    const double avg_len = docs_.empty() ? 1.0 : totalLen_ / n_docs;

    SearchStats local;
    for (const auto &term : terms) {
        ++local.termsLookedUp;
        auto it = postings_.find(term);
        if (it == postings_.end())
            continue;
        const auto &plist = it->second;
        const double df = static_cast<double>(plist.size());
        // Okapi BM25 idf with the Elasticsearch +1 smoothing.
        const double idf =
            std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
        for (const auto &p : plist) {
            ++local.postingsVisited;
            local.bytesTouched += sizeof(Posting);
            const double tf = static_cast<double>(p.freq);
            const double len_norm =
                1.0 - bm25_.b +
                bm25_.b * docLens_[p.doc] / avg_len;
            scores[p.doc] +=
                idf * tf * (bm25_.k1 + 1.0) /
                (tf + bm25_.k1 * len_norm);
        }
    }
    local.docsScored = scores.size();
    local.bytesTouched += scores.size() * (sizeof(DocId) + sizeof(double));

    std::vector<SearchHit> hits;
    hits.reserve(scores.size());
    for (const auto &[id, score] : scores)
        hits.push_back({id, score});
    const std::size_t keep = std::min(k, hits.size());
    std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(),
                      [](const SearchHit &a, const SearchHit &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.id < b.id;
                      });
    hits.resize(keep);
    if (stats)
        *stats = local;
    return hits;
}

double
ElasticLite::scoreDoc(const std::vector<std::string> &query_terms,
                      DocId id) const
{
    if (id >= docs_.size())
        cllm_fatal("scoreDoc: doc id out of range");
    const double n_docs = static_cast<double>(docs_.size());
    const double avg_len = docs_.empty() ? 1.0 : totalLen_ / n_docs;
    double score = 0.0;
    for (const auto &term : query_terms) {
        auto it = postings_.find(term);
        if (it == postings_.end())
            continue;
        const auto &plist = it->second;
        const double df = static_cast<double>(plist.size());
        const double idf =
            std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
        for (const auto &p : plist) {
            if (p.doc != id)
                continue;
            const double tf = static_cast<double>(p.freq);
            const double len_norm =
                1.0 - bm25_.b + bm25_.b * docLens_[id] / avg_len;
            score += idf * tf * (bm25_.k1 + 1.0) /
                     (tf + bm25_.k1 * len_norm);
        }
    }
    return score;
}

std::uint64_t
ElasticLite::indexBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &[term, plist] : postings_)
        bytes += term.size() + plist.size() * sizeof(Posting);
    for (const auto &d : docs_)
        bytes += d.title.size() + d.body.size() + sizeof(Document);
    return bytes;
}

} // namespace cllm::rag
