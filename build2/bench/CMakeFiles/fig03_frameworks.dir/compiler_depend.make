# Empty compiler generated dependencies file for fig03_frameworks.
# This may be replaced when dependencies are built.
