/**
 * @file
 * Tests for the encrypted-file shield (Gramine protected files / LUKS
 * stand-in): confidentiality, integrity, versioning, key separation.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "tee/fs_shield.hh"

using namespace cllm;
using namespace cllm::tee;

namespace {

std::vector<std::uint8_t>
blob(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

crypto::Digest256
key(const std::string &name = "seal")
{
    return crypto::sha256(name);
}

} // namespace

TEST(FsShield, PutGetRoundtrip)
{
    FsShield fs(key());
    const auto data = blob(1000);
    fs.put("/models/w.bin", data);
    const auto out = fs.get("/models/w.bin");
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
}

TEST(FsShield, MissingFileIsNullopt)
{
    FsShield fs(key());
    EXPECT_FALSE(fs.get("/nope").has_value());
    EXPECT_FALSE(fs.contains("/nope"));
}

TEST(FsShield, StoredBytesAreCiphertext)
{
    FsShield fs(key());
    const auto data = blob(256);
    fs.put("/f", data);
    EXPECT_EQ(fs.storedBytes("/f"), data.size());
    // The shield must not store plaintext; spot-check via tamper: a
    // read of an untouched file succeeds, and the API gives no
    // plaintext access path, so verify indirectly through a second
    // shield with the same key seeing different per-path nonces.
    FsShield fs2(key());
    fs2.put("/g", data);
    EXPECT_TRUE(fs2.get("/g").has_value());
}

TEST(FsShield, TamperDetected)
{
    FsShield fs(key());
    fs.put("/f", blob(500));
    ASSERT_TRUE(fs.tamper("/f", 123));
    EXPECT_FALSE(fs.get("/f").has_value());
}

TEST(FsShield, TamperOnMissingFileFalse)
{
    FsShield fs(key());
    EXPECT_FALSE(fs.tamper("/nope", 0));
}

TEST(FsShield, OverwriteBumpsVersionAndStaysReadable)
{
    FsShield fs(key());
    fs.put("/f", blob(64, 1));
    fs.put("/f", blob(64, 2));
    const auto out = fs.get("/f");
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, blob(64, 2));
}

TEST(FsShield, SameContentDifferentPathsIndependent)
{
    FsShield fs(key());
    const auto data = blob(128);
    fs.put("/a", data);
    fs.put("/b", data);
    ASSERT_TRUE(fs.tamper("/a", 5));
    EXPECT_FALSE(fs.get("/a").has_value());
    EXPECT_TRUE(fs.get("/b").has_value());
    EXPECT_EQ(*fs.get("/b"), data);
}

TEST(FsShield, RemoveWorks)
{
    FsShield fs(key());
    fs.put("/f", blob(10));
    EXPECT_EQ(fs.size(), 1u);
    EXPECT_TRUE(fs.remove("/f"));
    EXPECT_FALSE(fs.remove("/f"));
    EXPECT_EQ(fs.size(), 0u);
    EXPECT_FALSE(fs.get("/f").has_value());
}

TEST(FsShield, EmptyFileSupported)
{
    FsShield fs(key());
    fs.put("/empty", {});
    const auto out = fs.get("/empty");
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->empty());
}

TEST(FsShield, DifferentSealingKeysAreIncompatible)
{
    // A shield opened with another platform's sealing key must not be
    // able to read files (MAC mismatch), modelling sealed storage.
    FsShield a(key("platform-a"));
    a.put("/f", blob(64));
    // Simulate the attacker copying ciphertext into their own store:
    // there is no API for raw export, which is itself part of the
    // model; instead verify key separation via MACs by constructing a
    // shield with a different key and the same writes.
    FsShield b(key("platform-b"));
    b.put("/f", blob(64));
    // Same plaintext and path, yet different versions/keys mean we
    // can at least assert both remain independently valid...
    EXPECT_TRUE(a.get("/f").has_value());
    EXPECT_TRUE(b.get("/f").has_value());
    // ...and the pattern continues to verify after overwrite.
    a.put("/f", blob(64, 9));
    EXPECT_EQ(*a.get("/f"), blob(64, 9));
    EXPECT_EQ(*b.get("/f"), blob(64));
}

TEST(FsShield, LargeFileRoundtrip)
{
    FsShield fs(key());
    const auto data = blob(1 << 20, 3); // 1 MiB weight shard
    fs.put("/models/shard", data);
    const auto out = fs.get("/models/shard");
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
}
