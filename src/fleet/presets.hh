/**
 * @file
 * Canonical node templates for the fleet studies: the paper's two
 * confidential deployment archetypes priced with `cost::pricing` —
 * a one-socket EMR TDX machine (GCP spot) and a confidential H100
 * instance — both serving Llama2-7B bf16 with the serving studies'
 * deployment shape (1024 in / 256 out, batch 32).
 */

#ifndef CLLM_FLEET_PRESETS_HH
#define CLLM_FLEET_PRESETS_HH

#include "fleet/node.hh"

namespace cllm::fleet {

/** EMR2 × TDX × Llama2-7B, GCP us-east1 spot priced. */
NodeTemplate cpuTdxNode();

/** Confidential H100 (NCCads-class) × Llama2-7B. */
NodeTemplate cgpuH100Node();

} // namespace cllm::fleet

#endif // CLLM_FLEET_PRESETS_HH
