
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/collective.cc" "src/llm/CMakeFiles/cllm_llm.dir/collective.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/collective.cc.o.d"
  "/root/repo/src/llm/framework.cc" "src/llm/CMakeFiles/cllm_llm.dir/framework.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/framework.cc.o.d"
  "/root/repo/src/llm/kernels.cc" "src/llm/CMakeFiles/cllm_llm.dir/kernels.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/kernels.cc.o.d"
  "/root/repo/src/llm/model_config.cc" "src/llm/CMakeFiles/cllm_llm.dir/model_config.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/model_config.cc.o.d"
  "/root/repo/src/llm/ops.cc" "src/llm/CMakeFiles/cllm_llm.dir/ops.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/ops.cc.o.d"
  "/root/repo/src/llm/perf_cluster.cc" "src/llm/CMakeFiles/cllm_llm.dir/perf_cluster.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/perf_cluster.cc.o.d"
  "/root/repo/src/llm/perf_cpu.cc" "src/llm/CMakeFiles/cllm_llm.dir/perf_cpu.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/perf_cpu.cc.o.d"
  "/root/repo/src/llm/perf_gpu.cc" "src/llm/CMakeFiles/cllm_llm.dir/perf_gpu.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/perf_gpu.cc.o.d"
  "/root/repo/src/llm/runtime.cc" "src/llm/CMakeFiles/cllm_llm.dir/runtime.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/runtime.cc.o.d"
  "/root/repo/src/llm/tensor.cc" "src/llm/CMakeFiles/cllm_llm.dir/tensor.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/tensor.cc.o.d"
  "/root/repo/src/llm/tokenizer.cc" "src/llm/CMakeFiles/cllm_llm.dir/tokenizer.cc.o" "gcc" "src/llm/CMakeFiles/cllm_llm.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/hw/CMakeFiles/cllm_hw.dir/DependInfo.cmake"
  "/root/repo/build2/src/tee/CMakeFiles/cllm_tee.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/cllm_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/cllm_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
