file(REMOVE_RECURSE
  "CMakeFiles/cllm_crypto.dir/aes.cc.o"
  "CMakeFiles/cllm_crypto.dir/aes.cc.o.d"
  "CMakeFiles/cllm_crypto.dir/ctr.cc.o"
  "CMakeFiles/cllm_crypto.dir/ctr.cc.o.d"
  "CMakeFiles/cllm_crypto.dir/hmac.cc.o"
  "CMakeFiles/cllm_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/cllm_crypto.dir/sha256.cc.o"
  "CMakeFiles/cllm_crypto.dir/sha256.cc.o.d"
  "libcllm_crypto.a"
  "libcllm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
