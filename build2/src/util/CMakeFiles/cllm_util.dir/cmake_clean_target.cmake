file(REMOVE_RECURSE
  "libcllm_util.a"
)
