# Empty dependencies file for test_kv_paged.
# This may be replaced when dependencies are built.
