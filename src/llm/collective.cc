#include "llm/collective.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::llm {

namespace {

/** Bounds [begin, end) of chunk c when len splits into n chunks. */
std::pair<std::size_t, std::size_t>
chunkBounds(std::size_t len, unsigned n, unsigned c)
{
    const std::size_t base = len / n;
    const std::size_t extra = len % n;
    const std::size_t begin =
        c * base + std::min<std::size_t>(c, extra);
    const std::size_t size = base + (c < extra ? 1 : 0);
    return {begin, begin + size};
}

} // namespace

double
ringAllReduceFactor(unsigned ranks)
{
    if (ranks == 0)
        cllm_panic("ringAllReduceFactor: zero ranks");
    return 2.0 * (ranks - 1) / static_cast<double>(ranks);
}

CollectiveStats
ringAllReduce(std::vector<std::vector<float>> &ranks)
{
    CollectiveStats stats;
    const unsigned n = static_cast<unsigned>(ranks.size());
    if (n == 0)
        cllm_fatal("ringAllReduce: no ranks");
    const std::size_t len = ranks[0].size();
    for (const auto &r : ranks) {
        if (r.size() != len)
            cllm_fatal("ringAllReduce: ragged buffers");
    }
    if (n == 1 || len == 0)
        return stats;

    // Phase 1: reduce-scatter. In step s, rank r sends its running
    // chunk (r - s) mod n to rank (r + 1) mod n, which accumulates.
    // Within a step, each (rank, chunk) cell is written at most once
    // and never read after being written, so sequential processing
    // matches the simultaneous exchange.
    std::uint64_t sent_per_rank = 0;
    for (unsigned s = 0; s + 1 < n; ++s) {
        std::size_t max_chunk = 0;
        for (unsigned r = 0; r < n; ++r) {
            const unsigned dst = (r + 1) % n;
            const unsigned chunk = (r + n - s % n) % n;
            const auto [b, e] = chunkBounds(len, n, chunk);
            for (std::size_t i = b; i < e; ++i)
                ranks[dst][i] += ranks[r][i];
            max_chunk = std::max(max_chunk, e - b);
        }
        sent_per_rank += max_chunk * sizeof(float);
        ++stats.steps;
    }

    // Phase 2: all-gather. After reduce-scatter, rank r holds the
    // complete sum of chunk (r + 1) mod n; circulate the finished
    // chunks around the ring.
    for (unsigned s = 0; s + 1 < n; ++s) {
        std::size_t max_chunk = 0;
        for (unsigned r = 0; r < n; ++r) {
            const unsigned dst = (r + 1) % n;
            const unsigned chunk = (r + 1 + n - s % n) % n;
            const auto [b, e] = chunkBounds(len, n, chunk);
            for (std::size_t i = b; i < e; ++i)
                ranks[dst][i] = ranks[r][i];
            max_chunk = std::max(max_chunk, e - b);
        }
        sent_per_rank += max_chunk * sizeof(float);
        ++stats.steps;
    }
    stats.bytesSentPerRank = sent_per_rank;
    return stats;
}

CollectiveStats
ringAllGather(std::vector<std::vector<float>> &ranks)
{
    CollectiveStats stats;
    const unsigned n = static_cast<unsigned>(ranks.size());
    if (n == 0)
        cllm_fatal("ringAllGather: no ranks");
    if (n == 1)
        return stats;

    // Concatenate in rank order; each rank forwards every piece it
    // has not originated, so per-rank traffic is the sum of the other
    // ranks' contributions (circulated over n-1 steps).
    std::vector<float> all;
    std::uint64_t other_bytes = 0;
    for (unsigned r = 0; r < n; ++r) {
        all.insert(all.end(), ranks[r].begin(), ranks[r].end());
        other_bytes += ranks[r].size() * sizeof(float);
    }
    // Every rank sends its own buffer n-1 times in a naive ring, but
    // the pipelined ring forwards each chunk once per hop: per-rank
    // sent bytes = total payload minus its own contribution.
    for (unsigned r = 0; r < n; ++r)
        ranks[r] = all;
    stats.steps = n - 1;
    stats.bytesSentPerRank =
        other_bytes - other_bytes / n; // approximately uniform shares
    return stats;
}

} // namespace cllm::llm
