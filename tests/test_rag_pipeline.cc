/**
 * @file
 * Tests for the end-to-end RAG pipelines and their TEE pricing
 * (Section VI / Figure 14).
 */

#include <gtest/gtest.h>

#include "rag/rag_pipeline.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::rag;

namespace {

const BeirDataset &
dataset()
{
    static const BeirDataset ds = [] {
        BeirConfig cfg;
        cfg.numDocs = 800;
        cfg.numQueries = 30;
        cfg.seed = 77;
        return generateBeir(cfg);
    }();
    return ds;
}

const RagPipeline &
pipeline()
{
    static const RagPipeline p(dataset());
    return p;
}

} // namespace

TEST(RagPipeline, RetrievalQualityAboveChance)
{
    for (auto m : {RagMethod::Bm25, RagMethod::RerankedBm25,
                   RagMethod::Sbert}) {
        const auto r = pipeline().evaluate(m);
        EXPECT_GT(r.ndcg10, 0.3) << ragMethodName(m);
        EXPECT_GT(r.mrr, 0.3) << ragMethodName(m);
        EXPECT_EQ(r.queries, 30u);
    }
}

TEST(RagPipeline, Bm25BeatsRandomBaselineByALot)
{
    const auto r = pipeline().evaluate(RagMethod::Bm25);
    // With ~80 relevant of 800 docs, random nDCG@10 ~ 0.1.
    EXPECT_GT(r.ndcg10, 0.5);
}

TEST(RagPipeline, RetrieveReturnsKResults)
{
    const auto hits = pipeline().retrieve(
        RagMethod::Bm25, dataset().queries[0].text, 5);
    EXPECT_LE(hits.size(), 5u);
    EXPECT_FALSE(hits.empty());
}

TEST(RagPipeline, RerankedChangesHeadOrdering)
{
    // Reranking should actually do something on at least one query.
    bool changed = false;
    for (std::size_t q = 0; q < 10; ++q) {
        const auto plain = pipeline().retrieve(
            RagMethod::Bm25, dataset().queries[q].text, 10);
        const auto rr = pipeline().retrieve(
            RagMethod::RerankedBm25, dataset().queries[q].text, 10);
        if (!plain.empty() && !rr.empty() &&
            plain.front().id != rr.front().id)
            changed = true;
    }
    EXPECT_TRUE(changed);
}

TEST(RagPipeline, WorkCountersPopulated)
{
    const auto bm = pipeline().evaluate(RagMethod::Bm25);
    EXPECT_GT(bm.totalBytes, 0u);
    EXPECT_EQ(bm.pairsScored, 0u);
    EXPECT_EQ(bm.queriesEmbedded, 0u);

    const auto rr = pipeline().evaluate(RagMethod::RerankedBm25);
    EXPECT_GT(rr.pairsScored, 0u);

    const auto sb = pipeline().evaluate(RagMethod::Sbert);
    EXPECT_EQ(sb.queriesEmbedded, 30u);
}

TEST(RagPipeline, MethodNames)
{
    EXPECT_STREQ(ragMethodName(RagMethod::Bm25), "BM25");
    EXPECT_STREQ(ragMethodName(RagMethod::RerankedBm25),
                 "Reranked BM25");
    EXPECT_STREQ(ragMethodName(RagMethod::Sbert), "SBERT");
}

TEST(RagTiming, TdxOverheadInPaperBand)
{
    // Figure 14: ~6-7% degradation for TDX on a production-scale
    // Elasticsearch index (we price the counted work against a
    // multi-GB index working set, as deployed).
    const auto cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    const auto tdx = tee::makeTdx();
    const std::uint64_t prod_index = 20ULL * GiB;

    for (auto m : {RagMethod::Bm25, RagMethod::RerankedBm25,
                   RagMethod::Sbert}) {
        const auto eval = pipeline().evaluate(m);
        const auto tb = priceRagRun(cpu, *bare, eval, prod_index, 16);
        const auto tt = priceRagRun(cpu, *tdx, eval, prod_index, 16);
        const double ov =
            100.0 * (tt.meanQuerySeconds / tb.meanQuerySeconds - 1.0);
        EXPECT_GT(ov, 2.0) << ragMethodName(m);
        EXPECT_LT(ov, 9.5) << ragMethodName(m);
    }
}

TEST(RagTiming, VmCheaperThanTdx)
{
    const auto cpu = hw::emr2();
    const auto vm = tee::makeVm();
    const auto tdx = tee::makeTdx();
    const auto eval = pipeline().evaluate(RagMethod::Bm25);
    const auto tv = priceRagRun(cpu, *vm, eval, 20ULL * GiB, 16);
    const auto tt = priceRagRun(cpu, *tdx, eval, 20ULL * GiB, 16);
    EXPECT_LT(tv.meanQuerySeconds, tt.meanQuerySeconds);
}

TEST(RagTiming, RerankedIsSlowest)
{
    const auto cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    const auto idx = pipeline().store().indexBytes();
    const auto bm =
        priceRagRun(cpu, *bare, pipeline().evaluate(RagMethod::Bm25),
                    idx, 16);
    const auto rr = priceRagRun(
        cpu, *bare, pipeline().evaluate(RagMethod::RerankedBm25), idx,
        16);
    const auto sb =
        priceRagRun(cpu, *bare, pipeline().evaluate(RagMethod::Sbert),
                    idx, 16);
    EXPECT_GT(rr.meanQuerySeconds, sb.meanQuerySeconds);
    EXPECT_GT(sb.meanQuerySeconds, bm.meanQuerySeconds);
}

TEST(RagTiming, TotalsScaleWithQueries)
{
    const auto cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    const auto eval = pipeline().evaluate(RagMethod::Bm25);
    const auto t = priceRagRun(cpu, *bare, eval, 1ULL * GiB, 16);
    EXPECT_NEAR(t.totalSeconds, t.meanQuerySeconds * eval.queries,
                1e-12);
}

TEST(RagTimingDeath, NoQueriesFatal)
{
    const auto cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    RagEvalResult empty;
    EXPECT_DEATH(priceRagRun(cpu, *bare, empty, 1, 1), "no queries");
}
