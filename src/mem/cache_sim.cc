#include "mem/cache_sim.hh"

#include "util/logging.hh"

namespace cllm::mem {

CacheSim::CacheSim(CacheConfig cfg) : cfg_(cfg)
{
    if (cfg_.lineBytes == 0 || (cfg_.lineBytes & (cfg_.lineBytes - 1)))
        cllm_fatal("CacheSim: line size must be a power of two");
    if (cfg_.ways == 0)
        cllm_fatal("CacheSim: zero ways");
    const std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines == 0 || lines % cfg_.ways != 0)
        cllm_fatal("CacheSim: size must hold a whole number of sets");
    sets_ = lines / cfg_.ways;
    lines_.resize(lines);
}

bool
CacheSim::access(std::uint64_t addr)
{
    ++clock_;
    const std::uint64_t line_addr = addr / cfg_.lineBytes;
    const std::uint64_t set = line_addr % sets_;
    const std::uint64_t tag = line_addr / sets_;
    Line *base = lines_.data() + set * cfg_.ways;

    Line *invalid = nullptr;
    Line *lru = base;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = clock_;
            ++hits_;
            return true;
        }
        if (!l.valid && !invalid)
            invalid = &l;
        if (l.lastUse < lru->lastUse)
            lru = &l;
    }
    Line *victim = invalid ? invalid : lru;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    ++misses_;
    return false;
}

void
CacheSim::accessRange(std::uint64_t addr, std::uint64_t bytes)
{
    const std::uint64_t first = addr / cfg_.lineBytes;
    const std::uint64_t last = (addr + bytes - 1) / cfg_.lineBytes;
    for (std::uint64_t l = first; l <= last; ++l)
        access(l * cfg_.lineBytes);
}

double
CacheSim::missRatio() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / total : 0.0;
}

void
CacheSim::reset()
{
    for (auto &l : lines_)
        l = Line{};
    clock_ = hits_ = misses_ = 0;
}

} // namespace cllm::mem
