file(REMOVE_RECURSE
  "CMakeFiles/cllm_fleet.dir/autoscaler.cc.o"
  "CMakeFiles/cllm_fleet.dir/autoscaler.cc.o.d"
  "CMakeFiles/cllm_fleet.dir/metrics.cc.o"
  "CMakeFiles/cllm_fleet.dir/metrics.cc.o.d"
  "CMakeFiles/cllm_fleet.dir/node.cc.o"
  "CMakeFiles/cllm_fleet.dir/node.cc.o.d"
  "CMakeFiles/cllm_fleet.dir/presets.cc.o"
  "CMakeFiles/cllm_fleet.dir/presets.cc.o.d"
  "CMakeFiles/cllm_fleet.dir/router.cc.o"
  "CMakeFiles/cllm_fleet.dir/router.cc.o.d"
  "CMakeFiles/cllm_fleet.dir/simulator.cc.o"
  "CMakeFiles/cllm_fleet.dir/simulator.cc.o.d"
  "libcllm_fleet.a"
  "libcllm_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
