# Empty dependencies file for cllm_tee.
# This may be replaced when dependencies are built.
