/**
 * @file
 * Thread-scaling microbench for the cllm::par hot paths: blocked
 * GEMM, batched attention (TinyLlama decode step), AES-CTR bulk
 * encryption, and the dense-retrieval scan. For each kernel the bench
 * resizes the pool through 1/2/4/8 threads (capped by the host),
 * times a fixed workload (best of several repetitions), checks that
 * the parallel result is bit-identical to the single-threaded run,
 * and emits a JSON speedup curve on stdout for CI to record.
 *
 * Usage: thread_scaling [max_threads]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/ctr.hh"
#include "llm/kernels.hh"
#include "llm/runtime.hh"
#include "par/pool.hh"
#include "rag/dense.hh"
#include "util/json.hh"
#include "util/rng.hh"

using namespace cllm;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

llm::Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    llm::Tensor t(r, c);
    Rng rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    return t;
}

/** Order-sensitive checksum over a float buffer: any bitwise
 *  difference (value or position) changes it. */
std::uint64_t
checksum(const float *p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t bits;
        std::memcpy(&bits, &p[i], sizeof(bits));
        h ^= bits;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
checksumBytes(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

struct KernelResult
{
    std::vector<double> seconds;  //!< per thread count, best of reps
    std::vector<double> speedup;  //!< seconds[0] / seconds[i]
    bool deterministic = true;    //!< checksums equal across counts
};

/**
 * Time `work()` (which must leave its output reachable for
 * `digest()`) at each thread count; `reps` repetitions, best time
 * kept.
 */
template <typename Work, typename Digest>
KernelResult
measure(const std::vector<unsigned> &threads, int reps, Work &&work,
        Digest &&digest)
{
    KernelResult r;
    std::uint64_t base_digest = 0;
    for (std::size_t ti = 0; ti < threads.size(); ++ti) {
        par::setThreadCount(threads[ti]);
        work(); // warm-up (pages, pool spin-up)
        double best = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            const double t0 = now();
            work();
            best = std::min(best, now() - t0);
        }
        const std::uint64_t d = digest();
        if (ti == 0)
            base_digest = d;
        else if (d != base_digest)
            r.deterministic = false;
        r.seconds.push_back(best);
        r.speedup.push_back(r.seconds[0] / best);
    }
    return r;
}

void
emitKernel(JsonWriter &j, const std::string &name,
           const KernelResult &r)
{
    j.key(name).beginObject();
    j.key("seconds").beginArray();
    for (double s : r.seconds)
        j.value(s);
    j.endArray();
    j.key("speedup").beginArray();
    for (double s : r.speedup)
        j.value(s);
    j.endArray();
    j.field("deterministic", r.deterministic);
    j.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned max_threads = 8;
    if (argc > 1)
        max_threads = static_cast<unsigned>(
            std::max(1L, std::strtol(argv[1], nullptr, 10)));
    std::vector<unsigned> threads;
    for (unsigned t = 1; t <= max_threads; t *= 2)
        threads.push_back(t);

    // GEMM: 320^3, ~65 MFLOP per call.
    const llm::Tensor ga = randomTensor(320, 320, 1);
    const llm::Tensor gb = randomTensor(320, 320, 2);
    llm::Tensor gc(320, 320);
    const auto gemm_r = measure(
        threads, 5, [&] { llm::gemm(ga, gb, gc); },
        [&] { return checksum(gc.data(), gc.size()); });

    // Attention: batched TinyLlama decode step, batch 8, after a
    // 64-token prefill per sequence (context makes attention the
    // dominant term).
    llm::ModelConfig cfg;
    cfg.layers = 2;
    cfg.hidden = 256;
    cfg.heads = 16;
    cfg.kvHeads = 16;
    cfg.ffn = 512;
    cfg.vocab = 258;
    const llm::TinyLlama model(cfg, hw::Dtype::Fp32, 7);
    constexpr unsigned kBatch = 8;
    std::vector<llm::KvCache> caches(kBatch, model.makeCache());
    std::vector<llm::KvCache *> ptrs;
    for (auto &c : caches)
        ptrs.push_back(&c);
    {
        par::setThreadCount(1);
        std::vector<llm::TokenId> warm(kBatch, 1);
        for (int i = 0; i < 64; ++i)
            model.forwardBatch(warm, ptrs);
    }
    const std::size_t ctx_len = caches[0].length();
    std::vector<std::vector<float>> attn_logits;
    const auto attn_r = measure(
        threads, 5,
        [&] {
            // Rebuild cache length by truncating is not possible;
            // instead decode one step against the fixed prefill by
            // copying the caches each call. The copy is identical
            // work at every thread count, so speedups stay honest.
            std::vector<llm::KvCache> local = caches;
            std::vector<llm::KvCache *> lp;
            for (auto &c : local)
                lp.push_back(&c);
            std::vector<llm::TokenId> toks(kBatch, 2);
            attn_logits = model.forwardBatch(toks, lp);
        },
        [&] {
            std::uint64_t h = 0;
            for (const auto &l : attn_logits)
                h ^= checksum(l.data(), l.size());
            return h;
        });

    // AES-CTR: 8 MiB in-place transform. XOR twice returns the
    // buffer to its original contents, keeping reps comparable.
    crypto::AesKey key{};
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const crypto::AesCtr ctr(key);
    std::vector<std::uint8_t> buf(8u << 20);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i);
    const auto ctr_r = measure(
        threads, 3,
        [&] {
            ctr.transform(0x746565ULL, 1, buf);
            ctr.transform(0x746565ULL, 1, buf);
        },
        [&] { return checksumBytes(buf.data(), buf.size()); });

    // Dense retrieval: top-16 scan over 20k vectors, dim 256.
    constexpr unsigned kDim = 256;
    rag::DenseIndex index(kDim);
    {
        Rng rng(11);
        std::vector<float> v(kDim);
        for (unsigned i = 0; i < 20000; ++i) {
            double norm = 0.0;
            for (auto &x : v) {
                x = static_cast<float>(rng.gaussian(0.0, 1.0));
                norm += static_cast<double>(x) * x;
            }
            const float inv =
                static_cast<float>(1.0 / std::sqrt(norm));
            for (auto &x : v)
                x *= inv;
            index.add(i, v);
        }
    }
    std::vector<float> query(kDim, 0.0f);
    query[0] = 1.0f;
    std::vector<rag::SearchHit> hits;
    const auto rag_r = measure(
        threads, 5, [&] { hits = index.search(query, 16); },
        [&] {
            std::uint64_t h = 1469598103934665603ULL;
            for (const auto &hit : hits) {
                h ^= hit.id;
                h *= 1099511628211ULL;
                std::uint64_t bits;
                std::memcpy(&bits, &hit.score, sizeof(bits));
                h ^= bits;
                h *= 1099511628211ULL;
            }
            return h;
        });

    par::setThreadCount(0); // restore the default pool

    JsonWriter j(std::cout);
    j.beginObject();
    j.key("bench").value("thread_scaling");
    j.key("attention_context").value(
        static_cast<std::int64_t>(ctx_len));
    j.key("threads").beginArray();
    for (unsigned t : threads)
        j.value(t);
    j.endArray();
    j.key("kernels").beginObject();
    emitKernel(j, "gemm", gemm_r);
    emitKernel(j, "attention", attn_r);
    emitKernel(j, "ctr", ctr_r);
    emitKernel(j, "retrieval", rag_r);
    j.endObject();
    j.endObject();
    std::cout << "\n";

    const bool all_deterministic =
        gemm_r.deterministic && attn_r.deterministic &&
        ctr_r.deterministic && rag_r.deterministic;
    if (!all_deterministic) {
        std::cerr << "thread_scaling: results varied across thread "
                     "counts — determinism contract broken\n";
        return 1;
    }
    return 0;
}
