file(REMOVE_RECURSE
  "CMakeFiles/test_kv_paged.dir/test_kv_paged.cc.o"
  "CMakeFiles/test_kv_paged.dir/test_kv_paged.cc.o.d"
  "test_kv_paged"
  "test_kv_paged.pdb"
  "test_kv_paged[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_paged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
