/**
 * @file
 * Tests for dense retrieval: MiniSbert embedding properties and the
 * brute-force cosine index.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "par/pool.hh"
#include "rag/dense.hh"
#include "util/rng.hh"

using namespace cllm;
using namespace cllm::rag;

TEST(MiniSbert, EmbeddingIsUnitNorm)
{
    MiniSbert s;
    const auto v = s.embed("confidential inference in enclaves");
    double norm = 0.0;
    for (float x : v)
        norm += static_cast<double>(x) * x;
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
    EXPECT_EQ(v.size(), s.dim());
}

TEST(MiniSbert, Deterministic)
{
    MiniSbert s;
    EXPECT_EQ(s.embed("hello world"), s.embed("hello world"));
}

TEST(MiniSbert, SimilarTextsCloserThanDissimilar)
{
    MiniSbert s;
    const auto a = s.embed("gpu inference with trusted hardware");
    const auto b = s.embed("trusted hardware gpu inference speed");
    const auto c = s.embed("pancake recipe with maple syrup");
    EXPECT_GT(cosine(a, b), cosine(a, c));
}

TEST(MiniSbert, WordOrderMattersViaBigrams)
{
    MiniSbert s;
    const auto ab = s.embed("alpha beta gamma delta");
    const auto ba = s.embed("delta gamma beta alpha");
    EXPECT_LT(cosine(ab, ba), 0.999999);
    EXPECT_GT(cosine(ab, ba), 0.5); // same unigrams keep them close
}

TEST(MiniSbert, EmptyTextSafe)
{
    MiniSbert s;
    const auto v = s.embed("");
    EXPECT_EQ(v.size(), s.dim());
}

TEST(MiniSbert, StatsAccumulate)
{
    MiniSbert s;
    DenseStats st;
    s.embed("one two three", &st);
    EXPECT_GT(st.embedFlops, 0u);
    EXPECT_GT(st.bytesTouched, 0u);
}

TEST(Cosine, BasicProperties)
{
    const std::vector<float> x = {1.0f, 0.0f};
    const std::vector<float> y = {0.0f, 1.0f};
    const std::vector<float> nx = {-1.0f, 0.0f};
    EXPECT_NEAR(cosine(x, x), 1.0, 1e-9);
    EXPECT_NEAR(cosine(x, y), 0.0, 1e-9);
    EXPECT_NEAR(cosine(x, nx), -1.0, 1e-9);
}

TEST(Cosine, ZeroVectorIsZero)
{
    const std::vector<float> x = {1.0f, 2.0f};
    const std::vector<float> z = {0.0f, 0.0f};
    EXPECT_EQ(cosine(x, z), 0.0);
}

TEST(CosineDeath, DimensionMismatchPanics)
{
    const std::vector<float> a = {1.0f};
    const std::vector<float> b = {1.0f, 2.0f};
    EXPECT_DEATH(cosine(a, b), "mismatch");
}

TEST(DenseIndex, FindsNearestNeighbor)
{
    MiniSbert s;
    DenseIndex idx(s.dim());
    idx.add(0, s.embed("cats and dogs are pets"));
    idx.add(1, s.embed("tdx enclaves encrypt memory"));
    idx.add(2, s.embed("stock market prices fall"));
    const auto hits =
        idx.search(s.embed("memory encryption in tdx enclaves"), 2);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].id, 1u);
}

TEST(DenseIndex, TopKOrderingAndTruncation)
{
    MiniSbert s;
    DenseIndex idx(s.dim());
    for (DocId i = 0; i < 10; ++i)
        idx.add(i, s.embed("document number " + std::to_string(i)));
    const auto hits = idx.search(s.embed("document number 3"), 4);
    ASSERT_EQ(hits.size(), 4u);
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_GE(hits[i - 1].score, hits[i].score);
}

TEST(DenseIndex, SelfQueryRanksFirst)
{
    MiniSbert s;
    DenseIndex idx(s.dim());
    const std::string text = "unique marker phrase xyzzy plugh";
    idx.add(7, s.embed(text));
    idx.add(8, s.embed("completely unrelated content"));
    const auto hits = idx.search(s.embed(text), 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, 7u);
    EXPECT_NEAR(hits[0].score, 1.0, 1e-4);
}

TEST(DenseIndex, StatsCountComparisons)
{
    MiniSbert s;
    DenseIndex idx(s.dim());
    for (DocId i = 0; i < 5; ++i)
        idx.add(i, s.embed(std::to_string(i)));
    DenseStats st;
    idx.search(s.embed("3"), 2, &st);
    EXPECT_EQ(st.vectorsCompared, 5u);
    EXPECT_GT(st.bytesTouched, 0u);
}

TEST(DenseIndex, ParallelScanBitIdenticalAcrossThreadCounts)
{
    // Enough vectors for several 512-vector scan chunks, including
    // duplicate vectors so tie-breaking by id is exercised.
    constexpr unsigned kDim = 32;
    DenseIndex idx(kDim);
    Rng rng(77);
    std::vector<float> v(kDim);
    for (DocId i = 0; i < 2000; ++i) {
        if (i % 97 != 0 || i == 0) {
            double norm = 0.0;
            for (auto &x : v) {
                x = static_cast<float>(rng.gaussian(0.0, 1.0));
                norm += static_cast<double>(x) * x;
            }
            const float inv =
                static_cast<float>(1.0 / std::sqrt(norm));
            for (auto &x : v)
                x *= inv;
        } // else: re-add the previous vector under a new id (a tie)
        idx.add(i, v);
    }
    std::vector<float> query(kDim, 0.0f);
    query[0] = 0.6f;
    query[1] = 0.8f;

    par::setThreadCount(1);
    DenseStats serial_stats;
    const auto serial = idx.search(query, 25, &serial_stats);
    ASSERT_EQ(serial.size(), 25u);

    for (unsigned threads : {2u, 4u, 8u}) {
        par::setThreadCount(threads);
        DenseStats stats;
        const auto parallel = idx.search(query, 25, &stats);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].id, parallel[i].id) << "rank " << i;
            EXPECT_EQ(serial[i].score, parallel[i].score)
                << "rank " << i;
        }
        EXPECT_EQ(stats.vectorsCompared, serial_stats.vectorsCompared);
        EXPECT_EQ(stats.bytesTouched, serial_stats.bytesTouched);
        EXPECT_EQ(stats.embedFlops, serial_stats.embedFlops);
    }
    par::setThreadCount(0);
}

TEST(DenseIndex, SearchKeepsAtMostKEvenWhenKExceedsIndex)
{
    constexpr unsigned kDim = 4;
    DenseIndex idx(kDim);
    idx.add(1, {1.0f, 0.0f, 0.0f, 0.0f});
    idx.add(2, {0.0f, 1.0f, 0.0f, 0.0f});
    const auto hits =
        idx.search({1.0f, 0.0f, 0.0f, 0.0f}, 10);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].id, 1u);
}

TEST(DenseIndexDeath, WrongDimensionFatal)
{
    DenseIndex idx(8);
    EXPECT_DEATH(idx.add(0, std::vector<float>(4)), "dimension");
    EXPECT_DEATH(idx.search(std::vector<float>(4), 1), "dimension");
}
