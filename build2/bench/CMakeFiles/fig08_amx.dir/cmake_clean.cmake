file(REMOVE_RECURSE
  "CMakeFiles/fig08_amx.dir/fig08_amx.cpp.o"
  "CMakeFiles/fig08_amx.dir/fig08_amx.cpp.o.d"
  "fig08_amx"
  "fig08_amx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_amx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
