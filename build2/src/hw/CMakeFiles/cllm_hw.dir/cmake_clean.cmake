file(REMOVE_RECURSE
  "CMakeFiles/cllm_hw.dir/cpu.cc.o"
  "CMakeFiles/cllm_hw.dir/cpu.cc.o.d"
  "CMakeFiles/cllm_hw.dir/gpu.cc.o"
  "CMakeFiles/cllm_hw.dir/gpu.cc.o.d"
  "libcllm_hw.a"
  "libcllm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
