/**
 * @file
 * GPU hardware description for the timing model: NVIDIA H100 NVL as
 * used in the paper's Section V (94 GB HBM3, PCIe Gen5 host link,
 * confidential-compute bounce buffer).
 */

#ifndef CLLM_HW_GPU_HH
#define CLLM_HW_GPU_HH

#include <string>

#include "hw/cpu.hh"

namespace cllm::hw {

/** One GPU accelerator. */
struct GpuSpec
{
    std::string name;
    double bf16Flops = 990e12 * 0.5; //!< dense TFLOPs x efficiency
    double int8Ops = 1980e12 * 0.5;
    double fp32Flops = 67e12 * 0.6;
    double hbmBwBytes = 3.35e12;     //!< HBM3 effective bandwidth
    double hbmBytes = 94e9;
    double pcieBwBytes = 55e9;       //!< Gen5 x16 effective
    double kernelLaunchUs = 4.0;     //!< non-CC launch overhead

    // Confidential-compute parameters (Section V-A).
    double ccLaunchExtraUs = 12.0;   //!< encrypted command buffers
    double ccBounceBwBytes = 4e9;    //!< encrypted PCIe bounce buffer
    bool hbmEncrypted = false;       //!< H100: HBM is NOT encrypted

    /** Peak ops for a dtype. */
    double peakOps(Dtype dtype) const;
};

/** H100 NVL 94 GB (approx. $30,000). */
GpuSpec h100Nvl();

} // namespace cllm::hw

#endif // CLLM_HW_GPU_HH
