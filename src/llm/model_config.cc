#include "llm/model_config.hh"

#include <cmath>

namespace cllm::llm {

std::uint64_t
ModelConfig::attnParamsPerLayer() const
{
    const std::uint64_t d = hidden;
    const std::uint64_t dkv = kvDim();
    // Q and O are d x d; K and V are d x kvDim.
    return d * d * 2 + d * dkv * 2;
}

std::uint64_t
ModelConfig::expertParams() const
{
    const std::uint64_t d = hidden;
    const std::uint64_t f = ffn;
    return gatedMlp ? 3ULL * d * f : 2ULL * d * f;
}

std::uint64_t
ModelConfig::mlpParamsPerLayer() const
{
    if (!isMoe())
        return expertParams();
    // All experts plus the router matrix.
    return numExperts * expertParams() +
           static_cast<std::uint64_t>(hidden) * numExperts;
}

std::uint64_t
ModelConfig::numParams() const
{
    const std::uint64_t d = hidden;
    const std::uint64_t embed = static_cast<std::uint64_t>(vocab) * d;
    const std::uint64_t head = tiedEmbeddings ? 0 : embed;
    const std::uint64_t norms = layers * 2ULL * d + d;
    return embed + head + norms +
           layers * (attnParamsPerLayer() + mlpParamsPerLayer());
}

std::uint64_t
ModelConfig::matmulParams() const
{
    // Weights each generated token multiplies through: every block's
    // projections plus the LM head. MoE tokens only run their routed
    // experts (the "active" parameter count).
    const std::uint64_t mlp_active =
        isMoe() ? expertsPerToken * expertParams() +
                      static_cast<std::uint64_t>(hidden) * numExperts
                : mlpParamsPerLayer();
    return layers * (attnParamsPerLayer() + mlp_active) +
           static_cast<std::uint64_t>(vocab) * hidden;
}

double
ModelConfig::expertsTouched(double nseq) const
{
    if (!isMoe())
        return 1.0;
    // Each of nseq tokens picks expertsPerToken of numExperts
    // (approximately uniformly); the expected number of distinct
    // experts is E * (1 - (1 - k/E)^n).
    const double e = numExperts;
    const double k = expertsPerToken;
    const double miss = std::pow(1.0 - k / e, nseq);
    return e * (1.0 - miss);
}

double
ModelConfig::weightBytes(hw::Dtype dtype) const
{
    return static_cast<double>(numParams()) * hw::dtypeBytes(dtype);
}

double
ModelConfig::kvBytesPerToken(hw::Dtype dtype) const
{
    // KV cache stays in activation precision under weight-only
    // quantization: bf16 for bf16/int8 runs, fp32 for fp32 runs.
    const double act_bytes = dtype == hw::Dtype::Fp32 ? 4.0 : 2.0;
    return 2.0 * layers * static_cast<double>(kvDim()) * act_bytes;
}

ModelConfig
llama2_7b()
{
    ModelConfig m;
    m.name = "Llama2-7B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 32;
    m.ffn = 11008;
    m.vocab = 32000;
    return m;
}

ModelConfig
llama2_13b()
{
    ModelConfig m;
    m.name = "Llama2-13B";
    m.layers = 40;
    m.hidden = 5120;
    m.heads = 40;
    m.kvHeads = 40;
    m.ffn = 13824;
    m.vocab = 32000;
    return m;
}

ModelConfig
llama2_70b()
{
    ModelConfig m;
    m.name = "Llama2-70B";
    m.layers = 80;
    m.hidden = 8192;
    m.heads = 64;
    m.kvHeads = 8;
    m.ffn = 28672;
    m.vocab = 32000;
    return m;
}

ModelConfig
llama3_8b()
{
    ModelConfig m;
    m.name = "Llama3-8B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 8;
    m.ffn = 14336;
    m.vocab = 128256;
    m.maxContext = 8192;
    return m;
}

ModelConfig
gptj_6b()
{
    ModelConfig m;
    m.name = "GPT-J-6B";
    m.layers = 28;
    m.hidden = 4096;
    m.heads = 16;
    m.kvHeads = 16;
    m.ffn = 16384;
    m.vocab = 50400;
    m.gatedMlp = false;
    return m;
}

ModelConfig
falcon_7b()
{
    ModelConfig m;
    m.name = "Falcon-7B";
    m.layers = 32;
    m.hidden = 4544;
    m.heads = 71;
    m.kvHeads = 1; // multi-query attention
    m.ffn = 18176;
    m.vocab = 65024;
    m.gatedMlp = false;
    return m;
}

ModelConfig
baichuan2_7b()
{
    ModelConfig m;
    m.name = "Baichuan2-7B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 32;
    m.ffn = 11008;
    m.vocab = 125696;
    return m;
}

ModelConfig
qwen_7b()
{
    ModelConfig m;
    m.name = "Qwen-7B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 32;
    m.ffn = 11008;
    m.vocab = 151936;
    return m;
}

ModelConfig
mixtral_8x7b()
{
    ModelConfig m;
    m.name = "Mixtral-8x7B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 8;
    m.ffn = 14336;
    m.vocab = 32000;
    m.maxContext = 32768;
    m.numExperts = 8;
    m.expertsPerToken = 2;
    return m;
}

} // namespace cllm::llm
