/**
 * @file
 * Fleet simulator tests: determinism (same fleet seed → bit-identical
 * FleetMetrics JSON), the split-seed independence property (adding a
 * node changes no other node's fault or workload draws), exact
 * equivalence of a 1-node Null-router fleet with a bare
 * `serve::Server` run, router policy behaviour, autoscaler dynamics,
 * and a golden regression over a mixed fleet under faults
 * (`CLLM_REGEN_GOLDEN=1` regenerates).
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "fleet/presets.hh"
#include "fleet/simulator.hh"
#include "golden_util.hh"
#include "obs/chrome_export.hh"
#include "obs/trace.hh"
#include "par/pool.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::fleet;

namespace {

fault::FaultScheduleConfig
faultConfig()
{
    fault::FaultScheduleConfig fs;
    fs.horizon = 700.0;
    fs.attestFail = {1.0 / 120.0, 4.0, 0.0};
    fs.enclaveRestart = {1.0 / 250.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 90.0, 10.0, 1.7};
    fs.kvExhaustion = {1.0 / 150.0, 15.0, 0.5};
    return fs;
}

NodeTemplate
faultyCpuTemplate()
{
    NodeTemplate t = cpuTdxNode();
    t.faults = faultConfig();
    t.server.resilience.requestTimeout = 120.0;
    t.server.resilience.maxRetries = 3;
    t.server.resilience.retryBackoff = 0.5;
    t.server.resilience.shedOnKvPressure = true;
    t.server.resilience.shedThreshold = 0.95;
    t.server.resilience.degradedMaxBatch = 8;
    return t;
}

/** The canonical mixed fleet the determinism and golden tests run:
 *  faulty TDX nodes + one cGPU spill target, cost-aware routing,
 *  autoscaler adding TDX nodes on queue pressure. */
FleetConfig
mixedFleetConfig()
{
    FleetConfig cfg;
    cfg.seed = 42;
    cfg.policy = RouterPolicy::CostAware;
    cfg.ttftSlo = 2.0;
    cfg.initialNodes = {0, 1};
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.intervalSec = 10.0;
    cfg.autoscaler.queueHighPerNode = 4.0;
    cfg.autoscaler.queueLowPerNode = 0.5;
    cfg.autoscaler.drainAfterTicks = 3;
    cfg.autoscaler.minNodes = 2;
    cfg.autoscaler.maxNodes = 6;
    cfg.autoscaler.addTemplate = 0;
    cfg.autoscaler.cooldownSec = 20.0;
    return cfg;
}

std::vector<serve::Request>
burstyTrace(double rate = 2.0, std::size_t n = 300)
{
    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.process = serve::ArrivalProcess::BurstyOnOff;
    load.arrivalRate = rate;
    load.numRequests = n;
    return serve::generateWorkload(load);
}

std::string
fleetJson(const FleetMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    writeFleetMetrics(json, m);
    return os.str();
}

std::string
serveJson(const serve::ServeMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    serve::writeMetrics(json, m);
    return os.str();
}

void
flattenFleet(std::map<std::string, double> &out,
             const std::string &prefix, const FleetMetrics &m)
{
    out[prefix + ".submitted"] = static_cast<double>(m.submitted);
    out[prefix + ".completed"] = static_cast<double>(m.completed);
    out[prefix + ".availability"] = m.availability;
    out[prefix + ".makespan"] = m.makespan;
    out[prefix + ".outputTokens"] =
        static_cast<double>(m.outputTokens);
    out[prefix + ".tokensPerSecond"] = m.tokensPerSecond;
    out[prefix + ".ttft.p50"] = m.ttft.p50;
    out[prefix + ".ttft.p99"] = m.ttft.p99;
    out[prefix + ".tpot.p50"] = m.tpot.p50;
    out[prefix + ".tpot.p99"] = m.tpot.p99;
    out[prefix + ".sloAttainment"] = m.sloAttainment;
    out[prefix + ".kvUtilizationPeak"] = m.kvUtilizationPeak;
    out[prefix + ".meanBatchOccupancy"] = m.meanBatchOccupancy;
    out[prefix + ".totalCostUsd"] = m.totalCostUsd;
    out[prefix + ".costPer1kTokens"] = m.costPer1kTokens;
    out[prefix + ".peakNodes"] = static_cast<double>(m.peakNodes);
    out[prefix + ".meanLiveNodes"] = m.meanLiveNodes;
    out[prefix + ".scaleUps"] = static_cast<double>(m.scaleUps);
    out[prefix + ".drains"] = static_cast<double>(m.drains);
    out[prefix + ".backlogged"] = static_cast<double>(m.backlogged);
    out[prefix + ".retries"] = static_cast<double>(m.retries);
    out[prefix + ".shed"] = static_cast<double>(m.shed);
    out[prefix + ".restarts"] = static_cast<double>(m.restarts);
    out[prefix + ".faultDowntime"] = m.faultDowntime;
    for (const NodeSummary &n : m.nodes) {
        const std::string np =
            prefix + ".node" + std::to_string(n.id);
        out[np + ".billedSeconds"] = n.billedSeconds;
        out[np + ".costUsd"] = n.costUsd;
        out[np + ".completed"] =
            static_cast<double>(n.serve.completed);
        out[np + ".tokensPerSecond"] = n.serve.tokensPerSecond;
    }
}

} // namespace

TEST(FleetDeterminism, SameSeedBitIdenticalJson)
{
    const auto trace = burstyTrace();
    const std::vector<NodeTemplate> templates = {faultyCpuTemplate(),
                                                 cgpuH100Node()};
    FleetSimulator a(mixedFleetConfig(), templates);
    FleetSimulator b(mixedFleetConfig(), templates);
    const std::string ja = fleetJson(a.run(trace));
    const std::string jb = fleetJson(b.run(trace));
    EXPECT_EQ(ja, jb);
    EXPECT_GT(ja.size(), 100u);
}

TEST(FleetDeterminism, DifferentSeedDifferentFaultDraws)
{
    const auto trace = burstyTrace();
    const std::vector<NodeTemplate> templates = {faultyCpuTemplate(),
                                                 cgpuH100Node()};
    FleetConfig cfg = mixedFleetConfig();
    FleetSimulator a(cfg, templates);
    cfg.seed = 43;
    FleetSimulator b(cfg, templates);
    EXPECT_NE(fleetJson(a.run(trace)), fleetJson(b.run(trace)));
}

TEST(FleetSplitSeed, ScheduleDependsOnlyOnSeedAndId)
{
    const fault::FaultScheduleConfig fs = faultConfig();
    const auto s1 = nodeFaultSchedule(fs, 42, 3, 0.0);
    const auto s2 = nodeFaultSchedule(fs, 42, 3, 0.0);
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1.events()[i].kind, s2.events()[i].kind);
        EXPECT_EQ(s1.events()[i].time, s2.events()[i].time);
        EXPECT_EQ(s1.events()[i].duration, s2.events()[i].duration);
    }
    // Sibling nodes draw from decorrelated streams.
    const auto other = nodeFaultSchedule(fs, 42, 4, 0.0);
    bool differs = other.size() != s1.size();
    for (std::size_t i = 0; !differs && i < s1.size(); ++i)
        differs = s1.events()[i].time != other.events()[i].time;
    EXPECT_TRUE(differs);
}

TEST(FleetSplitSeed, CommissionTimeShiftsSchedule)
{
    const fault::FaultScheduleConfig fs = faultConfig();
    const auto base = nodeFaultSchedule(fs, 7, 0, 0.0);
    const auto late = nodeFaultSchedule(fs, 7, 0, 100.0);
    ASSERT_EQ(base.size(), late.size());
    ASSERT_FALSE(base.empty());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_DOUBLE_EQ(base.events()[i].time + 100.0,
                         late.events()[i].time);
}

// The acceptance property: growing the fleet must not perturb any
// existing node's fault or workload draws. Under a Null router all
// traffic lands on node 0, so node 0's per-node metrics must be
// bit-identical whether or not a second node exists.
TEST(FleetSplitSeed, AddingANodeLeavesOthersUnchanged)
{
    const auto trace = burstyTrace(1.0, 150);
    const std::vector<NodeTemplate> templates = {faultyCpuTemplate()};

    FleetConfig cfg;
    cfg.seed = 42;
    cfg.policy = RouterPolicy::Null;
    cfg.initialNodes = {0};
    FleetSimulator solo(cfg, templates);
    const FleetMetrics ms = solo.run(trace);

    cfg.initialNodes = {0, 0};
    FleetSimulator duo(cfg, templates);
    const FleetMetrics md = duo.run(trace);

    ASSERT_EQ(md.nodes.size(), 2u);
    EXPECT_EQ(serveJson(ms.nodes[0].serve),
              serveJson(md.nodes[0].serve));
    EXPECT_EQ(md.nodes[1].serve.completed, 0u);
}

TEST(FleetEquivalence, OneNodeNullFleetMatchesBareServer)
{
    const serve::WorkloadConfig load = bench::serveSeedWorkload();
    const NodeTemplate tmpl = cpuTdxNode();

    serve::Server server(tmpl.makeStep(), tmpl.server);
    const serve::ServeMetrics direct =
        server.run(serve::generateWorkload(load));

    FleetConfig cfg;
    cfg.seed = 1;
    cfg.policy = RouterPolicy::Null;
    cfg.initialNodes = {0};
    FleetSimulator sim(cfg, {tmpl});
    const FleetMetrics m = sim.run(serve::generateWorkload(load));

    ASSERT_EQ(m.nodes.size(), 1u);
    EXPECT_EQ(serveJson(direct), serveJson(m.nodes[0].serve));
    EXPECT_EQ(m.completed, direct.completed);
    EXPECT_EQ(m.ttft.p99, direct.ttft.p99);
    EXPECT_EQ(m.tpot.p99, direct.tpot.p99);
    EXPECT_EQ(m.makespan, direct.makespan);
}

TEST(FleetEquivalence, OneNodeNullFleetMatchesBareServerUnderFaults)
{
    const serve::WorkloadConfig load = bench::serveSeedWorkload();
    const NodeTemplate tmpl = faultyCpuTemplate();
    const std::uint64_t fleet_seed = 42;

    // Feed the bare server the exact schedule the fleet derives for
    // node 0 under this fleet seed.
    serve::ServerConfig direct_cfg = tmpl.server;
    direct_cfg.faults =
        nodeFaultSchedule(tmpl.faults, fleet_seed, 0, 0.0);
    serve::Server server(tmpl.makeStep(), direct_cfg);
    const serve::ServeMetrics direct =
        server.run(serve::generateWorkload(load));

    FleetConfig cfg;
    cfg.seed = fleet_seed;
    cfg.policy = RouterPolicy::Null;
    cfg.initialNodes = {0};
    FleetSimulator sim(cfg, {tmpl});
    const FleetMetrics m = sim.run(serve::generateWorkload(load));

    ASSERT_EQ(m.nodes.size(), 1u);
    EXPECT_EQ(serveJson(direct), serveJson(m.nodes[0].serve));
    EXPECT_GT(m.restarts + m.retries + m.shed, 0u);
}

TEST(FleetRouter, RoundRobinSpreadsEvenly)
{
    const auto trace = burstyTrace(1.0, 200);
    NodeTemplate tmpl = cpuTdxNode();
    FleetConfig cfg;
    cfg.policy = RouterPolicy::RoundRobin;
    cfg.initialNodes = {0, 0, 0, 0};
    FleetSimulator sim(cfg, {tmpl});
    const FleetMetrics m = sim.run(trace);
    ASSERT_EQ(m.nodes.size(), 4u);
    for (const NodeSummary &n : m.nodes)
        EXPECT_EQ(n.serve.submitted, 50u);
}

TEST(FleetRouter, CostAwarePrefersCheapUntilSloPressure)
{
    // At a trickle the cost-aware router should keep everything on
    // the cheap TDX node and leave the cGPU idle.
    serve::WorkloadConfig load = bench::serveSeedWorkload();
    load.arrivalRate = 0.05;
    load.numRequests = 40;
    FleetConfig cfg;
    cfg.policy = RouterPolicy::CostAware;
    cfg.ttftSlo = 30.0;
    cfg.initialNodes = {0, 1};
    FleetSimulator sim(cfg, {cpuTdxNode(), cgpuH100Node()});
    const FleetMetrics m = sim.run(serve::generateWorkload(load));
    ASSERT_EQ(m.nodes.size(), 2u);
    EXPECT_EQ(m.nodes[0].serve.submitted, 40u);
    EXPECT_EQ(m.nodes[1].serve.submitted, 0u);

    // Under heavy load with a tight SLO it must spill to the GPU.
    load.arrivalRate = 4.0;
    load.numRequests = 400;
    cfg.ttftSlo = 2.0;
    FleetSimulator pressured(cfg, {cpuTdxNode(), cgpuH100Node()});
    const FleetMetrics p =
        pressured.run(serve::generateWorkload(load));
    EXPECT_GT(p.nodes[1].serve.submitted, 0u);
    EXPECT_GT(p.nodes[0].serve.submitted, 0u);
}

TEST(FleetAutoscaler, AddsNodesUnderPressureAndBillsThem)
{
    const auto trace = burstyTrace(3.0, 400);
    NodeTemplate tmpl = cpuTdxNode();
    FleetConfig cfg = mixedFleetConfig();
    cfg.policy = RouterPolicy::LeastOutstanding;
    cfg.initialNodes = {0};
    cfg.autoscaler.minNodes = 1;
    FleetSimulator sim(cfg, {tmpl});
    const FleetMetrics m = sim.run(trace);
    EXPECT_GT(m.scaleUps, 0u);
    EXPECT_GT(m.peakNodes, 1u);
    EXPECT_EQ(m.nodes.size(), 1 + m.scaleUps);
    double total = 0.0;
    for (const NodeSummary &n : m.nodes) {
        EXPECT_GT(n.billedSeconds, 0.0);
        total += n.costUsd;
    }
    EXPECT_DOUBLE_EQ(total, m.totalCostUsd);
    // Autoscaled nodes pay the cold start: commission lags the
    // provisioning decision by delay + TEE re-provisioning.
    for (std::size_t i = 1; i < m.nodes.size(); ++i) {
        const NodeSummary &n = m.nodes[i];
        EXPECT_GE(n.availableAt - n.provisionStart,
                  tmpl.provisionDelaySec);
    }
}

TEST(FleetMetricsJson, TimelineAndCostsAreCoherent)
{
    const auto trace = burstyTrace();
    FleetSimulator sim(mixedFleetConfig(),
                       {faultyCpuTemplate(), cgpuH100Node()});
    const FleetMetrics m = sim.run(trace);
    EXPECT_EQ(m.submitted, trace.size());
    EXPECT_GT(m.completed, 0u);
    EXPECT_GT(m.totalCostUsd, 0.0);
    EXPECT_GT(m.costPer1kTokens, 0.0);
    EXPECT_GE(m.peakNodes, 2u);
    EXPECT_GE(m.meanLiveNodes, 1.0);
    ASSERT_FALSE(m.nodeTimeline.empty());
    EXPECT_EQ(m.nodeTimeline.front().first, 0.0);
    EXPECT_EQ(m.nodeTimeline.front().second, 2u);
    const std::string js = fleetJson(m);
    EXPECT_NE(js.find("\"node_timeline\""), std::string::npos);
    EXPECT_NE(js.find("\"cost_per_1k_tokens_usd\""),
              std::string::npos);
}

TEST(FleetChunked, AggregationSumsNodesAndGatesJsonKeys)
{
    // A fault-free homogeneous TDX fleet with chunked prefill on:
    // the fleet rollup must sum the per-node chunk counters, take
    // the max of the per-node step bounds, pool the ITL samples,
    // and emit the gated JSON keys — while a chunking-off run of
    // the same fleet emits none of them.
    const llm::ModelConfig model = llm::llama2_7b();
    NodeTemplate node = cpuTdxNode();
    bench::applyPagedKv(node.server, model);
    node.server.chunkedPrefill.mode = serve::ChunkMode::DecodePriority;
    node.server.chunkedPrefill.chunkTokens = 128;

    FleetConfig cfg;
    cfg.policy = RouterPolicy::LeastOutstanding;
    cfg.ttftSlo = 2.0;
    cfg.initialNodes = {0, 0};

    const auto trace = burstyTrace(1.0, 150);
    FleetSimulator sim(cfg, {node});
    const FleetMetrics m = sim.run(trace);

    EXPECT_TRUE(m.chunkedEnabled);
    std::size_t slices = 0;
    std::uint64_t tokens = 0, max_step = 0;
    for (const NodeSummary &n : m.nodes) {
        slices += n.serve.chunkSlices;
        tokens += n.serve.chunkPrefillTokens;
        max_step =
            std::max(max_step, n.serve.maxStepPrefillTokens);
    }
    EXPECT_GT(slices, 0u);
    EXPECT_EQ(m.chunkSlices, slices);
    EXPECT_EQ(m.chunkPrefillTokens, tokens);
    EXPECT_EQ(m.maxStepPrefillTokens, max_step);
    EXPECT_GT(m.itl.p99, 0.0);

    const std::string js = fleetJson(m);
    EXPECT_NE(js.find("\"chunk_slices\""), std::string::npos);
    EXPECT_NE(js.find("\"itl_p99_s\""), std::string::npos);
    EXPECT_NE(js.find("\"max_step_prefill_tokens\""),
              std::string::npos);

    NodeTemplate off_node = node;
    off_node.server.chunkedPrefill.mode = serve::ChunkMode::Off;
    FleetSimulator off_sim(cfg, {off_node});
    const std::string off_js = fleetJson(off_sim.run(trace));
    EXPECT_EQ(off_js.find("chunk_"), std::string::npos)
        << "off-mode fleet JSON must stay byte-identical to the "
           "pre-chunking format";
    EXPECT_EQ(off_js.find("itl_"), std::string::npos);
}

TEST(FleetGolden, MixedFleetMatchesGolden)
{
    std::map<std::string, double> out;
    {
        FleetSimulator sim(mixedFleetConfig(),
                           {faultyCpuTemplate(), cgpuH100Node()});
        flattenFleet(out, "fleet.mixed", sim.run(burstyTrace()));
    }
    cllm::testing::checkAgainstGolden("fleet_mixed.json", out);
}

// Golden proof of the equivalence property: the 1-node Null-router
// fleet numbers are pinned to the same values a bare serve::Server
// produced when the serving goldens were captured.
TEST(FleetGolden, SingleNodeNullRouterMatchesGolden)
{
    std::map<std::string, double> out;
    {
        FleetConfig cfg;
        cfg.policy = RouterPolicy::Null;
        cfg.initialNodes = {0};
        FleetSimulator sim(cfg, {cpuTdxNode()});
        const FleetMetrics m = sim.run(
            serve::generateWorkload(bench::serveSeedWorkload()));
        flattenFleet(out, "fleet.single", m);
    }
    cllm::testing::checkAgainstGolden("fleet_single_node.json", out);
}

// Tracing is observational: attaching a tracer to the canonical
// faulty mixed fleet must leave the full FleetMetrics JSON
// byte-identical, while the tracer itself captures the request
// lifecycles and fault instants.
TEST(FleetTracing, AttachedTracerDoesNotPerturbMetrics)
{
    const auto trace = burstyTrace();
    auto runJson = [&](obs::Tracer *tr) {
        FleetConfig cfg = mixedFleetConfig();
        cfg.tracer = tr;
        FleetSimulator sim(cfg,
                           {faultyCpuTemplate(), cgpuH100Node()});
        return fleetJson(sim.run(trace));
    };
    obs::Tracer tracer(obs::TraceMode::Sim);
    const std::string untraced = runJson(nullptr);
    EXPECT_EQ(untraced, runJson(&tracer));
    EXPECT_FALSE(tracer.simEvents().empty());
    bool saw_fault = false, saw_route = false;
    for (const obs::SimEvent &e : tracer.simEvents()) {
        saw_fault |= e.name.rfind("fault:", 0) == 0;
        saw_route |= e.name == "route";
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_route);
}

// The exported sim trace of a fleet run is a pure function of the
// simulation inputs: identical across repeated runs and across pool
// thread counts (the determinism contract DESIGN.md pins).
TEST(FleetTracing, ExportedTraceBitIdentical1v8Threads)
{
    const auto trace = burstyTrace();
    auto exportTrace = [&](unsigned threads) {
        const unsigned saved = par::threadCount();
        par::setThreadCount(threads);
        FleetConfig cfg = mixedFleetConfig();
        obs::Tracer tracer(obs::TraceMode::Sim);
        cfg.tracer = &tracer;
        FleetSimulator sim(cfg,
                           {faultyCpuTemplate(), cgpuH100Node()});
        sim.run(trace);
        par::setThreadCount(saved);
        std::ostringstream os;
        obs::writeChromeTrace(os, tracer);
        return os.str();
    };
    EXPECT_EQ(exportTrace(1), exportTrace(8));
}
