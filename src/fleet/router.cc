#include "fleet/router.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::fleet {

const char *
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::Null:
        return "null";
      case RouterPolicy::RoundRobin:
        return "round-robin";
      case RouterPolicy::LeastOutstanding:
        return "least-outstanding";
      case RouterPolicy::KvHeadroom:
        return "kv-headroom";
      case RouterPolicy::CostAware:
        return "cost-aware";
    }
    return "?";
}

Router::Router(RouterPolicy policy, double ttft_slo)
    : policy_(policy), ttftSlo_(ttft_slo)
{
    if (ttft_slo <= 0.0)
        cllm_fatal("Router: non-positive TTFT SLO");
}

namespace {

/** Least outstanding work among `idxs`, ties to the lowest id. */
int
leastOutstanding(const std::vector<std::unique_ptr<Node>> &nodes,
                 const std::vector<int> &idxs)
{
    int best = -1;
    for (int i : idxs) {
        if (best < 0 || nodes[i]->engine().outstanding() <
                            nodes[best]->engine().outstanding())
            best = i;
    }
    return best;
}

} // namespace

int
Router::route(const std::vector<std::unique_ptr<Node>> &nodes,
              const serve::Request &r, double now)
{
    std::vector<int> routable;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i]->routable(now))
            routable.push_back(static_cast<int>(i));
    if (routable.empty())
        return -1;

    switch (policy_) {
      case RouterPolicy::Null:
        return routable.front();

      case RouterPolicy::RoundRobin: {
        const int pick =
            routable[rrCursor_ % routable.size()];
        ++rrCursor_;
        return pick;
      }

      case RouterPolicy::LeastOutstanding:
        return leastOutstanding(nodes, routable);

      case RouterPolicy::KvHeadroom: {
        // Most free KV fraction first; fraction ties break on
        // absolute free blocks (heterogeneous pool sizes hide behind
        // equal fractions), then load, then id.
        int best = routable.front();
        for (int i : routable) {
            const double hi = nodes[i]->engine().kvHeadroom();
            const double hb = nodes[best]->engine().kvHeadroom();
            if (hi != hb) {
                if (hi > hb)
                    best = i;
                continue;
            }
            const std::uint64_t fi =
                nodes[i]->engine().kvFreeBlocks();
            const std::uint64_t fb =
                nodes[best]->engine().kvFreeBlocks();
            if (fi > fb ||
                (fi == fb && nodes[i]->engine().outstanding() <
                                 nodes[best]->engine().outstanding()))
                best = i;
        }
        return best;
      }

      case RouterPolicy::CostAware: {
        // Walk price tiers from cheapest up; within a tier take the
        // least-loaded node, and accept the tier only if that node's
        // TTFT projection holds the SLO. If every tier would breach
        // it, the fleet is saturated — fall back to least loaded
        // overall so overload degrades gracefully instead of pinning
        // the cheapest tier.
        std::vector<double> prices;
        for (int i : routable)
            prices.push_back(nodes[i]->pricePerHour());
        std::sort(prices.begin(), prices.end());
        prices.erase(std::unique(prices.begin(), prices.end()),
                     prices.end());
        for (double price : prices) {
            std::vector<int> tier;
            for (int i : routable)
                if (nodes[i]->pricePerHour() == price)
                    tier.push_back(i);
            const int cand = leastOutstanding(nodes, tier);
            if (nodes[cand]->projectedTtft(now, r.inLen) <= ttftSlo_)
                return cand;
        }
        return leastOutstanding(nodes, routable);
      }
    }
    return routable.front();
}

} // namespace cllm::fleet
