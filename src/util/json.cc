#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace cllm {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        cllm_panic("JsonWriter destroyed with open containers");
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (wroteRoot_)
            cllm_panic("JsonWriter: multiple root values");
        wroteRoot_ = true;
        return;
    }
    if (stack_.back() == Frame::Object && !pendingKey_)
        cllm_panic("JsonWriter: value in object without key");
    if (stack_.back() == Frame::Array) {
        if (!first_.back())
            os_ << ",";
        first_.back() = false;
    }
    pendingKey_ = false;
}

void
JsonWriter::escape(const std::string &s)
{
    os_ << '"';
    for (char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (raw) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\r':
            os_ << "\\r";
            break;
          case '\t':
            os_ << "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << raw;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << "{";
    stack_.push_back(Frame::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        cllm_panic("JsonWriter: endObject outside object");
    if (pendingKey_)
        cllm_panic("JsonWriter: dangling key at endObject");
    os_ << "}";
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << "[";
    stack_.push_back(Frame::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        cllm_panic("JsonWriter: endArray outside array");
    os_ << "]";
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        cllm_panic("JsonWriter: key outside object");
    if (pendingKey_)
        cllm_panic("JsonWriter: consecutive keys");
    if (!first_.back())
        os_ << ",";
    first_.back() = false;
    escape(name);
    os_ << ":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no inf/nan
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

} // namespace cllm
