/**
 * @file
 * Quickstart: what does a TEE cost me?
 *
 * Runs Llama2-7B inference timing on an Emerald Rapids machine under
 * every execution environment the paper evaluates (bare metal, VM,
 * Gramine-SGX, TDX) plus raw and confidential H100 GPUs, and prints
 * throughput, next-token latency, and overheads versus the
 * appropriate baseline — a one-screen version of the paper's
 * Figure 1.
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/table.hh"

using namespace cllm;

int
main()
{
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();

    // Throughput configuration: batch 6, beam 4 (paper Fig. 4).
    llm::RunParams tput;
    tput.batch = 6;
    tput.beam = 4;
    tput.inLen = 1024;
    tput.outLen = 128;
    tput.sockets = 1;
    tput.cores = cpu.coresPerSocket;

    // Latency configuration: batch 1, beam 1.
    llm::RunParams lat = tput;
    lat.batch = 1;
    lat.beam = 1;

    const auto backends = {core::Backend::Bare, core::Backend::Vm,
                           core::Backend::Sgx, core::Backend::Tdx};

    const auto base_t = exp.runCpu(cpu, core::Backend::Bare, model, tput);
    const auto base_l = exp.runCpu(cpu, core::Backend::Bare, model, lat);

    std::cout << "Llama2-7B bf16 on " << cpu.name << " (single socket)\n\n";
    Table table({"backend", "tput [tok/s]", "tput overhead",
                 "latency [ms/tok]", "latency overhead"});
    for (core::Backend b : backends) {
        const auto rt = exp.runCpu(cpu, b, model, tput);
        const auto rl = exp.runCpu(cpu, b, model, lat);
        const auto ct = core::Experiment::compare(rt, base_t);
        const auto cl = core::Experiment::compare(rl, base_l);
        table.addRow({rt.backend, fmt(rt.timing.decodeTput),
                      fmtPct(ct.tputOverheadPct),
                      fmt(1e3 * rl.timing.meanTokenLatency),
                      fmtPct(cl.latencyOverheadPct)});
    }
    table.print(std::cout);

    // GPU side (paper Fig. 11 conditions).
    const hw::GpuSpec gpu = hw::h100Nvl();
    llm::GpuRunParams g;
    g.batch = 16;
    g.inLen = 512;
    g.outLen = 128;
    const auto graw = exp.runGpu(gpu, model, g);
    g.confidential = true;
    const auto gcc = exp.runGpu(gpu, model, g);
    const auto gc = core::Experiment::compare(gcc, graw);

    std::cout << "\n"
              << gpu.name << " batch 16, input 512:\n"
              << "  raw GPU: " << fmt(graw.timing.decodeTput)
              << " tok/s, cGPU: " << fmt(gcc.timing.decodeTput)
              << " tok/s (overhead " << fmtPct(gc.tputOverheadPct)
              << ")\n";
    return 0;
}
