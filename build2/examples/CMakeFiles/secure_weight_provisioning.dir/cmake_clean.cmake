file(REMOVE_RECURSE
  "CMakeFiles/secure_weight_provisioning.dir/secure_weight_provisioning.cpp.o"
  "CMakeFiles/secure_weight_provisioning.dir/secure_weight_provisioning.cpp.o.d"
  "secure_weight_provisioning"
  "secure_weight_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_weight_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
