/**
 * @file
 * A fleet node: one confidential serving instance (a `tee::Backend` ×
 * machine × model deployment wrapped in a `serve::ContinuousEngine`)
 * plus the operational state the fleet layers need — provisioning and
 * drain lifecycle, per-node fault schedule derived by split-seed from
 * the fleet seed, and node-second billing.
 *
 * Seeding discipline: a node's fault schedule depends only on
 * (fleet seed, node id). Node ids are assigned monotonically and never
 * reused, so growing or shrinking the fleet cannot perturb any other
 * node's fault draws — the property the determinism tests pin.
 */

#ifndef CLLM_FLEET_NODE_HH
#define CLLM_FLEET_NODE_HH

#include <functional>
#include <memory>
#include <string>

#include "fault/schedule.hh"
#include "serve/engine.hh"

namespace cllm::obs {
class Tracer;
}

namespace cllm::fleet {

/**
 * Recipe for one class of node. `makeStep` builds a fresh per-node
 * step model (CPU-TEE or GPU-CC deployment); `server` carries the
 * batching/KV/resilience config (its `faults` field is ignored — the
 * fleet generates each node's schedule from `faults` here, split-seed
 * per node); `pricePerHour` feeds the node-second meter.
 */
struct NodeTemplate
{
    std::string name;
    std::function<std::unique_ptr<serve::StepModel>()> makeStep;
    serve::ServerConfig server{};
    double pricePerHour = 0.0;

    /**
     * Cloud-side allocation delay for an autoscaled node, charged on
     * top of the TEE re-provisioning cost (enclave build, attestation
     * round-trips, weight re-decryption) from `server.reprovision`.
     */
    double provisionDelaySec = 30.0;

    /** Fault processes; seed is overridden per node. All-zero rates
     *  mean a fault-free node. */
    fault::FaultScheduleConfig faults{};

    /** Typical prompt length used for queue-delay projections. */
    unsigned meanInLenHint = 512;
};

/**
 * Generate the fault schedule of node `node_id` under `fleet_seed`,
 * with every event shifted by `t0` (the node's commission time) so
 * schedules are always expressed on the fleet clock.
 */
fault::FaultSchedule nodeFaultSchedule(
    const fault::FaultScheduleConfig &cfg, std::uint64_t fleet_seed,
    unsigned node_id, double t0);

/** One live (or draining, or decommissioned) server in the fleet. */
class Node
{
  public:
    /**
     * `tracer` (may be null) receives this node's engine events on
     * lane `id + 1`; lane 0 stays reserved for the fleet itself.
     */
    Node(unsigned id, std::size_t template_index,
         const NodeTemplate &tmpl, std::uint64_t fleet_seed,
         double provision_start, double available_at,
         obs::Tracer *tracer = nullptr);

    /** The engine trace lane this node emits on. */
    std::uint32_t traceLane() const { return id_ + 1; }

    unsigned id() const { return id_; }
    std::size_t templateIndex() const { return tmplIndex_; }
    const std::string &name() const { return name_; }
    double pricePerHour() const { return pricePerHour_; }

    /** When the instance started being billed. */
    double provisionStart() const { return provisionStart_; }
    /** When the instance can first accept requests. */
    double availableAt() const { return availableAt_; }

    /** Routable: live, provisioned by `now`, not draining. */
    bool routable(double now) const
    {
        return !draining_ && !decommissioned() && now >= availableAt_;
    }

    bool draining() const { return draining_; }
    void startDrain(double now);

    bool decommissioned() const { return decommissionTime_ >= 0.0; }
    double decommissionTime() const { return decommissionTime_; }
    /** Finish a drain once the engine has gone idle. */
    void finishDrain();

    serve::ContinuousEngine &engine() { return *engine_; }
    const serve::ContinuousEngine &engine() const { return *engine_; }

    /**
     * Deterministic admission-delay estimate for a request of
     * `in_len` arriving at `now`: simulation lag the node has already
     * accrued, one mean prefill per queued request, then this
     * request's own prefill. The cost-aware router compares this
     * against the TTFT SLO to decide when to spill tiers.
     */
    double projectedTtft(double now, unsigned in_len) const;

    /** Billed node-seconds if the fleet shuts down at `fleet_end`. */
    double billedSeconds(double fleet_end) const;

    /** Per-node serving metrics over everything routed here. */
    serve::ServeMetrics metrics() const;

  private:
    /**
     * Prefill-latency estimate honouring the node's scheduling
     * discipline: monolithic prefill(in_len) when chunking is off;
     * with chunking on, the sum of the prompt's slice costs (each
     * priced as a rider on a shared step) plus one decode step of
     * ride-along delay per extra slice — chunked admission returns
     * the first token later, and the router's TTFT projection must
     * see that, not the monolithic number.
     */
    double estimatePrefill(unsigned in_len) const;

    unsigned id_;
    std::size_t tmplIndex_;
    std::string name_;
    double pricePerHour_;
    double provisionStart_;
    double availableAt_;
    double drainStart_ = -1.0;
    double decommissionTime_ = -1.0;
    bool draining_ = false;

    std::unique_ptr<serve::StepModel> step_;
    serve::ServerConfig cfg_;
    std::unique_ptr<serve::ContinuousEngine> engine_;
    double estPrefill_ = 0.0;
    double estDecode_ = 0.0; //!< per-slice ride-along (chunked only)
};

} // namespace cllm::fleet

#endif // CLLM_FLEET_NODE_HH
