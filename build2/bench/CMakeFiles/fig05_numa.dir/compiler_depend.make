# Empty compiler generated dependencies file for fig05_numa.
# This may be replaced when dependencies are built.
