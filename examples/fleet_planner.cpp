/**
 * @file
 * Fleet planner: find the cheapest confidential fleet sustaining a
 * target request rate under a p99 TTFT bound.
 *
 * Enumerates candidate compositions over the two paper archetypes —
 * pure CPU-TDX fleets, pure confidential-H100 fleets, and mixed
 * fleets with a cost-aware router spilling from TDX to the cGPU —
 * replays the same seeded trace through each, and keeps the feasible
 * fleet with the lowest $/1k generated tokens.
 *
 *   fleet_planner [rate_req_s] [ttft_p99_s]   (defaults 1.5, 2.0)
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/presets.hh"
#include "fleet/simulator.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

struct Candidate
{
    std::string name;
    fleet::FleetConfig cfg;
    std::vector<fleet::NodeTemplate> templates;
};

} // namespace

int
main(int argc, char **argv)
{
    const double rate = argc > 1 ? std::atof(argv[1]) : 1.5;
    const double ttft_p99 = argc > 2 ? std::atof(argv[2]) : 2.0;
    if (rate <= 0.0 || ttft_p99 <= 0.0) {
        std::cerr << "usage: fleet_planner [rate_req_s] "
                     "[ttft_p99_s]\n";
        return 1;
    }

    std::cout << "=== Fleet planner: cheapest confidential fleet for "
              << fmt(rate, 2) << " req/s at p99 TTFT <= "
              << fmt(ttft_p99, 2) << " s ===\n\n";

    const fleet::NodeTemplate cpu = fleet::cpuTdxNode();
    const fleet::NodeTemplate gpu = fleet::cgpuH100Node();

    serve::WorkloadConfig load;
    load.arrivalRate = rate;
    load.numRequests = static_cast<std::size_t>(
        std::min(1500.0, std::max(250.0, 300.0 * rate)));
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;
    const auto trace = serve::generateWorkload(load);

    std::vector<Candidate> candidates;
    for (std::size_t n = 1; n <= 24; ++n) {
        Candidate c;
        c.name = std::to_string(n) + "x " + cpu.name;
        c.templates = {cpu};
        c.cfg.policy = fleet::RouterPolicy::LeastOutstanding;
        c.cfg.initialNodes.assign(n, 0);
        candidates.push_back(std::move(c));
    }
    for (std::size_t n = 1; n <= 3; ++n) {
        Candidate c;
        c.name = std::to_string(n) + "x " + gpu.name;
        c.templates = {gpu};
        c.cfg.policy = fleet::RouterPolicy::LeastOutstanding;
        c.cfg.initialNodes.assign(n, 0);
        candidates.push_back(std::move(c));
    }
    for (std::size_t n = 1; n <= 12; ++n) {
        Candidate c;
        c.name = std::to_string(n) + "x " + cpu.name + " + 1x " +
                 gpu.name;
        c.templates = {cpu, gpu};
        c.cfg.policy = fleet::RouterPolicy::CostAware;
        c.cfg.initialNodes.assign(n, 0);
        c.cfg.initialNodes.push_back(1);
        candidates.push_back(std::move(c));
    }

    Table t({"fleet", "$/hr", "$/1k tok", "TTFT p99 [s]", "SLO",
             "feasible"});
    int best = -1;
    double best_usd = 0.0;
    std::vector<fleet::FleetMetrics> results;
    for (auto &c : candidates) {
        c.cfg.ttftSlo = ttft_p99;
        fleet::FleetSimulator sim(c.cfg, c.templates);
        results.push_back(sim.run(trace));
        const fleet::FleetMetrics &m = results.back();
        const bool ok = m.ttft.p99 <= ttft_p99 && m.backlogged == 0;
        if (ok && (best < 0 || m.costPer1kTokens < best_usd)) {
            best = static_cast<int>(results.size()) - 1;
            best_usd = m.costPer1kTokens;
        }
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const fleet::FleetMetrics &m = results[i];
        const bool ok = m.ttft.p99 <= ttft_p99 && m.backlogged == 0;
        // Keep the table readable: show feasible fleets, the cheapest
        // infeasible of each family stays implicit.
        if (!ok && m.ttft.p99 > 4.0 * ttft_p99)
            continue;
        const double hourly =
            m.makespan > 0.0
                ? m.totalCostUsd / m.makespan * 3600.0
                : 0.0;
        t.addRow({candidates[i].name, fmt(hourly, 3),
                  fmt(m.costPer1kTokens, 4), fmt(m.ttft.p99, 2),
                  fmtPct(100.0 * m.sloAttainment),
                  static_cast<int>(i) == best
                      ? "<== cheapest feasible"
                      : (ok ? "yes" : "no")});
    }
    t.print(std::cout);

    if (best < 0) {
        std::cout << "\nno candidate fleet met the target; raise the "
                     "bound or extend the search.\n";
        return 2;
    }
    const fleet::FleetMetrics &m =
        results[static_cast<std::size_t>(best)];
    std::cout << "\ncheapest feasible fleet: "
              << candidates[static_cast<std::size_t>(best)].name
              << " at $" << fmt(m.costPer1kTokens, 4)
              << " per 1k generated tokens (p99 TTFT "
              << fmt(m.ttft.p99, 2) << " s, SLO attainment "
              << fmtPct(100.0 * m.sloAttainment) << ")\n";
    return 0;
}
