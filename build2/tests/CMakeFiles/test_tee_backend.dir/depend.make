# Empty dependencies file for test_tee_backend.
# This may be replaced when dependencies are built.
