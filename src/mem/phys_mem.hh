/**
 * @file
 * A flat simulated physical memory, addressed in cache lines. This is
 * the substrate beneath the functional memory-encryption engine
 * (MeeTree): the MEE stores ciphertext here while counters and MACs
 * live in its tree. Deliberately small and dumb; performance modelling
 * happens in the analytic layers, not here.
 */

#ifndef CLLM_MEM_PHYS_MEM_HH
#define CLLM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace cllm::mem {

/** Size of one cache line in bytes (fixed, as on all modern x86). */
constexpr std::size_t kLineBytes = 64;

/** One cache line of data. */
using CacheLine = std::array<std::uint8_t, kLineBytes>;

/**
 * Byte-addressable simulated DRAM with line-granular accessors.
 */
class PhysMem
{
  public:
    /** Allocate `lines` cache lines, zero-initialized. */
    explicit PhysMem(std::size_t lines);

    /** Number of cache lines. */
    std::size_t lines() const { return data_.size() / kLineBytes; }

    /** Total size in bytes. */
    std::size_t sizeBytes() const { return data_.size(); }

    /** Read one line by line index. */
    CacheLine readLine(std::size_t line_idx) const;

    /** Write one line by line index. */
    void writeLine(std::size_t line_idx, const CacheLine &line);

    /**
     * Raw mutable access for tamper-injection in tests (models a
     * physical attacker with a DIMM interposer).
     */
    std::uint8_t *raw() { return data_.data(); }

  private:
    std::vector<std::uint8_t> data_;
};

} // namespace cllm::mem

#endif // CLLM_MEM_PHYS_MEM_HH
