file(REMOVE_RECURSE
  "libcllm_llm.a"
)
