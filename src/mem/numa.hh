/**
 * @file
 * NUMA topology and placement-policy model.
 *
 * Insight 6 of the paper: the TDX KVM driver ignores NUMA bindings and
 * SGX presents all memory as one unified node, so multi-socket TEE
 * deployments pay heavy remote-access penalties, amplified by the
 * encrypted socket interconnect (UPI link crypto). This model computes
 * the effective bandwidth/latency for a given placement policy and the
 * remote-traffic fraction it implies.
 */

#ifndef CLLM_MEM_NUMA_HH
#define CLLM_MEM_NUMA_HH

#include <cstdint>

namespace cllm::mem {

/** How the runtime's memory ends up placed relative to its threads. */
enum class NumaPlacement
{
    Local,        //!< bound correctly; allocations follow threads
    Striped,      //!< mostly first-touch local, bindings ignored (TDX)
    Interleaved,  //!< pages spread round-robin over nodes
    SingleNode,   //!< everything on one node (SGX unified view)
    Unbound,      //!< first-touch gone wrong; worst-case mix
};

/** Physical topology parameters of a multi-socket machine. */
struct NumaConfig
{
    unsigned nodes = 2;             //!< sockets (or sub-NUMA domains)
    double localBwBytes = 300e9;    //!< per-node DRAM bandwidth
    double upiBwBytes = 62e9;       //!< per-direction socket link
    double localLatencyNs = 90.0;
    double remoteLatencyNs = 145.0;
    double upiCryptoTax = 0.08;     //!< multi-socket link encryption
    bool upiEncrypted = false;      //!< TEE-mode link crypto enabled
};

/** Effective memory-system figures for a placement. */
struct NumaEffective
{
    double remoteFraction = 0.0;   //!< share of traffic crossing links
    double bandwidthBytes = 0.0;   //!< aggregate achievable bandwidth
    double latencyNs = 0.0;        //!< average access latency
};

/**
 * Computes effective bandwidth/latency for thread+memory placements.
 */
class NumaModel
{
  public:
    explicit NumaModel(NumaConfig cfg = {});

    /** Remote-traffic fraction implied by a placement policy. */
    double remoteFraction(NumaPlacement placement) const;

    /**
     * Effective figures when compute uses `active_nodes` sockets.
     * With one active node everything is local regardless of policy.
     */
    NumaEffective effective(NumaPlacement placement,
                            unsigned active_nodes) const;

    const NumaConfig &config() const { return cfg_; }

  private:
    NumaConfig cfg_;
};

} // namespace cllm::mem

#endif // CLLM_MEM_NUMA_HH
