# Empty compiler generated dependencies file for test_chunked_prefill.
# This may be replaced when dependencies are built.
