/**
 * @file
 * Fleet-wide outcome of a simulated run: per-node serving metrics and
 * billing rolled up into availability, latency percentiles, a
 * node-count timeline, and the $/1k-tokens figure the capacity bench
 * sweeps — the fleet-scale version of the paper's Figs. 12-13 cost
 * metric.
 */

#ifndef CLLM_FLEET_METRICS_HH
#define CLLM_FLEET_METRICS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/serving.hh"

namespace cllm::fleet {

/** One node's lifecycle and bill. */
struct NodeSummary
{
    unsigned id = 0;
    std::string name;
    std::size_t templateIndex = 0;
    double provisionStart = 0.0;
    double availableAt = 0.0;
    double billedUntil = 0.0;   //!< decommission or fleet makespan
    double billedSeconds = 0.0;
    double costUsd = 0.0;
    serve::ServeMetrics serve{};
};

/** Aggregated fleet outcome. */
struct FleetMetrics
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    double availability = 0.0;
    double makespan = 0.0;
    std::uint64_t outputTokens = 0;
    double tokensPerSecond = 0.0;
    SampleSummary ttft{};
    SampleSummary tpot{};
    double sloAttainment = 0.0;
    double kvUtilizationPeak = 0.0;   //!< max across nodes
    double meanBatchOccupancy = 0.0;  //!< fleet-wide per decode step
    double peakBatchOccupancy = 0.0;  //!< max across nodes

    // Paged-KV scheduling (sums over nodes; zero in reserved mode).
    std::size_t kvPreemptions = 0;
    std::size_t kvSwapOuts = 0;
    std::size_t kvSwapIns = 0;
    double kvSwapSeconds = 0.0;

    // Prefix caching (sums over nodes; emitted to JSON only when any
    // node ran with caching on, keeping legacy output byte-stable).
    bool prefixEnabled = false;
    std::size_t prefixHits = 0;
    std::size_t prefixMisses = 0;
    std::uint64_t prefixCachedTokens = 0;
    std::uint64_t prefillTokensComputed = 0;
    std::size_t prefixEvictions = 0;
    std::uint64_t prefixEvictedBlocks = 0;
    std::uint64_t prefixPinnedPeak = 0; //!< max across nodes

    // Chunked prefill (sums over nodes except the max; emitted to
    // JSON only when any node ran with chunking on). The fleet ITL
    // summary pools every node's per-token gap samples in node-id
    // order, so it is a distribution over tokens, not a mean of
    // per-node summaries.
    bool chunkedEnabled = false;
    SampleSummary itl{};
    std::size_t chunkSlices = 0;
    std::uint64_t chunkPrefillTokens = 0;
    std::size_t mixedSteps = 0;
    std::size_t starvationKicks = 0;
    std::uint64_t maxStepPrefillTokens = 0; //!< max across nodes

    // Speculative decoding (sums over nodes; emitted to JSON only
    // when any node ran with speculation on). The accepted-length
    // rollup meanAcceptedLen is fleet-wide: total accepted draft
    // tokens over total verify cycles.
    bool specEnabled = false;
    std::size_t specVerifySteps = 0;
    std::uint64_t specDraftTokens = 0;
    std::uint64_t specAccepted = 0;
    std::uint64_t specRejected = 0;
    std::uint64_t specBonus = 0;

    // Fleet economics.
    double totalCostUsd = 0.0;
    double costPer1kTokens = 0.0;

    // Fleet dynamics.
    std::size_t peakNodes = 0;
    double meanLiveNodes = 0.0;       //!< time-weighted over the run
    std::size_t scaleUps = 0;
    std::size_t drains = 0;
    std::size_t backlogged = 0;       //!< arrivals that found no node

    // Aggregate resilience (sums over nodes).
    std::size_t retries = 0;
    std::size_t shed = 0;
    std::size_t timedOut = 0;
    std::size_t failed = 0;
    std::size_t restarts = 0;
    double faultDowntime = 0.0;

    /** (time, live node count) — one entry per change. */
    std::vector<std::pair<double, unsigned>> nodeTimeline;

    std::vector<NodeSummary> nodes;
};

/** Export a FleetMetrics (nodes and timeline included) as JSON. */
void writeFleetMetrics(JsonWriter &json, const FleetMetrics &m);

} // namespace cllm::fleet

#endif // CLLM_FLEET_METRICS_HH
