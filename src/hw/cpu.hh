/**
 * @file
 * CPU hardware descriptions for the timing model: per-dtype compute
 * throughput with and without AMX, memory system parameters, and the
 * machine presets used in the paper (EMR1 = 2x Xeon Gold 6530,
 * EMR2 = 2x Xeon Platinum 8580, plus the cheaper Sapphire Rapids
 * alternative mentioned in Section V-D).
 */

#ifndef CLLM_HW_CPU_HH
#define CLLM_HW_CPU_HH

#include <cstdint>
#include <string>

#include "mem/numa.hh"
#include "mem/tlb.hh"

namespace cllm::hw {

/** Numeric formats the inference stack runs in. */
enum class Dtype { Fp32, Bf16, Int8 };

/** Bytes per element of a dtype. */
constexpr double
dtypeBytes(Dtype t)
{
    switch (t) {
      case Dtype::Fp32:
        return 4.0;
      case Dtype::Bf16:
        return 2.0;
      case Dtype::Int8:
        return 1.0;
    }
    return 4.0;
}

/** Printable dtype name. */
const char *dtypeName(Dtype t);

/** Per-core matrix-math throughput in ops per cycle. */
struct CoreThroughput
{
    double fp32Avx = 64.0;     //!< AVX-512 FMA fp32
    double bf16Avx = 128.0;    //!< AVX512-BF16 dot product
    double int8Avx = 2.5;      //!< no VNNI kernel path (scalar fallback)
    double bf16Amx = 512.0;    //!< AMX TMUL bf16
    double int8Amx = 1024.0;   //!< AMX TMUL int8
};

/** One CPU machine (possibly multi-socket). */
struct CpuSpec
{
    std::string name;
    unsigned sockets = 2;
    unsigned coresPerSocket = 32;
    double freqGhz = 2.1;
    CoreThroughput tput{};
    double kernelEfficiency = 0.45; //!< achievable fraction of peak

    double dramBwPerSocket = 307e9; //!< 8ch DDR5-4800
    double llcBytesPerSocket = 160.0 * 1024 * 1024;
    mem::NumaConfig numa{};
    mem::TlbConfig tlb{};

    std::uint64_t epcBytesPerSocket = 256ULL << 30; //!< SGX EPC per socket

    double cpuPriceUsd = 0.0;      //!< list price per CPU (context only)

    /** Peak FLOP/s (or int-op/s) for a dtype over `cores` cores. */
    double peakOps(Dtype dtype, bool amx, unsigned cores) const;

    /** Cores across all sockets. */
    unsigned totalCores() const { return sockets * coresPerSocket; }
};

/** EMR1: dual Intel Xeon Gold 6530 (32 cores, 2.1 GHz, $2130). */
CpuSpec emr1();

/** EMR2: dual Intel Xeon Platinum 8580 (60 cores, 2.0 GHz, $10710). */
CpuSpec emr2();

/** Cheaper Sapphire Rapids machine, ~40% slower (Section V-D). */
CpuSpec spr();

} // namespace cllm::hw

#endif // CLLM_HW_CPU_HH
