file(REMOVE_RECURSE
  "libcllm_rag.a"
)
