/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef CLLM_BENCH_BENCH_UTIL_HH
#define CLLM_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "util/table.hh"

namespace cllm::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &artefact, const std::string &what,
       const std::string &paper_band)
{
    std::cout << "=== " << artefact << ": " << what << " ===\n";
    if (!paper_band.empty())
        std::cout << "paper reports: " << paper_band << "\n";
    std::cout << "\n";
}

/** Throughput run parameters used across the CPU figures. */
inline llm::RunParams
throughputParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p;
    p.batch = 6;
    p.beam = 4;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = sockets;
    p.cores = sockets * cpu.coresPerSocket;
    return p;
}

/** Latency run parameters (batch 1, beam 1). */
inline llm::RunParams
latencyParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p = throughputParams(cpu, sockets);
    p.batch = 1;
    p.beam = 1;
    return p;
}

} // namespace cllm::bench

#endif // CLLM_BENCH_BENCH_UTIL_HH
