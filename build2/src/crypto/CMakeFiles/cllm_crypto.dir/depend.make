# Empty dependencies file for cllm_crypto.
# This may be replaced when dependencies are built.
