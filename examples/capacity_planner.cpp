/**
 * @file
 * Confidential-serving capacity planner, applying the paper's cost
 * methodology (Section V-D): given a workload shape (batch size,
 * input/output lengths), sweep core counts on CPU TEEs and compare
 * against a confidential H100, reporting $/1M tokens and the cheapest
 * compliant deployment — Insight 11 in executable form.
 */

#include <iostream>
#include <limits>
#include <string>

#include "core/experiment.hh"
#include "util/table.hh"

using namespace cllm;

int
main(int argc, char **argv)
{
    unsigned batch = 4;
    unsigned in_len = 128;
    if (argc > 1)
        batch = static_cast<unsigned>(std::stoul(argv[1]));
    if (argc > 2)
        in_len = static_cast<unsigned>(std::stoul(argv[2]));

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const cost::CpuPricing cpu_price = cost::gcpSpotUsEast1();
    const cost::GpuPricing gpu_price = cost::cgpuH100();
    const double mem_gb = 128.0;

    std::cout << "Planning for Llama2-7B bf16, batch " << batch
              << ", input " << in_len << ", output 128\n\n";

    Table t({"deployment", "tok/s", "$ / 1M tokens", "secure"});

    double best_cost = std::numeric_limits<double>::infinity();
    std::string best;

    for (unsigned cores : {8u, 16u, 24u, 32u, 48u}) {
        if (cores > cpu.coresPerSocket)
            continue;
        llm::RunParams p;
        p.batch = batch;
        p.inLen = in_len;
        p.outLen = 128;
        p.sockets = 1;
        p.cores = cores;
        const auto r = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        const double usd = core::Experiment::cpuCostPerMTokens(
            r, cpu_price, cores, mem_gb);
        const std::string name =
            "TDX " + std::to_string(cores) + " vCPU";
        t.addRow({name, fmt(r.timing.e2eTput), fmt(usd, 3), "yes"});
        if (usd < best_cost) {
            best_cost = usd;
            best = name;
        }
    }

    llm::GpuRunParams g;
    g.batch = batch;
    g.inLen = in_len;
    g.outLen = 128;
    g.confidential = true;
    const auto gr = exp.runGpu(hw::h100Nvl(), model, g);
    const double gpu_usd =
        core::Experiment::gpuCostPerMTokens(gr, gpu_price);
    t.addRow({"cGPU H100", fmt(gr.timing.e2eTput), fmt(gpu_usd, 3),
              "partial (HBM clear)"});
    if (gpu_usd < best_cost) {
        best_cost = gpu_usd;
        best = "cGPU H100";
    }

    t.print(std::cout);
    std::cout << "\ncheapest: " << best << " at $" << fmt(best_cost, 3)
              << " per 1M tokens\n";
    return 0;
}
