file(REMOVE_RECURSE
  "CMakeFiles/fig03_frameworks.dir/fig03_frameworks.cpp.o"
  "CMakeFiles/fig03_frameworks.dir/fig03_frameworks.cpp.o.d"
  "fig03_frameworks"
  "fig03_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
