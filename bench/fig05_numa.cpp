/**
 * @file
 * Figure 5: Llama2-70B on two sockets — TDX versus a VM with QEMU
 * NUMA bindings (VM B) and one without (VM NB). Shows the cost of the
 * TDX KVM driver ignoring NUMA bindings (Insight 6) and the loss of
 * the 200 ms/token service level.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 5",
           "Llama2-70B on two sockets: NUMA binding fidelity (EMR1)",
           "TDX lands between VM B and VM NB; SGX degrades up to "
           "~230%; the 200 ms/token level is no longer upheld");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_70b();

    auto tput = throughputParams(cpu, 2);
    auto lat = latencyParams(cpu, 2);

    const auto base_t = exp.runCpu(cpu, core::Backend::Vm, model, tput);
    const auto base_l = exp.runCpu(cpu, core::Backend::Vm, model, lat);

    Table t({"backend", "tput [tok/s]", "tput ovh vs VM B",
             "latency [ms/tok]", "lat ovh vs VM B", "<200ms?"});
    for (auto b : {core::Backend::Vm, core::Backend::Tdx,
                   core::Backend::VmNb, core::Backend::Sgx}) {
        const auto rt = exp.runCpu(cpu, b, model, tput);
        const auto rl = exp.runCpu(cpu, b, model, lat);
        t.addRow({rt.backend, fmt(rt.timing.decodeTput),
                  fmtPct(core::Experiment::compare(rt, base_t)
                             .tputOverheadPct),
                  fmt(1e3 * rl.timing.meanTokenLatency),
                  fmtPct(core::Experiment::compare(rl, base_l)
                             .latencyOverheadPct),
                  rl.timing.meanTokenLatency < 0.2 ? "yes" : "NO"});
    }
    t.print(std::cout);

    // Sub-NUMA clustering side-experiment (Section IV-A).
    std::cout << "\nSub-NUMA clustering (Section IV-A, Llama2-7B, one "
                 "socket):\n";
    const llm::ModelConfig small = llm::llama2_7b();
    auto p7 = throughputParams(cpu);
    const auto bare7 = exp.runCpu(cpu, core::Backend::Bare, small, p7);
    const auto tdx7 = exp.runCpu(cpu, core::Backend::Tdx, small, p7);
    p7.sncEnabled = true;
    const auto tdx7snc = exp.runCpu(cpu, core::Backend::Tdx, small, p7);
    std::cout << "  TDX overhead SNC off: "
              << fmtPct(core::Experiment::compare(tdx7, bare7)
                            .tputOverheadPct)
              << ", SNC on: "
              << fmtPct(core::Experiment::compare(tdx7snc, bare7)
                            .tputOverheadPct)
              << "  (paper: ~5% -> ~42%)\n";
    return 0;
}
