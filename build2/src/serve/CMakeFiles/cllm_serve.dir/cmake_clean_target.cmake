file(REMOVE_RECURSE
  "libcllm_serve.a"
)
