/**
 * @file
 * Chunked-prefill walkthrough: how slicing long prompts bounds the
 * per-step TEE working set and what that buys (and costs). The same
 * prefill-heavy Poisson trace replays against one TDX serving
 * instance three times — monolithic prefill (today's behaviour),
 * decode-priority chunking, and prefill-priority chunking — and
 * prints the TTFT/ITL comparison plus the mixed-step accounting.
 *
 * The interesting regime is inLen >> outLen: a monolithic 1.5k-token
 * prefill monopolises the enclave for hundreds of milliseconds while
 * every decoding request waits, which is exactly the inter-token
 * stall chunking removes. Decode-priority trades TTFT for smooth
 * ITL; prefill-priority leans the other way.
 */

#include <iostream>
#include <memory>

#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

} // namespace

int
main()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy;
    deploy.inLen = 1024;
    deploy.outLen = 256;
    deploy.batch = 32;
    deploy.sockets = 1;
    deploy.cores = cpu.coresPerSocket;

    // Prefill-heavy document shape: long prompts, short answers.
    WorkloadConfig load;
    load.arrivalRate = 0.3;
    load.numRequests = 120;
    load.meanInLen = 1024;
    load.meanOutLen = 192;
    load.seed = 41;

    std::cout << "Chunked prefill on a TDX instance "
                 "(Llama2-7B bf16)\n";
    std::cout << "pool: 2048 blocks x 16 tokens; long prompts, "
                 "short generations;\nchunk 256 tokens, step budget "
                 "= chunk + batch\n\n";

    struct Run
    {
        const char *name;
        ChunkMode mode;
    };
    const Run runs[] = {
        {"monolithic", ChunkMode::Off},
        {"chunk/decode-pri", ChunkMode::DecodePriority},
        {"chunk/prefill-pri", ChunkMode::PrefillPriority},
    };

    Table t({"schedule", "max step pf", "TTFT p50 [s]",
             "TTFT p95 [s]", "ITL p50 [ms]", "ITL p99 [ms]",
             "mixed steps", "tok/s"});
    for (const Run &r : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2048;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = KvMode::Paged;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        cfg.chunkedPrefill.mode = r.mode;
        cfg.chunkedPrefill.chunkTokens = 256;

        Server server(
            makeCpuStepModel(cpu, shared(tee::makeTdx()), model,
                             deploy),
            cfg);
        const ServeMetrics m = server.run(generateWorkload(load));
        t.addRow({r.name, fmtInt(m.maxStepPrefillTokens),
                  fmt(m.ttft.p50, 2), fmt(m.ttft.p95, 2),
                  fmt(1e3 * m.itl.p50, 1), fmt(1e3 * m.itl.p99, 1),
                  fmtInt(m.mixedSteps), fmt(m.tokensPerSecond)});
    }
    t.print(std::cout);

    std::cout << "\nMonolithic prefill admits a whole prompt as one "
                 "step, so a decoding request\ncan stall behind 1.5k "
                 "prefill tokens; chunking caps any step's prefill "
                 "work at\nbudget + chunk tokens and co-schedules "
                 "slices with decode, so the tail of the\ninter-token "
                 "latency distribution collapses at a modest TTFT "
                 "cost.\n";
    return 0;
}
