/**
 * @file
 * Functional collective operations over simulated ranks. The cluster
 * timing model (perf_cluster) prices tensor-parallel all-reduces with
 * the textbook ring factor 2*(n-1)/n; this module implements the
 * actual algorithm (reduce-scatter + all-gather over chunked
 * buffers), both to have a correct reference and to let the tests
 * check that the priced traffic equals what the algorithm really
 * moves.
 */

#ifndef CLLM_LLM_COLLECTIVE_HH
#define CLLM_LLM_COLLECTIVE_HH

#include <cstdint>
#include <vector>

namespace cllm::llm {

/** Traffic accounting for one collective. */
struct CollectiveStats
{
    std::uint64_t bytesSentPerRank = 0; //!< on-wire bytes each rank sent
    unsigned steps = 0;                 //!< communication rounds
};

/**
 * In-place ring all-reduce (sum) across `ranks[i]` buffers, which
 * must all have the same length. After the call every rank holds the
 * elementwise sum.
 */
CollectiveStats
ringAllReduce(std::vector<std::vector<float>> &ranks);

/**
 * In-place all-gather: rank i contributes its buffer; afterwards
 * every rank holds the concatenation (in rank order).
 */
CollectiveStats
ringAllGather(std::vector<std::vector<float>> &ranks);

/** The ring all-reduce per-rank traffic factor: 2*(n-1)/n. */
double ringAllReduceFactor(unsigned ranks);

} // namespace cllm::llm

#endif // CLLM_LLM_COLLECTIVE_HH
