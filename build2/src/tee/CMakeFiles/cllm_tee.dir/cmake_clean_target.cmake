file(REMOVE_RECURSE
  "libcllm_tee.a"
)
