#include "llm/framework.hh"

namespace cllm::llm {

double
FrameworkProfile::effectiveComputeEff(hw::Dtype dtype) const
{
    return dtype == hw::Dtype::Int8 ? int8ComputeEff : computeEff;
}

FrameworkProfile
ipex()
{
    FrameworkProfile f;
    f.name = "IPEX";
    return f;
}

FrameworkProfile
hfTransformers()
{
    FrameworkProfile f;
    f.name = "HF";
    f.supportsAmx = false;
    f.computeEff = 0.22;
    f.int8ComputeEff = 0.08;
    f.prefillEff = 0.16;
    f.memEff = 0.48;
    f.actTrafficFactor = 1.8; // eager-mode temporaries
    f.numaAware = false;
    return f;
}

FrameworkProfile
vllmCpu()
{
    FrameworkProfile f;
    f.name = "vLLM";
    f.supportsAmx = false;
    f.computeEff = 0.32;
    f.int8ComputeEff = 0.12;
    f.prefillEff = 0.22;
    f.memEff = 0.70;
    f.actTrafficFactor = 1.2;
    return f;
}

FrameworkProfile
llamaCpp()
{
    FrameworkProfile f;
    f.name = "Llama.cpp";
    f.supportsAmx = false;
    f.computeEff = 0.30;
    f.int8ComputeEff = 0.25;
    f.prefillEff = 0.10;      // no AMX: prefill pays the most
    f.memEff = 0.70;
    f.weightBytesPerParam = 0.56; // mixed Q4_K-style quantization
    f.numaAware = false;
    return f;
}

} // namespace cllm::llm
