#include "fleet/router.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::fleet {

const char *
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::Null:
        return "null";
      case RouterPolicy::RoundRobin:
        return "round-robin";
      case RouterPolicy::LeastOutstanding:
        return "least-outstanding";
      case RouterPolicy::KvHeadroom:
        return "kv-headroom";
      case RouterPolicy::CostAware:
        return "cost-aware";
      case RouterPolicy::PrefixAffinity:
        return "prefix-affinity";
    }
    return "?";
}

Router::Router(RouterPolicy policy, double ttft_slo)
    : policy_(policy), ttftSlo_(ttft_slo)
{
    if (ttft_slo <= 0.0)
        cllm_fatal("Router: non-positive TTFT SLO");
}

namespace {

/**
 * How much busier (outstanding requests) a prefix-affinity home node
 * may run than the least-loaded alternative before a projected-TTFT
 * breach actually spills the request. Below this the fleet is near
 * balance: moving would forfeit the cached prefix for no queueing
 * gain.
 */
constexpr unsigned kAffinitySlack = 2;

/** Least outstanding work among `idxs`, ties to the lowest id. */
int
leastOutstanding(const std::vector<std::unique_ptr<Node>> &nodes,
                 const std::vector<int> &idxs)
{
    int best = -1;
    for (int i : idxs) {
        if (best < 0 || nodes[i]->engine().outstanding() <
                            nodes[best]->engine().outstanding())
            best = i;
    }
    return best;
}

/**
 * Affinity key: FNV-1a over the tenant and the leading prompt tokens.
 * 64 tokens (4+ KV blocks at the default geometry) is enough to
 * separate distinct system prompts without hashing whole contexts.
 */
std::uint64_t
prefixKey(const serve::Request &r)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    mix(r.tenant);
    const std::size_t n =
        std::min<std::size_t>(r.promptTokens.size(), 64);
    for (std::size_t i = 0; i < n; ++i)
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(r.promptTokens[i])));
    return h;
}

} // namespace

int
Router::route(const std::vector<std::unique_ptr<Node>> &nodes,
              const serve::Request &r, double now)
{
    std::vector<int> routable;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i]->routable(now))
            routable.push_back(static_cast<int>(i));
    if (routable.empty())
        return -1;

    switch (policy_) {
      case RouterPolicy::Null:
        return routable.front();

      case RouterPolicy::RoundRobin: {
        const int pick =
            routable[rrCursor_ % routable.size()];
        ++rrCursor_;
        return pick;
      }

      case RouterPolicy::LeastOutstanding:
        return leastOutstanding(nodes, routable);

      case RouterPolicy::KvHeadroom: {
        // Most free KV fraction first; fraction ties break on
        // absolute free blocks (heterogeneous pool sizes hide behind
        // equal fractions), then load, then id.
        int best = routable.front();
        for (int i : routable) {
            const double hi = nodes[i]->engine().kvHeadroom();
            const double hb = nodes[best]->engine().kvHeadroom();
            if (hi != hb) {
                if (hi > hb)
                    best = i;
                continue;
            }
            const std::uint64_t fi =
                nodes[i]->engine().kvFreeBlocks();
            const std::uint64_t fb =
                nodes[best]->engine().kvFreeBlocks();
            if (fi > fb ||
                (fi == fb && nodes[i]->engine().outstanding() <
                                 nodes[best]->engine().outstanding()))
                best = i;
        }
        return best;
      }

      case RouterPolicy::CostAware: {
        // Walk price tiers from cheapest up; within a tier take the
        // least-loaded node, and accept the tier only if that node's
        // TTFT projection holds the SLO. If every tier would breach
        // it, the fleet is saturated — fall back to least loaded
        // overall so overload degrades gracefully instead of pinning
        // the cheapest tier.
        std::vector<double> prices;
        for (int i : routable)
            prices.push_back(nodes[i]->pricePerHour());
        std::sort(prices.begin(), prices.end());
        prices.erase(std::unique(prices.begin(), prices.end()),
                     prices.end());
        for (double price : prices) {
            std::vector<int> tier;
            for (int i : routable)
                if (nodes[i]->pricePerHour() == price)
                    tier.push_back(i);
            const int cand = leastOutstanding(nodes, tier);
            if (nodes[cand]->projectedTtft(now, r.inLen) <= ttftSlo_)
                return cand;
        }
        return leastOutstanding(nodes, routable);
      }

      case RouterPolicy::PrefixAffinity: {
        // No tokens to key on: plain load balancing.
        if (r.promptTokens.empty())
            return leastOutstanding(nodes, routable);
        const std::uint64_t key = prefixKey(r);
        const int alt = leastOutstanding(nodes, routable);
        auto it = affinity_.find(key);
        if (it != affinity_.end()) {
            const int home = it->second;
            const bool live =
                std::find(routable.begin(), routable.end(), home) !=
                routable.end();
            // Stay home unless home is both breaching the TTFT
            // projection and materially busier than the best
            // alternative. A hit skips the cached prefill (which the
            // projection cannot see), and when every node is equally
            // loaded moving gains nothing and forfeits the cached
            // prefix — so spill needs both signals.
            if (live) {
                const bool slo_ok =
                    nodes[home]->projectedTtft(now, r.inLen) <=
                    ttftSlo_;
                const bool balanced =
                    nodes[home]->engine().outstanding() <=
                    nodes[alt]->engine().outstanding() +
                        kAffinitySlack;
                if (slo_ok || balanced)
                    return home;
            }
        }
        // Miss or spill: balance by load, and move the affinity —
        // the prefix gets cached wherever this request lands.
        affinity_[key] = alt;
        return alt;
      }
    }
    return routable.front();
}

} // namespace cllm::fleet
