
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/cllm_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/cllm_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/ctr.cc" "src/crypto/CMakeFiles/cllm_crypto.dir/ctr.cc.o" "gcc" "src/crypto/CMakeFiles/cllm_crypto.dir/ctr.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/cllm_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/cllm_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/cllm_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/cllm_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
