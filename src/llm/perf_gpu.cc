#include "llm/perf_gpu.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace cllm::llm {

GpuPerfModel::GpuPerfModel(GpuPerfConfig cfg) : cfg_(cfg) {}

TimingResult
GpuPerfModel::run(const hw::GpuSpec &gpu, const ModelConfig &model,
                  const GpuRunParams &params) const
{
    if (params.batch == 0 || params.outLen == 0)
        cllm_fatal("GPU run: batch and outLen must be positive");

    const double weight_bytes = model.weightBytes(params.dtype);
    const double final_ctx = params.inLen + params.outLen;
    const double kv_total = params.batch *
                            model.kvBytesPerToken(params.dtype) *
                            final_ctx;
    if (weight_bytes + kv_total > gpu.hbmBytes) {
        cllm_fatal("model + KV cache (",
                   (weight_bytes + kv_total) / 1e9,
                   " GB) exceed GPU memory of ", gpu.hbmBytes / 1e9,
                   " GB");
    }

    const tee::GpuTax tax =
        params.confidential ? tee::cgpuTax(gpu) : tee::GpuTax{};
    const double launch_s =
        gpu.kernelLaunchUs * 1e-6 + tax.launchExtraSec;
    const double host_bw = params.confidential && tax.hostLinkBwBytes > 0
                               ? tax.hostLinkBwBytes
                               : gpu.pcieBwBytes;

    const double rate = gpu.peakOps(params.dtype) * cfg_.computeEff;
    const double bw = gpu.hbmBwBytes * cfg_.memEff * tax.hbmBwFactor;

    TimingResult result;
    result.workingSetBytes = weight_bytes + kv_total;

    // ---- Prefill -----------------------------------------------------
    {
        const double s = params.inLen;
        const double flops =
            params.batch *
            (2.0 * static_cast<double>(model.matmulParams()) * s +
             2.0 * model.layers * model.hidden * s * s);
        const double bytes =
            weight_bytes +
            params.batch * model.kvBytesPerToken(params.dtype) * s;
        const double t_comp = flops / rate;
        const double t_mem = bytes / bw;
        // Prompt upload crosses the (possibly encrypted) host link.
        const double host_bytes = params.batch * s * 4.0;
        result.prefillSeconds =
            std::max(t_comp, t_mem) +
            cfg_.overlapBeta * std::min(t_comp, t_mem) +
            cfg_.launchesPerStep * launch_s + host_bytes / host_bw;
    }

    // ---- Decode ------------------------------------------------------
    Rng rng(params.seed);
    double decode_total = 0.0;
    double last_tc = 0.0, last_tm = 0.0;
    for (unsigned step = 0; step < params.outLen; ++step) {
        const double pos = params.inLen + step;
        const double flops =
            params.batch *
            (2.0 * static_cast<double>(model.matmulParams()) +
             4.0 * model.layers * model.hidden * pos);
        const double bytes =
            weight_bytes + params.batch *
                               model.kvBytesPerToken(params.dtype) *
                               (pos + 1.0);
        const double t_comp = flops / rate;
        const double t_mem = bytes / bw;
        const double host_bytes =
            params.batch * cfg_.hostBytesPerToken;
        double t = std::max(t_comp, t_mem) +
                   cfg_.overlapBeta * std::min(t_comp, t_mem) +
                   cfg_.launchesPerStep * launch_s +
                   host_bytes / host_bw;
        last_tc = t_comp;
        last_tm = t_mem;

        t *= rng.lognormal(1.0, tax.noiseSigma);
        result.tokenLatencies.push_back(t);
        decode_total += t;
    }
    result.memoryBound = last_tm > last_tc;

    const SampleSummary lat = summarize(result.tokenLatencies, 3.0);
    result.meanTokenLatency = lat.mean;
    result.decodeTput = params.batch / lat.mean;
    result.totalSeconds = result.prefillSeconds + decode_total;
    result.e2eTput = params.batch * params.outLen / result.totalSeconds;
    return result;
}

} // namespace cllm::llm
