# Empty dependencies file for sweep_tool.
# This may be replaced when dependencies are built.
