file(REMOVE_RECURSE
  "CMakeFiles/test_elastic.dir/test_elastic.cc.o"
  "CMakeFiles/test_elastic.dir/test_elastic.cc.o.d"
  "test_elastic"
  "test_elastic.pdb"
  "test_elastic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
