/**
 * @file
 * Differential and regression harness for chunked prefill. Four
 * layers:
 *
 *  1. Step-model identity — a single unshared chunk covering the
 *     whole prompt must price exactly like the monolithic prefill it
 *     replaces, on both the CPU and GPU models, and the slices of a
 *     split prefill must never price above the monolithic whole.
 *  2. Engine differential — the same trace replayed monolithic and
 *     chunked (across chunk sizes and both priority modes) must
 *     complete the identical request set with identical output token
 *     counts, while every chunked run bounds its largest single-step
 *     prefill strictly below the monolithic run's.
 *  3. Scheduling properties — the starvation guard completes every
 *     prompt even when decode monopolises the budget, chunked
 *     accounting closes (slice tokens sum to prompt tokens), and the
 *     prefix cache composes (cached tokens are never re-sliced).
 *  4. Regression pins — double-run byte identity of the metrics
 *     JSON, off-mode emitting no chunk/ITL keys, a golden seeded
 *     run, and fatal-path checks on config validation.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "serve/engine.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

std::unique_ptr<StepModel>
cpuModel()
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return makeCpuStepModel(cpu, shared(tee::makeTdx()),
                            llm::llama2_7b(), p);
}

/** Paged config with an ample pool, so runs differ only in how the
 *  prefill is scheduled — never in preemption or shedding. */
ServerConfig
chunkedConfig(ChunkMode mode, unsigned chunk, unsigned budget = 0)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 4096;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = KvMode::Paged;
    cfg.paged.kvBytesPerToken =
        llm::llama2_7b().kvBytesPerToken(hw::Dtype::Bf16);
    cfg.chunkedPrefill.mode = mode;
    cfg.chunkedPrefill.chunkTokens = chunk;
    cfg.chunkedPrefill.stepTokenBudget = budget;
    return cfg;
}

/** Prefill-heavy seeded trace: prompts long enough that every chunk
 *  size under test actually splits them. */
std::vector<Request>
longPromptTrace()
{
    WorkloadConfig load;
    load.arrivalRate = 0.4;
    load.numRequests = 80;
    load.meanInLen = 768;
    load.meanOutLen = 96;
    load.seed = 77;
    return generateWorkload(load);
}

std::string
metricsJson(const ServeMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    writeMetrics(json, m);
    return os.str();
}

std::uint64_t
totalPromptTokens(const std::vector<Request> &trace)
{
    std::uint64_t sum = 0;
    for (const Request &r : trace)
        sum += r.inLen;
    return sum;
}

} // namespace

// ---------------------------------------------------------------------
// 1. Step-model identity
// ---------------------------------------------------------------------

TEST(ChunkStepModel, SingleUnsharedChunkEqualsMonolithicPrefill)
{
    const auto cpu = cpuModel();
    const auto gpu = makeGpuStepModel(hw::h100Nvl(), true,
                                      llm::llama2_7b(),
                                      hw::Dtype::Bf16);
    for (unsigned n : {32u, 256u, 1024u, 4096u}) {
        EXPECT_DOUBLE_EQ(cpu->prefillChunk(0, n, false),
                         cpu->prefill(n))
            << "cpu n=" << n;
        EXPECT_DOUBLE_EQ(gpu->prefillChunk(0, n, false),
                         gpu->prefill(n))
            << "gpu n=" << n;
    }
}

TEST(ChunkStepModel, SharedChunksAreCheaperThanUnshared)
{
    // A shared slice rides the weight stream of the step's first
    // phase, so it must never price above the standalone slice.
    const auto cpu = cpuModel();
    for (unsigned done : {0u, 256u, 1024u}) {
        EXPECT_LT(cpu->prefillChunk(done, 256, true),
                  cpu->prefillChunk(done, 256, false))
            << "done=" << done;
    }
}

TEST(ChunkStepModel, SplitPrefillNeverBeatsWholeOnWeightTraffic)
{
    // Splitting re-pays per-op fixed costs but each unshared slice
    // also re-streams the weights; a fully-unshared split must cost
    // at least the monolithic prefill.
    const auto cpu = cpuModel();
    const unsigned total = 1024;
    for (unsigned chunk : {128u, 256u, 512u}) {
        double split = 0.0;
        for (unsigned done = 0; done < total; done += chunk)
            split += cpu->prefillChunk(
                done, std::min(chunk, total - done), false);
        EXPECT_GE(split, cpu->prefill(total)) << "chunk=" << chunk;
    }
}

// ---------------------------------------------------------------------
// 2. Engine differential
// ---------------------------------------------------------------------

TEST(ChunkDifferential, IdenticalCompletionsLowerMaxStepPrefill)
{
    const std::vector<Request> trace = longPromptTrace();

    std::vector<Request> off_out;
    const ServeMetrics off =
        Server(cpuModel(), chunkedConfig(ChunkMode::Off, 256))
            .run(trace, off_out);
    ASSERT_GT(off.maxStepPrefillTokens, 512u)
        << "trace must contain monolithic prefills worth bounding";

    std::uint64_t prev_max = off.maxStepPrefillTokens;
    for (unsigned chunk : {512u, 256u, 128u, 64u}) {
        for (ChunkMode mode : {ChunkMode::DecodePriority,
                               ChunkMode::PrefillPriority}) {
            std::vector<Request> on_out;
            const ServeMetrics on =
                Server(cpuModel(), chunkedConfig(mode, chunk))
                    .run(trace, on_out);

            // Identical completion token streams: same request set,
            // same per-request output counts, nothing shed or lost.
            EXPECT_EQ(on.completed, off.completed);
            EXPECT_EQ(on.outputTokens, off.outputTokens);
            EXPECT_EQ(on.shed, off.shed);
            EXPECT_EQ(on.timedOut, off.timedOut);
            ASSERT_EQ(on_out.size(), off_out.size());
            for (std::size_t i = 0; i < off_out.size(); ++i) {
                EXPECT_EQ(on_out[i].id, off_out[i].id);
                EXPECT_EQ(on_out[i].outLen, off_out[i].outLen);
            }

            // ...under a strictly smaller per-step prefill bound.
            EXPECT_TRUE(on.chunkedEnabled);
            EXPECT_GT(on.chunkSlices, trace.size());
            EXPECT_LT(on.maxStepPrefillTokens,
                      off.maxStepPrefillTokens)
                << "chunk=" << chunk;
            // Default budget is chunk + maxBatch (32 here); one
            // forced slice may ride on top of an exhausted budget.
            EXPECT_LE(on.maxStepPrefillTokens, 2u * chunk + 32u)
                << "budget + forced slice is the hard per-step cap";
        }
        // Decode-priority max step prefill shrinks (weakly) with the
        // chunk size — the monotone knob the sweep reports.
        const ServeMetrics dp =
            Server(cpuModel(),
                   chunkedConfig(ChunkMode::DecodePriority, chunk))
                .run(trace);
        EXPECT_LE(dp.maxStepPrefillTokens, prev_max)
            << "chunk=" << chunk;
        prev_max = dp.maxStepPrefillTokens;
    }
}

TEST(ChunkDifferential, ChunkingCollapsesItlTail)
{
    // The point of the feature: decoding requests no longer stall
    // behind whole-prompt prefills, so the p99 inter-token gap drops.
    const std::vector<Request> trace = longPromptTrace();
    const ServeMetrics off =
        Server(cpuModel(), chunkedConfig(ChunkMode::Off, 256))
            .run(trace);
    const ServeMetrics on =
        Server(cpuModel(),
               chunkedConfig(ChunkMode::DecodePriority, 256))
            .run(trace);
    EXPECT_LT(on.itl.p99, off.itl.p99);
}

// ---------------------------------------------------------------------
// 3. Scheduling properties
// ---------------------------------------------------------------------

TEST(ChunkProperties, AccountingClosesOverSliceTokens)
{
    // With an ample pool (no preemption, no retries) every prompt
    // token is prefilled exactly once, in slices.
    const std::vector<Request> trace = longPromptTrace();
    const ServeMetrics on =
        Server(cpuModel(),
               chunkedConfig(ChunkMode::DecodePriority, 128))
            .run(trace);
    EXPECT_EQ(on.chunkPrefillTokens, totalPromptTokens(trace));
}

TEST(ChunkProperties, StarvationGuardCompletesUnderDecodePressure)
{
    // Budget == chunk: with a full decode batch, decode-priority
    // leaves no slice budget at all, so only the starvation guard
    // moves prefills forward — every request must still finish.
    WorkloadConfig load;
    load.arrivalRate = 2.0;
    load.numRequests = 60;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 5;
    const std::vector<Request> trace = generateWorkload(load);

    ServerConfig cfg =
        chunkedConfig(ChunkMode::DecodePriority, 128, 128);
    cfg.chunkedPrefill.starvationIters = 4;
    std::vector<Request> out;
    const ServeMetrics m = Server(cpuModel(), cfg).run(trace, out);
    EXPECT_EQ(m.completed, trace.size());
    EXPECT_GT(m.starvationKicks, 0u);
    for (const Request &r : out)
        EXPECT_GE(r.finish, 0.0) << "request " << r.id;
}

TEST(ChunkProperties, PrefixCacheComposesWithChunking)
{
    // Shared prompts: cached tokens are admitted from the radix tree
    // and only the tail is sliced, so slice accounting closes on
    // (prompt − cached) and completions still match the plain run.
    WorkloadConfig load;
    load.arrivalRate = 0.45;
    load.numRequests = 120;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;
    std::vector<Request> trace = generateWorkload(load);
    applySharedPrefixMix(trace, SharedPrefixMix{});

    ServerConfig plain = chunkedConfig(ChunkMode::Off, 256);
    plain.prefixMode = PrefixMode::PerTenant;
    std::vector<Request> plain_out;
    const ServeMetrics off =
        Server(cpuModel(), plain).run(trace, plain_out);

    ServerConfig cfg =
        chunkedConfig(ChunkMode::DecodePriority, 256);
    cfg.prefixMode = PrefixMode::PerTenant;
    std::vector<Request> out;
    const ServeMetrics on = Server(cpuModel(), cfg).run(trace, out);

    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.outputTokens, off.outputTokens);
    EXPECT_GT(on.prefixHits, 0u);
    EXPECT_EQ(on.chunkPrefillTokens,
              totalPromptTokens(trace) - on.prefixCachedTokens);
    EXPECT_EQ(on.chunkPrefillTokens, on.prefillTokensComputed);
}

// ---------------------------------------------------------------------
// 4. Regression pins
// ---------------------------------------------------------------------

TEST(ChunkRegression, DoubleRunMetricsJsonByteIdentical)
{
    const std::vector<Request> trace = longPromptTrace();
    const ServeMetrics a =
        Server(cpuModel(),
               chunkedConfig(ChunkMode::DecodePriority, 256))
            .run(trace);
    const ServeMetrics b =
        Server(cpuModel(),
               chunkedConfig(ChunkMode::DecodePriority, 256))
            .run(trace);
    EXPECT_EQ(metricsJson(a), metricsJson(b));
}

TEST(ChunkRegression, OffModeEmitsNoChunkKeys)
{
    const std::vector<Request> trace = longPromptTrace();
    const ServeMetrics off =
        Server(cpuModel(), chunkedConfig(ChunkMode::Off, 256))
            .run(trace);
    const std::string json = metricsJson(off);
    EXPECT_EQ(json.find("chunk_"), std::string::npos)
        << "off-mode metrics JSON must stay byte-identical to the "
           "pre-chunking format";
    EXPECT_EQ(json.find("itl_"), std::string::npos);
    EXPECT_EQ(json.find("mixed_steps"), std::string::npos);
    EXPECT_FALSE(off.chunkedEnabled);
    EXPECT_EQ(off.chunkSlices, 0u);
}

TEST(ChunkRegression, GoldenSeededRun)
{
    const std::vector<Request> trace = longPromptTrace();
    const ServeMetrics m =
        Server(cpuModel(),
               chunkedConfig(ChunkMode::DecodePriority, 256))
            .run(trace);
    std::map<std::string, double> actual;
    actual["completed"] = static_cast<double>(m.completed);
    actual["output_tokens"] = static_cast<double>(m.outputTokens);
    actual["chunk_slices"] = static_cast<double>(m.chunkSlices);
    actual["chunk_prefill_tokens"] =
        static_cast<double>(m.chunkPrefillTokens);
    actual["mixed_steps"] = static_cast<double>(m.mixedSteps);
    actual["starvation_kicks"] =
        static_cast<double>(m.starvationKicks);
    actual["max_step_prefill_tokens"] =
        static_cast<double>(m.maxStepPrefillTokens);
    actual["ttft_p50_s"] = m.ttft.p50;
    actual["ttft_p99_s"] = m.ttft.p99;
    actual["itl_p50_s"] = m.itl.p50;
    actual["itl_p99_s"] = m.itl.p99;
    actual["makespan_s"] = m.makespan;
    cllm::testing::checkAgainstGolden("chunked_small.json", actual);
}

TEST(ChunkRegression, ModeNamesRoundTrip)
{
    for (ChunkMode mode : {ChunkMode::Off, ChunkMode::DecodePriority,
                           ChunkMode::PrefillPriority})
        EXPECT_EQ(parseChunkMode(chunkModeName(mode)), mode);
    EXPECT_DEATH(parseChunkMode("bogus"), "unknown chunk mode");
}

TEST(ChunkDeath, ZeroChunkSizeIsFatal)
{
    ServerConfig cfg = chunkedConfig(ChunkMode::DecodePriority, 0);
    EXPECT_DEATH(Server(cpuModel(), cfg), "zero chunk size");
}

TEST(ChunkDeath, BudgetBelowChunkIsFatal)
{
    ServerConfig cfg =
        chunkedConfig(ChunkMode::DecodePriority, 256, 64);
    EXPECT_DEATH(Server(cpuModel(), cfg), "budget below the chunk");
}

TEST(ChunkDeath, ZeroStarvationWindowIsFatal)
{
    ServerConfig cfg = chunkedConfig(ChunkMode::DecodePriority, 256);
    cfg.chunkedPrefill.starvationIters = 0;
    EXPECT_DEATH(Server(cpuModel(), cfg), "starvation");
}

TEST(ChunkDeath, ChunkingRequiresContinuousBatching)
{
    ServerConfig cfg = chunkedConfig(ChunkMode::DecodePriority, 256);
    cfg.policy = BatchPolicy::Static;
    EXPECT_DEATH(Server(cpuModel(), cfg), "continuous");
}
