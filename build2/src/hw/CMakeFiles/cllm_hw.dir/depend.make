# Empty dependencies file for cllm_hw.
# This may be replaced when dependencies are built.
