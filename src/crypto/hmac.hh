/**
 * @file
 * HMAC-SHA256 (RFC 2104) and an HKDF-style key-derivation helper. Used
 * for MEE cache-line MACs, attestation quote signatures (standing in
 * for the vendor's ECDSA quoting enclave), and sealing-key derivation.
 */

#ifndef CLLM_CRYPTO_HMAC_HH
#define CLLM_CRYPTO_HMAC_HH

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/sha256.hh"

namespace cllm::crypto {

/** HMAC-SHA256 over a buffer. */
Digest256 hmacSha256(const std::vector<std::uint8_t> &key,
                     const void *data, std::size_t len);

/** HMAC-SHA256 with string inputs. */
Digest256 hmacSha256(const std::string &key, const std::string &data);

/**
 * Derive a named 256-bit key from a master secret and a context label
 * (single-step HKDF-Expand with SHA-256).
 */
Digest256 deriveKey(const Digest256 &master, const std::string &label);

/** Truncate a 256-bit digest to a 128-bit AES key. */
AesKey toAesKey(const Digest256 &digest);

/** Constant-time digest comparison. */
bool digestEqual(const Digest256 &a, const Digest256 &b);

} // namespace cllm::crypto

#endif // CLLM_CRYPTO_HMAC_HH
