#include "llm/ops.hh"

namespace cllm::llm {

const char *
opName(OpKind k)
{
    switch (k) {
      case OpKind::InputNorm:
        return "input_norm";
      case OpKind::QkvProj:
        return "qkv_proj";
      case OpKind::Rope:
        return "rope";
      case OpKind::Attention:
        return "self_attention";
      case OpKind::OutProj:
        return "out_proj";
      case OpKind::PostNorm:
        return "post_attn_norm";
      case OpKind::Router:
        return "router";
      case OpKind::GateUpProj:
        return "linear_silu";
      case OpKind::SiluMul:
        return "silu_mul";
      case OpKind::DownProj:
        return "down_proj";
      case OpKind::Embed:
        return "embed";
      case OpKind::FinalNorm:
        return "final_norm";
      case OpKind::LmHead:
        return "lm_head";
    }
    return "?";
}

std::vector<OpProfile>
blockDecodeOps(const ModelConfig &m, hw::Dtype dtype, double pos,
               double nseq)
{
    const double d = m.hidden;
    const double dkv = m.kvDim();
    const double f = m.ffn;
    const double wb = hw::dtypeBytes(dtype);
    const double ab = dtype == hw::Dtype::Fp32 ? 4.0 : 2.0;

    std::vector<OpProfile> ops;
    ops.reserve(9);

    ops.push_back({OpKind::InputNorm, 5.0 * d, d * ab, 3.0 * d * ab, 0.0});
    ops.push_back({OpKind::QkvProj, 2.0 * d * (d + 2.0 * dkv),
                   (d * d + 2.0 * d * dkv) * wb,
                   (2.0 * d + 2.0 * dkv) * ab, 0.0});
    ops.push_back({OpKind::Rope, 6.0 * (d + dkv),
                   0.0, 2.0 * (d + dkv) * ab, 0.0});
    // Scores (QK^T) and context (AV) over `pos` cached positions.
    ops.push_back({OpKind::Attention, 4.0 * d * pos, 0.0, 4.0 * d * ab,
                   (2.0 * dkv * pos + 2.0 * dkv) * ab});
    ops.push_back({OpKind::OutProj, 2.0 * d * d, d * d * wb,
                   2.0 * d * ab, 0.0});
    ops.push_back({OpKind::PostNorm, 5.0 * d, d * ab, 3.0 * d * ab, 0.0});
    if (m.isMoe()) {
        // Router + the routed experts. Per sequence, expertsPerToken
        // experts compute; per step, expertsTouched(nseq) experts'
        // weights stream from memory (batch-shared).
        const double e = m.numExperts;
        const double k = m.expertsPerToken;
        const double touched = m.expertsTouched(nseq);
        const double expert_w =
            static_cast<double>(m.expertParams()) * wb;
        ops.push_back({OpKind::Router, 2.0 * d * e + 6.0 * e,
                       d * e * wb, (d + e) * ab, 0.0});
        if (m.gatedMlp) {
            ops.push_back({OpKind::GateUpProj, k * 2.0 * d * 2.0 * f,
                           touched * expert_w * (2.0 / 3.0),
                           k * (d + 2.0 * f) * ab, 0.0});
            ops.push_back({OpKind::SiluMul, k * 8.0 * f, 0.0,
                           k * 3.0 * f * ab, 0.0});
        } else {
            ops.push_back({OpKind::GateUpProj, k * 2.0 * d * f,
                           touched * expert_w * 0.5,
                           k * (d + f) * ab, 0.0});
            ops.push_back({OpKind::SiluMul, k * 6.0 * f, 0.0,
                           k * 2.0 * f * ab, 0.0});
        }
        ops.push_back({OpKind::DownProj, k * 2.0 * f * d,
                       touched * expert_w * (m.gatedMlp ? 1.0 / 3.0
                                                        : 0.5),
                       k * (f + d) * ab, 0.0});
        return ops;
    }
    if (m.gatedMlp) {
        ops.push_back({OpKind::GateUpProj, 2.0 * d * 2.0 * f,
                       2.0 * d * f * wb, (d + 2.0 * f) * ab, 0.0});
        ops.push_back({OpKind::SiluMul, 8.0 * f, 0.0, 3.0 * f * ab, 0.0});
    } else {
        ops.push_back({OpKind::GateUpProj, 2.0 * d * f, d * f * wb,
                       (d + f) * ab, 0.0});
        ops.push_back({OpKind::SiluMul, 6.0 * f, 0.0, 2.0 * f * ab, 0.0});
    }
    ops.push_back({OpKind::DownProj, 2.0 * f * d, d * f * wb,
                   (f + d) * ab, 0.0});
    return ops;
}

std::vector<OpProfile>
topLevelDecodeOps(const ModelConfig &m, hw::Dtype dtype)
{
    const double d = m.hidden;
    const double v = m.vocab;
    const double wb = hw::dtypeBytes(dtype);
    const double ab = dtype == hw::Dtype::Fp32 ? 4.0 : 2.0;

    std::vector<OpProfile> ops;
    ops.push_back({OpKind::Embed, 0.0, d * ab, d * ab, 0.0});
    ops.push_back({OpKind::FinalNorm, 5.0 * d, d * ab, 3.0 * d * ab, 0.0});
    ops.push_back({OpKind::LmHead, 2.0 * d * v, d * v * wb,
                   (d + v) * ab, 0.0});
    return ops;
}

StepTotals
stepTotals(const ModelConfig &m, hw::Dtype dtype, double pos,
           double nseq)
{
    StepTotals t;
    const auto block = blockDecodeOps(m, dtype, pos, nseq);
    for (const auto &op : block) {
        t.flopsPerSeq += op.flopsPerSeq * m.layers;
        t.weightBytes += op.weightBytes * m.layers;
        t.actBytesPerSeq += op.actBytesPerSeq * m.layers;
        t.kvBytesPerSeq += op.kvBytesPerSeq * m.layers;
        t.opCount += m.layers;
    }
    for (const auto &op : topLevelDecodeOps(m, dtype)) {
        t.flopsPerSeq += op.flopsPerSeq;
        t.weightBytes += op.weightBytes;
        t.actBytesPerSeq += op.actBytesPerSeq;
        t.kvBytesPerSeq += op.kvBytesPerSeq;
        ++t.opCount;
    }
    return t;
}

} // namespace cllm::llm
