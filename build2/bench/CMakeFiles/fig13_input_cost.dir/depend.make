# Empty dependencies file for fig13_input_cost.
# This may be replaced when dependencies are built.
