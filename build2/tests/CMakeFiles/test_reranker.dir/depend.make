# Empty dependencies file for test_reranker.
# This may be replaced when dependencies are built.
