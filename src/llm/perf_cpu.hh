/**
 * @file
 * CPU inference timing model: a roofline with partial compute/memory
 * overlap, fed by the op graph (ops.hh), the hardware description
 * (hw/cpu.hh), and the execution-environment taxes (tee/backend.hh).
 *
 * The model reproduces the paper's CPU methodology: it generates
 * per-token latency samples (with TEE-encryption jitter and outliers,
 * Section III-D), reports user-perceived throughput and next-token
 * latency, and can attribute decode time to individual decoder-block
 * operators (Figure 7).
 */

#ifndef CLLM_LLM_PERF_CPU_HH
#define CLLM_LLM_PERF_CPU_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "llm/framework.hh"
#include "llm/model_config.hh"
#include "llm/ops.hh"
#include "tee/backend.hh"

namespace cllm::llm {

/** One inference run's operational parameters. */
struct RunParams
{
    hw::Dtype dtype = hw::Dtype::Bf16;
    unsigned batch = 1;
    unsigned beam = 1;
    unsigned inLen = 1024;
    unsigned outLen = 128;
    bool amx = true;
    unsigned sockets = 1;      //!< sockets used
    unsigned cores = 0;        //!< total cores; 0 = all in `sockets`
    bool sncEnabled = false;
    FrameworkProfile framework{};
    std::uint64_t seed = 42;

    /** Sequences materialized in the KV cache (batch x beam). */
    unsigned sequences() const { return batch * beam; }
};

/** Timing attribution for one operator (Figure 7). */
struct OpTiming
{
    std::string name;
    double seconds = 0.0;  //!< per decode step, whole batch
    double flops = 0.0;
    double bytes = 0.0;
};

/** Result of a simulated inference run. */
struct TimingResult
{
    double prefillSeconds = 0.0;
    /** Per-decode-step wall times (noisy samples, one per token). */
    std::vector<double> tokenLatencies;
    /** Mean decode-step seconds (after Z>3 outlier filtering). */
    double meanTokenLatency = 0.0;
    /** User tokens per second in steady-state decode (batch/step). */
    double decodeTput = 0.0;
    /** End-to-end tokens/s including prefill ("first token"). */
    double e2eTput = 0.0;
    double totalSeconds = 0.0;
    /** Decode-time attribution for one decoder block. */
    std::vector<OpTiming> blockBreakdown;
    double workingSetBytes = 0.0;
    /** True when the decode loop was memory-bound at the last step. */
    bool memoryBound = true;
};

/** Global knobs of the CPU timing model. */
struct CpuPerfConfig
{
    /** Fraction of the shorter roofline leg not hidden by overlap. */
    double overlapBeta = 0.15;
    /** Per-socket core count delivering ~63% of stream bandwidth. */
    double bwSaturationCores = 14.0;
    /** Baseline VM memory-path tax (EPT maintenance, virtio). */
    double vmMemTax = 0.018;
    /** Activation-traffic multiplier when AMX is disabled. */
    double noAmxActFactor = 1.6;
};

/**
 * Precomputed per-deployment rates, for callers that price individual
 * prefill/decode steps instead of whole runs (e.g. the serving
 * simulator in src/serve).
 */
struct DeploymentRates
{
    double bw = 0.0;            //!< effective DRAM bytes/s
    double decodeRate = 0.0;    //!< effective decode FLOP/s
    double prefillRate = 0.0;   //!< effective prefill FLOP/s
    double actFactor = 1.0;     //!< activation-traffic multiplier
    double weightBytesPerParam = 2.0;
    tee::ExecTax tax{};         //!< environment taxes
};

/**
 * The CPU timing model.
 */
class CpuPerfModel
{
  public:
    explicit CpuPerfModel(CpuPerfConfig cfg = {});

    /**
     * Simulate a run of `model` on `cpu` inside `backend`.
     *
     * @param cpu machine description
     * @param backend execution environment (bare/VM/SGX/TDX)
     * @param model transformer architecture
     * @param params operational parameters
     */
    TimingResult run(const hw::CpuSpec &cpu,
                     const tee::TeeBackend &backend,
                     const ModelConfig &model,
                     const RunParams &params) const;

    /**
     * Precompute the effective rates for a deployment; `params`
     * supplies dtype/AMX/cores/sockets/framework and the *maximum*
     * expected context (inLen + outLen) and batch for working-set
     * sizing.
     */
    DeploymentRates rates(const hw::CpuSpec &cpu,
                          const tee::TeeBackend &backend,
                          const ModelConfig &model,
                          const RunParams &params) const;

    /** Seconds for one decode step of `nseq` sequences at `pos`. */
    double decodeStepSeconds(const DeploymentRates &r,
                             const ModelConfig &model,
                             const RunParams &params, double nseq,
                             double pos) const;

    /** Seconds to prefill one request of `in_len` prompt tokens. */
    double prefillSeconds(const DeploymentRates &r,
                          const ModelConfig &model,
                          const RunParams &params,
                          unsigned in_len) const;

    /**
     * Seconds to prefill a `chunk`-token slice of a prompt whose
     * leading `done` tokens already sit in KV, priced on the slice's
     * marginal working set: its own attention FLOPs (the quadratic
     * term over [done, done+chunk)), its activations, the KV it
     * writes plus the prefix KV it re-reads — and the weights only
     * when `shared` is false. A step shared with a decode batch (or a
     * preceding slice) already streamed the weights through the
     * encrypted memory path once, so a rider slice skips that byte
     * tax; per-op fixed costs are paid in full by every slice.
     * Identity: prefillChunkSeconds(r, m, p, 0, n, false) ==
     * prefillSeconds(r, m, p, n).
     */
    double prefillChunkSeconds(const DeploymentRates &r,
                               const ModelConfig &model,
                               const RunParams &params, unsigned done,
                               unsigned chunk, bool shared) const;

    /**
     * Seconds for one fused speculative-verify step: `nseq` sequences
     * at mean context `pos`, each scoring `k` draft tokens plus the
     * bonus position in a single target pass. Matmul FLOPs and
     * activation/KV traffic scale with the k+1 scored positions
     * (attention priced at the mean depth pos + k/2), but the weight
     * stream crosses the encrypted memory path ONCE and the per-op /
     * per-step fixed costs — enclave transitions, the MEE/EPC tax —
     * are paid once per step, not per token. That asymmetry is the
     * amortization speculative decoding buys inside a TEE. Identity:
     * verifyStepSeconds(r, m, p, n, 0, pos) ==
     * decodeStepSeconds(r, m, p, n, pos).
     */
    double verifyStepSeconds(const DeploymentRates &r,
                             const ModelConfig &model,
                             const RunParams &params, double nseq,
                             double k, double pos) const;

    const CpuPerfConfig &config() const { return cfg_; }

  private:
    /** Effective achievable DRAM bandwidth for this run. */
    double effectiveBandwidth(const hw::CpuSpec &cpu,
                              const tee::ExecTax &tax,
                              const RunParams &params,
                              double working_set_bytes,
                              double context_depth) const;

    CpuPerfConfig cfg_;
};

} // namespace cllm::llm

#endif // CLLM_LLM_PERF_CPU_HH
