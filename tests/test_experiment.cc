/**
 * @file
 * Tests for the public Experiment facade and the Table-I summary
 * matrix.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/summary.hh"

using namespace cllm;
using namespace cllm::core;

TEST(Experiment, BackendNamesRoundtrip)
{
    for (Backend b : {Backend::Bare, Backend::Vm, Backend::VmTh,
                      Backend::VmNb, Backend::Sgx, Backend::Tdx}) {
        const auto be = makeBackend(b);
        EXPECT_EQ(be->name(), backendName(b));
    }
}

TEST(Experiment, CompareMath)
{
    ExperimentResult fast, slow;
    fast.backend = "bare";
    fast.timing.decodeTput = 100.0;
    fast.timing.meanTokenLatency = 0.010;
    fast.timing.e2eTput = 80.0;
    slow.backend = "TDX";
    slow.timing.decodeTput = 90.0;
    slow.timing.meanTokenLatency = 0.012;
    slow.timing.e2eTput = 72.0;

    const auto rep = Experiment::compare(slow, fast);
    EXPECT_EQ(rep.name, "TDX");
    EXPECT_EQ(rep.baseline, "bare");
    EXPECT_NEAR(rep.tputOverheadPct, 100.0 / 90.0 * 100.0 - 100.0,
                1e-9);
    EXPECT_NEAR(rep.latencyOverheadPct, 20.0, 1e-9);
    EXPECT_NEAR(rep.e2eOverheadPct, 80.0 / 72.0 * 100.0 - 100.0, 1e-9);
}

TEST(Experiment, CpuRunPopulatesResult)
{
    Experiment exp;
    llm::RunParams p;
    p.batch = 1;
    p.inLen = 64;
    p.outLen = 16;
    p.sockets = 1;
    p.cores = 8;
    const auto r =
        exp.runCpu(hw::emr1(), Backend::Tdx, llm::llama2_7b(), p);
    EXPECT_EQ(r.backend, "TDX");
    EXPECT_EQ(r.timing.tokenLatencies.size(), 16u);
    EXPECT_GT(r.timing.decodeTput, 0.0);
    EXPECT_GT(r.timing.prefillSeconds, 0.0);
    EXPECT_GT(r.timing.workingSetBytes, 1e9);
}

TEST(Experiment, GpuRunLabelsConfidentiality)
{
    Experiment exp;
    llm::GpuRunParams p;
    p.batch = 1;
    p.inLen = 64;
    p.outLen = 8;
    EXPECT_EQ(exp.runGpu(hw::h100Nvl(), llm::llama2_7b(), p).backend,
              "GPU");
    p.confidential = true;
    EXPECT_EQ(exp.runGpu(hw::h100Nvl(), llm::llama2_7b(), p).backend,
              "cGPU");
}

TEST(Experiment, CostHelpersPositive)
{
    Experiment exp;
    llm::RunParams p;
    p.batch = 4;
    p.inLen = 128;
    p.outLen = 32;
    p.sockets = 1;
    p.cores = 16;
    const auto r =
        exp.runCpu(hw::emr2(), Backend::Tdx, llm::llama2_7b(), p);
    const double usd = Experiment::cpuCostPerMTokens(
        r, cost::gcpSpotUsEast1(), 16, 128.0);
    EXPECT_GT(usd, 0.1);
    EXPECT_LT(usd, 100.0);

    llm::GpuRunParams g;
    g.batch = 4;
    g.inLen = 128;
    g.outLen = 32;
    const auto gr = exp.runGpu(hw::h100Nvl(), llm::llama2_7b(), g);
    const double gusd =
        Experiment::gpuCostPerMTokens(gr, cost::cgpuH100());
    EXPECT_GT(gusd, 0.1);
    EXPECT_LT(gusd, 100.0);
}

TEST(Summary, MatrixHasAllDimensions)
{
    const auto rows = buildSummaryMatrix(/*measured=*/false);
    ASSERT_GE(rows.size(), 10u);
    bool has_mem = false, has_cost = false, has_sources = false;
    for (const auto &r : rows) {
        has_mem |= r.dimension.find("memory encryption") !=
                   std::string::npos;
        has_cost |= r.dimension.find("cost") != std::string::npos;
        has_sources |= r.dimension.find("overhead sources") !=
                       std::string::npos;
    }
    EXPECT_TRUE(has_mem);
    EXPECT_TRUE(has_cost);
    EXPECT_TRUE(has_sources);
}

TEST(Summary, CgpuRowsFlagHbmAndNvlink)
{
    const auto rows = buildSummaryMatrix(false);
    bool hbm = false, nvlink = false;
    for (const auto &r : rows) {
        hbm |= r.cgpu.find("HBM clear") != std::string::npos;
        nvlink |= r.cgpu.find("NVLINK clear") != std::string::npos;
    }
    EXPECT_TRUE(hbm);
    EXPECT_TRUE(nvlink);
}

TEST(Summary, MeasuredOverheadsPlausible)
{
    const auto rows = buildSummaryMatrix(/*measured=*/true);
    for (const auto &r : rows) {
        if (r.dimension.find("measured") == std::string::npos)
            continue;
        // Parse "<x>%" strings and sanity-check the bands.
        const double sgx = std::stod(r.sgx);
        const double tdx = std::stod(r.tdx);
        const double gpu = std::stod(r.cgpu);
        EXPECT_GT(sgx, 2.0);
        EXPECT_LT(sgx, 9.0);
        EXPECT_GT(tdx, 4.0);
        EXPECT_LT(tdx, 12.0);
        EXPECT_GT(gpu, 2.0);
        EXPECT_LT(gpu, 9.0);
        return;
    }
    FAIL() << "no measured overhead row";
}

TEST(Summary, PrintsWithoutCrashing)
{
    std::ostringstream os;
    printSummaryMatrix(os, buildSummaryMatrix(false));
    EXPECT_GT(os.str().size(), 200u);
    EXPECT_NE(os.str().find("Intel TDX"), std::string::npos);
}
