file(REMOVE_RECURSE
  "libcllm_core.a"
)
