/**
 * @file
 * Records a sim-time trace of a faulty three-node confidential fleet
 * and exports it as Chrome trace-event JSON — open the file in
 * chrome://tracing or https://ui.perfetto.dev to explore it.
 *
 * The scenario: two TDX nodes with a seeded fault schedule
 * (attestation failures, enclave restarts, EPC paging storms, KV
 * exhaustion) plus one confidential-GPU spill target, a cost-aware
 * router, and an autoscaler that adds TDX nodes under queue pressure
 * while a bursty on/off trace replays. The trace shows request
 * lifecycles (async tracks per request: enqueue → admit → prefill →
 * decode → complete/shed), fault-injection instants, routing and
 * autoscale decisions, and KV/backlog counter tracks.
 *
 * Usage: trace_explorer [out.trace.json]
 * The output path defaults to $CLLM_TRACE_OUT, then to
 * trace_explorer.trace.json. The trace is sim-time only, so the file
 * is bit-identical across runs and CLLM_THREADS settings.
 */

#include <cstddef>
#include <iostream>
#include <string>

#include "fleet/presets.hh"
#include "fleet/simulator.hh"
#include "obs/chrome_export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

/** TDX node template with the resilient-serving fault schedule. */
fleet::NodeTemplate
faultyTdxNode()
{
    fleet::NodeTemplate t = fleet::cpuTdxNode();
    fault::FaultScheduleConfig fs;
    fs.horizon = 700.0;
    fs.attestFail = {1.0 / 120.0, 4.0, 0.0};
    fs.enclaveRestart = {1.0 / 250.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 90.0, 10.0, 1.7};
    fs.kvExhaustion = {1.0 / 150.0, 15.0, 0.5};
    t.faults = fs;
    t.server.resilience.requestTimeout = 120.0;
    t.server.resilience.maxRetries = 3;
    t.server.resilience.retryBackoff = 0.5;
    t.server.resilience.shedOnKvPressure = true;
    t.server.resilience.shedThreshold = 0.95;
    t.server.resilience.degradedMaxBatch = 8;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== trace_explorer: faulty 3-node fleet, Chrome "
                 "trace export ===\n\n";

    // Two faulty TDX nodes + one cGPU spill target; the autoscaler
    // may add more TDX nodes when the bursty trace piles up backlog.
    fleet::FleetConfig cfg;
    cfg.seed = 42;
    cfg.policy = fleet::RouterPolicy::CostAware;
    cfg.ttftSlo = 2.0;
    cfg.initialNodes = {0, 0, 1};
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.intervalSec = 10.0;
    cfg.autoscaler.queueHighPerNode = 4.0;
    cfg.autoscaler.queueLowPerNode = 0.5;
    cfg.autoscaler.drainAfterTicks = 3;
    cfg.autoscaler.minNodes = 3;
    cfg.autoscaler.maxNodes = 6;
    cfg.autoscaler.addTemplate = 0;
    cfg.autoscaler.cooldownSec = 20.0;

    obs::Tracer tracer(obs::TraceMode::Sim);
    cfg.tracer = &tracer;

    serve::WorkloadConfig load;
    load.process = serve::ArrivalProcess::BurstyOnOff;
    load.arrivalRate = 3.0;
    load.numRequests = 400;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;

    fleet::FleetSimulator sim(cfg,
                              {faultyTdxNode(), fleet::cgpuH100Node()});
    const fleet::FleetMetrics m =
        sim.run(serve::generateWorkload(load));

    // What landed in the trace, by kind.
    std::size_t spans = 0, instants = 0, faults = 0, scales = 0,
                routes = 0, counters = 0, lifecycle = 0;
    for (const obs::SimEvent &e : tracer.simEvents()) {
        switch (e.ph) {
          case obs::SimEvent::Ph::Complete:
            ++spans;
            break;
          case obs::SimEvent::Ph::Instant:
            ++instants;
            if (e.name.rfind("fault:", 0) == 0)
                ++faults;
            else if (e.name == "scale_up" || e.name == "drain")
                ++scales;
            else if (e.name == "route")
                ++routes;
            break;
          case obs::SimEvent::Ph::Counter:
            ++counters;
            break;
          default: // async request-lifecycle tracks
            ++lifecycle;
            break;
        }
    }

    Table t({"what", "count"});
    t.addRow({"sim events", fmtInt(tracer.simEvents().size())});
    t.addRow({"spans (prefill/decode/provision)", fmtInt(spans)});
    t.addRow({"request lifecycle marks", fmtInt(lifecycle)});
    t.addRow({"fault instants", fmtInt(faults)});
    t.addRow({"routing instants", fmtInt(routes)});
    t.addRow({"autoscale events", fmtInt(scales)});
    t.addRow({"counter samples", fmtInt(counters)});
    t.addRow({"other instants",
              fmtInt(instants - faults - scales - routes)});
    t.print(std::cout);

    std::cout << "\nfleet: " << fmtInt(m.completed) << "/"
              << fmtInt(m.submitted) << " completed, peak "
              << fmtInt(m.peakNodes) << " nodes, "
              << fmtInt(m.scaleUps) << " scale-ups, "
              << fmtInt(m.restarts) << " restarts, availability "
              << fmtPct(100.0 * m.availability) << "\n";

    const std::string out = obs::traceOutputPath(
        argc > 1 ? argv[1] : "", "trace_explorer.trace.json");
    obs::writeChromeTraceFile(out, tracer,
                              &obs::Registry::global());
    std::cout << "\nwrote " << out
              << " — open in chrome://tracing or "
                 "https://ui.perfetto.dev\n";
    return 0;
}
