/**
 * @file
 * SGX Enclave Page Cache (EPC) model. The EPC is a limited secure
 * region; enclave pages beyond it are paged out to regular memory with
 * encryption + verification on the way back in, which the paper
 * identifies as a major SGX cost when working sets exceed the EPC
 * (Section IV-A). Two pieces live here:
 *
 *  - EpcCache: a functional LRU page cache used in unit tests and to
 *    derive miss ratios from real access traces;
 *  - EpcCostModel: the analytic adapter turning a miss ratio and
 *    paging cost into a bandwidth factor for the roofline.
 */

#ifndef CLLM_MEM_EPC_HH
#define CLLM_MEM_EPC_HH

#include <cstdint>
#include <list>
#include <unordered_map>

namespace cllm::mem {

/**
 * Functional LRU cache of enclave pages (4 KiB granularity).
 */
class EpcCache
{
  public:
    /** Create with a capacity in 4 KiB pages. */
    explicit EpcCache(std::uint64_t capacity_pages);

    /**
     * Touch a page (by page number); returns true on hit. A miss
     * inserts the page, evicting the least recently used if full.
     */
    bool access(std::uint64_t page_no);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t residentPages() const { return lru_.size(); }
    std::uint64_t capacityPages() const { return capacity_; }

    /** Miss ratio over all accesses so far (0 when untouched). */
    double missRatio() const;

    /** Drop all resident pages and counters. */
    void reset();

  private:
    std::uint64_t capacity_;
    std::list<std::uint64_t> lru_; // front = most recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * Analytic EPC paging cost.
 */
struct EpcCostModel
{
    double pageFaultUs = 7.0;   //!< EWB/ELDU pair: encrypt+evict+reload

    /**
     * Steady-state miss ratio for a working set cycled through an EPC
     * of the given size (classic LRU-over-scan behaviour: ~0 when it
     * fits, approaching 1 for cyclic scans that exceed capacity).
     */
    double scanMissRatio(std::uint64_t working_set_bytes,
                         std::uint64_t epc_bytes) const;

    /** Extra seconds per byte of enclave traffic due to paging. */
    double extraSecondsPerByte(std::uint64_t working_set_bytes,
                               std::uint64_t epc_bytes) const;

    /**
     * Total extra seconds for one pass over the working set — the
     * per-pass penalty of a paging storm, used by the fault layer to
     * turn an EPC squeeze into a step-time slowdown.
     */
    double passSeconds(std::uint64_t working_set_bytes,
                       std::uint64_t epc_bytes) const;

    /**
     * Seconds to move `bytes` of enclave state across the EPC
     * boundary in one direction (an EWB *or* ELDU sweep, half the
     * round-trip pageFaultUs per 4 KiB page). The paged-KV scheduler
     * charges this for preemption swap-out and resume swap-in.
     */
    double swapSeconds(std::uint64_t bytes) const;
};

} // namespace cllm::mem

#endif // CLLM_MEM_EPC_HH
