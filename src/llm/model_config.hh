/**
 * @file
 * Dense-transformer model descriptions. Llama2 (7B/13B/70B) is the
 * paper's primary workload; the additional models mirror its
 * Section III-C cross-check (Llama3 8B, GPT-J 6B, Falcon 7B,
 * Baichuan2 7B, Qwen 7B). Parameter counts are derived from the
 * architectural dimensions, which the unit tests check against the
 * published sizes.
 */

#ifndef CLLM_LLM_MODEL_CONFIG_HH
#define CLLM_LLM_MODEL_CONFIG_HH

#include <cstdint>
#include <string>

#include "hw/cpu.hh"

namespace cllm::llm {

/** Architecture of a dense decoder-only transformer. */
struct ModelConfig
{
    std::string name;
    unsigned layers = 32;
    unsigned hidden = 4096;       //!< model dimension d
    unsigned heads = 32;
    unsigned kvHeads = 32;        //!< < heads for GQA, 1 for MQA
    unsigned ffn = 11008;         //!< MLP intermediate size
    unsigned vocab = 32000;
    bool gatedMlp = true;         //!< SwiGLU (3 matrices) vs GELU (2)
    bool tiedEmbeddings = false;  //!< lm_head shares embedding weights
    unsigned maxContext = 4096;

    // Mixture-of-experts (0 experts = dense). The paper notes newer
    // Llama generations add MoE on the same computational patterns;
    // this models routed MLPs: every token runs `expertsPerToken` of
    // `numExperts` expert MLPs plus a router.
    unsigned numExperts = 0;
    unsigned expertsPerToken = 2;

    /** Per-head dimension. */
    unsigned headDim() const { return hidden / heads; }

    /** KV projection width (hidden * kvHeads / heads). */
    unsigned kvDim() const { return headDim() * kvHeads; }

    /** Whether this is a mixture-of-experts model. */
    bool isMoe() const { return numExperts > 1; }

    /** Attention parameters per layer (Q,K,V,O projections). */
    std::uint64_t attnParamsPerLayer() const;

    /** MLP parameters per layer (ALL experts for MoE). */
    std::uint64_t mlpParamsPerLayer() const;

    /** One expert's (or the dense MLP's) parameters. */
    std::uint64_t expertParams() const;

    /** Total parameter count (embeddings + blocks + head + norms). */
    std::uint64_t numParams() const;

    /** Parameters touched by every token's matmuls (no embeddings);
     *  for MoE this counts only the routed experts (active params). */
    std::uint64_t matmulParams() const;

    /**
     * Distinct experts a decode step touches for `nseq` concurrent
     * sequences (coupon-collector expectation, capped at numExperts).
     */
    double expertsTouched(double nseq) const;

    /** Weight bytes at a given dtype (weight-only quantization). */
    double weightBytes(hw::Dtype dtype) const;

    /** KV-cache bytes per token per sequence (stored in bf16/fp32). */
    double kvBytesPerToken(hw::Dtype dtype) const;
};

/** Llama2 7B (L32, d4096, MHA). */
ModelConfig llama2_7b();
/** Llama2 13B (L40, d5120, MHA). */
ModelConfig llama2_13b();
/** Llama2 70B (L80, d8192, GQA-8). */
ModelConfig llama2_70b();
/** Llama3 8B (GQA-8, 128k vocab). */
ModelConfig llama3_8b();
/** GPT-J 6B. */
ModelConfig gptj_6b();
/** Falcon 7B (multi-query attention). */
ModelConfig falcon_7b();
/** Baichuan2 7B. */
ModelConfig baichuan2_7b();
/** Qwen 7B. */
ModelConfig qwen_7b();
/** Mixtral-8x7B-style MoE (46.7B total, ~12.9B active). */
ModelConfig mixtral_8x7b();

} // namespace cllm::llm

#endif // CLLM_LLM_MODEL_CONFIG_HH
