# Empty dependencies file for confidential_session.
# This may be replaced when dependencies are built.
