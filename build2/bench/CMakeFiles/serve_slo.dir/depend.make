# Empty dependencies file for serve_slo.
# This may be replaced when dependencies are built.
