file(REMOVE_RECURSE
  "CMakeFiles/test_spec_decode.dir/test_spec_decode.cc.o"
  "CMakeFiles/test_spec_decode.dir/test_spec_decode.cc.o.d"
  "test_spec_decode"
  "test_spec_decode.pdb"
  "test_spec_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
