file(REMOVE_RECURSE
  "CMakeFiles/test_golden_figures.dir/test_golden_figures.cc.o"
  "CMakeFiles/test_golden_figures.dir/test_golden_figures.cc.o.d"
  "test_golden_figures"
  "test_golden_figures.pdb"
  "test_golden_figures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
