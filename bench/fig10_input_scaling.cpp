/**
 * @file
 * Figure 10: generation throughput versus input size for Llama2-7B,
 * batch 64, 128 output tokens, single EMR2 socket. Overheads relative
 * to bare metal. The paper: TDX overhead falls with input size until
 * ~2048 tokens (growing arithmetic intensity), then rises as the KV
 * cache makes the workload memory/TLB-bound.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 10", "input-size scaling, Llama2-7B batch 64 (EMR2)",
           "overhead falls until ~2048 input tokens, then rises (KV "
           "cache/TLB pressure)");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();

    const std::vector<unsigned> in_lens = {128u,  256u,  512u, 1024u,
                                           2048u, 4096u, 8192u};
    for (hw::Dtype dtype : {hw::Dtype::Bf16, hw::Dtype::Int8}) {
        std::cout << "--- dtype " << hw::dtypeName(dtype) << " ---\n";
        Table t({"input", "e2e tput [tok/s]", "TDX e2e ovh",
                 "decode tput [tok/s]", "TDX decode ovh",
                 "working set [GB]"});
        const auto rows = runGrid<std::vector<std::string>>(
            in_lens.size(), [&](std::size_t gi) {
                const unsigned in_len = in_lens[gi];
                llm::RunParams p;
                p.batch = 64;
                p.inLen = in_len;
                p.outLen = 128;
                p.dtype = dtype;
                p.sockets = 1;
                p.cores = cpu.coresPerSocket;

                const auto bare =
                    exp.runCpu(cpu, core::Backend::Bare, model, p);
                const auto tdx =
                    exp.runCpu(cpu, core::Backend::Tdx, model, p);
                const auto cmp = core::Experiment::compare(tdx, bare);
                return std::vector<std::string>{
                    std::to_string(in_len),
                    fmt(bare.timing.e2eTput),
                    fmtPct(cmp.e2eOverheadPct),
                    fmt(bare.timing.decodeTput),
                    fmtPct(cmp.tputOverheadPct),
                    fmt(bare.timing.workingSetBytes / 1e9, 1)};
            });
        for (const auto &row : rows)
            t.addRow(row);
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
