/**
 * @file
 * Tests for the hardware presets: AMX/AVX throughput relationships
 * (Insight 3 / Figure 8 preconditions), dtype properties, and machine
 * descriptions matching the paper's Section III-C.
 */

#include <gtest/gtest.h>

#include "hw/cpu.hh"
#include "hw/gpu.hh"

using namespace cllm::hw;

TEST(Dtype, ByteSizes)
{
    EXPECT_EQ(dtypeBytes(Dtype::Fp32), 4.0);
    EXPECT_EQ(dtypeBytes(Dtype::Bf16), 2.0);
    EXPECT_EQ(dtypeBytes(Dtype::Int8), 1.0);
}

TEST(Dtype, Names)
{
    EXPECT_STREQ(dtypeName(Dtype::Fp32), "fp32");
    EXPECT_STREQ(dtypeName(Dtype::Bf16), "bf16");
    EXPECT_STREQ(dtypeName(Dtype::Int8), "int8");
}

TEST(CpuSpec, AmxMultipliesBf16Throughput)
{
    const CpuSpec cpu = emr2();
    const double amx = cpu.peakOps(Dtype::Bf16, true, 8);
    const double avx = cpu.peakOps(Dtype::Bf16, false, 8);
    EXPECT_DOUBLE_EQ(amx / avx, 4.0); // 512 vs 128 ops/cycle
}

TEST(CpuSpec, AmxInt8DoublesBf16)
{
    const CpuSpec cpu = emr2();
    EXPECT_DOUBLE_EQ(cpu.peakOps(Dtype::Int8, true, 8) /
                         cpu.peakOps(Dtype::Bf16, true, 8),
                     2.0);
}

TEST(CpuSpec, Int8WithoutAmxIsCatastrophic)
{
    // "lack of AVX implementation for int8 in IPEX" (Figure 8): the
    // fallback path must be orders of magnitude slower.
    const CpuSpec cpu = emr2();
    const double ratio = cpu.peakOps(Dtype::Int8, true, 8) /
                         cpu.peakOps(Dtype::Int8, false, 8);
    EXPECT_GT(ratio, 100.0);
}

TEST(CpuSpec, Fp32IgnoresAmx)
{
    const CpuSpec cpu = emr1();
    EXPECT_DOUBLE_EQ(cpu.peakOps(Dtype::Fp32, true, 4),
                     cpu.peakOps(Dtype::Fp32, false, 4));
}

TEST(CpuSpec, PeakScalesLinearlyWithCores)
{
    const CpuSpec cpu = emr1();
    EXPECT_DOUBLE_EQ(cpu.peakOps(Dtype::Bf16, true, 32),
                     2.0 * cpu.peakOps(Dtype::Bf16, true, 16));
}

TEST(CpuSpec, Emr1MatchesPaper)
{
    const CpuSpec cpu = emr1();
    EXPECT_EQ(cpu.sockets, 2u);
    EXPECT_EQ(cpu.coresPerSocket, 32u);
    EXPECT_EQ(cpu.totalCores(), 64u);
    EXPECT_NEAR(cpu.freqGhz, 2.1, 1e-9);
    EXPECT_NEAR(cpu.cpuPriceUsd, 2130.0, 1e-9);
}

TEST(CpuSpec, Emr2MatchesPaper)
{
    const CpuSpec cpu = emr2();
    EXPECT_EQ(cpu.coresPerSocket, 60u);
    EXPECT_NEAR(cpu.freqGhz, 2.0, 1e-9);
    EXPECT_NEAR(cpu.cpuPriceUsd, 10710.0, 1e-9);
}

TEST(CpuSpec, SprIsSlowerAndCheaper)
{
    const CpuSpec s = spr();
    const CpuSpec e = emr2();
    EXPECT_LT(s.kernelEfficiency, e.kernelEfficiency);
    EXPECT_LT(s.dramBwPerSocket, e.dramBwPerSocket);
    EXPECT_LT(s.cpuPriceUsd, e.cpuPriceUsd * 0.6);
}

TEST(CpuSpecDeath, InvalidCoreCountFatal)
{
    const CpuSpec cpu = emr1();
    EXPECT_DEATH(cpu.peakOps(Dtype::Bf16, true, 0), "core");
    EXPECT_DEATH(cpu.peakOps(Dtype::Bf16, true, 1000), "core");
}

TEST(GpuSpec, H100Properties)
{
    const GpuSpec g = h100Nvl();
    EXPECT_GT(g.hbmBwBytes, 3e12);
    EXPECT_NEAR(g.hbmBytes, 94e9, 1e9);
    EXPECT_FALSE(g.hbmEncrypted); // the paper's security caveat
}

TEST(GpuSpec, Int8DoublesBf16)
{
    const GpuSpec g = h100Nvl();
    EXPECT_NEAR(g.peakOps(Dtype::Int8) / g.peakOps(Dtype::Bf16), 2.0,
                1e-9);
}

TEST(GpuSpec, TensorFlopsDwarfFp32)
{
    const GpuSpec g = h100Nvl();
    EXPECT_GT(g.peakOps(Dtype::Bf16) / g.peakOps(Dtype::Fp32), 5.0);
}

TEST(GpuSpec, ConfidentialLaunchCostExceedsPlain)
{
    const GpuSpec g = h100Nvl();
    EXPECT_GT(g.ccLaunchExtraUs, g.kernelLaunchUs);
    EXPECT_LT(g.ccBounceBwBytes, g.pcieBwBytes);
}
