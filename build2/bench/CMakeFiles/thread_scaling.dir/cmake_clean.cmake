file(REMOVE_RECURSE
  "CMakeFiles/thread_scaling.dir/thread_scaling.cpp.o"
  "CMakeFiles/thread_scaling.dir/thread_scaling.cpp.o.d"
  "thread_scaling"
  "thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
