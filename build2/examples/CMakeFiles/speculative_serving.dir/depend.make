# Empty dependencies file for speculative_serving.
# This may be replaced when dependencies are built.
