#include "serve/kv_pool.hh"

#include "util/logging.hh"

namespace cllm::serve {

KvBlockPool::KvBlockPool(KvPoolConfig cfg) : cfg_(cfg)
{
    if (cfg_.totalBlocks == 0 || cfg_.blockTokens == 0)
        cllm_fatal("KvBlockPool: degenerate configuration");
    refCounts_.assign(cfg_.totalBlocks, 0);
    freeList_.reserve(cfg_.totalBlocks);
    for (std::uint32_t b = 0; b < cfg_.totalBlocks; ++b)
        freeList_.push_back(static_cast<std::uint32_t>(
            cfg_.totalBlocks - 1 - b));
}

std::uint32_t
KvBlockPool::allocBlock()
{
    if (freeList_.empty())
        return kNoBlock;
    const std::uint32_t b = freeList_.back();
    freeList_.pop_back();
    refCounts_[b] = 1;
    return b;
}

void
KvBlockPool::unref(std::uint32_t block)
{
    if (refCounts_[block] == 0)
        cllm_panic("KvBlockPool: unref of free block ", block);
    if (--refCounts_[block] == 0)
        freeList_.push_back(block);
}

bool
KvBlockPool::addSequence(SeqId id, unsigned prompt_tokens)
{
    if (seqs_.count(id))
        cllm_fatal("KvBlockPool: duplicate sequence ", id);
    const unsigned need =
        (prompt_tokens + cfg_.blockTokens - 1) / cfg_.blockTokens;
    if (need > freeList_.size())
        return false;
    Seq s;
    s.tokens = prompt_tokens;
    s.blocks.reserve(need);
    for (unsigned i = 0; i < need; ++i)
        s.blocks.push_back(allocBlock());
    seqs_.emplace(id, std::move(s));
    return true;
}

bool
KvBlockPool::appendToken(SeqId id)
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("KvBlockPool: unknown sequence ", id);
    Seq &s = it->second;

    const bool needs_block = s.tokens % cfg_.blockTokens == 0;
    // Appending into a shared block requires copy-on-write.
    if (!needs_block && !s.blocks.empty() &&
        refCounts_[s.blocks.back()] > 1) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        unref(s.blocks.back());
        s.blocks.back() = fresh;
    }
    if (needs_block) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        s.blocks.push_back(fresh);
    }
    ++s.tokens;
    return true;
}

bool
KvBlockPool::fork(SeqId parent, SeqId child)
{
    auto it = seqs_.find(parent);
    if (it == seqs_.end())
        cllm_fatal("KvBlockPool: fork from unknown sequence ", parent);
    if (seqs_.count(child))
        cllm_fatal("KvBlockPool: fork onto existing sequence ", child);

    const Seq &p = it->second;
    Seq c;
    c.tokens = p.tokens;
    c.blocks = p.blocks;

    // Share all blocks; the trailing partial block is copied so the
    // two beams can diverge immediately.
    const bool has_partial =
        !p.blocks.empty() && p.tokens % cfg_.blockTokens != 0;
    if (has_partial) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        c.blocks.back() = fresh;
        for (std::size_t i = 0; i + 1 < c.blocks.size(); ++i)
            ++refCounts_[c.blocks[i]];
    } else {
        for (std::uint32_t b : c.blocks)
            ++refCounts_[b];
    }
    seqs_.emplace(child, std::move(c));
    return true;
}

void
KvBlockPool::release(SeqId id)
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("KvBlockPool: release of unknown sequence ", id);
    for (std::uint32_t b : it->second.blocks)
        unref(b);
    seqs_.erase(it);
}

unsigned
KvBlockPool::tokens(SeqId id) const
{
    auto it = seqs_.find(id);
    return it == seqs_.end() ? 0 : it->second.tokens;
}

std::size_t
KvBlockPool::blocksOf(SeqId id) const
{
    auto it = seqs_.find(id);
    return it == seqs_.end() ? 0 : it->second.blocks.size();
}

std::uint64_t
KvBlockPool::freeBlocks() const
{
    return freeList_.size();
}

double
KvBlockPool::utilization() const
{
    return 1.0 - static_cast<double>(freeList_.size()) /
                     static_cast<double>(cfg_.totalBlocks);
}

bool
KvBlockPool::canAdmit(unsigned tokens) const
{
    const unsigned need =
        (tokens + cfg_.blockTokens - 1) / cfg_.blockTokens;
    return need <= freeList_.size();
}

} // namespace cllm::serve
