# Empty dependencies file for test_golden_figures.
# This may be replaced when dependencies are built.
