/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * log-scale histograms, cheap enough for hot paths and deterministic
 * enough for the golden tests.
 *
 * Determinism contract (matching `cllm::par`): every hot-path
 * aggregate is an *integer*. Counter increments and histogram bucket
 * counts are unsigned 64-bit adds, which commute exactly — so the
 * merged totals a `snapshot()` reports are bit-identical whether the
 * work ran on 1 thread or 8, in any interleaving. Floating-point
 * accumulation across threads would not have that property, which is
 * why histograms record *bucket counts* (plus exact min/max, which
 * are order-independent) rather than a running double sum, and why
 * gauges — the one double-valued instrument — are last-write-wins
 * state meant for single-threaded simulation loops.
 *
 * Hot-path cost: counters are striped across cache-line-aligned
 * per-thread shards (relaxed atomic adds, no sharing between
 * threads); histogram inserts are one log2 plus one relaxed add.
 * Callers cache the instrument reference once (function-local
 * `static auto &`) so the name lookup happens a single time.
 */

#ifndef CLLM_OBS_METRICS_HH
#define CLLM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.hh"

namespace cllm {
class JsonWriter;
}

namespace cllm::obs {

/**
 * Monotonic event/byte counter. Increments land in the calling
 * thread's shard; `total()` folds the shards. Safe to add from any
 * thread concurrently; totals are exact and thread-count-invariant.
 */
class Counter
{
  public:
    static constexpr unsigned kShards = 64;

    void
    add(std::uint64_t n)
    {
        shards_[shardIndex()].v.fetch_add(n,
                                          std::memory_order_relaxed);
    }

    void inc() { add(1); }

    /** Exact sum over every shard. */
    std::uint64_t total() const;

    /** Zero every shard (tests / between bench phases). */
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };

    /** Stable per-thread stripe; threads beyond kShards share. */
    static unsigned shardIndex();

    Shard shards_[kShards];
};

/**
 * Last-write-wins double value (a level, not a rate): KV occupancy,
 * live-node count, current slowdown factor. Meant for the
 * single-threaded simulation loops; concurrent writers would race on
 * "last", which no deterministic sim does.
 */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    double
    get() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket log-scale histogram over (0, +inf). Buckets are
 * geometric between `lo` and `hi` (values below `lo` or at/above
 * `hi` land in underflow/overflow buckets; non-positive values count
 * as underflow). All per-bucket state is integer counts, so recorded
 * distributions are exact and thread-count-invariant; min/max are
 * tracked exactly via CAS (order-independent).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void record(double x);

    std::uint64_t count() const;

    /** Inclusive bucket index for `x` (0 = underflow,
     *  buckets+1 = overflow). */
    unsigned bucketIndex(double x) const;

    /** Lower edge of bucket `i`; bucket 0 has edge 0. */
    double bucketEdge(unsigned i) const;

    std::uint64_t
    bucketCount(unsigned i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    unsigned buckets() const { return nb_; }

    /**
     * Deterministic summary estimated from the bucket counts:
     * percentiles interpolate within the owning bucket, the mean uses
     * bucket geometric midpoints, min/max are exact. Empty histogram
     * => all-zero summary (the same convention `util::summarize` and
     * `percentile` follow for empty sample sets).
     */
    SampleSummary summary() const;

    void reset();

  private:
    double lo_, hi_;
    unsigned nb_;
    double logLo_, invLogStep_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/**
 * Process-wide name → instrument table. Instruments are created on
 * first use and never destroyed (stable addresses — cache the
 * reference), `snapshot()` walks them in name order so the emitted
 * JSON is byte-stable, and `reset()` zeroes values without
 * invalidating cached references.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, double lo = 1e-6,
                         double hi = 1e3, unsigned buckets = 48);

    /**
     * Emit one JSON object: `{"counters": {...}, "gauges": {...},
     * "histograms": {name: {count, mean, p50, p95, p99, min, max},
     * ...}}`, every section sorted by name.
     */
    void snapshot(JsonWriter &json) const;

    /** Zero every instrument; registered names survive. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace cllm::obs

#endif // CLLM_OBS_METRICS_HH
