#include "rag/dense.hh"

#include <algorithm>
#include <cmath>

#include "par/pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::rag {

namespace {

/** FNV-1a hash of a string. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

MiniSbert::MiniSbert(unsigned dim, unsigned feature_dim,
                     std::uint64_t seed)
    : dim_(dim), featureDim_(feature_dim)
{
    if (dim_ == 0 || featureDim_ == 0)
        cllm_fatal("MiniSbert: zero dimensions");
    Rng rng(seed);
    projection_.resize(static_cast<std::size_t>(featureDim_) * dim_);
    const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
    for (auto &w : projection_)
        w = static_cast<float>(rng.gaussian(0.0, scale));
}

std::uint64_t
MiniSbert::flopsPerEmbed() const
{
    // Sparse feature x projection: ~avg 40 active features x dim MACs,
    // plus tanh and normalization.
    return 2ULL * 40 * dim_ + 10ULL * dim_;
}

std::vector<float>
MiniSbert::embed(const std::string &text, DenseStats *stats) const
{
    const auto terms = analyzer_.analyze(text);

    // Accumulate hashed unigram + bigram features (signed hashing).
    std::vector<float> out(dim_, 0.0f);
    std::uint64_t flops = 0;
    auto add_feature = [&](const std::string &feat, float weight) {
        const std::uint64_t h = fnv1a(feat);
        const unsigned row = static_cast<unsigned>(h % featureDim_);
        const float sign = (h >> 63) ? -1.0f : 1.0f;
        const float *proj =
            projection_.data() + static_cast<std::size_t>(row) * dim_;
        for (unsigned i = 0; i < dim_; ++i)
            out[i] += sign * weight * proj[i];
        flops += 2ULL * dim_;
    };
    for (std::size_t i = 0; i < terms.size(); ++i) {
        add_feature(terms[i], 1.0f);
        if (i + 1 < terms.size())
            add_feature(terms[i] + "_" + terms[i + 1], 0.5f);
    }

    // Nonlinearity + L2 normalization.
    double norm_sq = 0.0;
    for (auto &v : out) {
        v = std::tanh(v);
        norm_sq += static_cast<double>(v) * v;
    }
    const float inv =
        norm_sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                      : 0.0f;
    for (auto &v : out)
        v *= inv;
    flops += 12ULL * dim_;

    if (stats) {
        stats->embedFlops += flops;
        stats->bytesTouched += terms.size() * 8 + dim_ * 4;
    }
    return out;
}

double
cosine(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        cllm_panic("cosine: dimension mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

DenseIndex::DenseIndex(unsigned dim) : dim_(dim)
{
    if (dim_ == 0)
        cllm_fatal("DenseIndex: zero dimension");
}

void
DenseIndex::add(DocId id, const std::vector<float> &vec)
{
    if (vec.size() != dim_)
        cllm_fatal("DenseIndex::add: wrong dimension ", vec.size());
    ids_.push_back(id);
    vecs_.insert(vecs_.end(), vec.begin(), vec.end());
}

std::vector<SearchHit>
DenseIndex::search(const std::vector<float> &query, std::size_t k,
                   DenseStats *stats) const
{
    if (query.size() != dim_)
        cllm_fatal("DenseIndex::search: wrong dimension");
    const auto better = [](const SearchHit &a, const SearchHit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.id < b.id;
    };
    const std::size_t keep = std::min(k, ids_.size());

    // Parallel scan as a deterministic reduction: every chunk scores
    // its vectors (each dot product's accumulation order is the same
    // as the serial scan's) and keeps its local top `keep`; partials
    // are concatenated in ascending chunk order, so the final
    // partial_sort sees a deterministic candidate list. The `better`
    // comparator is a total order (ties broken by id), hence the kept
    // hits equal the serial scan's exactly.
    constexpr std::size_t kScanGrain = 512;
    std::vector<SearchHit> cands = par::parallelReduce(
        0, ids_.size(), kScanGrain, std::vector<SearchHit>{},
        [&](std::size_t i0, std::size_t i1) {
            std::vector<SearchHit> local;
            local.reserve(i1 - i0);
            for (std::size_t i = i0; i < i1; ++i) {
                const float *v = vecs_.data() + i * dim_;
                double dot = 0.0;
                for (unsigned j = 0; j < dim_; ++j)
                    dot += static_cast<double>(query[j]) * v[j];
                local.push_back({ids_[i], dot});
            }
            const std::size_t local_keep =
                std::min(keep, local.size());
            std::partial_sort(local.begin(),
                              local.begin() + local_keep, local.end(),
                              better);
            local.resize(local_keep);
            return local;
        },
        [](std::vector<SearchHit> acc, std::vector<SearchHit> part) {
            acc.insert(acc.end(), part.begin(), part.end());
            return acc;
        });

    if (stats) {
        stats->vectorsCompared += ids_.size();
        stats->bytesTouched += ids_.size() * dim_ * 4;
        stats->embedFlops += 2ULL * ids_.size() * dim_;
    }
    const std::size_t final_keep = std::min(keep, cands.size());
    std::partial_sort(cands.begin(), cands.begin() + final_keep,
                      cands.end(), better);
    cands.resize(final_keep);
    return cands;
}

} // namespace cllm::rag
