
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/autoscaler.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/autoscaler.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/autoscaler.cc.o.d"
  "/root/repo/src/fleet/metrics.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/metrics.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/metrics.cc.o.d"
  "/root/repo/src/fleet/node.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/node.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/node.cc.o.d"
  "/root/repo/src/fleet/presets.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/presets.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/presets.cc.o.d"
  "/root/repo/src/fleet/router.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/router.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/router.cc.o.d"
  "/root/repo/src/fleet/simulator.cc" "src/fleet/CMakeFiles/cllm_fleet.dir/simulator.cc.o" "gcc" "src/fleet/CMakeFiles/cllm_fleet.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/serve/CMakeFiles/cllm_serve.dir/DependInfo.cmake"
  "/root/repo/build2/src/cost/CMakeFiles/cllm_cost.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/cllm_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/llm/CMakeFiles/cllm_llm.dir/DependInfo.cmake"
  "/root/repo/build2/src/tee/CMakeFiles/cllm_tee.dir/DependInfo.cmake"
  "/root/repo/build2/src/hw/CMakeFiles/cllm_hw.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/cllm_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/cllm_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
