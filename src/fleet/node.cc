#include "fleet/node.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::fleet {

fault::FaultSchedule
nodeFaultSchedule(const fault::FaultScheduleConfig &cfg,
                  std::uint64_t fleet_seed, unsigned node_id,
                  double t0)
{
    fault::FaultScheduleConfig node_cfg = cfg;
    node_cfg.seed = splitSeed(fleet_seed, node_id);
    const fault::FaultSchedule raw =
        fault::FaultSchedule::generate(node_cfg);
    if (t0 == 0.0)
        return raw;
    fault::FaultSchedule shifted;
    for (fault::FaultEvent e : raw.events()) {
        e.time += t0;
        shifted.add(e);
    }
    return shifted;
}

Node::Node(unsigned id, std::size_t template_index,
           const NodeTemplate &tmpl, std::uint64_t fleet_seed,
           double provision_start, double available_at,
           obs::Tracer *tracer)
    : id_(id), tmplIndex_(template_index), name_(tmpl.name),
      pricePerHour_(tmpl.pricePerHour),
      provisionStart_(provision_start), availableAt_(available_at)
{
    if (!tmpl.makeStep)
        cllm_fatal("fleet::Node: template has no step-model factory");
    if (tmpl.pricePerHour < 0.0)
        cllm_fatal("fleet::Node: negative price");
    step_ = tmpl.makeStep();
    cfg_ = tmpl.server;
    cfg_.policy = serve::BatchPolicy::Continuous;
    cfg_.faults = nodeFaultSchedule(tmpl.faults, fleet_seed, id,
                                    availableAt_);
    cfg_.tracer = tracer;
    cfg_.traceLane = traceLane();
    engine_ = std::make_unique<serve::ContinuousEngine>(*step_, cfg_);
    if (cfg_.chunkedPrefill.mode != serve::ChunkMode::Off) {
        const double nseq = cfg_.maxBatch / 2.0;
        const double pos =
            static_cast<double>(tmpl.meanInLenHint);
        if (cfg_.specDecode.enabled) {
            // With speculation on, a prefill slice rides a full
            // propose->verify cycle, not a plain decode step.
            const double k = cfg_.specDecode.draftTokens;
            estDecode_ = cfg_.specDecode.draftCostRatio * k *
                             step_->decodeStep(nseq, pos) +
                         step_->verifyStep(nseq, k, pos);
        } else {
            estDecode_ = step_->decodeStep(nseq, pos);
        }
    }
    estPrefill_ = estimatePrefill(tmpl.meanInLenHint);
}

double
Node::estimatePrefill(unsigned in_len) const
{
    if (cfg_.chunkedPrefill.mode == serve::ChunkMode::Off)
        return step_->prefill(in_len);
    const unsigned chunk = cfg_.chunkedPrefill.chunkTokens;
    double sec = 0.0;
    unsigned done = 0;
    unsigned slices = 0;
    while (done < in_len) {
        const unsigned take = std::min(chunk, in_len - done);
        // Project the loaded case: every slice rides a step that is
        // already streaming the weights for a decode batch.
        sec += step_->prefillChunk(done, take, true);
        done += take;
        ++slices;
    }
    if (slices > 1)
        sec += static_cast<double>(slices - 1) * estDecode_;
    return sec;
}

void
Node::startDrain(double now)
{
    if (draining_ || decommissioned())
        return;
    draining_ = true;
    drainStart_ = now;
}

void
Node::finishDrain()
{
    if (!draining_ || decommissioned())
        cllm_fatal("fleet::Node: finishDrain on a non-draining node");
    decommissionTime_ = std::max(drainStart_, engine_->clock());
}

double
Node::projectedTtft(double now, unsigned in_len) const
{
    const double lag = std::max(0.0, engine_->clock() - now);
    return lag +
           static_cast<double>(engine_->outstanding()) * estPrefill_ +
           estimatePrefill(in_len);
}

double
Node::billedSeconds(double fleet_end) const
{
    const double end =
        decommissioned() ? decommissionTime_ : fleet_end;
    return std::max(0.0, end - provisionStart_);
}

serve::ServeMetrics
Node::metrics() const
{
    serve::ServeMetrics m = serve::finalizeRequests(
        engine_->submitted(), engine_->clock(),
        engine_->occupancySum(), engine_->steps(), engine_->tally(),
        cfg_.ttftSlo, cfg_.tpotSlo);
    m.kvUtilizationPeak = engine_->kvPeak();
    m.kvUtilizationMean = engine_->kvUtilizationMean();
    m.peakBatchOccupancy =
        static_cast<double>(engine_->peakBatch());
    m.faultTimeline = engine_->timeline();
    return m;
}

} // namespace cllm::fleet
