/**
 * @file
 * Shared golden-file plumbing for regression tests: flat
 * string→double maps written as JSON under `tests/golden/`, compared
 * at tight relative tolerance, regenerated in place with
 * CLLM_REGEN_GOLDEN=1.
 */

#ifndef CLLM_TESTS_GOLDEN_UTIL_HH
#define CLLM_TESTS_GOLDEN_UTIL_HH

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "util/json.hh"

#ifndef CLLM_GOLDEN_DIR
#error "CLLM_GOLDEN_DIR must point at tests/golden"
#endif

namespace cllm::testing {

constexpr double kGoldenRelTol = 1e-9;

inline bool
regenRequested()
{
    const char *env = std::getenv("CLLM_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

inline void
writeGolden(const std::string &path,
            const std::map<std::string, double> &values)
{
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << "{\n";
    std::size_t i = 0;
    for (const auto &[key, val] : values) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", val);
        os << "  \"" << key << "\": " << buf
           << (++i == values.size() ? "\n" : ",\n");
    }
    os << "}\n";
}

inline std::map<std::string, double>
loadGolden(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good())
        ADD_FAILURE() << "missing golden file " << path
                      << " (run with CLLM_REGEN_GOLDEN=1 to create)";
    std::ostringstream text;
    text << is.rdbuf();
    return parseFlatJsonNumbers(text.str());
}

inline void
checkAgainstGolden(const std::string &file,
                   const std::map<std::string, double> &actual)
{
    const std::string path = std::string(CLLM_GOLDEN_DIR) + "/" + file;
    if (regenRequested()) {
        writeGolden(path, actual);
        GTEST_SKIP() << "regenerated " << path;
    }
    const auto expected = loadGolden(path);
    ASSERT_FALSE(expected.empty());
    // Both directions: a key that vanished from the experiment grid is
    // as much a regression as one that changed value.
    for (const auto &[key, val] : actual)
        EXPECT_TRUE(expected.count(key))
            << "key " << key << " missing from " << file
            << " (regenerate goldens?)";
    for (const auto &[key, want] : expected) {
        const auto it = actual.find(key);
        if (it == actual.end()) {
            ADD_FAILURE() << "golden key " << key
                          << " no longer produced";
            continue;
        }
        const double got = it->second;
        const double scale = std::max(std::abs(want), std::abs(got));
        const double rel =
            scale > 0.0 ? std::abs(got - want) / scale : 0.0;
        EXPECT_LE(rel, kGoldenRelTol)
            << key << ": expected " << want << ", got " << got;
    }
}

} // namespace cllm::testing

#endif // CLLM_TESTS_GOLDEN_UTIL_HH
