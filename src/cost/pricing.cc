#include "cost/pricing.hh"

#include "util/logging.hh"

namespace cllm::cost {

CpuPricing
gcpSpotUsEast1()
{
    return {"GCP spot us-east1 (EMR)", 0.0088, 0.00118};
}

CpuPricing
gcpSpotSprUsEast1()
{
    // "renting an almost 2x cheaper Sapphire Rapid" (Section V-D).
    return {"GCP spot us-east1 (SPR)", 0.0047, 0.00118};
}

GpuPricing
cgpuH100()
{
    return {"cGPU H100 (NCCads_H100_v5)", 10.50};
}

GpuPricing
gpuH100()
{
    return {"GPU H100 (NCads_H100_v5)", 9.60};
}

double
cpuInstanceHr(const CpuPricing &p, unsigned vcpus, double mem_gb)
{
    if (vcpus == 0 || mem_gb <= 0.0)
        cllm_fatal("cpuInstanceHr: empty instance");
    return p.vcpuHr * vcpus + p.memGbHr * mem_gb;
}

double
costPerMTokens(double tokens_per_s, double instance_hr)
{
    if (tokens_per_s <= 0.0)
        cllm_fatal("costPerMTokens: non-positive throughput");
    const double seconds = 1e6 / tokens_per_s;
    return instance_hr * seconds / 3600.0;
}

double
perSecondUsd(double instance_hr)
{
    if (instance_hr < 0.0)
        cllm_fatal("perSecondUsd: negative price");
    return instance_hr / 3600.0;
}

double
nodeSecondsUsd(double instance_hr, double seconds)
{
    if (seconds < 0.0)
        cllm_fatal("nodeSecondsUsd: negative duration");
    return perSecondUsd(instance_hr) * seconds;
}

double
costPer1kTokens(std::uint64_t tokens, double total_usd)
{
    if (tokens == 0)
        cllm_fatal("costPer1kTokens: no tokens generated");
    return total_usd * 1000.0 / static_cast<double>(tokens);
}

} // namespace cllm::cost
