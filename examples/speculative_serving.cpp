/**
 * @file
 * Speculative-decoding walkthrough: why drafting tokens ahead is
 * worth more inside a TEE than outside. Every decode step pays fixed
 * costs that do not scale with the tokens it produces — the weight
 * stream through the memory-encryption engine, per-op kernel floors,
 * and the paged-attention walk — so emitting several tokens per
 * target pass amortizes exactly the overheads confidential computing
 * adds. The same Poisson trace replays against one TDX serving
 * instance with speculation off and at increasing draft depths, and
 * prints the step-count/latency comparison plus the acceptance
 * accounting.
 *
 * A draft model proposes k tokens per sequence per cycle (priced at
 * a fraction of the target's decode step), the target then scores
 * all k+1 positions in one fused verify pass, and the leading run of
 * accepted drafts — plus one bonus or correction token — is emitted.
 * Rejected drafts are rolled back from the paged KV pool, so the
 * cache holds exactly the verified prefix afterwards.
 */

#include <iostream>
#include <memory>

#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

} // namespace

int
main()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy;
    deploy.inLen = 1024;
    deploy.outLen = 256;
    deploy.batch = 32;
    deploy.sockets = 1;
    deploy.cores = cpu.coresPerSocket;

    // Decode-heavy chat shape: short prompts, long generations, so
    // the run spends most of its time in the regime speculation
    // targets.
    WorkloadConfig load;
    load.arrivalRate = 0.25;
    load.numRequests = 120;
    load.meanInLen = 256;
    load.meanOutLen = 192;
    load.seed = 43;

    std::cout << "Speculative decoding on a TDX instance "
                 "(Llama2-7B bf16)\n";
    std::cout << "pool: 2048 blocks x 16 tokens; short prompts, "
                 "long generations;\ndraft cost ratio 0.15, "
                 "acceptance probability 0.7\n\n";

    struct Run
    {
        const char *name;
        unsigned draftTokens; //!< 0 = speculation off
    };
    const Run runs[] = {
        {"off", 0}, {"k=2", 2}, {"k=4", 4}, {"k=6", 6},
    };

    Table t({"run", "target steps", "drafted", "accepted",
             "mean acc len", "ITL p50 [ms]", "ITL p99 [ms]",
             "tok/s"});
    for (const Run &r : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2048;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = KvMode::Paged;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        if (r.draftTokens) {
            cfg.specDecode.enabled = true;
            cfg.specDecode.draftTokens = r.draftTokens;
            cfg.specDecode.draftCostRatio = 0.15;
            cfg.specDecode.acceptProb = 0.7;
        }

        Server server(
            makeCpuStepModel(cpu, shared(tee::makeTdx()), model,
                             deploy),
            cfg);
        const ServeMetrics m = server.run(generateWorkload(load));
        // Each per-sequence verify cycle ends in a bonus token or a
        // rejection resample, so their sum counts cycles.
        const std::uint64_t cycles = m.specBonus + m.specRejected;
        t.addRow({r.name, fmtInt(m.decodeSteps),
                  fmtInt(m.specDraftTokens), fmtInt(m.specAccepted),
                  cycles ? fmt(static_cast<double>(m.specAccepted) /
                                   static_cast<double>(cycles),
                               2)
                         : std::string("-"),
                  fmt(1e3 * m.itl.p50, 1), fmt(1e3 * m.itl.p99, 1),
                  fmt(m.tokensPerSecond)});
    }
    t.print(std::cout);

    std::cout << "\nEvery accepted draft rides a target pass that "
                 "was already streaming the\nencrypted weights, so "
                 "the per-step MEE/EPC tax is split across more "
                 "emitted\ntokens and the inter-token latency drops. "
                 "The completion stream is\nbit-identical to the "
                 "non-speculative run — speculation changes when "
                 "tokens\narrive, never which tokens arrive — and "
                 "deeper drafts trade wasted draft\nwork (rejected "
                 "tokens are rolled back from the KV pool) against "
                 "fewer\ntarget passes.\n";
    return 0;
}
