file(REMOVE_RECURSE
  "CMakeFiles/cllm_cost.dir/pricing.cc.o"
  "CMakeFiles/cllm_cost.dir/pricing.cc.o.d"
  "libcllm_cost.a"
  "libcllm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
