# Empty dependencies file for test_spec_decode.
# This may be replaced when dependencies are built.
