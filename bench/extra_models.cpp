/**
 * @file
 * Section III-C cross-check: TDX overheads for the other 7B-class
 * models the paper verified (Llama3 8B, GPT-J 6B, Falcon 7B,
 * Baichuan2 7B, Qwen 7B), expected in the 3.1-13.1% range, in line
 * with the Llama2-7B results.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Section III-C", "cross-model TDX overheads (EMR1)",
           "3.1-13.1% across Llama3 8B, GPT-J, Falcon, Baichuan2, "
           "Qwen");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();

    Table t({"model", "params [B]", "tput bare [tok/s]",
             "tput TDX [tok/s]", "TDX overhead"});
    for (const auto &model :
         {llm::llama2_7b(), llm::llama3_8b(), llm::gptj_6b(),
          llm::falcon_7b(), llm::baichuan2_7b(), llm::qwen_7b()}) {
        const auto p = throughputParams(cpu);
        const auto bare =
            exp.runCpu(cpu, core::Backend::Bare, model, p);
        const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        t.addRow({model.name, fmt(model.numParams() / 1e9, 2),
                  fmt(bare.timing.decodeTput),
                  fmt(tdx.timing.decodeTput),
                  fmtPct(core::Experiment::compare(tdx, bare)
                             .tputOverheadPct)});
    }
    t.print(std::cout);
    return 0;
}
