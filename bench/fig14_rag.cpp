/**
 * @file
 * Figure 14: mean evaluation time of full RAG pipelines (BM25,
 * Reranked BM25, dense SBERT) over a BEIR-style benchmark, running
 * the retrieval store and rankers entirely inside the TEE. Priced
 * against a production-scale (20 GB) index working set, as deployed
 * with Elasticsearch. The paper: TDX costs ~6-7%.
 */

#include "bench_util.hh"

#include "rag/rag_pipeline.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 14", "RAG pipelines in TEEs (EMR2)",
           "~6-7% TDX degradation across BM25 / Reranked BM25 / "
           "SBERT");

    rag::BeirConfig cfg;
    cfg.numDocs = 3000;
    cfg.numQueries = 60;
    cfg.seed = 4242;
    const rag::BeirDataset ds = rag::generateBeir(cfg);
    const rag::RagPipeline pipeline(ds);

    const hw::CpuSpec cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    const auto vm = tee::makeVm();
    const auto tdx = tee::makeTdx();
    const std::uint64_t prod_index = 20ULL * GiB;
    const unsigned cores = 16;

    Table t({"method", "nDCG@10", "recall@100", "bare [ms/q]",
             "VM [ms/q]", "TDX [ms/q]", "TDX overhead"});
    for (auto m : {rag::RagMethod::Bm25, rag::RagMethod::RerankedBm25,
                   rag::RagMethod::Sbert}) {
        const auto eval = pipeline.evaluate(m);
        const auto tb =
            rag::priceRagRun(cpu, *bare, eval, prod_index, cores);
        const auto tv =
            rag::priceRagRun(cpu, *vm, eval, prod_index, cores);
        const auto tt =
            rag::priceRagRun(cpu, *tdx, eval, prod_index, cores);
        t.addRow({rag::ragMethodName(m), fmt(eval.ndcg10, 3),
                  fmt(eval.recall100, 3),
                  fmt(1e3 * tb.meanQuerySeconds, 2),
                  fmt(1e3 * tv.meanQuerySeconds, 2),
                  fmt(1e3 * tt.meanQuerySeconds, 2),
                  fmtPct(100.0 * (tt.meanQuerySeconds /
                                      tb.meanQuerySeconds -
                                  1.0))});
    }
    t.print(std::cout);
    std::cout << "\nfunctional check: " << pipeline.store().size()
              << " documents indexed, "
              << pipeline.store().indexBytes() / 1024
              << " KiB in-memory index\n";
    return 0;
}
