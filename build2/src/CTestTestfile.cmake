# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("par")
subdirs("crypto")
subdirs("mem")
subdirs("hw")
subdirs("tee")
subdirs("fault")
subdirs("llm")
subdirs("rag")
subdirs("serve")
subdirs("cost")
subdirs("fleet")
subdirs("core")
