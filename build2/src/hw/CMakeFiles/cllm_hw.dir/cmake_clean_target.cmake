file(REMOVE_RECURSE
  "libcllm_hw.a"
)
