/**
 * @file
 * Incremental continuous-batching engine: the core simulation loop of
 * `serve::Server`, restructured so callers drive it one iteration at a
 * time instead of replaying a whole trace in one call. `Server` keeps
 * its exact batch-granularity semantics (it submits the full trace and
 * iterates to quiescence — bit-identical to the pre-refactor loop),
 * while the fleet simulator (`src/fleet`) feeds requests in as a
 * router dispatches them and interleaves many engines under one
 * discrete-event clock.
 */

#ifndef CLLM_SERVE_ENGINE_HH
#define CLLM_SERVE_ENGINE_HH

#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "serve/prefix_cache.hh"
#include "serve/serving.hh"

namespace cllm::serve {

/**
 * One continuous-batching server simulation, driven iteration by
 * iteration. Construction validates the config the same way Server
 * does; `submit` enqueues a request for admission at `ready_at`;
 * `iterate` performs one loop iteration (restart handling, admission,
 * then either a time advance or one decode step).
 */
class ContinuousEngine
{
  public:
    ContinuousEngine(const StepModel &step, const ServerConfig &cfg);

    /** Offer a request for admission no earlier than `ready_at`. */
    void submit(Request *r, double ready_at, unsigned attempts = 0);

    /** True when nothing is pending or active. */
    bool idle() const { return pending_.empty() && active_.empty(); }

    /**
     * Earliest simulation time the next `iterate` could act at: the
     * current clock while a batch is running, the head-of-queue ready
     * time when idle with queued work, +infinity when fully idle.
     */
    double nextReadyTime() const;

    /**
     * One loop iteration; no-op when idle.
     *
     * `admit_horizon` is the time of the earliest request the caller
     * knows about but has not submitted yet (a fleet driver's next
     * unrouted arrival). Once the clock reaches it the admission loop
     * pauses and returns without stepping, so the caller can submit
     * the newcomer and re-enter; admission then resumes in the same
     * (readyAt, id) order a fully pre-submitted run would have used.
     * With everything submitted up front (Server::run) the default
     * horizon never pauses anything.
     */
    void iterate(double admit_horizon =
                     std::numeric_limits<double>::infinity());

    // -- Live state signals (router / autoscaler inputs) -------------
    double clock() const { return clock_; }
    std::size_t activeCount() const { return active_.size(); }
    std::size_t pendingCount() const { return pending_.size(); }
    std::size_t outstanding() const
    {
        return active_.size() + pending_.size();
    }
    /** Free fraction of the KV pool (1.0 when unbounded). */
    double kvHeadroom() const;
    /** Free KV blocks (UINT64_MAX when unbounded). */
    std::uint64_t kvFreeBlocks() const;
    std::uint64_t kvUsedBlocks() const;
    std::uint64_t kvTotalBlocks() const;
    /** Used fraction of the KV pool right now (0 when unbounded). */
    double kvUtilization() const;
    const StepModel &stepModel() const { return *step_; }

    /** Whether automatic prefix caching is live on this engine. */
    bool prefixEnabled() const { return prefix_.has_value(); }
    /** Blocks currently pinned by the prefix cache (0 when off). */
    std::uint64_t prefixPinnedBlocks() const
    {
        return prefix_ ? prefix_->pinnedBlocks() : 0;
    }

    // -- Run outcome --------------------------------------------------
    const ServeTally &tally() const { return tally_; }
    double occupancySum() const { return occupancySum_; }
    std::size_t steps() const { return steps_; }
    double kvPeak() const { return kvPeak_; }
    /** Mean KV occupancy sampled at every decode-step boundary. */
    double kvUtilizationMean() const
    {
        return steps_ ? kvUtilSum_ / static_cast<double>(steps_)
                      : 0.0;
    }
    /** Largest batch any single decode step ran with. */
    std::size_t peakBatch() const { return maxActive_; }
    const std::vector<fault::FaultRecord> &timeline() const;

    /** Every request ever submitted, in submission order. */
    const std::vector<const Request *> &submitted() const
    {
        return submitted_;
    }

    /**
     * Requests that finished since the last call, in completion
     * order; the internal log is cleared.
     */
    std::vector<const Request *> drainFinished();

  private:
    struct ActiveSeq
    {
        Request *req;
        unsigned produced = 0;
        unsigned attempts = 0;
        // Chunked-prefill progress: prompt tokens whose KV is live
        // (prefillDone) against the tokens this life must prefill
        // (prefillTarget). A sequence decodes only once
        // prefillDone >= prefillTarget; monolithic admissions set
        // both to 0, so the predicate is phase-agnostic.
        unsigned prefillDone = 0;
        unsigned prefillTarget = 0;
        // Consecutive budget-starved iterations (starvation guard).
        unsigned stallIters = 0;
        // Draft tokens this speculative cycle proposes for the
        // sequence (0 outside spec mode); set before KV growth so the
        // pool can make room for k drafts plus the emitted token.
        unsigned draftK = 0;
        // Completion time of this sequence's last emitted token, the
        // baseline for inter-token-latency samples. Carried across
        // preemptions and retries so ITL stays client-perceived.
        double lastEmit = -1.0;
    };

    struct PendingReq
    {
        Request *req;
        double readyAt;
        unsigned attempts;
        // Paged-mode resume state: tokens already generated before a
        // preemption (never re-emitted), and whether the KV pages sit
        // swapped out in EPC-backed memory rather than discarded.
        unsigned produced = 0;
        bool swapped = false;
        // Last token-emission time before the requeue (ITL carry).
        double lastEmit = -1.0;
    };

    /** Min-heap order: earliest readyAt first, ties by request id. */
    struct PendingLater
    {
        bool
        operator()(const PendingReq &a, const PendingReq &b) const
        {
            if (a.readyAt != b.readyAt)
                return a.readyAt > b.readyAt;
            return a.req->id > b.req->id;
        }
    };

    bool canAdmit(const Request &r, unsigned produced, double factor,
                  std::uint64_t shared_blocks = 0) const;
    /**
     * Admission gate with prefix awareness: probes the cache for the
     * request's shared-prefix block credit and, when the pool is
     * still short, evicts LRU cached prefixes until the request fits
     * or nothing evictable remains. Re-probes after every eviction
     * round (eviction may have reclaimed part of the match).
     */
    bool admitCheck(const Request &r, unsigned produced, double factor,
                    bool swapped);
    void syncPrefixTally();
    void requeue(Request *r, unsigned attempts,
                 double last_emit = -1.0);
    double swapSeconds(unsigned tokens) const;
    void preemptActive(std::size_t idx);
    void growActivePaged();
    /** Like growActivePaged, but only decoding sequences append. */
    void growDecodingPaged();
    /**
     * One speculative propose->verify cycle for a pure decode batch:
     * a draft model proposes up to `draftTokens` tokens per sequence,
     * the target scores them all in a single fused verify step (paying
     * the weight stream and the per-step TEE tax once), and every
     * sequence emits its accepted draft prefix plus one token.
     * Rejected draft KV is rolled back through the paged pool.
     */
    void specStep();
    /**
     * One token-budgeted mixed prefill/decode step: every decoding
     * sequence emits a token while prefilling sequences advance by at
     * most one `chunkTokens` slice each, planned in admission order
     * under the per-iteration budget. Only called when chunking is on
     * and at least one active sequence is still prefilling.
     */
    void chunkedStep();
    void publishKvGauges() const;

    const StepModel *step_;
    ServerConfig cfg_;
    bool chunked_ = false;
    bool spec_ = false;
    fault::FaultInjector inj_;
    std::optional<KvBlockPool> pool_;
    std::optional<PrefixCache> prefix_;

    double clock_ = 0.0;
    double occupancySum_ = 0.0;
    double kvPeak_ = 0.0;
    double kvUtilSum_ = 0.0; //!< KV occupancy at decode boundaries
    std::size_t maxActive_ = 0;
    std::size_t steps_ = 0;
    ServeTally tally_{};

    // Admission-pause state: a horizon pause must resume the SAME
    // loop iteration, so the fault snapshot taken at iteration start
    // (restart sweep, KV capacity factor, degraded batch cap) carries
    // over instead of being re-sampled mid-iteration.
    bool inAdmission_ = false;
    double admitKvFactor_ = 1.0;
    unsigned admitMaxBatch_ = 0;

    std::vector<ActiveSeq> active_;
    std::priority_queue<PendingReq, std::vector<PendingReq>,
                        PendingLater>
        pending_;
    std::vector<const Request *> submitted_;
    std::vector<const Request *> finished_;
};

/**
 * Build a ServeMetrics from annotated requests — the shared tail of a
 * Server run and a fleet node. Panics only when a non-empty request
 * set completed nothing without any being dropped (a simulation bug).
 */
ServeMetrics finalizeRequests(const std::vector<const Request *> &reqs,
                              double makespan, double occupancy_sum,
                              std::size_t steps,
                              const ServeTally &tally, double ttft_slo,
                              double tpot_slo);

} // namespace cllm::serve

#endif // CLLM_SERVE_ENGINE_HH
