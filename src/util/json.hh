/**
 * @file
 * Minimal streaming JSON writer for exporting experiment results to
 * downstream tooling (plots, dashboards). Handles nesting, comma
 * placement, and string escaping; no DOM, no parsing.
 */

#ifndef CLLM_UTIL_JSON_HH
#define CLLM_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cllm {

/**
 * Streaming JSON emitter.
 *
 * @code
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.key("backend").value("TDX");
 *   j.key("tokens_per_s").value(46.6);
 *   j.key("latencies").beginArray().value(1.0).value(2.0).endArray();
 *   j.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    /** Destructor panics if containers remain open (library bug). */
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &value(unsigned v) { return value(std::int64_t{v}); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /**
     * `key(name).value(v)` in one call — the shape every metrics
     * exporter in the tree wants. Counter types (std::size_t,
     * unsigned, ...) hit the integer overloads directly, so call
     * sites need no width casts.
     */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Whether all containers are closed. */
    bool complete() const { return stack_.empty() && wroteRoot_; }

  private:
    enum class Frame { Object, Array };

    void beforeValue();
    void escape(const std::string &s);

    std::ostream &os_;
    std::vector<Frame> stack_;
    std::vector<bool> first_;
    bool pendingKey_ = false;
    bool wroteRoot_ = false;
};

/**
 * Parse a flat JSON object of numeric values — `{"a.b": 1.5, ...}` —
 * as written by JsonWriter for golden expectation files. Keys decode
 * every escape the writer emits (the RFC 8259 short escapes `\" \\
 * \/ \b \f \n \r \t` plus ASCII `\u00XX`), so writer->reader
 * round-trips are byte-exact; non-ASCII `\u` escapes, nesting, and
 * non-numeric values are rejected. Fatal on malformed input (golden
 * files are checked in, so damage is a repo bug, not a runtime
 * condition).
 */
std::map<std::string, double> parseFlatJsonNumbers(
    const std::string &text);

} // namespace cllm

#endif // CLLM_UTIL_JSON_HH
