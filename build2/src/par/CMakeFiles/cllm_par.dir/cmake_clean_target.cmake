file(REMOVE_RECURSE
  "libcllm_par.a"
)
