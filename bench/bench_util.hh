/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef CLLM_BENCH_BENCH_UTIL_HH
#define CLLM_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "llm/perf_cluster.hh"
#include "obs/metrics.hh"
#include "par/pool.hh"
#include "serve/serving.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace cllm::bench {

/**
 * Evaluate `fn(i)` for every grid point i in [0, n) on the cllm::par
 * pool and return the results in index order. The sweep binaries use
 * this to fan their parameter grids out across cores: each grid
 * point's computation is independent and deterministic (any nested
 * parallelFor inside `fn` runs inline on the worker), so the returned
 * vector is identical to a serial sweep — only the wall-clock drops.
 * Print from the returned vector, never from inside `fn`.
 */
template <typename T, typename Fn>
std::vector<T>
runGrid(std::size_t n, Fn &&fn)
{
    std::vector<T> out(n);
    par::parallelFor(0, n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            out[i] = fn(i);
    });
    return out;
}

/**
 * Observability flags shared by the bench binaries. Both are strictly
 * additive: with neither flag the binaries' stdout stays byte-
 * identical to the untraced build.
 */
struct ObsOptions
{
    bool trace = false;     //!< record a sim trace and export it
    std::string tracePath;  //!< "" = $CLLM_TRACE_OUT, then default
    std::string metricsOut; //!< "" = no registry snapshot
};

/** Usage text for the shared observability flags. */
inline const char *
obsUsage()
{
    return "  --trace [path]      record a sim-time trace and write "
           "Chrome trace-event\n"
           "                      JSON (chrome://tracing / Perfetto); "
           "path defaults to\n"
           "                      $CLLM_TRACE_OUT, then to "
           "<bench>.trace.json\n"
           "  --metrics-out path  write the metrics-registry snapshot "
           "(counters,\n"
           "                      gauges, histograms) as JSON to "
           "path\n"
           "  --help              show this help\n";
}

/**
 * Consume argv[i] (advancing `i` past any operand) when it is one of
 * the shared observability flags; false otherwise.
 */
inline bool
parseObsArg(ObsOptions &opt, int argc, char **argv, int &i)
{
    if (std::strcmp(argv[i], "--trace") == 0) {
        opt.trace = true;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            opt.tracePath = argv[++i];
        return true;
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--metrics-out needs a path");
        opt.metricsOut = argv[++i];
        return true;
    }
    return false;
}

/**
 * Dump the global metrics registry as JSON to `path`; no-op when
 * `path` is empty.
 */
inline void
writeMetricsSnapshot(const std::string &path)
{
    if (path.empty())
        return;
    std::ofstream f(path);
    if (!f)
        cllm_fatal("cannot open metrics output: ", path);
    JsonWriter json(f);
    obs::Registry::global().snapshot(json);
    f << "\n";
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artefact, const std::string &what,
       const std::string &paper_band)
{
    std::cout << "=== " << artefact << ": " << what << " ===\n";
    if (!paper_band.empty())
        std::cout << "paper reports: " << paper_band << "\n";
    std::cout << "\n";
}

/** Throughput run parameters used across the CPU figures. */
inline llm::RunParams
throughputParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p;
    p.batch = 6;
    p.beam = 4;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = sockets;
    p.cores = sockets * cpu.coresPerSocket;
    return p;
}

/** Latency run parameters (batch 1, beam 1). */
inline llm::RunParams
latencyParams(const hw::CpuSpec &cpu, unsigned sockets = 1)
{
    llm::RunParams p = throughputParams(cpu, sockets);
    p.batch = 1;
    p.beam = 1;
    return p;
}

/**
 * Switch a server config to the paged-KV discipline, pricing swap
 * traffic with the model's real per-token KV footprint. The preempt
 * policy stays whatever the caller set (recompute by default).
 */
inline void
applyPagedKv(serve::ServerConfig &cfg, const llm::ModelConfig &model,
             hw::Dtype dtype = hw::Dtype::Bf16)
{
    cfg.kvMode = serve::KvMode::Paged;
    cfg.paged.kvBytesPerToken = model.kvBytesPerToken(dtype);
}

/**
 * Consume a `--<flag> <mode>` pair at argv[i] (advancing `i` past the
 * operand); false when argv[i] is some other flag. One helper behind
 * the `--kv`, `--prefix`, and `--chunk` mode flags instead of three
 * copies of the same bounds-check-then-parse dance: `parse` maps the
 * operand onto the mode enum (and is fatal on junk), `operands` is
 * the usage hint printed when the operand is missing.
 */
template <typename Mode>
inline bool
parseModeArg(const char *flag, Mode (*parse)(const std::string &),
             Mode &mode, int argc, char **argv, int &i,
             const char *operands)
{
    if (std::strcmp(argv[i], flag) != 0)
        return false;
    if (i + 1 >= argc)
        cllm_fatal(flag, " needs a mode (", operands, ")");
    mode = parse(argv[++i]);
    return true;
}

/**
 * Consume `--kv <reserved|paged>` at argv[i]; false otherwise. The
 * flag is strictly additive: without it the binaries run reserved and
 * their stdout stays byte-identical.
 */
inline bool
parseKvArg(serve::KvMode &mode, int argc, char **argv, int &i)
{
    return parseModeArg("--kv", serve::parseKvMode, mode, argc, argv,
                        i, "reserved|paged");
}

/**
 * Prefix-caching options shared by `serve_slo`, `fleet_capacity`, and
 * `examples/prefix_serving` — one parser instead of three copies.
 * Defaults leave caching off and the workload unannotated, so a
 * binary that never sees the flags stays byte-identical.
 */
struct PrefixOptions
{
    serve::PrefixMode mode = serve::PrefixMode::Off;
    serve::SharedPrefixMix mix{};
};

/** Usage text for the shared prefix-caching flags. */
inline const char *
prefixUsage()
{
    return "  --prefix <off|per_tenant|global>\n"
           "                      enable radix-tree prefix KV caching "
           "with the given\n"
           "                      sharing scope (requires --kv "
           "paged)\n"
           "  --prefix-tenants N  tenants in the shared-prompt mix "
           "(default 4)\n"
           "  --prefix-len N      shared system-prompt length in "
           "tokens (default 256)\n"
           "  --prefix-share F    fraction of requests opening with a "
           "shared prompt\n"
           "                      (default 0.85)\n";
}

/**
 * Consume argv[i] (advancing `i` past any operand) when it is one of
 * the shared prefix-caching flags; false otherwise.
 */
inline bool
parsePrefixArg(PrefixOptions &opt, int argc, char **argv, int &i)
{
    if (parseModeArg("--prefix", serve::parsePrefixMode, opt.mode,
                     argc, argv, i, "off|per_tenant|global"))
        return true;
    if (std::strcmp(argv[i], "--prefix-tenants") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--prefix-tenants needs a count");
        opt.mix.tenants =
            static_cast<unsigned>(std::stoul(argv[++i]));
        if (opt.mix.tenants == 0)
            cllm_fatal("--prefix-tenants must be positive");
        return true;
    }
    if (std::strcmp(argv[i], "--prefix-len") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--prefix-len needs a token count");
        opt.mix.prefixLen =
            static_cast<unsigned>(std::stoul(argv[++i]));
        return true;
    }
    if (std::strcmp(argv[i], "--prefix-share") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--prefix-share needs a fraction");
        opt.mix.sharedFraction = std::stod(argv[++i]);
        if (opt.mix.sharedFraction < 0.0 ||
            opt.mix.sharedFraction > 1.0)
            cllm_fatal("--prefix-share outside [0, 1]");
        return true;
    }
    return false;
}

/** The shared-system-prompt arrival mix the prefix studies replay. */
inline serve::SharedPrefixMix
sharedPromptMix()
{
    return serve::SharedPrefixMix{};
}

/** Apply parsed prefix options to a server config. */
inline void
applyPrefixCache(serve::ServerConfig &cfg, const PrefixOptions &opt)
{
    cfg.prefixMode = opt.mode;
}

/**
 * Chunked-prefill options shared by `serve_slo`, `fleet_capacity`,
 * and `examples/chunked_serving`. Defaults leave chunking off, so a
 * binary that never sees the flags stays byte-identical.
 */
struct ChunkOptions
{
    serve::ChunkMode mode = serve::ChunkMode::Off;
    unsigned chunkTokens = 256;
    unsigned stepTokenBudget = 0; //!< 0 = chunkTokens + maxBatch
};

/** Usage text for the shared chunked-prefill flags. */
inline const char *
chunkUsage()
{
    return "  --chunk <off|decode|prefill>\n"
           "                      enable chunked prefill with mixed "
           "prefill/decode\n"
           "                      steps under the given scheduling "
           "priority\n"
           "  --chunk-tokens N    max prompt tokens per prefill slice "
           "(default 256)\n"
           "  --chunk-budget N    per-step token budget (default: "
           "chunk + batch)\n";
}

/**
 * Consume argv[i] (advancing `i` past any operand) when it is one of
 * the shared chunked-prefill flags; false otherwise.
 */
inline bool
parseChunkArg(ChunkOptions &opt, int argc, char **argv, int &i)
{
    if (parseModeArg("--chunk", serve::parseChunkMode, opt.mode,
                     argc, argv, i, "off|decode|prefill"))
        return true;
    if (std::strcmp(argv[i], "--chunk-tokens") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--chunk-tokens needs a token count");
        opt.chunkTokens =
            static_cast<unsigned>(std::stoul(argv[++i]));
        if (opt.chunkTokens == 0)
            cllm_fatal("--chunk-tokens must be positive");
        return true;
    }
    if (std::strcmp(argv[i], "--chunk-budget") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--chunk-budget needs a token count");
        opt.stepTokenBudget =
            static_cast<unsigned>(std::stoul(argv[++i]));
        return true;
    }
    return false;
}

/** Apply parsed chunked-prefill options to a server config. */
inline void
applyChunkedPrefill(serve::ServerConfig &cfg, const ChunkOptions &opt)
{
    cfg.chunkedPrefill.mode = opt.mode;
    cfg.chunkedPrefill.chunkTokens = opt.chunkTokens;
    cfg.chunkedPrefill.stepTokenBudget = opt.stepTokenBudget;
}

/**
 * Speculative-decoding options shared by `serve_slo`,
 * `fleet_capacity`, and `examples/speculative_serving`. Defaults
 * leave speculation off, so a binary that never sees the flags stays
 * byte-identical.
 */
struct SpecOptions
{
    bool enabled = false;
    unsigned draftTokens = 4;
    double draftCostRatio = 0.15;
    double acceptProb = 0.7;
};

/** Usage text for the shared speculative-decoding flags. */
inline const char *
specUsage()
{
    return "  --spec              enable speculative decoding "
           "(draft + fused verify\n"
           "                      steps; amortizes per-step TEE "
           "overheads)\n"
           "  --spec-k N          draft tokens per verify cycle "
           "(default 4)\n"
           "  --spec-ratio F      draft-model cost as a fraction of "
           "the target's\n"
           "                      decode step, in (0, 1) (default "
           "0.15)\n"
           "  --spec-accept F     per-position draft acceptance "
           "probability, in\n"
           "                      [0, 1] (default 0.7)\n";
}

/**
 * Consume argv[i] (advancing `i` past any operand) when it is one of
 * the shared speculative-decoding flags; false otherwise.
 */
inline bool
parseSpecArg(SpecOptions &opt, int argc, char **argv, int &i)
{
    if (std::strcmp(argv[i], "--spec") == 0) {
        opt.enabled = true;
        return true;
    }
    if (std::strcmp(argv[i], "--spec-k") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--spec-k needs a token count");
        opt.draftTokens =
            static_cast<unsigned>(std::stoul(argv[++i]));
        if (opt.draftTokens == 0)
            cllm_fatal("--spec-k must be positive");
        return true;
    }
    if (std::strcmp(argv[i], "--spec-ratio") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--spec-ratio needs a fraction");
        opt.draftCostRatio = std::stod(argv[++i]);
        if (opt.draftCostRatio <= 0.0 || opt.draftCostRatio >= 1.0)
            cllm_fatal("--spec-ratio outside (0, 1)");
        return true;
    }
    if (std::strcmp(argv[i], "--spec-accept") == 0) {
        if (i + 1 >= argc)
            cllm_fatal("--spec-accept needs a probability");
        opt.acceptProb = std::stod(argv[++i]);
        if (opt.acceptProb < 0.0 || opt.acceptProb > 1.0)
            cllm_fatal("--spec-accept outside [0, 1]");
        return true;
    }
    return false;
}

/** Apply parsed speculative-decoding options to a server config. */
inline void
applySpecDecode(serve::ServerConfig &cfg, const SpecOptions &opt)
{
    cfg.specDecode.enabled = opt.enabled;
    cfg.specDecode.draftTokens = opt.draftTokens;
    cfg.specDecode.draftCostRatio = opt.draftCostRatio;
    cfg.specDecode.acceptProb = opt.acceptProb;
}

/** Shared-ownership wrapper around a freshly built TEE backend. */
inline std::shared_ptr<const tee::TeeBackend>
sharedBackend(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

/** Deployment shape of the serving studies: 1024 in / 256 out,
 *  batch 32, one socket. */
inline llm::RunParams
serveDeployParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return p;
}

/** The seed-99 trace replayed by the serving and fleet studies:
 *  Poisson 0.45 req/s, 250 requests, 512 in / 128 out tokens. */
inline serve::WorkloadConfig
serveSeedWorkload()
{
    serve::WorkloadConfig load;
    load.arrivalRate = 0.45;
    load.numRequests = 250;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;
    return load;
}

/** Scale-out request shape (Section V-D4): batch 4, 512 in /
 *  128 out. */
inline llm::ClusterRunParams
scaleoutClusterParams()
{
    llm::ClusterRunParams p;
    p.batch = 4;
    p.inLen = 512;
    p.outLen = 128;
    return p;
}

/** The CPU counterpart of the scale-out shape: two sockets, all
 *  cores. */
inline llm::RunParams
scaleoutCpuParams(const hw::CpuSpec &cpu)
{
    llm::RunParams p;
    p.batch = 4;
    p.inLen = 512;
    p.outLen = 128;
    p.sockets = 2;
    p.cores = cpu.totalCores();
    return p;
}

} // namespace cllm::bench

#endif // CLLM_BENCH_BENCH_UTIL_HH
