/**
 * @file
 * Tests for the ElasticLite search engine: indexing, BM25 ranking
 * properties (idf, tf saturation, length normalization), and work
 * counters.
 */

#include <gtest/gtest.h>

#include "rag/elastic_lite.hh"

using namespace cllm::rag;

namespace {

ElasticLite
smallCorpus()
{
    ElasticLite e;
    e.index("intro", "trusted execution environments protect models");
    e.index("gpu", "confidential gpu inference with hopper");
    e.index("cpu",
            "cpu inference with amx acceleration and trusted hardware");
    e.index("cooking", "a recipe for pancakes with maple syrup");
    return e;
}

} // namespace

TEST(Elastic, IndexAssignsSequentialIds)
{
    ElasticLite e;
    EXPECT_EQ(e.index("a", "x"), 0u);
    EXPECT_EQ(e.index("b", "y"), 1u);
    EXPECT_EQ(e.size(), 2u);
    EXPECT_EQ(e.doc(1).title, "b");
}

TEST(Elastic, FindsMatchingDocument)
{
    ElasticLite e = smallCorpus();
    const auto hits = e.search("pancakes recipe", 10);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].id, 3u);
}

TEST(Elastic, RanksMoreMatchesHigher)
{
    ElasticLite e = smallCorpus();
    const auto hits = e.search("trusted execution environments", 10);
    ASSERT_GE(hits.size(), 2u);
    EXPECT_EQ(hits[0].id, 0u); // matches all three terms
}

TEST(Elastic, NoMatchesEmptyResult)
{
    ElasticLite e = smallCorpus();
    EXPECT_TRUE(e.search("zzzqqq", 10).empty());
}

TEST(Elastic, TopKLimitsResults)
{
    ElasticLite e;
    for (int i = 0; i < 20; ++i)
        e.index("t" + std::to_string(i), "common word soup");
    EXPECT_EQ(e.search("common soup", 5).size(), 5u);
}

TEST(Elastic, ScoresAreDescending)
{
    ElasticLite e = smallCorpus();
    const auto hits = e.search("inference trusted cpu", 10);
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_GE(hits[i - 1].score, hits[i].score);
}

TEST(Elastic, RareTermsWeighMore)
{
    // idf: a term in 1/100 docs beats a term in 50/100.
    ElasticLite e;
    for (int i = 0; i < 50; ++i)
        e.index("common" + std::to_string(i), "ubiquitous filler");
    e.index("rare", "unicorn ubiquitous");
    for (int i = 0; i < 49; ++i)
        e.index("pad" + std::to_string(i), "plain text");
    const auto hits = e.search("unicorn ubiquitous", 3);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(e.doc(hits[0].id).title, "rare");
}

TEST(Elastic, TermFrequencySaturates)
{
    // BM25's k1 saturation: 10 repetitions is not 10x the score.
    ElasticLite e;
    const DocId once = e.index("once", "token filler filler filler");
    const DocId many = e.index(
        "many", "token token token token token token token token "
                "token token filler");
    const auto terms = e.analyzer().analyze("token");
    const double s1 = e.scoreDoc(terms, once);
    const double s10 = e.scoreDoc(terms, many);
    EXPECT_GT(s10, s1);
    EXPECT_LT(s10, 3.0 * s1);
}

TEST(Elastic, LengthNormalizationPenalizesLongDocs)
{
    ElasticLite e;
    std::string long_body = "needle";
    for (int i = 0; i < 300; ++i)
        long_body += " hay" + std::to_string(i % 7);
    const DocId longdoc = e.index("long", long_body);
    const DocId shortdoc = e.index("short", "needle in brief");
    // Pad the corpus so idf is shared.
    for (int i = 0; i < 10; ++i)
        e.index("pad", "hay filler text");
    const auto terms = e.analyzer().analyze("needle");
    EXPECT_GT(e.scoreDoc(terms, shortdoc), e.scoreDoc(terms, longdoc));
}

TEST(Elastic, ScoreDocMatchesSearchScore)
{
    ElasticLite e = smallCorpus();
    const auto hits = e.search("confidential gpu", 10);
    ASSERT_FALSE(hits.empty());
    const auto terms = e.analyzer().analyze("confidential gpu");
    EXPECT_NEAR(hits[0].score, e.scoreDoc(terms, hits[0].id), 1e-9);
}

TEST(Elastic, StatsCountWork)
{
    ElasticLite e = smallCorpus();
    SearchStats s;
    e.search("trusted inference", 10, &s);
    EXPECT_GE(s.termsLookedUp, 2u);
    EXPECT_GT(s.postingsVisited, 0u);
    EXPECT_GT(s.docsScored, 0u);
    EXPECT_GT(s.bytesTouched, 0u);
}

TEST(Elastic, BulkIndexReturnsFirstId)
{
    ElasticLite e;
    e.index("pre", "x");
    std::vector<Document> docs = {{0, "a", "one"}, {0, "b", "two"}};
    EXPECT_EQ(e.bulkIndex(docs), 1u);
    EXPECT_EQ(e.size(), 3u);
    EXPECT_EQ(e.doc(2).title, "b");
}

TEST(Elastic, IndexBytesGrowWithCorpus)
{
    ElasticLite e;
    e.index("a", "some words here");
    const auto small = e.indexBytes();
    for (int i = 0; i < 100; ++i)
        e.index("t", "more words accumulate in the postings lists");
    EXPECT_GT(e.indexBytes(), small);
}

TEST(Elastic, StemmedQueryMatchesInflectedDoc)
{
    ElasticLite e;
    e.index("doc", "encrypted memories protect models");
    const auto hits = e.search("encrypting memory model", 5);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].id, 0u);
}

TEST(ElasticDeath, DocOutOfRangeFatal)
{
    ElasticLite e = smallCorpus();
    EXPECT_DEATH(e.doc(99), "out of range");
}

TEST(ElasticDeath, EmptyBulkFatal)
{
    ElasticLite e;
    EXPECT_DEATH(e.bulkIndex({}), "empty");
}
