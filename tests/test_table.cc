/**
 * @file
 * Tests for the ASCII-table / CSV emitters used by the bench harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using namespace cllm;

TEST(Table, PrintsHeaderAndRows)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAreAligned)
{
    Table t({"col", "x"});
    t.addRow({"short", "1"});
    t.addRow({"a-much-longer-cell", "2"});
    std::ostringstream os;
    t.print(os);
    // Every line containing "1" or "2" must place them at the same
    // column offset.
    std::istringstream in(os.str());
    std::string line;
    std::size_t pos1 = std::string::npos, pos2 = std::string::npos;
    while (std::getline(in, line)) {
        if (line.find("short") != std::string::npos)
            pos1 = line.find('1');
        if (line.find("longer") != std::string::npos)
            pos2 = line.find('2');
    }
    ASSERT_NE(pos1, std::string::npos);
    ASSERT_NE(pos2, std::string::npos);
    EXPECT_EQ(pos1, pos2);
}

TEST(Table, CsvQuotesSpecials)
{
    Table t({"name", "value"});
    t.addRow({"with,comma", "with\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted)
{
    Table t({"h"});
    t.addRow({"plain"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "h\nplain\n");
}

TEST(TableDeath, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableDeath, EmptyHeaderPanics)
{
    EXPECT_DEATH(Table{std::vector<std::string>{}}, "column");
}

TEST(Fmt, Decimals)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percent)
{
    EXPECT_EQ(fmtPct(12.345, 1), "12.3%");
}

TEST(Fmt, IntThousands)
{
    EXPECT_EQ(fmtInt(0), "0");
    EXPECT_EQ(fmtInt(999), "999");
    EXPECT_EQ(fmtInt(1000), "1,000");
    EXPECT_EQ(fmtInt(1234567), "1,234,567");
}
