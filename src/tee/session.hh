/**
 * @file
 * Attested secure sessions: the protocol glue between remote
 * attestation and confidential inference traffic. The enclave binds a
 * Diffie-Hellman public value into its quote's report data; a client
 * verifies the quote (measurement + signature) before completing the
 * key exchange, so the resulting channel keys are only shared with
 * the *attested* code. Prompts and generated tokens then flow through
 * an authenticated stream cipher with strict sequence numbers
 * (replay/reorder protection).
 *
 * The DH group is a real (if small, 61-bit) prime-field group — big
 * enough to exercise the arithmetic honestly, far too small for real
 * security; production code would use X25519, exactly as DCAP-based
 * RA-TLS does.
 */

#ifndef CLLM_TEE_SESSION_HH
#define CLLM_TEE_SESSION_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "tee/attest.hh"

namespace cllm::tee {

/** The DH group: Z_p^* with p = 2^61 - 1 (Mersenne prime), g = 3. */
constexpr std::uint64_t kDhPrime = 2305843009213693951ULL;
constexpr std::uint64_t kDhGenerator = 3;

/** Modular exponentiation base^exp mod kDhPrime. */
std::uint64_t dhModPow(std::uint64_t base, std::uint64_t exp);

/**
 * One party's ephemeral DH key pair.
 */
class DhKeyPair
{
  public:
    /** Derive a secret exponent deterministically from a seed. */
    explicit DhKeyPair(std::uint64_t seed);

    std::uint64_t publicValue() const { return pub_; }

    /** g^(ab) from the peer's public value. */
    std::uint64_t sharedSecret(std::uint64_t peer_public) const;

  private:
    std::uint64_t secret_;
    std::uint64_t pub_;
};

/** Hash a DH public value for binding into quote report data. */
crypto::Digest256 bindPublicValue(std::uint64_t pub);

/** Directional channel keys derived from the DH shared secret. */
struct SessionKeys
{
    crypto::Digest256 clientToServer{};
    crypto::Digest256 serverToClient{};
};

/** Derive both directions' keys from a shared secret. */
SessionKeys deriveSessionKeys(std::uint64_t shared_secret);

/** Server-side hello: a quote binding the enclave's DH public. */
struct ServerHello
{
    Quote quote;
    std::uint64_t dhPublic = 0;
};

/** Produce the server hello for an attested enclave. */
ServerHello makeServerHello(const QuotingEnclave &platform,
                            const Measurement &enclave,
                            const DhKeyPair &server_keys);

/** Client-side handshake outcome. */
struct HandshakeResult
{
    bool ok = false;
    VerifyStatus status = VerifyStatus::BadSignature;
    SessionKeys keys{};
};

/**
 * Verify the hello and complete the exchange. Fails when the quote
 * does not verify or when the advertised DH public value does not
 * match the quoted report data (MITM substitution).
 */
HandshakeResult completeHandshake(const QuoteVerifier &verifier,
                                  const ServerHello &hello,
                                  const DhKeyPair &client_keys);

/**
 * Cost of re-establishing a confidential serving instance after an
 * enclave/TD restart: rebuilding and measuring the enclave, the
 * attestation round-trips a client needs before it will share secrets
 * again (quote generation + verification, as in the handshake above),
 * and streaming re-decryption of the model weights into secure
 * memory. The serving simulator charges this as downtime per restart
 * fault.
 */
struct ReprovisionCostModel
{
    double enclaveBuildMs = 180.0; //!< EADD/EEXTEND or TD build+measure
    double quoteGenerateMs = 35.0; //!< quote generation (DCAP-like)
    double quoteVerifyMs = 12.0;   //!< relying-party verification
    double networkRttMs = 1.0;     //!< per attestation round-trip
    unsigned roundTrips = 2;       //!< hello + secret provisioning
    double weightDecryptBytesPerSec = 4.0e9; //!< AES-GCM streaming

    /** Total downtime to re-provision `weight_bytes` of model. */
    double seconds(std::uint64_t weight_bytes) const;
};

/** A sealed message on the wire. */
struct SealedMessage
{
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> ciphertext;
    crypto::Digest256 mac{};
};

/**
 * One direction of an authenticated encrypted stream.
 */
class SecureChannel
{
  public:
    /** Bind to one directional key. */
    explicit SecureChannel(const crypto::Digest256 &key);

    /** Encrypt + authenticate the next message. */
    SealedMessage seal(const std::vector<std::uint8_t> &plaintext);

    /**
     * Verify and decrypt; enforces strictly increasing sequence
     * numbers, so replays and reordering return nullopt.
     */
    std::optional<std::vector<std::uint8_t>>
    open(const SealedMessage &msg);

  private:
    crypto::Digest256 macOf(const SealedMessage &msg) const;

    crypto::AesCtr cipher_;
    std::vector<std::uint8_t> macKey_;
    std::uint64_t sendSeq_ = 0;
    std::uint64_t recvSeq_ = 0;
};

} // namespace cllm::tee

#endif // CLLM_TEE_SESSION_HH
