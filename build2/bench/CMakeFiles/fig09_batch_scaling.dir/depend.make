# Empty dependencies file for fig09_batch_scaling.
# This may be replaced when dependencies are built.
