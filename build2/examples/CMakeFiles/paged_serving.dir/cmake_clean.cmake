file(REMOVE_RECURSE
  "CMakeFiles/paged_serving.dir/paged_serving.cpp.o"
  "CMakeFiles/paged_serving.dir/paged_serving.cpp.o.d"
  "paged_serving"
  "paged_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
