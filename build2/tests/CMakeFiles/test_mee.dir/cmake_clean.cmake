file(REMOVE_RECURSE
  "CMakeFiles/test_mee.dir/test_mee.cc.o"
  "CMakeFiles/test_mee.dir/test_mee.cc.o.d"
  "test_mee"
  "test_mee.pdb"
  "test_mee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
