#include "core/summary.hh"

#include <sstream>

#include "util/table.hh"

namespace cllm::core {

namespace {

/** Render a boolean support level like the paper's filled squares. */
std::string
mark(bool full)
{
    return full ? "[full]" : "[none]";
}

} // namespace

std::vector<SummaryRow>
buildSummaryMatrix(bool measured)
{
    std::vector<SummaryRow> rows;

    const auto sgx = tee::makeSgx();
    const auto tdx = tee::makeTdx();
    const tee::SecurityProfile ps = sgx->security();
    const tee::SecurityProfile pt = tdx->security();
    const tee::SecurityProfile pg = tee::cgpuSecurity();

    rows.push_back({"memory encryption", mark(ps.memoryEncrypted),
                    mark(pt.memoryEncrypted),
                    mark(pg.memoryEncrypted) + " (HBM clear)"});
    rows.push_back({"scale-up link protection",
                    mark(ps.interconnectProtected),
                    mark(pt.interconnectProtected),
                    mark(pg.interconnectProtected) + " (NVLINK clear)"});
    rows.push_back({"trust boundary", ps.trustBoundary, pt.trustBoundary,
                    pg.trustBoundary});

    if (measured) {
        // Single-resource overhead: Llama2-7B throughput run.
        Experiment exp;
        const auto cpu = hw::emr1();
        const auto model = llm::llama2_7b();
        llm::RunParams p;
        p.batch = 6;
        p.beam = 4;
        p.inLen = 1024;
        p.outLen = 128;
        p.sockets = 1;
        p.cores = cpu.coresPerSocket;

        const auto bare = exp.runCpu(cpu, Backend::Bare, model, p);
        const auto sgx_r = exp.runCpu(cpu, Backend::Sgx, model, p);
        const auto tdx_r = exp.runCpu(cpu, Backend::Tdx, model, p);

        const auto gpu = hw::h100Nvl();
        llm::GpuRunParams g;
        g.batch = 16;
        g.inLen = 512;
        g.outLen = 128;
        const auto gpu_raw = exp.runGpu(gpu, model, g);
        g.confidential = true;
        const auto gpu_cc = exp.runGpu(gpu, model, g);

        auto pct = [](const ExperimentResult &r,
                      const ExperimentResult &b) {
            std::ostringstream os;
            os.precision(1);
            os << std::fixed
               << Experiment::compare(r, b).tputOverheadPct << "%";
            return os.str();
        };
        rows.push_back({"single-resource overhead (measured)",
                        pct(sgx_r, bare), pct(tdx_r, bare),
                        pct(gpu_cc, gpu_raw)});
    } else {
        rows.push_back({"single-resource overhead (paper)", "~4-5%",
                        "~5-10%", "~4-8%"});
    }

    rows.push_back({"batch size up -> overhead", "down", "down", "down"});
    rows.push_back({"input size up -> overhead", "down, then up",
                    "down, then up", "down"});
    rows.push_back({"AMX benefit", "yes", "yes", "n/a"});
    rows.push_back({"scale-up (2nd socket / 2nd GPU)", "very costly",
                    "costly", "very costly (no RDMA/GPUdirect)"});
    rows.push_back({"main overhead sources",
                    "EPC paging, enclave exits, memory, NUMA",
                    "virtualization tax, hugepages, memory, NUMA",
                    "PCIe bounce buffer, kernel launch"});
    rows.push_back({"development effort", "high (libOS, manifest)",
                    "low (standard VM)", "low (unchanged CUDA)"});
    rows.push_back({"cost: small inputs/batches", "best", "good",
                    "poor (idle accelerator)"});
    rows.push_back({"cost: large inputs/batches", "poor", "poor",
                    "best"});
    return rows;
}

void
printSummaryMatrix(std::ostream &os, const std::vector<SummaryRow> &rows)
{
    Table t({"dimension", "Intel SGX (process TEE)",
             "Intel TDX (VM TEE)", "H100 cGPU (GPU TEE)"});
    for (const auto &r : rows)
        t.addRow({r.dimension, r.sgx, r.tdx, r.cgpu});
    t.print(os);
}

} // namespace cllm::core
