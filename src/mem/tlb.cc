#include "mem/tlb.hh"

#include <algorithm>

#include "mem/phys_mem.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace cllm::mem {

TlbModel::TlbModel(TlbConfig cfg) : cfg_(cfg)
{
    if (cfg_.stlbEntries == 0)
        cllm_fatal("TlbModel: zero STLB entries");
}

std::uint64_t
TlbModel::reach(PageSize page) const
{
    return cfg_.stlbEntries * pageBytes(page);
}

double
TlbModel::walkLatencyNs(TranslationMode mode) const
{
    switch (mode) {
      case TranslationMode::Native:
        return cfg_.walkNs;
      case TranslationMode::Nested:
        return cfg_.walkNs * cfg_.nestedFactor;
      case TranslationMode::NestedTdx:
        return cfg_.walkNs * cfg_.nestedFactor * cfg_.tdxExtraFactor;
    }
    cllm_panic("unknown TranslationMode");
}

double
TlbModel::missProbability(PageSize page,
                          const AccessPattern &pattern) const
{
    if (pattern.workingSetBytes == 0)
        return 0.0;
    const double r = static_cast<double>(reach(page));
    const double ws = static_cast<double>(pattern.workingSetBytes);
    return std::max(0.0, 1.0 - r / ws);
}

double
TlbModel::extraSecondsPerByte(PageSize page, TranslationMode mode,
                              const AccessPattern &pattern) const
{
    // Attribute translation-stall pricing: total evaluations, and the
    // share priced on a nested (virtualized / TDX) walk path.
    static obs::Counter &evals =
        obs::Registry::global().counter("mem.tlb.stall_evals");
    static obs::Counter &nested_evals =
        obs::Registry::global().counter("mem.tlb.nested_evals");
    evals.inc();
    if (mode != TranslationMode::Native)
        nested_evals.inc();

    const double walk_s = walkLatencyNs(mode) * 1e-9;
    const double stream_frac = 1.0 - pattern.randomFraction;
    // Streaming: one walk amortized over a page of traffic, mostly
    // hidden under the stream by prefetchers and OoO execution.
    const double stream_cost = stream_frac * walk_s *
                               cfg_.streamVisibility /
                               static_cast<double>(pageBytes(page));
    // Scattered: one potential walk per access burst, less hideable.
    const double miss_p = missProbability(page, pattern);
    const double random_cost = pattern.randomFraction * miss_p * walk_s *
                               cfg_.randomVisibility /
                               cfg_.randomBlockBytes;
    return stream_cost + random_cost;
}

double
TlbModel::bandwidthFactor(double raw_bytes_per_s, PageSize page,
                          TranslationMode mode,
                          const AccessPattern &pattern) const
{
    if (raw_bytes_per_s <= 0.0)
        cllm_panic("TlbModel::bandwidthFactor: non-positive bandwidth");
    const double base_per_byte = 1.0 / raw_bytes_per_s;
    const double extra = extraSecondsPerByte(page, mode, pattern);
    return base_per_byte / (base_per_byte + extra);
}

} // namespace cllm::mem
