/**
 * @file
 * Calibration tests for the CPU timing model: every paper band listed
 * in DESIGN.md Section 5 is asserted here, so a model change that
 * breaks an experiment's shape fails the suite, not the bench run.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "llm/perf_cpu.hh"
#include "util/stats.hh"

using namespace cllm;
using namespace cllm::core;
using namespace cllm::llm;

namespace {

RunParams
throughputParams(const hw::CpuSpec &cpu)
{
    RunParams p;
    p.batch = 6;
    p.beam = 4;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return p;
}

RunParams
latencyParams(const hw::CpuSpec &cpu)
{
    RunParams p = throughputParams(cpu);
    p.batch = 1;
    p.beam = 1;
    return p;
}

double
tputOverheadPct(Backend b, const RunParams &p,
                const ModelConfig &model = llama2_7b(),
                const hw::CpuSpec &cpu = hw::emr1(),
                Backend base = Backend::Bare)
{
    Experiment exp;
    const auto r = exp.runCpu(cpu, b, model, p);
    const auto rb = exp.runCpu(cpu, base, model, p);
    return Experiment::compare(r, rb).tputOverheadPct;
}

} // namespace

// ---- Figure 4: single-socket overheads -------------------------------

TEST(PerfCpuFig4, SgxThroughputOverheadInBand)
{
    const auto cpu = hw::emr1();
    const double ov = tputOverheadPct(Backend::Sgx,
                                      throughputParams(cpu));
    EXPECT_GT(ov, 3.5);
    EXPECT_LT(ov, 7.5); // paper: 4.80-6.15%
}

TEST(PerfCpuFig4, TdxThroughputOverheadInBand)
{
    const auto cpu = hw::emr1();
    const double ov = tputOverheadPct(Backend::Tdx,
                                      throughputParams(cpu));
    EXPECT_GT(ov, 5.0);
    EXPECT_LT(ov, 11.5); // paper: 5.51-10.68%
}

TEST(PerfCpuFig4, VmVirtualizationTaxInBand)
{
    const auto cpu = hw::emr1();
    const double ov = tputOverheadPct(Backend::Vm,
                                      throughputParams(cpu));
    EXPECT_GT(ov, 1.0);
    EXPECT_LT(ov, 5.5); // paper: 1.82-5.38%
}

TEST(PerfCpuFig4, TdxOverVmInBand)
{
    const auto cpu = hw::emr1();
    const double ov = tputOverheadPct(
        Backend::Tdx, throughputParams(cpu), llama2_7b(), cpu,
        Backend::Vm);
    EXPECT_GT(ov, 2.5);
    EXPECT_LT(ov, 8.0); // paper: 3.02-7.01%
}

TEST(PerfCpuFig4, SgxBetweenVmAndTdx)
{
    // Insight 5: SGX outperforms TDX; a raw VM outperforms SGX... on
    // throughput the paper's ordering is VM < SGX < TDX overhead.
    const auto cpu = hw::emr1();
    const auto p = throughputParams(cpu);
    const double vm = tputOverheadPct(Backend::Vm, p);
    const double sgx = tputOverheadPct(Backend::Sgx, p);
    const double tdx = tputOverheadPct(Backend::Tdx, p);
    EXPECT_LT(vm, sgx);
    EXPECT_LT(sgx, tdx);
}

TEST(PerfCpuFig4, Int8HalvesLatency)
{
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = latencyParams(cpu);
    const auto bf = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    p.dtype = hw::Dtype::Int8;
    const auto i8 = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    const double ratio =
        i8.timing.meanTokenLatency / bf.timing.meanTokenLatency;
    EXPECT_GT(ratio, 0.40);
    EXPECT_LT(ratio, 0.65); // "almost half the latency"
}

TEST(PerfCpuFig4, LatencyBelowReadingSpeed)
{
    // All 7B configurations stay under the 200 ms/token bar.
    Experiment exp;
    const auto cpu = hw::emr1();
    for (Backend b : {Backend::Bare, Backend::Vm, Backend::Sgx,
                      Backend::Tdx}) {
        const auto r =
            exp.runCpu(cpu, b, llama2_7b(), latencyParams(cpu));
        EXPECT_LT(r.timing.meanTokenLatency, 0.200)
            << backendName(b);
    }
}

TEST(PerfCpuFig4, Int8TdxLatencyOverheadExceedsBf16)
{
    // Paper: int8 is better in throughput but worse in latency under
    // TDX (fixed costs weigh more on the shorter step).
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = latencyParams(cpu);
    auto ov = [&](hw::Dtype dt) {
        p.dtype = dt;
        const auto t = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
        const auto b = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
        return Experiment::compare(t, b).latencyOverheadPct;
    };
    EXPECT_GT(ov(hw::Dtype::Int8), ov(hw::Dtype::Bf16));
}

// ---- Figures 5-6: multi-socket, NUMA, hugepages -----------------------

TEST(PerfCpuFig5, TdxTwoSocketOverheadInBand)
{
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const double ov = tputOverheadPct(Backend::Tdx, p, llama2_70b(),
                                      cpu, Backend::Vm);
    EXPECT_GT(ov, 10.0);
    EXPECT_LT(ov, 30.0); // paper: 12.11-23.81%
}

TEST(PerfCpuFig5, SgxTwoSocketsCatastrophic)
{
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const double ov = tputOverheadPct(Backend::Sgx, p, llama2_70b(),
                                      cpu);
    EXPECT_GT(ov, 100.0); // paper: up to ~230%
    EXPECT_LT(ov, 330.0);
}

TEST(PerfCpuFig5, TdxBetweenBoundAndUnboundVm)
{
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto model = llama2_70b();
    const auto vm_b = exp.runCpu(cpu, Backend::Vm, model, p);
    const auto vm_nb = exp.runCpu(cpu, Backend::VmNb, model, p);
    const auto tdx = exp.runCpu(cpu, Backend::Tdx, model, p);
    EXPECT_GT(vm_b.timing.decodeTput, tdx.timing.decodeTput);
    EXPECT_GT(tdx.timing.decodeTput, vm_nb.timing.decodeTput);
}

TEST(PerfCpuFig6, TransparentHugepageTaxInBand)
{
    // Insight 7: VM TH over VM FH costs 3.19-5.20% on two sockets.
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto model = llama2_13b();
    const auto fh = exp.runCpu(cpu, Backend::Vm, model, p);
    const auto th = exp.runCpu(cpu, Backend::VmTh, model, p);
    const double ov = Experiment::compare(th, fh).tputOverheadPct;
    EXPECT_GT(ov, 1.5);
    EXPECT_LT(ov, 7.0);
}

TEST(PerfCpuFig6, TdxOverVmThStaysSingleSocketMagnitude)
{
    // "The overheads of TDX over VM TH remain at 4-10%."
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto model = llama2_13b();
    const auto th = exp.runCpu(cpu, Backend::VmTh, model, p);
    const auto tdx = exp.runCpu(cpu, Backend::Tdx, model, p);
    const double ov = Experiment::compare(tdx, th).tputOverheadPct;
    EXPECT_GT(ov, 2.0);
    EXPECT_LT(ov, 13.0);
}

TEST(PerfCpuSnc, SubNumaClusteringExplodesOverhead)
{
    // Section IV-A: enabling SNC took overheads from ~5% to ~42%.
    const auto cpu = hw::emr1();
    RunParams p = throughputParams(cpu);
    const double normal = tputOverheadPct(Backend::Tdx, p);
    p.sncEnabled = true;
    const double snc = tputOverheadPct(Backend::Tdx, p);
    EXPECT_GT(snc, 4.0 * normal);
    EXPECT_GT(snc, 30.0);
    EXPECT_LT(snc, 60.0);
}

// ---- Figure 7: per-block breakdown ------------------------------------

TEST(PerfCpuFig7, DecodeDominatedByAttentionAndSilu)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 4;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    const auto r = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    const auto &ops = r.timing.blockBreakdown;
    ASSERT_FALSE(ops.empty());
    double total = 0.0, big = 0.0;
    for (const auto &op : ops) {
        total += op.seconds;
        if (op.name == "self_attention" || op.name == "linear_silu" ||
            op.name == "qkv_proj" || op.name == "down_proj")
            big += op.seconds;
    }
    EXPECT_GT(big / total, 0.75);
}

TEST(PerfCpuFig7, NormsHaveHighRelativeOverheadButTinyShare)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 4;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    const auto tdx = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    const auto bare = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);

    double norm_ov = 0.0, attn_ov = 0.0, norm_share = 0.0, total = 0.0;
    for (std::size_t i = 0; i < tdx.timing.blockBreakdown.size(); ++i) {
        const auto &t = tdx.timing.blockBreakdown[i];
        const auto &b = bare.timing.blockBreakdown[i];
        const double ov = t.seconds / b.seconds - 1.0;
        total += t.seconds;
        if (t.name == "input_norm" || t.name == "post_attn_norm") {
            norm_ov = std::max(norm_ov, ov);
            norm_share += t.seconds;
        }
        if (t.name == "self_attention")
            attn_ov = ov;
    }
    // Norms: large relative overhead (per-op fixed costs dominate)...
    EXPECT_GT(norm_ov, attn_ov);
    // ...but a small share of block time (paper: ~3%).
    EXPECT_LT(norm_share / total, 0.08);
}

// ---- Figure 8: AMX ----------------------------------------------------

TEST(PerfCpuFig8, AmxSpeedupGrowsWithBatch)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    auto speedup = [&](unsigned batch) {
        p.batch = batch;
        p.amx = true;
        const auto on = exp.runCpu(cpu, Backend::Vm, llama2_7b(), p);
        p.amx = false;
        const auto off = exp.runCpu(cpu, Backend::Vm, llama2_7b(), p);
        return on.timing.decodeTput / off.timing.decodeTput;
    };
    const double s1 = speedup(1);
    const double s256 = speedup(256);
    EXPECT_GT(s1, 1.0);
    EXPECT_LT(s1, 1.25); // memory-bound: small gain at batch 1
    EXPECT_GT(s256, 2.0); // compute-bound: AMX pays off (2-6x)
    EXPECT_LT(s256, 6.0);
    EXPECT_GT(s256, s1);
}

TEST(PerfCpuFig8, AmxReducesTdxOverheadVsVmAmxBaseline)
{
    // Figure 8's caption: "The overheads are relative to VM running
    // AMX" — disabling AMX inside TDX balloons the overhead against
    // that fixed baseline, so AMX directly lowers TEE overheads.
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 256;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    p.amx = true;
    const auto vm_amx = exp.runCpu(cpu, Backend::Vm, llama2_7b(), p);
    const auto tdx_amx = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    p.amx = false;
    const auto tdx_noamx = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);

    const double ov_amx =
        Experiment::compare(tdx_amx, vm_amx).tputOverheadPct;
    const double ov_noamx =
        Experiment::compare(tdx_noamx, vm_amx).tputOverheadPct;
    EXPECT_LT(ov_amx, ov_noamx - 50.0); // no-AMX balloons by >>50pts
}

TEST(PerfCpuFig8, Int8WithoutAmxCatastrophic)
{
    // Paper: up to 96% throughput and 1700% latency overhead for int8
    // without AMX (no AVX int8 kernels).
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 1;
    p.dtype = hw::Dtype::Int8;
    p.inLen = 128;
    p.outLen = 64;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    p.amx = true;
    const auto on = exp.runCpu(cpu, Backend::Vm, llama2_7b(), p);
    p.amx = false;
    const auto off = exp.runCpu(cpu, Backend::Vm, llama2_7b(), p);
    const double lat_ov = off.timing.meanTokenLatency /
                              on.timing.meanTokenLatency -
                          1.0;
    EXPECT_GT(lat_ov, 5.0);   // hundreds of percent
    EXPECT_LT(lat_ov, 40.0);  // but not infinite
}

// ---- Figure 9: batch-size scaling --------------------------------------

TEST(PerfCpuFig9, ThroughputMonotoneInBatch)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    double prev = 0.0;
    for (unsigned b : {1u, 4u, 16u, 64u, 256u}) {
        p.batch = b;
        const auto r = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
        EXPECT_GT(r.timing.decodeTput, prev) << "batch " << b;
        prev = r.timing.decodeTput;
    }
}

TEST(PerfCpuFig9, LatencyGrowsWithBatch)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.inLen = 128;
    p.outLen = 64;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    p.batch = 1;
    const auto b1 = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    p.batch = 64;
    const auto b64 = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    EXPECT_GT(b64.timing.meanTokenLatency, b1.timing.meanTokenLatency);
}

TEST(PerfCpuFig9, Bf16SaturatesLaterThanInt8)
{
    // int8 throughput saturates around batch 64; bf16 around 512
    // (Insight 8's compute-bound transition).
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.inLen = 128;
    p.outLen = 64;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    auto becomes_compute_bound_at = [&](hw::Dtype dt) -> unsigned {
        p.dtype = dt;
        for (unsigned b : {8u, 16u, 32u, 64u, 128u, 256u, 512u,
                           1024u}) {
            p.batch = b;
            const auto r =
                exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
            if (!r.timing.memoryBound)
                return b;
        }
        return 2048;
    };
    const unsigned i8 = becomes_compute_bound_at(hw::Dtype::Int8);
    const unsigned bf = becomes_compute_bound_at(hw::Dtype::Bf16);
    EXPECT_LE(i8, 128u);
    EXPECT_GE(bf, 256u);
    EXPECT_LT(i8, bf);
}

TEST(PerfCpuFig9, TdxOverheadShrinksWhenComputeBound)
{
    // Insight 9: TDX has the lowest overhead when compute-bound.
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.inLen = 128;
    p.outLen = 64;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    auto ov = [&](unsigned batch) {
        p.batch = batch;
        const auto t = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
        const auto b = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
        return Experiment::compare(t, b).tputOverheadPct;
    };
    const double small = ov(4);
    const double large = ov(1024);
    EXPECT_LT(large, small);
    EXPECT_LT(large, 7.0); // drops to the 2-7% regime
}

// ---- Figure 10: input-size scaling -------------------------------------

TEST(PerfCpuFig10, EndToEndOverheadDipsWithInput)
{
    // First half of the Figure 10 shape: as the input grows towards
    // ~2k tokens, the compute-bound prefill dominates and the TDX
    // overhead falls.
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 64;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    auto ov = [&](unsigned in_len) {
        p.inLen = in_len;
        const auto t = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
        const auto b = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
        return Experiment::compare(t, b).e2eOverheadPct;
    };
    EXPECT_LT(ov(2048), ov(128));
}

TEST(PerfCpuFig10, DecodeOverheadRisesAtLargeInput)
{
    // Second half of the Figure 10 shape: past ~2k tokens the decode
    // phase turns KV-dominated, the TLB miss rate climbs (Insight 7's
    // 2 MiB pages can no longer cover the working set), and the
    // generation-phase overhead rises again.
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 64;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    auto decode_ov = [&](unsigned in_len) {
        p.inLen = in_len;
        const auto t = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
        const auto b = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
        return Experiment::compare(t, b).tputOverheadPct;
    };
    EXPECT_GT(decode_ov(8192), decode_ov(2048));
    EXPECT_GT(decode_ov(2048), decode_ov(128));
}

TEST(PerfCpuFig10, ThroughputFallsWithInput)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 64;
    p.outLen = 64;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    p.inLen = 128;
    const auto short_in =
        exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    p.inLen = 4096;
    const auto long_in =
        exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    EXPECT_GT(short_in.timing.e2eTput, long_in.timing.e2eTput);
}

// ---- Cross-model check (Section III-C) ---------------------------------

TEST(PerfCpuModels, SevenBClassOverheadsInBand)
{
    // Paper: Llama3 8B, GPT-J, Falcon, Baichuan2, Qwen show 3.1-13.1%.
    const auto cpu = hw::emr1();
    for (const auto &model :
         {llama3_8b(), gptj_6b(), falcon_7b(), baichuan2_7b(),
          qwen_7b()}) {
        const double ov = tputOverheadPct(
            Backend::Tdx, throughputParams(cpu), model, cpu);
        EXPECT_GT(ov, 2.5) << model.name;
        EXPECT_LT(ov, 14.0) << model.name;
    }
}

// ---- Model-level sanity -------------------------------------------------

TEST(PerfCpu, NoisyTokenLatenciesHaveOutliers)
{
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p = latencyParams(cpu);
    p.outLen = 2000;
    const auto r = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    const SampleSummary s = summarize(r.timing.tokenLatencies, 3.0);
    // The paper excluded ~0.64% of samples at Z>3; ours should be in
    // the same decade.
    const double frac =
        static_cast<double>(s.outliers) / r.timing.tokenLatencies.size();
    EXPECT_GT(frac, 0.0005);
    EXPECT_LT(frac, 0.03);
}

TEST(PerfCpu, SeedReproducibility)
{
    Experiment exp;
    const auto cpu = hw::emr1();
    const auto p = latencyParams(cpu);
    const auto a = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    const auto b = exp.runCpu(cpu, Backend::Tdx, llama2_7b(), p);
    EXPECT_EQ(a.timing.tokenLatencies, b.timing.tokenLatencies);
}

TEST(PerfCpu, BiggerModelSlower)
{
    Experiment exp;
    const auto cpu = hw::emr2();
    RunParams p;
    p.batch = 1;
    p.inLen = 128;
    p.outLen = 32;
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto m7 = exp.runCpu(cpu, Backend::Bare, llama2_7b(), p);
    const auto m13 = exp.runCpu(cpu, Backend::Bare, llama2_13b(), p);
    const auto m70 = exp.runCpu(cpu, Backend::Bare, llama2_70b(), p);
    EXPECT_GT(m7.timing.decodeTput, m13.timing.decodeTput);
    EXPECT_GT(m13.timing.decodeTput, m70.timing.decodeTput);
}

TEST(PerfCpu, SeventyBMissesReadingSpeedOnTdx)
{
    // Figure 5: the 200 ms service level is no longer upheld for 70B.
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p;
    p.batch = 1;
    p.inLen = 1024;
    p.outLen = 32;
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto r = exp.runCpu(cpu, Backend::Tdx, llama2_70b(), p);
    EXPECT_GT(r.timing.meanTokenLatency, 0.200);
}

TEST(PerfCpuDeath, InvalidParamsFatal)
{
    Experiment exp;
    const auto cpu = hw::emr1();
    RunParams p;
    p.sockets = 5;
    EXPECT_DEATH(exp.runCpu(cpu, Backend::Bare, llama2_7b(), p),
                 "socket");
    p.sockets = 1;
    p.batch = 0;
    EXPECT_DEATH(exp.runCpu(cpu, Backend::Bare, llama2_7b(), p),
                 "positive");
    p.batch = 1;
    p.cores = 1000;
    EXPECT_DEATH(exp.runCpu(cpu, Backend::Bare, llama2_7b(), p),
                 "cores");
}
