#include "mem/kv_paged.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::mem {

PagedKvCache::PagedKvCache(PagedKvConfig cfg) : cfg_(cfg)
{
    if (cfg_.totalBlocks == 0 || cfg_.blockTokens == 0)
        cllm_fatal("PagedKvCache: degenerate configuration");
    refCounts_.assign(cfg_.totalBlocks, 0);
    extPins_.assign(cfg_.totalBlocks, 0);
    freeList_.reserve(cfg_.totalBlocks);
    for (std::uint32_t b = 0; b < cfg_.totalBlocks; ++b)
        freeList_.push_back(
            static_cast<std::uint32_t>(cfg_.totalBlocks - 1 - b));
}

std::uint32_t
PagedKvCache::allocBlock()
{
    if (freeList_.empty())
        return kNoBlock;
    const std::uint32_t b = freeList_.back();
    freeList_.pop_back();
    refCounts_[b] = 1;
    ++stats_.blockAllocs;
    stats_.peakUsedBlocks =
        std::max(stats_.peakUsedBlocks, usedBlocks());
    return b;
}

void
PagedKvCache::unref(std::uint32_t block)
{
    if (refCounts_[block] == 0)
        cllm_panic("PagedKvCache: unref of free block ", block);
    if (--refCounts_[block] == 0) {
        freeList_.push_back(block);
        ++stats_.blockFrees;
    }
}

bool
PagedKvCache::addSequence(KvSeqId id, unsigned tokens)
{
    if (seqs_.count(id))
        cllm_fatal("PagedKvCache: duplicate sequence ", id);
    const std::uint64_t need = blocksFor(tokens);
    if (need > freeList_.size())
        return false;
    Seq s;
    s.tokens = tokens;
    s.blocks.reserve(need);
    for (std::uint64_t i = 0; i < need; ++i)
        s.blocks.push_back(allocBlock());
    seqs_.emplace(id, std::move(s));
    return true;
}

bool
PagedKvCache::addSequenceWithPrefix(
    KvSeqId id, unsigned tokens,
    const std::vector<std::uint32_t> &shared, unsigned shared_tokens)
{
    if (seqs_.count(id))
        cllm_fatal("PagedKvCache: duplicate sequence ", id);
    if (shared_tokens % cfg_.blockTokens != 0 ||
        shared.size() != shared_tokens / cfg_.blockTokens ||
        shared_tokens > tokens)
        cllm_fatal("PagedKvCache: malformed shared prefix for "
                   "sequence ",
                   id);
    for (std::uint32_t b : shared)
        if (b >= cfg_.totalBlocks || refCounts_[b] == 0)
            cllm_fatal("PagedKvCache: shared prefix references a "
                       "free block");
    const std::uint64_t need = blocksFor(tokens) - shared.size();
    if (need > freeList_.size())
        return false;
    Seq s;
    s.tokens = tokens;
    s.blocks = shared;
    for (std::uint32_t b : shared)
        ++refCounts_[b];
    for (std::uint64_t i = 0; i < need; ++i)
        s.blocks.push_back(allocBlock());
    seqs_.emplace(id, std::move(s));
    return true;
}

void
PagedKvCache::pin(const std::vector<std::uint32_t> &blocks)
{
    for (std::uint32_t b : blocks) {
        if (b >= cfg_.totalBlocks || refCounts_[b] == 0)
            cllm_panic("PagedKvCache: pin of free block ", b);
        ++refCounts_[b];
        if (extPins_[b]++ == 0)
            ++pinned_;
    }
}

std::uint64_t
PagedKvCache::unpin(const std::vector<std::uint32_t> &blocks)
{
    std::uint64_t freed = 0;
    for (std::uint32_t b : blocks) {
        if (b >= cfg_.totalBlocks || extPins_[b] == 0)
            cllm_panic("PagedKvCache: unpin of unpinned block ", b);
        if (--extPins_[b] == 0)
            --pinned_;
        const std::size_t before = freeList_.size();
        unref(b);
        freed += freeList_.size() - before;
    }
    return freed;
}

bool
PagedKvCache::appendToken(KvSeqId id)
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("PagedKvCache: unknown sequence ", id);
    Seq &s = it->second;

    const bool needs_block = s.tokens % cfg_.blockTokens == 0;
    // Appending into a shared block requires copy-on-write.
    if (!needs_block && !s.blocks.empty() &&
        refCounts_[s.blocks.back()] > 1) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        unref(s.blocks.back());
        s.blocks.back() = fresh;
        ++stats_.cowCopies;
    }
    if (needs_block) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        s.blocks.push_back(fresh);
    }
    ++s.tokens;
    return true;
}

bool
PagedKvCache::fork(KvSeqId parent, KvSeqId child)
{
    auto it = seqs_.find(parent);
    if (it == seqs_.end())
        cllm_fatal("PagedKvCache: fork from unknown sequence ",
                   parent);
    if (seqs_.count(child))
        cllm_fatal("PagedKvCache: fork onto existing sequence ",
                   child);

    const Seq &p = it->second;
    Seq c;
    c.tokens = p.tokens;
    c.blocks = p.blocks;

    // Share all blocks; the trailing partial block is copied so the
    // two beams can diverge immediately.
    const bool has_partial =
        !p.blocks.empty() && p.tokens % cfg_.blockTokens != 0;
    if (has_partial) {
        const std::uint32_t fresh = allocBlock();
        if (fresh == kNoBlock)
            return false;
        c.blocks.back() = fresh;
        ++stats_.cowCopies;
        for (std::size_t i = 0; i + 1 < c.blocks.size(); ++i)
            ++refCounts_[c.blocks[i]];
    } else {
        for (std::uint32_t b : c.blocks)
            ++refCounts_[b];
    }
    seqs_.emplace(child, std::move(c));
    return true;
}

void
PagedKvCache::trimTokens(KvSeqId id, unsigned tokens)
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("PagedKvCache: trim of unknown sequence ", id);
    Seq &s = it->second;
    if (tokens > s.tokens)
        cllm_fatal("PagedKvCache: trim target ", tokens,
                   " beyond sequence length ", s.tokens);
    const std::uint64_t keep = blocksFor(tokens);
    while (s.blocks.size() > keep) {
        unref(s.blocks.back());
        s.blocks.pop_back();
    }
    s.tokens = tokens;
}

void
PagedKvCache::release(KvSeqId id)
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("PagedKvCache: release of unknown sequence ", id);
    for (std::uint32_t b : it->second.blocks)
        unref(b);
    seqs_.erase(it);
}

unsigned
PagedKvCache::tokens(KvSeqId id) const
{
    auto it = seqs_.find(id);
    return it == seqs_.end() ? 0 : it->second.tokens;
}

std::size_t
PagedKvCache::blocksOf(KvSeqId id) const
{
    auto it = seqs_.find(id);
    return it == seqs_.end() ? 0 : it->second.blocks.size();
}

const std::vector<std::uint32_t> &
PagedKvCache::blockTable(KvSeqId id) const
{
    auto it = seqs_.find(id);
    if (it == seqs_.end())
        cllm_fatal("PagedKvCache: blockTable of unknown sequence ",
                   id);
    return it->second.blocks;
}

std::uint32_t
PagedKvCache::refCount(std::uint32_t block) const
{
    return block < cfg_.totalBlocks ? refCounts_[block] : 0;
}

std::uint32_t
PagedKvCache::pinCount(std::uint32_t block) const
{
    return block < cfg_.totalBlocks ? extPins_[block] : 0;
}

bool
PagedKvCache::cacheOnly(std::uint32_t block) const
{
    return block < cfg_.totalBlocks && refCounts_[block] != 0 &&
           refCounts_[block] == extPins_[block];
}

double
PagedKvCache::utilization() const
{
    return 1.0 - static_cast<double>(freeList_.size()) /
                     static_cast<double>(cfg_.totalBlocks);
}

double
PagedKvCache::fragmentation() const
{
    const std::uint64_t used = usedBlocks();
    if (used == 0)
        return 0.0;
    // Each distinct allocated block provides blockTokens slots; a
    // sequence's trailing partial block wastes the slots past its
    // token count. Shared full blocks waste nothing; a COW-copied
    // trailing block is owned by exactly one table.
    const double slots =
        static_cast<double>(used) * cfg_.blockTokens;
    double stored = 0.0;
    for (const auto &[id, s] : seqs_) {
        (void)id;
        // Tokens in blocks this table shares with an earlier table
        // would double-count; count each block's storage once by
        // crediting a shared block only 1/refcount of its tokens.
        const unsigned partial = s.tokens % cfg_.blockTokens;
        for (std::size_t i = 0; i < s.blocks.size(); ++i) {
            const unsigned in_block =
                (i + 1 == s.blocks.size() && partial != 0)
                    ? partial
                    : cfg_.blockTokens;
            stored += static_cast<double>(in_block) /
                      refCounts_[s.blocks[i]];
        }
    }
    return std::max(0.0, 1.0 - stored / slots);
}

bool
PagedKvCache::canAdmit(unsigned tokens) const
{
    return blocksFor(tokens) <= freeList_.size();
}

bool
PagedKvCache::consistent() const
{
    if (usedBlocks() + freeBlocks() != cfg_.totalBlocks)
        return false;
    // Recount references from the live tables and compare.
    std::vector<std::uint32_t> refs(cfg_.totalBlocks, 0);
    for (const auto &[id, s] : seqs_) {
        (void)id;
        for (std::uint32_t b : s.blocks) {
            if (b >= cfg_.totalBlocks)
                return false;
            ++refs[b];
        }
    }
    std::vector<bool> free(cfg_.totalBlocks, false);
    for (std::uint32_t b : freeList_) {
        if (b >= cfg_.totalBlocks || free[b])
            return false; // duplicate free-list entry = double free
        free[b] = true;
    }
    std::uint64_t pinned = 0;
    for (std::uint32_t b = 0; b < cfg_.totalBlocks; ++b) {
        if (refs[b] + extPins_[b] != refCounts_[b])
            return false;
        if (free[b] == (refCounts_[b] != 0))
            return false;
        if (free[b] && extPins_[b] != 0)
            return false; // a pin must keep its block off the free list
        if (extPins_[b] != 0)
            ++pinned;
    }
    return pinned == pinned_;
}

} // namespace cllm::mem
