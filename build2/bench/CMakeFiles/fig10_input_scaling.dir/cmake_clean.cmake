file(REMOVE_RECURSE
  "CMakeFiles/fig10_input_scaling.dir/fig10_input_scaling.cpp.o"
  "CMakeFiles/fig10_input_scaling.dir/fig10_input_scaling.cpp.o.d"
  "fig10_input_scaling"
  "fig10_input_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_input_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
