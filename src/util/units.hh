/**
 * @file
 * Unit constants and conversion helpers. All simulator-internal times
 * are in seconds (double), sizes in bytes (std::uint64_t or double),
 * rates in units/second.
 */

#ifndef CLLM_UTIL_UNITS_HH
#define CLLM_UTIL_UNITS_HH

#include <cstdint>

namespace cllm {

// Binary sizes.
constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

// Decimal rates.
constexpr double KILO = 1e3;
constexpr double MEGA = 1e6;
constexpr double GIGA = 1e9;
constexpr double TERA = 1e12;

// Times.
constexpr double MILLI = 1e-3;
constexpr double MICRO = 1e-6;
constexpr double NANO = 1e-9;

/** Convert seconds to milliseconds. */
constexpr double
toMs(double seconds)
{
    return seconds * 1e3;
}

/** Convert seconds to microseconds. */
constexpr double
toUs(double seconds)
{
    return seconds * 1e6;
}

/** Hours to seconds. */
constexpr double
hours(double h)
{
    return h * 3600.0;
}

} // namespace cllm

#endif // CLLM_UTIL_UNITS_HH
