# Empty compiler generated dependencies file for experiment_from_config.
# This may be replaced when dependencies are built.
