file(REMOVE_RECURSE
  "CMakeFiles/test_beir.dir/test_beir.cc.o"
  "CMakeFiles/test_beir.dir/test_beir.cc.o.d"
  "test_beir"
  "test_beir.pdb"
  "test_beir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
