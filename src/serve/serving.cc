#include "serve/serving.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::serve {

std::vector<Request>
generateWorkload(const WorkloadConfig &cfg)
{
    if (cfg.arrivalRate <= 0.0 || cfg.numRequests == 0)
        cllm_fatal("generateWorkload: degenerate workload");
    Rng rng(cfg.seed);
    std::vector<Request> out;
    out.reserve(cfg.numRequests);
    double clock = 0.0;
    for (unsigned i = 0; i < cfg.numRequests; ++i) {
        // Poisson arrivals: exponential inter-arrival gaps.
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        clock += -std::log(u) / cfg.arrivalRate;
        Request r;
        r.id = i;
        r.arrival = clock;
        r.inLen = std::max<unsigned>(
            8, static_cast<unsigned>(
                   rng.lognormal(cfg.meanInLen, cfg.lengthSigma)));
        r.outLen = std::max<unsigned>(
            4, static_cast<unsigned>(
                   rng.lognormal(cfg.meanOutLen, cfg.lengthSigma)));
        out.push_back(r);
    }
    return out;
}

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Static:
        return "static";
      case BatchPolicy::Continuous:
        return "continuous";
    }
    return "?";
}

namespace {

/** CPU-backed step model. */
class CpuStepModel : public StepModel
{
  public:
    CpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
        : cpu_(cpu), backend_(std::move(backend)), model_(model),
          params_(params)
    {
        rates_ = perf_.rates(cpu_, *backend_, model_, params_);
    }

    double
    prefill(unsigned in_len) const override
    {
        return perf_.prefillSeconds(rates_, model_, params_, in_len);
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        return perf_.decodeStepSeconds(rates_, model_, params_, nseq,
                                       avg_pos);
    }

  private:
    hw::CpuSpec cpu_;
    std::shared_ptr<const tee::TeeBackend> backend_;
    llm::ModelConfig model_;
    llm::RunParams params_;
    llm::CpuPerfModel perf_;
    llm::DeploymentRates rates_;
};

/** GPU-backed step model. */
class GpuStepModel : public StepModel
{
  public:
    GpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
        : gpu_(gpu), model_(model), dtype_(dtype)
    {
        tax_ = confidential ? tee::cgpuTax(gpu) : tee::GpuTax{};
    }

    double
    prefill(unsigned in_len) const override
    {
        const double s = in_len;
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            2.0 * static_cast<double>(model_.matmulParams()) * s +
            2.0 * model_.layers * model_.hidden * s * s;
        const double rate =
            gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bytes = model_.weightBytes(dtype_) +
                             model_.kvBytesPerToken(dtype_) * s;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch + s * 4.0 / host_bw;
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            nseq *
            (2.0 * static_cast<double>(model_.matmulParams()) +
             4.0 * model_.layers * model_.hidden * avg_pos);
        const double bytes =
            model_.weightBytes(dtype_) +
            nseq * model_.kvBytesPerToken(dtype_) * (avg_pos + 1.0);
        const double rate = gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch +
               nseq * cfg.hostBytesPerToken / host_bw;
    }

  private:
    hw::GpuSpec gpu_;
    llm::ModelConfig model_;
    hw::Dtype dtype_;
    tee::GpuTax tax_;
    llm::GpuPerfModel perf_;
};

/** A sequence active in the decode batch. */
struct Active
{
    Request *req;
    unsigned produced = 0; //!< output tokens so far
};

} // namespace

std::unique_ptr<StepModel>
makeCpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
{
    return std::make_unique<CpuStepModel>(cpu, std::move(backend), model,
                                          params);
}

std::unique_ptr<StepModel>
makeGpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
{
    return std::make_unique<GpuStepModel>(gpu, confidential, model,
                                          dtype);
}

Server::Server(std::unique_ptr<StepModel> step, ServerConfig cfg)
    : step_(std::move(step)), cfg_(cfg)
{
    if (!step_)
        cllm_fatal("Server requires a step model");
    if (cfg_.maxBatch == 0)
        cllm_fatal("Server: zero batch capacity");
}

ServeMetrics
Server::run(std::vector<Request> trace) const
{
    if (trace.empty())
        cllm_fatal("Server::run: empty trace");
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    return cfg_.policy == BatchPolicy::Static ? runStatic(trace)
                                              : runContinuous(trace);
}

ServeMetrics
Server::runStatic(std::vector<Request> &trace) const
{
    double clock = 0.0;
    double occupancy_sum = 0.0;
    std::size_t steps = 0;
    std::size_t next = 0;

    while (next < trace.size()) {
        // Form the next batch from queued arrivals.
        clock = std::max(clock, trace[next].arrival);
        std::vector<Request *> batch;
        while (next < trace.size() && batch.size() < cfg_.maxBatch &&
               trace[next].arrival <= clock) {
            batch.push_back(&trace[next]);
            ++next;
        }

        // Prefill everyone, then decode until the whole batch drains.
        for (Request *r : batch) {
            clock += step_->prefill(r->inLen);
            r->firstToken = clock;
        }
        unsigned max_out = 0;
        for (Request *r : batch)
            max_out = std::max(max_out, r->outLen);
        for (unsigned t = 0; t < max_out; ++t) {
            unsigned active = 0;
            double avg_pos = 0.0;
            for (Request *r : batch) {
                if (t < r->outLen) {
                    ++active;
                    avg_pos += r->inLen + t;
                }
            }
            if (active == 0)
                break;
            avg_pos /= active;
            clock += step_->decodeStep(active, avg_pos);
            occupancy_sum += active;
            ++steps;
            for (Request *r : batch) {
                if (t + 1 == r->outLen)
                    r->finish = clock;
            }
        }
    }
    return finalize(trace, clock, occupancy_sum, steps);
}

ServeMetrics
Server::runContinuous(std::vector<Request> &trace) const
{
    double clock = 0.0;
    double occupancy_sum = 0.0;
    double kv_peak = 0.0;
    std::size_t steps = 0;
    std::size_t next = 0;
    std::vector<Active> active;

    std::optional<KvBlockPool> pool;
    if (cfg_.kvBlocks)
        pool.emplace(KvPoolConfig{cfg_.kvBlocks, cfg_.kvBlockTokens});
    auto can_admit = [&](const Request &r) {
        return !pool || pool->canAdmit(r.inLen + r.outLen);
    };

    while (next < trace.size() || !active.empty()) {
        // Admit arrivals up to batch and KV capacity; prefill on
        // admission, reserving the full context worth of blocks.
        while (next < trace.size() &&
               active.size() < cfg_.maxBatch &&
               trace[next].arrival <= clock &&
               can_admit(trace[next])) {
            Request *r = &trace[next];
            if (pool)
                pool->addSequence(r->id, r->inLen + r->outLen);
            clock += step_->prefill(r->inLen);
            r->firstToken = clock;
            active.push_back({r, 0});
            ++next;
        }
        if (pool)
            kv_peak = std::max(kv_peak, pool->utilization());
        // If KV capacity blocks the head of the queue while nothing
        // runs, time must still advance to the next completion or
        // arrival; with full-reservation admission an empty active
        // set means the head simply has not arrived yet OR is too
        // big; skip oversized requests outright.
        if (active.empty() && next < trace.size() &&
            trace[next].arrival <= clock && !can_admit(trace[next])) {
            // Request larger than the whole pool: drop it.
            ++next;
            continue;
        }
        if (active.empty()) {
            clock = std::max(clock, trace[next].arrival);
            continue;
        }

        // One decode step for everyone currently active.
        double avg_pos = 0.0;
        for (const Active &a : active)
            avg_pos += a.req->inLen + a.produced;
        avg_pos /= active.size();
        clock += step_->decodeStep(static_cast<double>(active.size()),
                                   avg_pos);
        occupancy_sum += static_cast<double>(active.size());
        ++steps;

        for (auto it = active.begin(); it != active.end();) {
            ++it->produced;
            if (it->produced >= it->req->outLen) {
                it->req->finish = clock;
                if (pool)
                    pool->release(it->req->id);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }
    ServeMetrics m = finalize(trace, clock, occupancy_sum, steps);
    m.kvUtilizationPeak = kv_peak;
    return m;
}

ServeMetrics
Server::finalize(const std::vector<Request> &trace, double makespan,
                 double occupancy_sum, std::size_t steps) const
{
    ServeMetrics m;
    m.makespan = makespan;
    std::vector<double> ttft, tpot;
    std::uint64_t tokens = 0;
    std::size_t slo_ok = 0;
    for (const Request &r : trace) {
        if (r.finish < 0.0)
            continue;
        ++m.completed;
        tokens += r.outLen;
        const double first = r.firstToken - r.arrival;
        const double per_tok =
            r.outLen > 1 ? (r.finish - r.firstToken) / (r.outLen - 1)
                         : 0.0;
        ttft.push_back(first);
        if (r.outLen > 1)
            tpot.push_back(per_tok);
        if (first <= cfg_.ttftSlo &&
            (r.outLen <= 1 || per_tok <= cfg_.tpotSlo))
            ++slo_ok;
    }
    if (m.completed == 0)
        cllm_panic("serving simulation completed no requests");
    m.tokensPerSecond = tokens / makespan;
    m.ttft = summarize(ttft, 0.0);
    if (!tpot.empty())
        m.tpot = summarize(tpot, 0.0);
    m.sloAttainment =
        static_cast<double>(slo_ok) / static_cast<double>(m.completed);
    m.meanBatchOccupancy =
        steps ? occupancy_sum / static_cast<double>(steps) : 0.0;
    return m;
}

} // namespace cllm::serve
