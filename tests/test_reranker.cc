/**
 * @file
 * Tests for the cross-encoder reranker used by "Reranked BM25".
 */

#include <gtest/gtest.h>

#include "rag/reranker.hh"

using namespace cllm::rag;

namespace {

Document
doc(DocId id, const std::string &title, const std::string &body)
{
    return {id, title, body};
}

} // namespace

TEST(CrossEncoder, RelevantBeatsIrrelevant)
{
    CrossEncoder ce;
    const auto rel = doc(0, "tee overheads",
                         "trusted execution environment overheads for "
                         "llm inference");
    const auto irr = doc(1, "pasta", "boil water and add salt to taste");
    const std::string q = "llm inference overheads in trusted execution";
    EXPECT_GT(ce.score(q, rel), ce.score(q, irr));
}

TEST(CrossEncoder, TitleMatchBoosts)
{
    CrossEncoder ce;
    const auto in_title = doc(0, "amx acceleration", "generic filler text");
    const auto in_body = doc(1, "misc notes", "amx acceleration filler");
    const std::string q = "amx acceleration";
    EXPECT_GT(ce.score(q, in_title), ce.score(q, in_body));
}

TEST(CrossEncoder, DeterministicScores)
{
    CrossEncoder ce;
    const auto d = doc(0, "t", "some body text");
    EXPECT_EQ(ce.score("query text", d), ce.score("query text", d));
}

TEST(CrossEncoder, RerankSortsByScore)
{
    CrossEncoder ce;
    ElasticLite store;
    store.index("relevant", "enclave attestation verifies measurements");
    store.index("partial", "attestation appears once here");
    store.index("noise", "completely unrelated cooking content");
    const std::vector<SearchHit> hits = {{2, 1.0}, {1, 0.9}, {0, 0.8}};
    const auto out =
        ce.rerank("enclave attestation measurements", store, hits);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].id, 0u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GE(out[i - 1].score, out[i].score);
}

TEST(CrossEncoder, RerankEmptyInput)
{
    CrossEncoder ce;
    ElasticLite store;
    EXPECT_TRUE(ce.rerank("q", store, {}).empty());
}

TEST(CrossEncoder, StatsCountPairs)
{
    CrossEncoder ce;
    ElasticLite store;
    store.index("a", "x y z");
    store.index("b", "p q r");
    RerankStats st;
    ce.rerank("x", store, {{0, 1.0}, {1, 0.5}}, &st);
    EXPECT_EQ(st.pairsScored, 2u);
    EXPECT_EQ(st.flops, 2 * ce.flopsPerPair());
}

TEST(CrossEncoder, FlopsPerPairPositive)
{
    CrossEncoder ce;
    EXPECT_GT(ce.flopsPerPair(), 1000u);
}

TEST(CrossEncoder, MoreOverlapMonotone)
{
    CrossEncoder ce;
    const std::string q = "alpha beta gamma delta";
    const auto none = doc(0, "t", "unrelated words entirely here");
    const auto one = doc(1, "t", "alpha unrelated words here");
    const auto all = doc(2, "t", "alpha beta gamma delta words");
    const double s0 = ce.score(q, none);
    const double s1 = ce.score(q, one);
    const double s4 = ce.score(q, all);
    EXPECT_LT(s0, s1);
    EXPECT_LT(s1, s4);
}
