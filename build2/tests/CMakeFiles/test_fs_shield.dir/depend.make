# Empty dependencies file for test_fs_shield.
# This may be replaced when dependencies are built.
