/**
 * @file
 * Tests for the NUMA placement model behind Insight 6: placement
 * fidelity ordering, single-node degradation (SGX), interleaving
 * (TDX), and UPI link-encryption costs.
 */

#include <gtest/gtest.h>

#include "mem/numa.hh"

using namespace cllm::mem;

TEST(Numa, SingleActiveNodeIsAlwaysLocal)
{
    NumaModel m;
    for (auto p : {NumaPlacement::Local, NumaPlacement::Interleaved,
                   NumaPlacement::SingleNode, NumaPlacement::Unbound}) {
        const NumaEffective e = m.effective(p, 1);
        EXPECT_EQ(e.remoteFraction, 0.0);
        EXPECT_DOUBLE_EQ(e.bandwidthBytes, m.config().localBwBytes);
        EXPECT_DOUBLE_EQ(e.latencyNs, m.config().localLatencyNs);
    }
}

TEST(Numa, RemoteFractionOrdering)
{
    NumaModel m;
    EXPECT_LT(m.remoteFraction(NumaPlacement::Local),
              m.remoteFraction(NumaPlacement::Interleaved));
    EXPECT_DOUBLE_EQ(m.remoteFraction(NumaPlacement::Interleaved), 0.5);
}

TEST(Numa, BoundBandwidthNearlyDoubles)
{
    NumaModel m;
    const NumaEffective e = m.effective(NumaPlacement::Local, 2);
    EXPECT_GT(e.bandwidthBytes, 1.8 * m.config().localBwBytes);
}

TEST(Numa, PlacementBandwidthOrdering)
{
    NumaModel m;
    const double local =
        m.effective(NumaPlacement::Local, 2).bandwidthBytes;
    const double inter =
        m.effective(NumaPlacement::Interleaved, 2).bandwidthBytes;
    const double unbound =
        m.effective(NumaPlacement::Unbound, 2).bandwidthBytes;
    const double single =
        m.effective(NumaPlacement::SingleNode, 2).bandwidthBytes;
    EXPECT_GT(local, inter);
    EXPECT_GT(inter, unbound);
    EXPECT_GT(unbound, single);
}

TEST(Numa, SingleNodePlacementIsCatastrophic)
{
    // SGX's unified-node view: one socket's DRAM + the link must feed
    // both sockets -> less than 40% of the bound configuration, which
    // is how the paper's ~230% SGX overhead arises.
    NumaModel m;
    const double local =
        m.effective(NumaPlacement::Local, 2).bandwidthBytes;
    const double single =
        m.effective(NumaPlacement::SingleNode, 2).bandwidthBytes;
    EXPECT_LT(single / local, 0.40);
}

TEST(Numa, UpiEncryptionShavesBandwidth)
{
    NumaConfig enc;
    enc.upiEncrypted = true;
    NumaConfig plain = enc;
    plain.upiEncrypted = false;
    const double be = NumaModel(enc)
                          .effective(NumaPlacement::Interleaved, 2)
                          .bandwidthBytes;
    const double bp = NumaModel(plain)
                          .effective(NumaPlacement::Interleaved, 2)
                          .bandwidthBytes;
    EXPECT_LT(be, bp);
    // The tax applies only to the remote share, so it is bounded by
    // the configured link tax.
    EXPECT_GT(be / bp, 1.0 - enc.upiCryptoTax);
}

TEST(Numa, UpiEncryptionAddsLatency)
{
    NumaConfig enc;
    enc.upiEncrypted = true;
    NumaConfig plain = enc;
    plain.upiEncrypted = false;
    EXPECT_GT(
        NumaModel(enc).effective(NumaPlacement::Interleaved, 2).latencyNs,
        NumaModel(plain)
            .effective(NumaPlacement::Interleaved, 2)
            .latencyNs);
}

TEST(Numa, LatencyBlendsLocalAndRemote)
{
    NumaModel m;
    const NumaEffective e = m.effective(NumaPlacement::Interleaved, 2);
    EXPECT_GT(e.latencyNs, m.config().localLatencyNs);
    EXPECT_LT(e.latencyNs, m.config().remoteLatencyNs + 20.0);
}

TEST(Numa, ActiveNodesClampedToTopology)
{
    NumaModel m; // 2 nodes
    const NumaEffective e2 = m.effective(NumaPlacement::Local, 2);
    const NumaEffective e9 = m.effective(NumaPlacement::Local, 9);
    EXPECT_DOUBLE_EQ(e2.bandwidthBytes, e9.bandwidthBytes);
}

TEST(NumaDeath, ZeroNodesFatal)
{
    NumaConfig cfg;
    cfg.nodes = 0;
    EXPECT_DEATH(NumaModel{cfg}, "zero nodes");
}
