# Empty compiler generated dependencies file for chunked_serving.
# This may be replaced when dependencies are built.
