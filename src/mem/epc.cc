#include "mem/epc.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace cllm::mem {

EpcCache::EpcCache(std::uint64_t capacity_pages) : capacity_(capacity_pages)
{
    if (capacity_ == 0)
        cllm_fatal("EpcCache with zero capacity");
}

bool
EpcCache::access(std::uint64_t page_no)
{
    auto it = map_.find(page_no);
    if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    ++misses_;
    if (lru_.size() >= capacity_) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        ++evictions_;
    }
    lru_.push_front(page_no);
    map_[page_no] = lru_.begin();
    return false;
}

double
EpcCache::missRatio() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / total : 0.0;
}

void
EpcCache::reset()
{
    lru_.clear();
    map_.clear();
    hits_ = misses_ = evictions_ = 0;
}

double
EpcCostModel::scanMissRatio(std::uint64_t working_set_bytes,
                            std::uint64_t epc_bytes) const
{
    if (epc_bytes == 0)
        cllm_fatal("EpcCostModel: zero EPC size");
    if (working_set_bytes <= epc_bytes)
        return 0.0;
    // Cyclic scan through WS > EPC under LRU misses on (WS - EPC) of
    // each pass plus the churn of reloading; model the classic sharp
    // cliff with a smooth shoulder.
    const double ws = static_cast<double>(working_set_bytes);
    const double epc = static_cast<double>(epc_bytes);
    return std::min(1.0, (ws - epc) / ws + 0.1);
}

double
EpcCostModel::extraSecondsPerByte(std::uint64_t working_set_bytes,
                                  std::uint64_t epc_bytes) const
{
    const double miss = scanMissRatio(working_set_bytes, epc_bytes);
    if (miss > 0.0) {
        // Attribute EPC-paging pressure: evaluations that priced a
        // working set spilling out of the EPC, and the spilled bytes.
        static obs::Counter &paging_evals =
            obs::Registry::global().counter("mem.epc.paging_evals");
        static obs::Counter &spill_bytes =
            obs::Registry::global().counter("mem.epc.spill_bytes");
        paging_evals.inc();
        spill_bytes.add(working_set_bytes - epc_bytes);
    }
    constexpr double page = 4096.0;
    return miss * (pageFaultUs * 1e-6) / page;
}

double
EpcCostModel::passSeconds(std::uint64_t working_set_bytes,
                          std::uint64_t epc_bytes) const
{
    return extraSecondsPerByte(working_set_bytes, epc_bytes) *
           static_cast<double>(working_set_bytes);
}

double
EpcCostModel::swapSeconds(std::uint64_t bytes) const
{
    const std::uint64_t pages = (bytes + 4095) / 4096;
    return static_cast<double>(pages) * (pageFaultUs * 1e-6) * 0.5;
}

} // namespace cllm::mem
