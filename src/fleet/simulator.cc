#include "fleet/simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "cost/pricing.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace cllm::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/** The fleet's own trace lane (nodes use id + 1). */
constexpr std::uint32_t kFleetLane = 0;

/** The config's tracer when sim recording is live, else null. */
obs::Tracer *
simTracer(const FleetConfig &cfg)
{
    return cfg.tracer && cfg.tracer->simEnabled() ? cfg.tracer
                                                  : nullptr;
}
} // namespace

FleetSimulator::FleetSimulator(FleetConfig cfg,
                               std::vector<NodeTemplate> templates)
    : cfg_(std::move(cfg)), templates_(std::move(templates))
{
    if (templates_.empty())
        cllm_fatal("FleetSimulator: no node templates");
    if (cfg_.initialNodes.empty())
        cllm_fatal("FleetSimulator: empty initial fleet");
    for (std::size_t idx : cfg_.initialNodes)
        if (idx >= templates_.size())
            cllm_fatal("FleetSimulator: initial node template out of "
                       "range");
    if (cfg_.autoscaler.enabled &&
        cfg_.autoscaler.addTemplate >= templates_.size())
        cllm_fatal("FleetSimulator: autoscaler template out of range");
}

void
FleetSimulator::addNode(std::size_t template_index,
                        double provision_start, double available_at)
{
    const auto id = static_cast<unsigned>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(
        id, template_index, templates_[template_index], cfg_.seed,
        provision_start, available_at, cfg_.tracer));
    if (obs::Tracer *t = simTracer(cfg_)) {
        const Node &n = *nodes_.back();
        t->laneName(n.traceLane(),
                    n.name() + " #" + std::to_string(id));
        t->complete(kFleetLane, "provision", provision_start,
                    available_at,
                    {{"node", static_cast<double>(id)}});
    }
}

FleetMetrics
FleetSimulator::run(std::vector<serve::Request> trace)
{
    if (trace.empty())
        cllm_fatal("FleetSimulator::run: empty trace");
    std::sort(trace.begin(), trace.end(),
              [](const serve::Request &a, const serve::Request &b) {
                  return a.arrival < b.arrival;
              });

    nodes_.clear();
    scaleUps_ = 0;
    drains_ = 0;
    obs::Tracer *tr = simTracer(cfg_);
    if (tr)
        tr->laneName(kFleetLane, "fleet");
    for (std::size_t idx : cfg_.initialNodes)
        addNode(idx, 0.0, 0.0);

    Router router(cfg_.policy, cfg_.ttftSlo);
    Autoscaler scaler(cfg_.autoscaler);

    std::deque<serve::Request *> backlog;
    std::size_t backlogged_total = 0;
    std::size_t next_arrival = 0;
    double fleet_now = 0.0;
    double next_tick =
        cfg_.autoscaler.enabled ? cfg_.autoscaler.intervalSec : kInf;

    // Route a request at `now`; readyAt can never precede the node's
    // own provisioning.
    auto route_one = [&](serve::Request *r, double now) {
        const int pick = router.route(nodes_, *r, now);
        if (pick < 0)
            return false;
        Node &n = *nodes_[pick];
        n.engine().submit(r, std::max(r->arrival, n.availableAt()));
        if (tr)
            tr->instant(kFleetLane, "route", now,
                        {{"req", static_cast<double>(r->id)},
                         {"node",
                          static_cast<double>(n.id())}});
        return true;
    };
    auto flush_backlog = [&](double now) {
        const std::size_t before = backlog.size();
        while (!backlog.empty() && route_one(backlog.front(), now))
            backlog.pop_front();
        if (tr && backlog.size() != before)
            tr->counterValue(
                kFleetLane, "backlog", now,
                static_cast<double>(backlog.size()));
    };

    for (;;) {
        // Draining nodes decommission the moment they go idle; their
        // meter stops at whichever is later, the drain order or the
        // last work they finished.
        for (auto &n : nodes_)
            if (n->draining() && !n->decommissioned() &&
                n->engine().idle())
                n->finishDrain();

        const double t_arrival = next_arrival < trace.size()
                                     ? trace[next_arrival].arrival
                                     : kInf;

        int node_idx = -1;
        double t_node = kInf;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (nodes_[i]->decommissioned())
                continue;
            const double t = nodes_[i]->engine().nextReadyTime();
            if (t < t_node) {
                t_node = t;
                node_idx = static_cast<int>(i);
            }
        }

        // A pending commission only matters while arrivals are
        // backlogged: it is the instant the backlog can drain.
        double t_commission = kInf;
        if (!backlog.empty())
            for (const auto &n : nodes_)
                if (!n->decommissioned() && !n->draining() &&
                    n->availableAt() > fleet_now)
                    t_commission =
                        std::min(t_commission, n->availableAt());

        if (t_arrival == kInf && backlog.empty() && t_node == kInf)
            break; // trace drained, every engine idle

        // Fixed tie order keeps runs deterministic: commission,
        // arrival, autoscaler tick, node iteration.
        const double t_next = std::min(
            std::min(t_commission, t_arrival),
            std::min(next_tick, t_node));

        if (t_commission == t_next) {
            fleet_now = t_commission;
            flush_backlog(fleet_now);
            continue;
        }
        if (t_arrival == t_next) {
            fleet_now = t_arrival;
            flush_backlog(fleet_now);
            serve::Request *r = &trace[next_arrival++];
            // FIFO: never jump the queue past an existing backlog.
            if (!backlog.empty() || !route_one(r, fleet_now)) {
                backlog.push_back(r);
                ++backlogged_total;
                if (tr) {
                    tr->instant(
                        kFleetLane, "backlogged", fleet_now,
                        {{"req", static_cast<double>(r->id)}});
                    tr->counterValue(
                        kFleetLane, "backlog", fleet_now,
                        static_cast<double>(backlog.size()));
                }
            }
            continue;
        }
        if (next_tick == t_next) {
            fleet_now = next_tick;
            flush_backlog(fleet_now);
            const ScaleDecision d =
                scaler.tick(nodes_, backlog.size(), fleet_now);
            if (d.kind == ScaleDecision::Kind::Add) {
                const NodeTemplate &tmpl =
                    templates_[cfg_.autoscaler.addTemplate];
                const double cold =
                    tmpl.provisionDelaySec +
                    tmpl.server.reprovision.seconds(
                        tmpl.server.weightBytes);
                if (tr)
                    tr->instant(
                        kFleetLane, "scale_up", fleet_now,
                        {{"node", static_cast<double>(
                                      nodes_.size())},
                         {"cold_start_s", cold},
                         {"backlog", static_cast<double>(
                                         backlog.size())}});
                addNode(cfg_.autoscaler.addTemplate, fleet_now,
                        fleet_now + cold);
                ++scaleUps_;
            } else if (d.kind == ScaleDecision::Kind::Drain) {
                if (tr)
                    tr->instant(
                        kFleetLane, "drain", fleet_now,
                        {{"node",
                          static_cast<double>(d.node)}});
                nodes_[d.node]->startDrain(fleet_now);
                ++drains_;
            }
            next_tick += cfg_.autoscaler.intervalSec;
            continue;
        }

        fleet_now = std::max(fleet_now, t_node);
        // The engine pauses its admission loop if its clock crosses
        // the next event that could feed it work, so admissions stay
        // in the exact (readyAt, id) order of a pre-submitted run.
        nodes_[node_idx]->engine().iterate(
            std::min(t_arrival, t_commission));
    }

    return finalize(trace, backlogged_total);
}

FleetMetrics
FleetSimulator::finalize(const std::vector<serve::Request> &trace,
                         std::size_t backlogged_total)
{
    double makespan = trace.back().arrival;
    serve::ServeTally tally{};
    double occupancy_sum = 0.0;
    std::size_t steps = 0;
    double kv_peak = 0.0;
    std::size_t peak_batch = 0;
    for (const auto &n : nodes_) {
        const serve::ContinuousEngine &e = n->engine();
        makespan = std::max(makespan, e.clock());
        const serve::ServeTally &t = e.tally();
        tally.retries += t.retries;
        tally.shed += t.shed;
        tally.timedOut += t.timedOut;
        tally.failed += t.failed;
        tally.restarts += t.restarts;
        tally.attestRejections += t.attestRejections;
        tally.faultDowntime += t.faultDowntime;
        tally.kvPreemptions += t.kvPreemptions;
        tally.kvSwapOuts += t.kvSwapOuts;
        tally.kvSwapIns += t.kvSwapIns;
        tally.kvSwapSeconds += t.kvSwapSeconds;
        tally.prefixEnabled = tally.prefixEnabled || t.prefixEnabled;
        tally.prefixHits += t.prefixHits;
        tally.prefixMisses += t.prefixMisses;
        tally.prefixCachedTokens += t.prefixCachedTokens;
        tally.prefillTokensComputed += t.prefillTokensComputed;
        tally.prefixEvictions += t.prefixEvictions;
        tally.prefixEvictedBlocks += t.prefixEvictedBlocks;
        tally.prefixInsertedBlocks += t.prefixInsertedBlocks;
        tally.prefixPinnedPeak = std::max<std::uint64_t>(
            tally.prefixPinnedPeak, t.prefixPinnedPeak);
        tally.chunkedEnabled =
            tally.chunkedEnabled || t.chunkedEnabled;
        tally.chunkSlices += t.chunkSlices;
        tally.chunkPrefillTokens += t.chunkPrefillTokens;
        tally.mixedSteps += t.mixedSteps;
        tally.starvationKicks += t.starvationKicks;
        tally.maxStepPrefillTokens = std::max(
            tally.maxStepPrefillTokens, t.maxStepPrefillTokens);
        tally.specEnabled = tally.specEnabled || t.specEnabled;
        tally.specVerifySteps += t.specVerifySteps;
        tally.specDraftTokens += t.specDraftTokens;
        tally.specAccepted += t.specAccepted;
        tally.specRejected += t.specRejected;
        tally.specBonus += t.specBonus;
        // Pool every node's per-token gaps (node-id order, so the
        // fleet ITL summary is deterministic at any thread count).
        tally.itlSamples.insert(tally.itlSamples.end(),
                                t.itlSamples.begin(),
                                t.itlSamples.end());
        occupancy_sum += e.occupancySum();
        steps += e.steps();
        kv_peak = std::max(kv_peak, e.kvPeak());
        peak_batch = std::max(peak_batch, e.peakBatch());
    }

    std::vector<const serve::Request *> reqs;
    reqs.reserve(trace.size());
    for (const serve::Request &r : trace)
        reqs.push_back(&r);
    const serve::ServeMetrics agg = serve::finalizeRequests(
        reqs, makespan, occupancy_sum, steps, tally, cfg_.ttftSlo,
        cfg_.tpotSlo);

    FleetMetrics m;
    m.submitted = agg.submitted;
    m.completed = agg.completed;
    m.availability = agg.availability;
    m.makespan = makespan;
    m.outputTokens = agg.outputTokens;
    m.tokensPerSecond = agg.tokensPerSecond;
    m.ttft = agg.ttft;
    m.tpot = agg.tpot;
    m.sloAttainment = agg.sloAttainment;
    m.kvUtilizationPeak = kv_peak;
    m.meanBatchOccupancy = agg.meanBatchOccupancy;
    m.peakBatchOccupancy = static_cast<double>(peak_batch);
    m.kvPreemptions = tally.kvPreemptions;
    m.kvSwapOuts = tally.kvSwapOuts;
    m.kvSwapIns = tally.kvSwapIns;
    m.kvSwapSeconds = tally.kvSwapSeconds;
    m.prefixEnabled = tally.prefixEnabled;
    m.prefixHits = tally.prefixHits;
    m.prefixMisses = tally.prefixMisses;
    m.prefixCachedTokens = tally.prefixCachedTokens;
    m.prefillTokensComputed = tally.prefillTokensComputed;
    m.prefixEvictions = tally.prefixEvictions;
    m.prefixEvictedBlocks = tally.prefixEvictedBlocks;
    m.prefixPinnedPeak = tally.prefixPinnedPeak;
    m.chunkedEnabled = tally.chunkedEnabled;
    m.itl = agg.itl;
    m.chunkSlices = tally.chunkSlices;
    m.chunkPrefillTokens = tally.chunkPrefillTokens;
    m.mixedSteps = tally.mixedSteps;
    m.starvationKicks = tally.starvationKicks;
    m.maxStepPrefillTokens = tally.maxStepPrefillTokens;
    m.specEnabled = tally.specEnabled;
    m.specVerifySteps = tally.specVerifySteps;
    m.specDraftTokens = tally.specDraftTokens;
    m.specAccepted = tally.specAccepted;
    m.specRejected = tally.specRejected;
    m.specBonus = tally.specBonus;
    m.retries = tally.retries;
    m.shed = tally.shed;
    m.timedOut = tally.timedOut;
    m.failed = tally.failed;
    m.restarts = tally.restarts;
    m.faultDowntime = tally.faultDowntime;
    m.scaleUps = scaleUps_;
    m.drains = drains_;
    m.backlogged = backlogged_total;

    // Billing and per-node summaries.
    for (const auto &n : nodes_) {
        NodeSummary s;
        s.id = n->id();
        s.name = n->name();
        s.templateIndex = n->templateIndex();
        s.provisionStart = n->provisionStart();
        s.availableAt = n->availableAt();
        s.billedUntil = n->decommissioned() ? n->decommissionTime()
                                            : makespan;
        s.billedSeconds = n->billedSeconds(makespan);
        s.costUsd = cost::nodeSecondsUsd(n->pricePerHour(),
                                         s.billedSeconds);
        s.serve = n->metrics();
        m.totalCostUsd += s.costUsd;
        m.nodes.push_back(std::move(s));
    }
    m.costPer1kTokens =
        m.outputTokens
            ? cost::costPer1kTokens(m.outputTokens, m.totalCostUsd)
            : 0.0;

    // Live-node timeline: +1 at each commission, -1 at each
    // decommission, integrated for the time-weighted mean.
    std::vector<std::pair<double, int>> deltas;
    for (const auto &n : nodes_) {
        if (n->availableAt() <= makespan)
            deltas.emplace_back(n->availableAt(), +1);
        if (n->decommissioned())
            deltas.emplace_back(n->decommissionTime(), -1);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second > b.second;
              });
    unsigned live = 0;
    double prev_t = 0.0;
    double weighted = 0.0;
    for (const auto &[t, d] : deltas) {
        weighted += live * (t - prev_t);
        prev_t = t;
        live = static_cast<unsigned>(static_cast<int>(live) + d);
        if (m.nodeTimeline.empty() ||
            m.nodeTimeline.back().first != t)
            m.nodeTimeline.emplace_back(t, live);
        else
            m.nodeTimeline.back().second = live;
        m.peakNodes = std::max<std::size_t>(m.peakNodes, live);
    }
    weighted += live * (makespan - prev_t);
    m.meanLiveNodes = makespan > 0.0 ? weighted / makespan : 0.0;

    if (obs::Tracer *tr = simTracer(cfg_))
        for (const auto &[t, count] : m.nodeTimeline)
            tr->counterValue(kFleetLane, "live_nodes", t,
                             static_cast<double>(count));

    // Global $/node-second accounting in integer micro-units (the
    // registry's determinism contract allows only integer adds).
    static obs::Counter &billed_ms =
        obs::Registry::global().counter("fleet.billed_node_ms");
    static obs::Counter &cost_micro_usd =
        obs::Registry::global().counter("fleet.cost_micro_usd");
    double billed_total = 0.0;
    for (const NodeSummary &s : m.nodes)
        billed_total += s.billedSeconds;
    billed_ms.add(static_cast<std::uint64_t>(
        std::llround(billed_total * 1e3)));
    cost_micro_usd.add(static_cast<std::uint64_t>(
        std::llround(m.totalCostUsd * 1e6)));
    return m;
}

} // namespace cllm::fleet
