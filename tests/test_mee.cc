/**
 * @file
 * Tests for the functional memory-encryption engine: roundtrips,
 * confidentiality (ciphertext differs), integrity (tamper detection on
 * data, counters, and replay), tree construction, and the analytic
 * cost model.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "mem/mee_tree.hh"

using namespace cllm;
using namespace cllm::mem;

namespace {

CacheLine
patternLine(std::uint8_t seed)
{
    CacheLine l;
    for (std::size_t i = 0; i < l.size(); ++i)
        l[i] = static_cast<std::uint8_t>(seed + i * 3);
    return l;
}

crypto::Digest256
testKey()
{
    return crypto::sha256(std::string("mee-test-key"));
}

} // namespace

TEST(MeeTree, WriteReadRoundtrip)
{
    PhysMem mem(64);
    MeeTree mee(mem, testKey());
    const CacheLine data = patternLine(7);
    mee.writeLine(3, data);
    const auto r = mee.readLine(3);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, data);
}

TEST(MeeTree, FreshLinesVerifyAsZero)
{
    PhysMem mem(16);
    MeeTree mee(mem, testKey());
    const auto r = mee.readLine(0);
    ASSERT_TRUE(r.ok);
    for (std::uint8_t b : r.data)
        EXPECT_EQ(b, 0);
}

TEST(MeeTree, CiphertextDiffersFromPlaintext)
{
    PhysMem mem(16);
    MeeTree mee(mem, testKey());
    const CacheLine data = patternLine(1);
    mee.writeLine(0, data);
    EXPECT_NE(mem.readLine(0), data);
}

TEST(MeeTree, SamePlaintextDifferentLinesDifferentCiphertext)
{
    PhysMem mem(16);
    MeeTree mee(mem, testKey());
    const CacheLine data = patternLine(9);
    mee.writeLine(0, data);
    mee.writeLine(1, data);
    EXPECT_NE(mem.readLine(0), mem.readLine(1));
}

TEST(MeeTree, RewriteChangesCiphertext)
{
    // Version counters must change the keystream on rewrite of the
    // same data to the same address.
    PhysMem mem(16);
    MeeTree mee(mem, testKey());
    const CacheLine data = patternLine(4);
    mee.writeLine(5, data);
    const CacheLine c1 = mem.readLine(5);
    mee.writeLine(5, data);
    const CacheLine c2 = mem.readLine(5);
    EXPECT_NE(c1, c2);
    const auto r = mee.readLine(5);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, data);
}

TEST(MeeTree, DetectsCiphertextTampering)
{
    PhysMem mem(16);
    MeeTree mee(mem, testKey());
    mee.writeLine(2, patternLine(3));
    mem.raw()[2 * kLineBytes + 10] ^= 0x80; // DIMM interposer attack
    const auto r = mee.readLine(2);
    EXPECT_FALSE(r.ok);
    EXPECT_GE(mee.stats().integrityFailures, 1u);
}

TEST(MeeTree, DetectsCounterReplay)
{
    PhysMem mem(64);
    MeeTree mee(mem, testKey());
    mee.writeLine(7, patternLine(1));
    mee.writeLine(7, patternLine(2));
    // Roll the leaf version back (replay attempt).
    mee.tamperCounter(0, 7, 1);
    const auto r = mee.readLine(7);
    EXPECT_FALSE(r.ok);
}

TEST(MeeTree, DetectsInternalNodeTampering)
{
    PhysMem mem(512);
    MeeTree mee(mem, testKey());
    ASSERT_GE(mee.depth(), 2u);
    mee.writeLine(100, patternLine(5));
    mee.tamperCounter(1, 100 / 8, 999);
    EXPECT_FALSE(mee.readLine(100).ok);
}

TEST(MeeTree, UntamperedNeighborsStillVerify)
{
    PhysMem mem(64);
    MeeTree mee(mem, testKey());
    mee.writeLine(0, patternLine(1));
    mee.writeLine(63, patternLine(2));
    mem.raw()[0] ^= 0x01;
    EXPECT_FALSE(mee.readLine(0).ok);
    EXPECT_TRUE(mee.readLine(63).ok);
}

TEST(MeeTree, DepthGrowsWithMemory)
{
    PhysMem small(8), big(4096);
    MeeTree ms(small, testKey());
    MeeTree mb(big, testKey());
    EXPECT_LT(ms.depth(), mb.depth());
    // 4096 lines at arity 8: 4096 -> 512 -> 64 -> 8 = 4 levels.
    EXPECT_EQ(mb.depth(), 4u);
}

TEST(MeeTree, ManyLinesStressRoundtrip)
{
    PhysMem mem(1024);
    MeeTree mee(mem, testKey());
    for (std::size_t i = 0; i < 1024; i += 17)
        mee.writeLine(i, patternLine(static_cast<std::uint8_t>(i)));
    for (std::size_t i = 0; i < 1024; i += 17) {
        const auto r = mee.readLine(i);
        ASSERT_TRUE(r.ok) << "line " << i;
        EXPECT_EQ(r.data, patternLine(static_cast<std::uint8_t>(i)));
    }
}

TEST(MeeTree, StatsCountActivity)
{
    PhysMem mem(64);
    MeeTree mee(mem, testKey());
    mee.clearStats();
    mee.writeLine(0, patternLine(0));
    mee.readLine(0);
    const MeeStats &s = mee.stats();
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.reads, 1u);
    EXPECT_GE(s.nodesTouched, 2 * mee.depth());
    EXPECT_GE(s.macChecks, mee.depth() + 1);
}

TEST(MeeTree, DifferentKeysDifferentCiphertext)
{
    PhysMem m1(16), m2(16);
    MeeTree a(m1, crypto::sha256(std::string("k1")));
    MeeTree b(m2, crypto::sha256(std::string("k2")));
    a.writeLine(0, patternLine(6));
    b.writeLine(0, patternLine(6));
    EXPECT_NE(m1.readLine(0), m2.readLine(0));
}

TEST(MeeCostModel, PerLineCostPositiveAndGrowsWithDepth)
{
    MeeCostModel m;
    EXPECT_GT(m.perLineNs(1), 0.0);
    EXPECT_LT(m.perLineNs(1), m.perLineNs(8));
}

TEST(MeeCostModel, BandwidthFactorInUnitInterval)
{
    MeeCostModel m;
    const double f = m.bandwidthFactor(300e9, 4);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
}

TEST(MeeCostModel, FasterMemoryPaysRelativelyMore)
{
    MeeCostModel m;
    EXPECT_LT(m.bandwidthFactor(600e9, 4), m.bandwidthFactor(100e9, 4));
}

TEST(MeeTreeDeath, OutOfRangePanics)
{
    PhysMem mem(8);
    MeeTree mee(mem, testKey());
    EXPECT_DEATH(mee.readLine(8), "out of range");
    EXPECT_DEATH(mee.writeLine(9, CacheLine{}), "out of range");
}

TEST(PhysMemDeath, OutOfRangePanics)
{
    PhysMem mem(4);
    EXPECT_DEATH(mem.readLine(4), "out of range");
}
