/**
 * @file
 * Inference-framework efficiency profiles for the paper's Figure 3
 * microbenchmark: Hugging Face transformers, vLLM (CPU), IPEX, and
 * llama.cpp. Each profile captures how much of the machine's peak
 * compute and bandwidth the framework's kernels achieve, whether it
 * uses AMX, and its weight storage format.
 */

#ifndef CLLM_LLM_FRAMEWORK_HH
#define CLLM_LLM_FRAMEWORK_HH

#include <string>

#include "hw/cpu.hh"

namespace cllm::llm {

/** Efficiency profile of one inference stack. */
struct FrameworkProfile
{
    std::string name = "IPEX";
    bool supportsAmx = true;
    /** Fraction of peak matmul throughput achieved in decode. */
    double computeEff = 0.45;
    /** Per-dtype adjustment on computeEff. */
    double int8ComputeEff = 0.15;  //!< quant kernels are less tuned
    /** Fraction of peak achieved in prefill (large GEMMs, but python
     *  orchestration and attention materialization cost). */
    double prefillEff = 0.12;
    /** Fraction of stream bandwidth achieved. */
    double memEff = 0.85;
    /** Multiplier on intermediate-activation traffic. */
    double actTrafficFactor = 1.0;
    /** Weight bytes per parameter override; 0 = use dtype size. */
    double weightBytesPerParam = 0.0;
    /** Whether the stack pins threads and uses oneCCL-style NUMA
     *  sharding across sockets. */
    bool numaAware = true;

    /** Effective compute efficiency for a dtype. */
    double effectiveComputeEff(hw::Dtype dtype) const;
};

/** Intel Extension for PyTorch: AMX + oneCCL, the paper's choice. */
FrameworkProfile ipex();
/** Hugging Face transformers (eager PyTorch). */
FrameworkProfile hfTransformers();
/** vLLM CPU backend. */
FrameworkProfile vllmCpu();
/** llama.cpp with mixed-precision (Q4-ish) weights. */
FrameworkProfile llamaCpp();

} // namespace cllm::llm

#endif // CLLM_LLM_FRAMEWORK_HH
