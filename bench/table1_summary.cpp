/**
 * @file
 * Table I: the summary matrix comparing Intel SGX, Intel TDX, and
 * H100 cGPUs across security, performance, and cost dimensions, with
 * the single-resource overhead row measured by the timing model.
 */

#include <iostream>

#include "core/summary.hh"

int
main()
{
    std::cout << "=== Table I: system summary (measured) ===\n\n";
    cllm::core::printSummaryMatrix(
        std::cout, cllm::core::buildSummaryMatrix(/*measured=*/true));
    return 0;
}
