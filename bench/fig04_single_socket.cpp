/**
 * @file
 * Figure 4: single-socket throughput (batch 6, beam 4) and next-token
 * latency (batch 1, beam 1) for Llama2-7B in bf16 and int8 across
 * bare metal, SGX, VM, and TDX on EMR1, with per-token latency
 * distributions summarized after the paper's Z>3 outlier filter.
 */

#include "bench_util.hh"

#include "util/stats.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 4",
           "single-socket overheads, Llama2-7B, bf16 + int8 (EMR1)",
           "SGX 4.80-6.15%, TDX 5.51-10.68%, VM 1.82-5.38%; int8 has "
           "almost half the bf16 latency");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();

    for (hw::Dtype dtype : {hw::Dtype::Bf16, hw::Dtype::Int8}) {
        std::cout << "--- dtype " << hw::dtypeName(dtype) << " ---\n";
        llm::RunParams tput = throughputParams(cpu);
        llm::RunParams lat = latencyParams(cpu);
        lat.outLen = 1024; // >= 1000 output tokens, as measured
        tput.dtype = lat.dtype = dtype;

        const auto bare_t =
            exp.runCpu(cpu, core::Backend::Bare, model, tput);
        const auto bare_l =
            exp.runCpu(cpu, core::Backend::Bare, model, lat);

        Table t({"backend", "tput [tok/s]", "tput ovh",
                 "lat p50 [ms]", "lat p99 [ms]", "lat ovh",
                 "outliers"});
        for (auto b : {core::Backend::Bare, core::Backend::Sgx,
                       core::Backend::Vm, core::Backend::Tdx}) {
            const auto rt = exp.runCpu(cpu, b, model, tput);
            const auto rl = exp.runCpu(cpu, b, model, lat);
            const SampleSummary s =
                summarize(rl.timing.tokenLatencies, 3.0);
            t.addRow({rt.backend, fmt(rt.timing.decodeTput),
                      fmtPct(core::Experiment::compare(rt, bare_t)
                                 .tputOverheadPct),
                      fmt(1e3 * s.p50), fmt(1e3 * s.p99),
                      fmtPct(core::Experiment::compare(rl, bare_l)
                                 .latencyOverheadPct),
                      fmtPct(100.0 * s.outliers /
                             rl.timing.tokenLatencies.size())});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "200 ms/token reading-speed bar: all 7B backends stay "
                 "below it.\n";
    return 0;
}
