/**
 * @file
 * Text analysis for the ElasticLite search engine: lowercasing,
 * alphanumeric tokenization, stopword removal, and a light suffix
 * stemmer (an S-stemmer plus common English suffixes), mirroring the
 * default Elasticsearch "english" analyzer closely enough for BM25
 * behaviour studies.
 */

#ifndef CLLM_RAG_ANALYZER_HH
#define CLLM_RAG_ANALYZER_HH

#include <string>
#include <vector>

namespace cllm::rag {

/** Analyzer configuration. */
struct AnalyzerConfig
{
    bool lowercase = true;
    bool removeStopwords = true;
    bool stem = true;
    std::size_t minTokenLen = 2;
};

/**
 * Tokenizer + normalizer.
 */
class Analyzer
{
  public:
    explicit Analyzer(AnalyzerConfig cfg = {});

    /** Split, normalize, filter, and stem a text. */
    std::vector<std::string> analyze(const std::string &text) const;

    /** Whether a (lowercased) token is a stopword. */
    static bool isStopword(const std::string &token);

    /** Apply the light stemmer to one lowercase token. */
    static std::string stem(const std::string &token);

  private:
    AnalyzerConfig cfg_;
};

} // namespace cllm::rag

#endif // CLLM_RAG_ANALYZER_HH
