#include "mem/numa.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cllm::mem {

NumaModel::NumaModel(NumaConfig cfg) : cfg_(cfg)
{
    if (cfg_.nodes == 0)
        cllm_fatal("NumaModel: zero nodes");
}

double
NumaModel::remoteFraction(NumaPlacement placement) const
{
    const double n = static_cast<double>(cfg_.nodes);
    switch (placement) {
      case NumaPlacement::Local:
        // Bound correctly; only activation hand-off crosses sockets.
        return 0.03;
      case NumaPlacement::Striped:
        // Bindings ignored but first-touch keeps most pages local
        // (the TDX KVM driver case, Insight 6).
        return 0.25 * (n - 1.0) / n + 0.125;
      case NumaPlacement::Interleaved:
        // Pages round-robin: (n-1)/n of accesses land remote.
        return (n - 1.0) / n;
      case NumaPlacement::SingleNode:
        // All pages on one node; threads on the other n-1 nodes are
        // fully remote.
        return (n - 1.0) / n;
      case NumaPlacement::Unbound:
        // First-touch scattered by the allocator plus migration churn.
        return (n - 1.0) / n;
    }
    cllm_panic("unknown NumaPlacement");
}

NumaEffective
NumaModel::effective(NumaPlacement placement,
                     unsigned active_nodes) const
{
    NumaEffective out;
    const unsigned nodes = std::min(active_nodes, cfg_.nodes);
    if (nodes <= 1) {
        out.remoteFraction = 0.0;
        out.bandwidthBytes = cfg_.localBwBytes;
        out.latencyNs = cfg_.localLatencyNs;
        return out;
    }

    const double n = static_cast<double>(nodes);
    const double upi_eff =
        cfg_.upiBwBytes * (cfg_.upiEncrypted ? 1.0 - cfg_.upiCryptoTax
                                             : 1.0);
    const double r = remoteFraction(placement);
    out.remoteFraction = r;

    const double bound = n * cfg_.localBwBytes;
    switch (placement) {
      case NumaPlacement::Local:
        out.bandwidthBytes = bound * (1.0 - 0.5 * r);
        break;
      case NumaPlacement::Striped:
        // Local share proceeds at full speed; the remote share is
        // funnelled through the links.
        out.bandwidthBytes =
            std::min(bound, (1.0 - r) * bound + n * upi_eff);
        break;
      case NumaPlacement::Interleaved:
        // Each node streams (1-r) locally and r over the links.
        out.bandwidthBytes =
            std::min(bound, n * ((1.0 - r) * cfg_.localBwBytes + upi_eff));
        break;
      case NumaPlacement::SingleNode:
        // One node's DRAM serves everyone; remote nodes are capped by
        // the link.
        out.bandwidthBytes =
            std::min(cfg_.localBwBytes,
                     cfg_.localBwBytes / n + (n - 1.0) * upi_eff / n);
        break;
      case NumaPlacement::Unbound:
        // Interleaved-like traffic plus allocator/migration contention.
        out.bandwidthBytes =
            0.80 * std::min(bound, n * ((1.0 - r) * cfg_.localBwBytes +
                                        upi_eff));
        break;
    }

    const double remote_lat =
        cfg_.remoteLatencyNs + (cfg_.upiEncrypted ? 18.0 : 0.0);
    out.latencyNs = (1.0 - r) * cfg_.localLatencyNs + r * remote_lat;
    return out;
}

} // namespace cllm::mem
