#include "core/experiment.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace cllm::core {

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Bare:
        return "bare";
      case Backend::Vm:
        return "VM";
      case Backend::VmTh:
        return "VM TH";
      case Backend::VmNb:
        return "VM NB";
      case Backend::Sgx:
        return "SGX";
      case Backend::Tdx:
        return "TDX";
    }
    return "?";
}

std::unique_ptr<tee::TeeBackend>
makeBackend(Backend b)
{
    switch (b) {
      case Backend::Bare:
        return tee::makeBareMetal();
      case Backend::Vm:
        return tee::makeVm();
      case Backend::VmTh: {
        tee::VmConfig cfg;
        cfg.hugepages1G = false;
        return tee::makeVm(cfg);
      }
      case Backend::VmNb: {
        tee::VmConfig cfg;
        cfg.numaBound = false;
        return tee::makeVm(cfg);
      }
      case Backend::Sgx:
        return tee::makeSgx();
      case Backend::Tdx:
        return tee::makeTdx();
    }
    cllm_panic("unknown Backend");
}

Experiment::Experiment() = default;

ExperimentResult
Experiment::runCpu(const hw::CpuSpec &cpu, Backend backend,
                   const llm::ModelConfig &model,
                   const llm::RunParams &params) const
{
    const auto be = makeBackend(backend);
    ExperimentResult r;
    r.backend = be->name();
    r.timing = cpuModel_.run(cpu, *be, model, params);
    return r;
}

ExperimentResult
Experiment::runGpu(const hw::GpuSpec &gpu, const llm::ModelConfig &model,
                   const llm::GpuRunParams &params) const
{
    ExperimentResult r;
    r.backend = params.confidential ? "cGPU" : "GPU";
    r.timing = gpuModel_.run(gpu, model, params);
    return r;
}

OverheadReport
Experiment::compare(const ExperimentResult &result,
                    const ExperimentResult &baseline)
{
    OverheadReport rep;
    rep.name = result.backend;
    rep.baseline = baseline.backend;
    rep.tputOverheadPct = overheadPct(baseline.timing.decodeTput,
                                      result.timing.decodeTput);
    rep.latencyOverheadPct = overheadPct(result.timing.meanTokenLatency,
                                         baseline.timing.meanTokenLatency);
    rep.e2eOverheadPct =
        overheadPct(baseline.timing.e2eTput, result.timing.e2eTput);
    return rep;
}

double
Experiment::cpuCostPerMTokens(const ExperimentResult &r,
                              const cost::CpuPricing &pricing,
                              unsigned vcpus, double mem_gb)
{
    const double hr = cost::cpuInstanceHr(pricing, vcpus, mem_gb);
    return cost::costPerMTokens(r.timing.e2eTput, hr);
}

double
Experiment::gpuCostPerMTokens(const ExperimentResult &r,
                              const cost::GpuPricing &pricing)
{
    return cost::costPerMTokens(r.timing.e2eTput, pricing.instanceHr);
}

} // namespace cllm::core
