file(REMOVE_RECURSE
  "CMakeFiles/cllm_fault.dir/injector.cc.o"
  "CMakeFiles/cllm_fault.dir/injector.cc.o.d"
  "CMakeFiles/cllm_fault.dir/schedule.cc.o"
  "CMakeFiles/cllm_fault.dir/schedule.cc.o.d"
  "libcllm_fault.a"
  "libcllm_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
