file(REMOVE_RECURSE
  "CMakeFiles/cllm_serve.dir/engine.cc.o"
  "CMakeFiles/cllm_serve.dir/engine.cc.o.d"
  "CMakeFiles/cllm_serve.dir/prefix_cache.cc.o"
  "CMakeFiles/cllm_serve.dir/prefix_cache.cc.o.d"
  "CMakeFiles/cllm_serve.dir/serving.cc.o"
  "CMakeFiles/cllm_serve.dir/serving.cc.o.d"
  "libcllm_serve.a"
  "libcllm_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
