/**
 * @file
 * Byte-level tokenizer for the functional runtime: every byte is a
 * token, plus BOS/EOS specials. This keeps the vocabulary tiny (258)
 * so laptop-scale models remain runnable while exercising the same
 * embed -> decode -> sample pipeline as a production tokenizer.
 */

#ifndef CLLM_LLM_TOKENIZER_HH
#define CLLM_LLM_TOKENIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cllm::llm {

/** Token id type. */
using TokenId = std::uint32_t;

/**
 * Byte-level tokenizer.
 */
class ByteTokenizer
{
  public:
    static constexpr TokenId kBos = 256;
    static constexpr TokenId kEos = 257;
    static constexpr std::size_t kVocabSize = 258;

    /** Encode text to tokens, optionally adding BOS. */
    std::vector<TokenId> encode(const std::string &text,
                                bool add_bos = true) const;

    /** Decode tokens back to text; specials are skipped. */
    std::string decode(const std::vector<TokenId> &tokens) const;

    /** Vocabulary size including specials. */
    std::size_t vocabSize() const { return kVocabSize; }
};

} // namespace cllm::llm

#endif // CLLM_LLM_TOKENIZER_HH
