/**
 * @file
 * TEE backend models. Each backend turns a workload/hardware request
 * into an ExecTax: the set of multiplicative and additive costs the
 * execution environment imposes on the roofline timing model. The
 * implemented backends mirror the paper's four CPU configurations
 * (bare metal, raw VM, Gramine-SGX, TDX) plus NVIDIA H100
 * confidential GPUs.
 *
 * Every overhead here is mechanistic: memory-encryption bandwidth
 * taxes, nested-page-walk translation costs, NUMA placement fidelity,
 * enclave transition costs, and launch/bounce-buffer costs for cGPUs.
 * The magnitudes are calibrated against the paper's measurements (see
 * DESIGN.md Section 5) but the *shapes* across batch size, input
 * length, data type, and socket count emerge from the mechanisms.
 */

#ifndef CLLM_TEE_BACKEND_HH
#define CLLM_TEE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>

#include "hw/cpu.hh"
#include "hw/gpu.hh"
#include "mem/epc.hh"
#include "mem/numa.hh"
#include "mem/tlb.hh"

namespace cllm::tee {

/** Workload/hardware context a backend needs to compute its taxes. */
struct TeeRequest
{
    unsigned sockets = 1;              //!< active sockets
    std::uint64_t workingSetBytes = 0; //!< per decode pass
    double randomFraction = 0.02;      //!< scattered share of traffic
    mem::PageSize requestedPage = mem::PageSize::Page1G;
    bool numaBindRequested = true;
    bool sncEnabled = false;           //!< sub-NUMA clustering on
    double syscallsPerToken = 4.0;     //!< IO/futex per generated token
};

/** Costs an execution environment imposes on the timing model. */
struct ExecTax
{
    /** Multiplier on achievable compute throughput (<= 1). */
    double computeFactor = 1.0;
    /** Multiplier on DRAM bandwidth due to link/memory encryption. */
    double encBwFactor = 1.0;
    /** Additive seconds per byte (EPC paging and similar). */
    double extraSecPerByte = 0.0;
    /** Fixed seconds per executed kernel/operator. */
    double perOpFixedSec = 0.0;
    /** Fixed seconds per generated token (syscalls, transitions). */
    double perTokenFixedSec = 0.0;

    /** Page size actually used by the environment. */
    mem::PageSize effectivePage = mem::PageSize::Page1G;
    /** Translation regime (native / nested / nested+TDX checks). */
    mem::TranslationMode xlate = mem::TranslationMode::Native;
    /** NUMA placement that actually happens. */
    mem::NumaPlacement placement = mem::NumaPlacement::Local;
    /** Whether the socket interconnect runs encrypted. */
    bool upiEncrypted = false;

    /** Per-token lognormal jitter scale. */
    double noiseSigma = 0.008;
    /** Probability of an encryption-stall outlier token. */
    double outlierProb = 0.0;
    /** Latency multiplier for outlier tokens. */
    double outlierScale = 1.0;
};

/** Security properties for the paper's Table I comparison. */
struct SecurityProfile
{
    bool memoryEncrypted = false;      //!< DRAM/HBM ciphertext
    bool memoryIntegrity = false;      //!< replay/integrity protected
    bool interconnectProtected = false;//!< UPI / NVLINK / PCIe links
    bool protectsFromHost = false;     //!< hypervisor/admin excluded
    std::string trustBoundary;         //!< "app" / "app+libOS" / "VM"
};

/**
 * Abstract execution environment.
 */
class TeeBackend
{
  public:
    virtual ~TeeBackend() = default;

    /** Short display name ("TDX", "SGX", "VM", "bare", "cGPU"). */
    virtual std::string name() const = 0;

    /** Security properties (Table I). */
    virtual SecurityProfile security() const = 0;

    /** Compute the taxes for a workload on a CPU. */
    virtual ExecTax tax(const hw::CpuSpec &cpu,
                        const TeeRequest &req) const = 0;
};

/** Tunable knobs of the VM virtualization layer. */
struct VmConfig
{
    /** True: 1 GiB preallocated hugepages; false: 2 MiB THP. */
    bool hugepages1G = true;
    /** Whether QEMU NUMA bindings are applied. */
    bool numaBound = true;
    double virtComputeTax = 0.012;  //!< steal/vmexit compute share
    double perOpFixedUs = 0.6;      //!< timer/IPI virtualization
    double syscallExtraUs = 0.0;    //!< no transition cost in a VM
};

/** Tunable knobs of the TDX model, layered on the VM model. */
struct TdxConfig
{
    VmConfig vm{};
    double tmeBwTax = 0.028;        //!< TME-MK AES on the DRAM path
    double perOpFixedUs = 2.6;      //!< TDX-module transitions, timers
    double outlierProb = 0.0064;    //!< paper: ~0.64% Z>3 outliers
    double outlierScale = 3.5;
    double noiseSigma = 0.020;
};

/** Tunable knobs of the Gramine-SGX model. */
struct SgxConfig
{
    std::uint64_t epcBytes = 512ULL << 30;
    double meeBwTax = 0.042;        //!< MEE crypto+tree on DRAM path
    double enclaveTransitionUs = 3.8; //!< EENTER/EEXIT + cache flush
    double inEnclaveSyscallFrac = 0.85; //!< Gramine emulates in place
    double perOpFixedUs = 0.8;      //!< libOS bookkeeping
    double outlierProb = 0.0064;
    double outlierScale = 3.0;
    double noiseSigma = 0.016;
};

/** Bare-metal baseline (no tax). */
std::unique_ptr<TeeBackend> makeBareMetal();

/** Raw VM without TEE protections. */
std::unique_ptr<TeeBackend> makeVm(const VmConfig &cfg = {});

/** TDX-enabled VM. */
std::unique_ptr<TeeBackend> makeTdx(const TdxConfig &cfg = {});

/** Gramine-SGX process enclave. */
std::unique_ptr<TeeBackend> makeSgx(const SgxConfig &cfg = {});

/**
 * GPU-side taxes for confidential H100s; consumed by the GPU timing
 * model rather than the CPU roofline.
 */
struct GpuTax
{
    double launchExtraSec = 0.0;   //!< added per kernel launch
    double hostLinkBwBytes = 0.0;  //!< encrypted bounce-buffer rate
    double hbmBwFactor = 1.0;      //!< 1.0: H100 HBM not encrypted
    double noiseSigma = 0.006;
};

/** Taxes for running confidentially on a given GPU. */
GpuTax cgpuTax(const hw::GpuSpec &gpu);

/** Security profile of an H100-class confidential GPU (Table I). */
SecurityProfile cgpuSecurity();

} // namespace cllm::tee

#endif // CLLM_TEE_BACKEND_HH
