/**
 * @file
 * Differential and property harness for the paged KV cache and the
 * continuous-batching scheduler built on it. Three layers:
 *
 *  1. PagedKvCache unit properties — fragmentation accounting, COW
 *     fork semantics, lifetime stats, block conservation.
 *  2. Differential tests — the paged engine replayed against the
 *     reserved engine on the same seeded trace: with an ample pool
 *     the per-request timelines must match token for token; with a
 *     tight pool both must complete the same request set while paged
 *     runs a strictly denser batch.
 *  3. Scheduler invariants — preemption never re-emits a token
 *     (occupancySum == outputTokens), swap accounting balances
 *     (swap-ins == swap-outs), never-fitting requests shed
 *     identically in both modes, and a seeded small-pool timeline is
 *     pinned against a golden file.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "mem/kv_paged.hh"
#include "serve/engine.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

std::unique_ptr<StepModel>
cpuModel(std::unique_ptr<tee::TeeBackend> be)
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return makeCpuStepModel(cpu, shared(std::move(be)),
                            llm::llama2_7b(), p);
}

/** Short prompts, long answers: the regime where reserved admission
 *  pins far more blocks than the running batch actually holds. */
WorkloadConfig
generationHeavyLoad()
{
    WorkloadConfig w;
    w.arrivalRate = 0.6;
    w.numRequests = 120;
    w.meanInLen = 128;
    w.meanOutLen = 384;
    w.seed = 33;
    return w;
}

ServerConfig
pagedConfig(std::uint64_t blocks,
            KvPreemptPolicy preempt = KvPreemptPolicy::Recompute)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = blocks;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = KvMode::Paged;
    cfg.paged.preempt = preempt;
    cfg.paged.kvBytesPerToken =
        llm::llama2_7b().kvBytesPerToken(hw::Dtype::Bf16);
    return cfg;
}

ServerConfig
reservedConfig(std::uint64_t blocks)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = blocks;
    cfg.kvBlockTokens = 16;
    return cfg;
}

/** A same-instant burst that outgrows the pool: 8 sequences of 64+192
 *  tokens want 128 blocks at full length against a 96-block pool, so
 *  the paged engine must preempt to drain it. */
std::vector<Request>
burstTrace()
{
    std::vector<Request> trace;
    for (unsigned i = 0; i < 8; ++i) {
        Request r;
        r.id = i;
        r.arrival = 0.0;
        r.inLen = 64;
        r.outLen = 192;
        trace.push_back(r);
    }
    return trace;
}

/** Drive a ContinuousEngine over `trace` to quiescence. */
void
drain(ContinuousEngine &eng, std::vector<Request> &trace)
{
    for (auto &r : trace)
        eng.submit(&r, r.arrival);
    while (!eng.idle())
        eng.iterate();
}

std::string
metricsJson(const ServeMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    writeMetrics(json, m);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// 1. PagedKvCache unit properties
// ---------------------------------------------------------------------

TEST(PagedKv, FragmentationCountsPartialTails)
{
    mem::PagedKvCache kv({8, 4});
    ASSERT_TRUE(kv.addSequence(1, 6)); // 2 blocks, 8 slots, 6 tokens
    EXPECT_NEAR(kv.fragmentation(), 0.25, 1e-12);
    ASSERT_TRUE(kv.appendToken(1));    // 7/8 slots
    EXPECT_NEAR(kv.fragmentation(), 0.125, 1e-12);
    ASSERT_TRUE(kv.appendToken(1));    // block-aligned: no waste
    EXPECT_NEAR(kv.fragmentation(), 0.0, 1e-12);
    EXPECT_TRUE(kv.consistent());
}

TEST(PagedKv, ForkSharesFullBlocksAndCopiesTheTail)
{
    mem::PagedKvCache kv({16, 4});
    ASSERT_TRUE(kv.addSequence(1, 6)); // one full + one partial block
    const std::uint64_t before = kv.usedBlocks();
    ASSERT_TRUE(kv.fork(1, 2));
    // The full block is shared; only the partial tail is copied.
    EXPECT_EQ(kv.usedBlocks(), before + 1);
    EXPECT_EQ(kv.stats().cowCopies, 1u);
    EXPECT_EQ(kv.tokens(2), 6u);
    EXPECT_EQ(kv.blocksOf(1), 2u);
    EXPECT_EQ(kv.blocksOf(2), 2u);
    EXPECT_TRUE(kv.consistent());

    // The beams diverge independently after the fork.
    ASSERT_TRUE(kv.appendToken(1));
    ASSERT_TRUE(kv.appendToken(2));
    EXPECT_EQ(kv.tokens(1), 7u);
    EXPECT_EQ(kv.tokens(2), 7u);
    EXPECT_TRUE(kv.consistent());

    // Releasing the parent must not strand the shared block.
    kv.release(1);
    EXPECT_TRUE(kv.consistent());
    kv.release(2);
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.freeBlocks(), 16u);
}

TEST(PagedKv, StatsStayMonotonicAndPoolDrainsClean)
{
    mem::PagedKvCache kv({8, 4});
    ASSERT_TRUE(kv.addSequence(1, 8));
    ASSERT_TRUE(kv.addSequence(2, 8));
    EXPECT_EQ(kv.stats().peakUsedBlocks, 4u);
    kv.release(1);
    ASSERT_TRUE(kv.addSequence(3, 12));
    EXPECT_EQ(kv.stats().peakUsedBlocks, 5u);
    kv.release(2);
    kv.release(3);
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.sequences(), 0u);
    EXPECT_EQ(kv.stats().blockAllocs, kv.stats().blockFrees);
    EXPECT_TRUE(kv.consistent());
}

TEST(PagedKv, ExhaustionLeavesEveryTableIntact)
{
    mem::PagedKvCache kv({4, 4});
    ASSERT_TRUE(kv.addSequence(1, 12)); // 3 of 4 blocks
    EXPECT_FALSE(kv.addSequence(2, 8)); // needs 2, only 1 free
    EXPECT_EQ(kv.sequences(), 1u);
    EXPECT_EQ(kv.freeBlocks(), 1u);
    EXPECT_EQ(kv.tokens(1), 12u);
    EXPECT_TRUE(kv.consistent());
    // The failed admission allocated nothing, so the last block is
    // still there for the survivor to grow into.
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(kv.appendToken(1));
    EXPECT_FALSE(kv.appendToken(1)); // 17th token needs a 5th block
    EXPECT_EQ(kv.tokens(1), 16u);
    EXPECT_TRUE(kv.consistent());
}

// ---------------------------------------------------------------------
// 2. Differential: paged vs reserved on the same trace
// ---------------------------------------------------------------------

// With a pool large enough that neither discipline ever waits on
// blocks, admission decisions collapse to the same sequence and the
// two engines must produce token-for-token identical timelines.
TEST(KvDifferential, AmplePoolTimelinesMatchExactly)
{
    const auto trace = generateWorkload(generationHeavyLoad());

    std::vector<Request> reserved_out;
    const ServeMetrics rm =
        Server(cpuModel(tee::makeTdx()), reservedConfig(65536))
            .run(trace, reserved_out);

    std::vector<Request> paged_out;
    const ServeMetrics pm =
        Server(cpuModel(tee::makeTdx()), pagedConfig(65536))
            .run(trace, paged_out);

    EXPECT_EQ(rm.completed, pm.completed);
    EXPECT_EQ(rm.outputTokens, pm.outputTokens);
    EXPECT_EQ(rm.makespan, pm.makespan);
    EXPECT_EQ(pm.kvPreemptions, 0u);
    ASSERT_EQ(reserved_out.size(), paged_out.size());
    for (std::size_t i = 0; i < reserved_out.size(); ++i) {
        EXPECT_EQ(reserved_out[i].firstToken, paged_out[i].firstToken)
            << "request " << reserved_out[i].id;
        EXPECT_EQ(reserved_out[i].finish, paged_out[i].finish)
            << "request " << reserved_out[i].id;
    }
}

// At a pool size where reserved admission is the bottleneck, both
// disciplines must still complete the identical request set, but
// paged packs a strictly larger batch and drains the trace sooner.
TEST(KvDifferential, TightPoolPagedRunsDenserAndFinishesSooner)
{
    const auto trace = generateWorkload(generationHeavyLoad());

    ServerConfig rcfg = reservedConfig(1024);
    std::vector<Request> reserved_out;
    const ServeMetrics rm = Server(cpuModel(tee::makeTdx()), rcfg)
                                .run(trace, reserved_out);

    ServerConfig pcfg = pagedConfig(1024);
    pcfg.paged.minFreeBlocks = 8;
    std::vector<Request> paged_out;
    const ServeMetrics pm = Server(cpuModel(tee::makeTdx()), pcfg)
                                .run(trace, paged_out);

    // Identical completion sets: every request either finishes in
    // both runs or in neither.
    ASSERT_EQ(reserved_out.size(), paged_out.size());
    for (std::size_t i = 0; i < reserved_out.size(); ++i)
        EXPECT_EQ(reserved_out[i].finish >= 0.0,
                  paged_out[i].finish >= 0.0)
            << "request " << reserved_out[i].id;
    EXPECT_EQ(rm.completed, pm.completed);
    EXPECT_EQ(rm.outputTokens, pm.outputTokens);
    EXPECT_EQ(rm.shed, pm.shed);

    // The paged discipline's whole point: strictly denser batches
    // from the same pool, hence a shorter makespan.
    EXPECT_GT(pm.peakBatchOccupancy, rm.peakBatchOccupancy);
    EXPECT_LT(pm.makespan, rm.makespan);
    EXPECT_LE(pm.kvUtilizationPeak, 1.0);
}

// A request that could never fit even into an empty pool (inLen +
// outLen + watermark exceeds capacity) is shed at admission by both
// disciplines, not deadlocked on.
TEST(KvDifferential, NeverFittingRequestsShedIdentically)
{
    std::vector<Request> trace(3);
    trace[0] = {0, 0.0, 100, 50};
    trace[1] = {1, 0.1, 400, 200}; // 600 tokens vs 512-token pool
    trace[2] = {2, 0.2, 64, 32};

    for (const bool paged : {false, true}) {
        ServerConfig cfg =
            paged ? pagedConfig(32) : reservedConfig(32);
        std::vector<Request> out;
        const ServeMetrics m =
            Server(cpuModel(tee::makeTdx()), cfg).run(trace, out);
        EXPECT_EQ(m.completed, 2u) << "paged=" << paged;
        EXPECT_EQ(m.shed, 1u) << "paged=" << paged;
        EXPECT_LT(out[1].finish, 0.0) << "paged=" << paged;
        EXPECT_GE(out[0].finish, 0.0) << "paged=" << paged;
        EXPECT_GE(out[2].finish, 0.0) << "paged=" << paged;
        EXPECT_EQ(m.completed + m.shed, m.submitted)
            << "paged=" << paged;
    }
}

// The admission watermark counts against the never-fits bound: a
// request whose full length plus headroom exceeds the pool is shed
// even though the raw pool could hold it.
TEST(KvDifferential, WatermarkTightensTheAdmissibleSet)
{
    std::vector<Request> trace(2);
    trace[0] = {0, 0.0, 20, 10}; // 2 blocks + 4 headroom: fits
    trace[1] = {1, 0.1, 40, 30}; // 5 blocks + 4 headroom: never fits

    ServerConfig cfg = pagedConfig(8);
    cfg.paged.minFreeBlocks = 4;
    std::vector<Request> out;
    const ServeMetrics m =
        Server(cpuModel(tee::makeTdx()), cfg).run(trace, out);
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.shed, 1u);
    EXPECT_GE(out[0].finish, 0.0);
    EXPECT_LT(out[1].finish, 0.0);
}

// ---------------------------------------------------------------------
// 3. Scheduler invariants under forced preemption
// ---------------------------------------------------------------------

// Preemption requeues a sequence with its produced-token count
// intact; the decode loop therefore never re-emits a token, which
// shows up as occupancySum (batch-slot steps) exactly equaling the
// output token total.
TEST(KvPreemption, RecomputeNeverRepeatsAToken)
{
    auto step = cpuModel(tee::makeTdx());
    ServerConfig cfg = pagedConfig(96);
    cfg.maxBatch = 8;

    auto trace = burstTrace();
    ContinuousEngine eng(*step, cfg);
    drain(eng, trace);

    EXPECT_GT(eng.tally().kvPreemptions, 0u);
    EXPECT_EQ(eng.tally().kvSwapOuts, 0u);
    EXPECT_EQ(eng.tally().kvSwapIns, 0u);
    std::uint64_t out_tokens = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.finish, 0.0) << "request " << r.id;
        out_tokens += r.outLen;
    }
    EXPECT_EQ(out_tokens, 8u * 192u);
    EXPECT_DOUBLE_EQ(eng.occupancySum(),
                     static_cast<double>(out_tokens));
    // The drained pool holds nothing: block conservation end-to-end.
    EXPECT_EQ(eng.kvUsedBlocks(), 0u);
    EXPECT_EQ(eng.kvFreeBlocks(), 96u);
}

TEST(KvPreemption, SwapAccountingBalances)
{
    auto step = cpuModel(tee::makeTdx());
    ServerConfig cfg = pagedConfig(96, KvPreemptPolicy::SwapToEpc);
    cfg.maxBatch = 8;

    auto trace = burstTrace();
    ContinuousEngine eng(*step, cfg);
    drain(eng, trace);

    const ServeTally &t = eng.tally();
    EXPECT_GT(t.kvPreemptions, 0u);
    // Every preemption under SwapToEpc swaps out, and every swapped
    // sequence is eventually readmitted (and completes), so the
    // traffic balances and its time cost is strictly positive.
    EXPECT_EQ(t.kvSwapOuts, t.kvPreemptions);
    EXPECT_EQ(t.kvSwapIns, t.kvSwapOuts);
    EXPECT_GT(t.kvSwapSeconds, 0.0);
    std::uint64_t out_tokens = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.finish, 0.0) << "request " << r.id;
        out_tokens += r.outLen;
    }
    EXPECT_DOUBLE_EQ(eng.occupancySum(),
                     static_cast<double>(out_tokens));
}

// Recompute and swap are different resume *costs*, not different
// schedules: both preempt the same victims and emit the same tokens.
TEST(KvPreemption, PoliciesAgreeOnTokensAndVictims)
{
    auto recompute = burstTrace();
    auto swap = burstTrace();

    auto step1 = cpuModel(tee::makeTdx());
    ServerConfig c1 = pagedConfig(96);
    c1.maxBatch = 8;
    ContinuousEngine e1(*step1, c1);
    drain(e1, recompute);

    auto step2 = cpuModel(tee::makeTdx());
    ServerConfig c2 = pagedConfig(96, KvPreemptPolicy::SwapToEpc);
    c2.maxBatch = 8;
    ContinuousEngine e2(*step2, c2);
    drain(e2, swap);

    EXPECT_EQ(e1.tally().kvPreemptions, e2.tally().kvPreemptions);
    EXPECT_DOUBLE_EQ(e1.occupancySum(), e2.occupancySum());
    EXPECT_EQ(e1.peakBatch(), e2.peakBatch());
}

TEST(KvPreemption, GaugesTrackThePool)
{
    auto step = cpuModel(tee::makeTdx());
    ServerConfig cfg = pagedConfig(96);
    cfg.maxBatch = 8;

    auto trace = burstTrace();
    ContinuousEngine eng(*step, cfg);
    for (auto &r : trace)
        eng.submit(&r, r.arrival);
    while (!eng.idle()) {
        eng.iterate();
        EXPECT_EQ(eng.kvUsedBlocks() + eng.kvFreeBlocks(),
                  eng.kvTotalBlocks());
        EXPECT_GE(eng.kvUtilization(), 0.0);
        EXPECT_LE(eng.kvUtilization(), 1.0);
    }
    EXPECT_GT(eng.kvUtilizationMean(), 0.0);
    EXPECT_LE(eng.kvUtilizationMean(), 1.0);
    EXPECT_GE(eng.kvPeak(), eng.kvUtilizationMean());
}

// ---------------------------------------------------------------------
// Determinism, validation, and the pinned golden timeline
// ---------------------------------------------------------------------

TEST(KvDeterminism, RepeatRunsAreByteIdentical)
{
    const auto trace = generateWorkload(generationHeavyLoad());
    ServerConfig cfg = pagedConfig(1024);
    cfg.paged.minFreeBlocks = 8;

    const ServeMetrics a =
        Server(cpuModel(tee::makeTdx()), cfg).run(trace);
    const ServeMetrics b =
        Server(cpuModel(tee::makeTdx()), cfg).run(trace);
    EXPECT_EQ(metricsJson(a), metricsJson(b));
}

TEST(KvValidation, PagedConfigIsValidatedUpFront)
{
    {
        ServerConfig cfg = pagedConfig(64);
        cfg.policy = BatchPolicy::Static;
        EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), cfg),
                     "continuous");
    }
    {
        ServerConfig cfg = pagedConfig(0);
        EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), cfg),
                     "bounded");
    }
    {
        ServerConfig cfg = pagedConfig(64);
        cfg.paged.minFreeBlocks = 64;
        EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), cfg),
                     "watermark");
    }
    {
        ServerConfig cfg = pagedConfig(64, KvPreemptPolicy::SwapToEpc);
        cfg.paged.kvBytesPerToken = 0.0;
        EXPECT_DEATH(Server(cpuModel(tee::makeTdx()), cfg), "bytes");
    }
}

// Pins the preemption-heavy burst timeline. Regenerate (only after
// an intentional scheduler change) with CLLM_REGEN_GOLDEN=1.
TEST(KvGolden, SmallPagedTimelinePinned)
{
    auto step = cpuModel(tee::makeTdx());
    ServerConfig cfg = pagedConfig(96, KvPreemptPolicy::SwapToEpc);
    cfg.maxBatch = 8;

    auto trace = burstTrace();
    ContinuousEngine eng(*step, cfg);
    drain(eng, trace);

    std::vector<const Request *> reqs;
    for (const auto &r : trace)
        reqs.push_back(&r);
    const ServeMetrics m = finalizeRequests(
        reqs, eng.clock(), eng.occupancySum(), eng.steps(),
        eng.tally(), cfg.ttftSlo, cfg.tpotSlo);

    std::map<std::string, double> got;
    got["completed"] = static_cast<double>(m.completed);
    got["makespan_s"] = m.makespan;
    got["output_tokens"] = static_cast<double>(m.outputTokens);
    got["steps"] = static_cast<double>(eng.steps());
    got["peak_batch"] = static_cast<double>(eng.peakBatch());
    got["kv_util_peak"] = eng.kvPeak();
    got["kv_util_mean"] = eng.kvUtilizationMean();
    got["kv_preemptions"] =
        static_cast<double>(eng.tally().kvPreemptions);
    got["kv_swap_outs"] = static_cast<double>(eng.tally().kvSwapOuts);
    got["kv_swap_ins"] = static_cast<double>(eng.tally().kvSwapIns);
    got["kv_swap_s"] = eng.tally().kvSwapSeconds;
    got["ttft_p95_s"] = m.ttft.p95;
    got["tpot_p95_s"] = m.tpot.p95;
    cllm::testing::checkAgainstGolden("kv_paged_small.json", got);
}
