/**
 * @file
 * AES-128 counter-mode stream cipher. Encryption and decryption are the
 * same keystream XOR; the counter block is built from a 64-bit nonce
 * (e.g. a physical cache-line address in the MEE model, or a file
 * offset in the FS shield) and a 64-bit block counter.
 *
 * Large transforms fan out over the cllm::par pool, one chunk per run
 * of counter blocks; the output is bit-identical to the serial scan
 * because every 16-byte block's keystream depends only on
 * (key, nonce, counter + block index).
 */

#ifndef CLLM_CRYPTO_CTR_HH
#define CLLM_CRYPTO_CTR_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "crypto/aes.hh"

namespace cllm::crypto {

/**
 * AES-CTR transformer bound to one key.
 */
class AesCtr
{
  public:
    /** Bind to a key; the schedule is computed once. */
    explicit AesCtr(const AesKey &key);

    /**
     * XOR `len` bytes with the keystream for (nonce, start_block).
     * Encrypt and decrypt are identical. Data is processed in place.
     *
     * @param nonce caller-chosen 64-bit tweak; must be unique per key
     *              per logical location (address / file offset)
     * @param counter starting 64-bit block counter (a "version" in the
     *                MEE model; bump it on every write)
     */
    void transform(std::uint64_t nonce, std::uint64_t counter,
                   std::uint8_t *data, std::size_t len) const;

    /** Convenience overload for vectors. */
    void transform(std::uint64_t nonce, std::uint64_t counter,
                   std::vector<std::uint8_t> &data) const;

  private:
    Aes128 aes_;
};

} // namespace cllm::crypto

#endif // CLLM_CRYPTO_CTR_HH
