# Empty dependencies file for test_config_json.
# This may be replaced when dependencies are built.
