/**
 * @file
 * Paged KV cache, in the style of vLLM's PagedAttention allocator:
 * KV memory is carved into fixed-size blocks of tokens; sequences own
 * block tables that grow one block at a time and can fork (beam
 * search / prefix sharing) with copy-on-write reference counts.
 *
 * Inside a TEE the whole pool is the encrypted enclave/TD memory the
 * operator sized (Gramine's enclave_size, the TD's memory), so the
 * block count is the hard capacity that SGX EPC paging and the TDX
 * encryption tax are charged against. The serving scheduler admits by
 * free-block headroom instead of whole-request reservation, which is
 * exactly the memory-pressure interplay the paper measures: bigger
 * effective batches until the working set spills, then paging.
 *
 * Everything here is sequential state driven by the single-threaded
 * simulation loops; determinism across `CLLM_THREADS` follows from
 * never consulting anything but the call sequence.
 */

#ifndef CLLM_MEM_KV_PAGED_HH
#define CLLM_MEM_KV_PAGED_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cllm::mem {

/** Sequence handle (the serving layer uses request ids). */
using KvSeqId = std::uint32_t;

/** Pool geometry. */
struct PagedKvConfig
{
    std::uint64_t totalBlocks = 1024;
    unsigned blockTokens = 16; //!< tokens per block
};

/** Lifetime accounting (monotonic; never reset by release). */
struct PagedKvStats
{
    std::uint64_t blockAllocs = 0;   //!< blocks handed out
    std::uint64_t blockFrees = 0;    //!< blocks returned to the list
    std::uint64_t cowCopies = 0;     //!< shared blocks copied on write
    std::uint64_t peakUsedBlocks = 0;
};

/**
 * Reference-counted paged KV block allocator with per-sequence block
 * tables. All mutators are all-or-nothing: a call that returns false
 * (pool exhausted) has allocated nothing and left every table intact,
 * so callers can preempt or queue and retry.
 */
class PagedKvCache
{
  public:
    explicit PagedKvCache(PagedKvConfig cfg = {});

    /**
     * Register a new sequence holding `tokens` of prefilled KV.
     * Returns false (allocating nothing) when the pool cannot hold it.
     */
    bool addSequence(KvSeqId id, unsigned tokens);

    /**
     * Append one token to a sequence; may allocate one block, and
     * copies the trailing block first when it is shared (COW).
     * Returns false on pool exhaustion, leaving the sequence intact.
     */
    bool appendToken(KvSeqId id);

    /**
     * Fork `child` from `parent` (beam search / prefix sharing): the
     * child shares every full block copy-on-write; the trailing
     * partial block is copied eagerly, costing one block, so the two
     * beams can diverge immediately.
     */
    bool fork(KvSeqId parent, KvSeqId child);

    /**
     * Register a new sequence of `tokens` tokens whose leading
     * `shared_tokens` (a multiple of blockTokens) are already resident
     * in `shared` — the prefix-cache admission path. The shared blocks
     * gain a reference each and only the remainder is allocated;
     * all-or-nothing like addSequence. Fatal on a malformed prefix
     * (wrong granularity, wrong block count, or a free block).
     */
    bool addSequenceWithPrefix(KvSeqId id, unsigned tokens,
                               const std::vector<std::uint32_t> &shared,
                               unsigned shared_tokens);

    /**
     * Add one external (prefix-cache) pin to each block: the block
     * gains a reference that outlives any sequence table, so releasing
     * every sequence leaves it allocated. Fatal on a free block — a
     * pin can only retain live KV, never resurrect freed KV.
     */
    void pin(const std::vector<std::uint32_t> &blocks);

    /**
     * Drop one external pin from each block, returning how many
     * blocks that sent back to the free list (blocks still referenced
     * by live tables stay allocated). Fatal on an unpinned block.
     */
    std::uint64_t unpin(const std::vector<std::uint32_t> &blocks);

    /**
     * Trim a sequence's tail back to `tokens` (<= its current count)
     * — the speculative-decoding rollback path, dropping the KV of
     * rejected draft tokens. Blocks that fall wholly past the new
     * length lose this table's reference; a trimmed block that is
     * shared or externally pinned stays alive for its other holders,
     * so refcounts, pins, and `consistent()` are preserved. Fatal on
     * an unknown sequence or a target beyond the current length.
     */
    void trimTokens(KvSeqId id, unsigned tokens);

    /** Release a sequence's table (decrement shared refcounts). */
    void release(KvSeqId id);

    /** Tokens currently stored for a sequence (0 when unknown). */
    unsigned tokens(KvSeqId id) const;

    /** Blocks currently referenced by a sequence's table. */
    std::size_t blocksOf(KvSeqId id) const;

    /** A sequence's block table, in token order (fatal if unknown). */
    const std::vector<std::uint32_t> &blockTable(KvSeqId id) const;

    /** Total references on a block (tables + external pins). */
    std::uint32_t refCount(std::uint32_t block) const;

    /** External (prefix-cache) pins on a block. */
    std::uint32_t pinCount(std::uint32_t block) const;

    /**
     * True when a block is alive but referenced only by external
     * pins — the prefix cache's eviction predicate: unpinning such a
     * block actually frees it.
     */
    bool cacheOnly(std::uint32_t block) const;

    /** Number of distinct blocks holding at least one external pin. */
    std::uint64_t pinnedBlocks() const { return pinned_; }

    /** Blocks needed to hold `tokens` tokens. */
    std::uint64_t
    blocksFor(unsigned tokens) const
    {
        return (static_cast<std::uint64_t>(tokens) + cfg_.blockTokens -
                1) /
               cfg_.blockTokens;
    }

    std::uint64_t freeBlocks() const { return freeList_.size(); }
    std::uint64_t usedBlocks() const
    {
        return cfg_.totalBlocks - freeList_.size();
    }
    std::uint64_t totalBlocks() const { return cfg_.totalBlocks; }
    std::size_t sequences() const { return seqs_.size(); }

    /** Fraction of the pool in use. */
    double utilization() const;

    /**
     * Internal fragmentation: the fraction of allocated token slots
     * not holding a token (trailing partial blocks; shared blocks
     * count once). 0 when nothing is allocated.
     */
    double fragmentation() const;

    /** Whether a sequence of `tokens` tokens could be admitted now. */
    bool canAdmit(unsigned tokens) const;

    /**
     * Block conservation: every block is either on the free list or
     * carries exactly refcount references, where the refcount must
     * equal live-table references plus external prefix pins — so
     * prefix pins, per-sequence tables, and the free list sum to the
     * pool size across arbitrary fork/release/pin chains. The
     * property tests call this after every mutation; a violation is a
     * scheduler bug.
     */
    bool consistent() const;

    const PagedKvStats &stats() const { return stats_; }
    const PagedKvConfig &config() const { return cfg_; }

  private:
    struct Seq
    {
        std::vector<std::uint32_t> blocks;
        unsigned tokens = 0;
    };

    std::uint32_t allocBlock(); //!< returns index or kNoBlock
    void unref(std::uint32_t block);

    static constexpr std::uint32_t kNoBlock = 0xffffffffu;

    PagedKvConfig cfg_;
    std::vector<std::uint32_t> refCounts_;
    std::vector<std::uint32_t> extPins_; //!< prefix-cache pins per block
    std::vector<std::uint32_t> freeList_;
    std::uint64_t pinned_ = 0; //!< blocks with at least one pin
    std::unordered_map<KvSeqId, Seq> seqs_;
    PagedKvStats stats_{};
};

} // namespace cllm::mem

#endif // CLLM_MEM_KV_PAGED_HH
