# Empty compiler generated dependencies file for test_perf_gpu.
# This may be replaced when dependencies are built.
