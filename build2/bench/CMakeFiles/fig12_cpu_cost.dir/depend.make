# Empty dependencies file for fig12_cpu_cost.
# This may be replaced when dependencies are built.
