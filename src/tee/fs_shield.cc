#include "tee/fs_shield.hh"

#include "crypto/sha256.hh"

namespace cllm::tee {

FsShield::FsShield(const crypto::Digest256 &sealing_key)
    : cipher_(crypto::toAesKey(crypto::deriveKey(sealing_key, "fs-data")))
{
    const crypto::Digest256 mk = crypto::deriveKey(sealing_key, "fs-mac");
    macKey_.assign(mk.begin(), mk.end());
}

std::uint64_t
FsShield::nonceOf(const std::string &path, std::uint64_t version) const
{
    // Derive a per-(path, version) nonce so rewrites never reuse a
    // keystream.
    crypto::Sha256 h;
    h.update(path);
    h.update(&version, sizeof(version));
    const crypto::Digest256 d = h.finish();
    std::uint64_t nonce = 0;
    for (int i = 0; i < 8; ++i)
        nonce = (nonce << 8) | d[i];
    return nonce;
}

crypto::Digest256
FsShield::macOf(const std::string &path, const File &f) const
{
    std::vector<std::uint8_t> buf;
    buf.reserve(path.size() + 8 + f.cipher.size());
    buf.insert(buf.end(), path.begin(), path.end());
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(f.version >> (56 - 8 * i)));
    buf.insert(buf.end(), f.cipher.begin(), f.cipher.end());
    return crypto::hmacSha256(macKey_, buf.data(), buf.size());
}

void
FsShield::put(const std::string &path,
              const std::vector<std::uint8_t> &plaintext)
{
    File f;
    auto it = files_.find(path);
    f.version = (it == files_.end()) ? 1 : it->second.version + 1;
    f.cipher = plaintext;
    cipher_.transform(nonceOf(path, f.version), 0, f.cipher);
    f.mac = macOf(path, f);
    files_[path] = std::move(f);
}

std::optional<std::vector<std::uint8_t>>
FsShield::get(const std::string &path) const
{
    auto it = files_.find(path);
    if (it == files_.end())
        return std::nullopt;
    const File &f = it->second;
    if (!crypto::digestEqual(f.mac, macOf(path, f)))
        return std::nullopt;
    std::vector<std::uint8_t> plain = f.cipher;
    cipher_.transform(nonceOf(path, f.version), 0, plain);
    return plain;
}

bool
FsShield::contains(const std::string &path) const
{
    return files_.count(path) != 0;
}

bool
FsShield::remove(const std::string &path)
{
    return files_.erase(path) != 0;
}

std::size_t
FsShield::storedBytes(const std::string &path) const
{
    auto it = files_.find(path);
    return it == files_.end() ? 0 : it->second.cipher.size();
}

bool
FsShield::tamper(const std::string &path, std::size_t offset)
{
    auto it = files_.find(path);
    if (it == files_.end() || it->second.cipher.empty())
        return false;
    it->second.cipher[offset % it->second.cipher.size()] ^= 0x01;
    return true;
}

} // namespace cllm::tee
