# Empty compiler generated dependencies file for extra_models.
# This may be replaced when dependencies are built.
