#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace cllm {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
splitSeed(std::uint64_t root, std::uint64_t stream)
{
    // Two SplitMix64 steps over a state mixing root and stream:
    // one step alone leaves the (root, stream) lattice too regular.
    std::uint64_t state =
        root ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    splitmix64(state);
    return splitmix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        cllm_panic("uniformInt: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    return lo + next() % span;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::lognormal(double median, double sigma)
{
    if (median <= 0.0)
        cllm_panic("lognormal: median must be positive");
    return median * std::exp(sigma * gaussian());
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n == 0)
        cllm_panic("zipf: empty support");
    if (n == 1)
        return 0;
    // Rejection-inversion sampling (Hormann & Derflinger 1996), as in
    // Apache Commons' RejectionInversionZipfSampler.
    const double e = 1.0 - s;
    auto h = [&](double x) {
        return e == 0.0 ? std::log(x) : (std::pow(x, e) - 1.0) / e;
    };
    auto hinv = [&](double x) {
        return e == 0.0 ? std::exp(x) : std::pow(1.0 + e * x, 1.0 / e);
    };
    const double h_half = h(1.5) - 1.0;
    const double hn = h(static_cast<double>(n) + 0.5);
    while (true) {
        const double u = h_half + uniform() * (hn - h_half);
        const double x = hinv(u);
        std::uint64_t k =
            static_cast<std::uint64_t>(std::max(1.0, std::round(x)));
        if (k > n)
            k = n;
        if (u >= h(static_cast<double>(k) + 0.5) -
                     std::pow(static_cast<double>(k), -s)) {
            return k - 1;
        }
    }
}

} // namespace cllm
