/**
 * @file
 * Tests for mixture-of-experts support: parameter accounting, routed
 * weight traffic, and TEE overhead behaviour for Mixtral-8x7B-class
 * models (the MoE direction the paper's intro flags in newer Llama
 * generations).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "llm/model_config.hh"
#include "llm/ops.hh"

using namespace cllm;
using namespace cllm::llm;

TEST(Moe, MixtralTotalParamsMatchPublished)
{
    // Published: 46.7B total parameters.
    EXPECT_NEAR(mixtral_8x7b().numParams() / 1e9, 46.7, 0.5);
}

TEST(Moe, MixtralActiveParamsMatchPublished)
{
    // Published: ~12.9B active per token (we count ~12.7B without
    // input embeddings, which decode does not stream).
    EXPECT_NEAR(mixtral_8x7b().matmulParams() / 1e9, 12.8, 0.5);
}

TEST(Moe, DenseModelsUnaffected)
{
    const ModelConfig dense = llama2_7b();
    EXPECT_FALSE(dense.isMoe());
    EXPECT_EQ(dense.expertsTouched(64.0), 1.0);
    EXPECT_EQ(dense.mlpParamsPerLayer(), dense.expertParams());
}

TEST(Moe, ExpertsTouchedCouponCollector)
{
    const ModelConfig m = mixtral_8x7b();
    // One sequence: exactly k experts in expectation.
    EXPECT_NEAR(m.expertsTouched(1.0), 2.0, 0.01);
    // Many sequences: all experts.
    EXPECT_NEAR(m.expertsTouched(1000.0), 8.0, 0.01);
    // Monotone in between.
    EXPECT_LT(m.expertsTouched(2.0), m.expertsTouched(8.0));
    EXPECT_LT(m.expertsTouched(8.0), m.expertsTouched(64.0));
}

TEST(Moe, BlockHasRouterOp)
{
    const auto ops = blockDecodeOps(mixtral_8x7b(), hw::Dtype::Bf16,
                                    128, 4.0);
    bool has_router = false;
    for (const auto &op : ops)
        has_router |= op.kind == OpKind::Router;
    EXPECT_TRUE(has_router);
}

TEST(Moe, WeightTrafficGrowsWithBatchButCaps)
{
    const ModelConfig m = mixtral_8x7b();
    const double w1 =
        stepTotals(m, hw::Dtype::Bf16, 128, 1.0).weightBytes;
    const double w8 =
        stepTotals(m, hw::Dtype::Bf16, 128, 8.0).weightBytes;
    const double w256 =
        stepTotals(m, hw::Dtype::Bf16, 128, 256.0).weightBytes;
    const double w4096 =
        stepTotals(m, hw::Dtype::Bf16, 128, 4096.0).weightBytes;
    EXPECT_LT(w1, w8);
    EXPECT_LT(w8, w256);
    // Saturates once every expert is touched.
    EXPECT_NEAR(w256 / w4096, 1.0, 0.01);
    // At saturation, traffic ~ total weights; at batch 1, much less.
    EXPECT_LT(w1 / w4096, 0.45);
}

TEST(Moe, FlopsScaleWithActiveExpertsOnly)
{
    const ModelConfig moe = mixtral_8x7b();
    const double flops =
        stepTotals(moe, hw::Dtype::Bf16, 1, 1.0).flopsPerSeq;
    // ~2 FLOPs per active matmul parameter.
    EXPECT_NEAR(flops / (2.0 * moe.matmulParams()), 1.0, 0.05);
}

TEST(Moe, SingleSequenceDecodeFasterThanDense47B)
{
    // The MoE selling point: decode streams only the routed experts,
    // so batch-1 latency resembles a ~13B dense model, not a 47B one.
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.batch = 1;
    p.inLen = 128;
    p.outLen = 32;
    p.sockets = 2;
    p.cores = cpu.totalCores();

    const auto moe =
        exp.runCpu(cpu, core::Backend::Bare, mixtral_8x7b(), p);
    const auto d13 =
        exp.runCpu(cpu, core::Backend::Bare, llama2_13b(), p);
    const auto d70 =
        exp.runCpu(cpu, core::Backend::Bare, llama2_70b(), p);
    EXPECT_LT(moe.timing.meanTokenLatency,
              2.0 * d13.timing.meanTokenLatency);
    EXPECT_LT(moe.timing.meanTokenLatency,
              d70.timing.meanTokenLatency);
}

TEST(Moe, TdxOverheadInFamiliarBand)
{
    // MoE runs through the same mechanisms, so TEE overheads should
    // land in the same band as the dense 7B-class models.
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.batch = 4;
    p.inLen = 512;
    p.outLen = 64;
    p.sockets = 2;
    p.cores = cpu.totalCores();
    const auto bare =
        exp.runCpu(cpu, core::Backend::Bare, mixtral_8x7b(), p);
    const auto tdx =
        exp.runCpu(cpu, core::Backend::Tdx, mixtral_8x7b(), p);
    const double ov =
        core::Experiment::compare(tdx, bare).tputOverheadPct;
    EXPECT_GT(ov, 3.0);
    EXPECT_LT(ov, 25.0);
}

TEST(Moe, BatchRaisesMoeMemoryPressureFasterThanDense)
{
    // Unlike dense models (weights read once per step regardless of
    // batch), MoE weight traffic grows with batch until all experts
    // are hot — so MoE throughput saturates earlier in batch.
    const ModelConfig moe = mixtral_8x7b();
    const ModelConfig dense = llama2_7b();
    const double moe_growth =
        stepTotals(moe, hw::Dtype::Bf16, 128, 16.0).weightBytes /
        stepTotals(moe, hw::Dtype::Bf16, 128, 1.0).weightBytes;
    const double dense_growth =
        stepTotals(dense, hw::Dtype::Bf16, 128, 16.0).weightBytes /
        stepTotals(dense, hw::Dtype::Bf16, 128, 1.0).weightBytes;
    EXPECT_NEAR(dense_growth, 1.0, 1e-9);
    EXPECT_GT(moe_growth, 1.5);
}
