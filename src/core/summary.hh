/**
 * @file
 * Table I generator: the paper's summary matrix comparing SGX, TDX,
 * and cGPU across security, performance, and cost dimensions, built
 * from the backends' SecurityProfile and canned overhead runs.
 */

#ifndef CLLM_CORE_SUMMARY_HH
#define CLLM_CORE_SUMMARY_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace cllm::core {

/** One row of the summary matrix. */
struct SummaryRow
{
    std::string dimension;
    std::string sgx;
    std::string tdx;
    std::string cgpu;
};

/**
 * Build the Table I rows; `measured` controls whether to run the
 * timing model for the overhead row (slower) or to cite the ranges.
 */
std::vector<SummaryRow> buildSummaryMatrix(bool measured = true);

/** Render the matrix to a stream as an aligned table. */
void printSummaryMatrix(std::ostream &os,
                        const std::vector<SummaryRow> &rows);

} // namespace cllm::core

#endif // CLLM_CORE_SUMMARY_HH
