/**
 * @file
 * Golden regression tests: replay the fig01/fig09-style experiment
 * grids and the seed serving trace through the public APIs and compare
 * every number against checked-in expectations in `tests/golden/`.
 * A tight relative tolerance means timing-model refactors cannot
 * silently move the reproduced paper shapes; the serving goldens were
 * captured before the fault layer existed, so they also prove that a
 * fault-free `serve::Server` still produces the exact same metrics.
 *
 * To regenerate after an intentional model change:
 *
 *     CLLM_REGEN_GOLDEN=1 ./build/tests/test_golden_figures
 *
 * then review the JSON diff like any other code change.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "bench/bench_util.hh"
#include "golden_util.hh"
#include "core/experiment.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

void
dumpServe(std::map<std::string, double> &out, const std::string &name,
          const ServeMetrics &m)
{
    out[name + ".completed"] = static_cast<double>(m.completed);
    out[name + ".makespan"] = m.makespan;
    out[name + ".kvUtilizationPeak"] = m.kvUtilizationPeak;
    out[name + ".tokensPerSecond"] = m.tokensPerSecond;
    out[name + ".ttft.mean"] = m.ttft.mean;
    out[name + ".ttft.p50"] = m.ttft.p50;
    out[name + ".ttft.p95"] = m.ttft.p95;
    out[name + ".tpot.mean"] = m.tpot.mean;
    out[name + ".tpot.p95"] = m.tpot.p95;
    out[name + ".sloAttainment"] = m.sloAttainment;
    out[name + ".meanBatchOccupancy"] = m.meanBatchOccupancy;
}

/** The seed serving trace, with faults and policy left at defaults. */
std::map<std::string, double>
collectServe()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = bench::serveDeployParams(cpu);
    const WorkloadConfig load = bench::serveSeedWorkload();

    std::map<std::string, double> out;
    {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        Server s(makeCpuStepModel(cpu, bench::sharedBackend(tee::makeTdx()), model,
                                  deploy),
                 cfg);
        dumpServe(out, "serve.tdx.continuous",
                  s.run(generateWorkload(load)));
    }
    {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Static;
        Server s(makeCpuStepModel(cpu, bench::sharedBackend(tee::makeTdx()), model,
                                  deploy),
                 cfg);
        dumpServe(out, "serve.tdx.static",
                  s.run(generateWorkload(load)));
    }
    {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2048;
        cfg.kvBlockTokens = 16;
        Server s(makeCpuStepModel(cpu, bench::sharedBackend(tee::makeTdx()), model,
                                  deploy),
                 cfg);
        dumpServe(out, "serve.tdx.kv2048",
                  s.run(generateWorkload(load)));
    }
    return out;
}

/** The fig01 backend grid and fig09 batch-scaling curve on emr1. */
std::map<std::string, double>
collectFigures()
{
    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams p;
    p.batch = 32;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    std::map<std::string, double> out;
    for (auto b : {core::Backend::Bare, core::Backend::Vm,
                   core::Backend::Sgx, core::Backend::Tdx}) {
        const auto r = exp.runCpu(cpu, b, model, p);
        const std::string key =
            std::string("fig01.") + core::backendName(b);
        out[key + ".decodeTput"] = r.timing.decodeTput;
        out[key + ".meanTokenLatency"] = r.timing.meanTokenLatency;
        out[key + ".prefillSeconds"] = r.timing.prefillSeconds;
        out[key + ".e2eTput"] = r.timing.e2eTput;
    }
    for (unsigned batch : {1u, 4u, 16u, 64u}) {
        llm::RunParams q = p;
        q.batch = batch;
        for (auto b : {core::Backend::Bare, core::Backend::Tdx}) {
            const auto r = exp.runCpu(cpu, b, model, q);
            const std::string key = std::string("fig09.") +
                                    core::backendName(b) + ".b" +
                                    std::to_string(batch);
            out[key + ".decodeTput"] = r.timing.decodeTput;
            out[key + ".e2eTput"] = r.timing.e2eTput;
        }
    }
    return out;
}

} // namespace

TEST(GoldenFigures, ServeSeedTraceMatchesGolden)
{
    // These numbers predate the fault-injection layer; matching them
    // is the proof that the default (fault-free) serving path kept its
    // exact behaviour through the resilience refactor.
    cllm::testing::checkAgainstGolden("serve_seed.json", collectServe());
}

TEST(GoldenFigures, Fig01BackendGridMatchesGolden)
{
    auto figs = collectFigures();
    std::map<std::string, double> fig01;
    for (const auto &[k, v] : figs)
        if (k.rfind("fig01.", 0) == 0)
            fig01[k] = v;
    cllm::testing::checkAgainstGolden("fig01_backends.json", fig01);
}

TEST(GoldenFigures, Fig09BatchScalingMatchesGolden)
{
    auto figs = collectFigures();
    std::map<std::string, double> fig09;
    for (const auto &[k, v] : figs)
        if (k.rfind("fig09.", 0) == 0)
            fig09[k] = v;
    cllm::testing::checkAgainstGolden("fig09_batch_scaling.json", fig09);
}
