/**
 * @file
 * Queue-depth/SLO-driven autoscaling for the fleet simulator. The
 * scaler is evaluated at a fixed cadence on the fleet clock and emits
 * at most one action per tick: add a node from a designated template
 * (paying its cold-start — cloud allocation plus TEE re-provisioning
 * — before it becomes routable) or drain one (stop routing to it, let
 * it finish, stop its meter). Sustained-low hysteresis and an action
 * cooldown keep it from flapping during bursty on-off workloads.
 */

#ifndef CLLM_FLEET_AUTOSCALER_HH
#define CLLM_FLEET_AUTOSCALER_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "fleet/node.hh"

namespace cllm::fleet {

/** Autoscaler tuning; disabled by default. */
struct AutoscalerConfig
{
    bool enabled = false;
    double intervalSec = 10.0; //!< evaluation cadence (fleet clock)

    /** Scale up when mean outstanding per live node reaches this. */
    double queueHighPerNode = 6.0;
    /**
     * Scale up when any live node's KV pool occupancy reaches this
     * fraction (0 = signal off). Meaningful for paged-KV nodes, where
     * pool pressure shows up as preemptions well before queue depth
     * moves.
     */
    double kvHighUtil = 0.0;
    /** Candidate for draining when mean outstanding falls below. */
    double queueLowPerNode = 0.5;
    /** Consecutive low ticks required before a drain. */
    unsigned drainAfterTicks = 3;

    unsigned minNodes = 1;
    unsigned maxNodes = 12;
    /** Template index instantiated on scale-up. */
    std::size_t addTemplate = 0;
    /** Minimum seconds between scale actions. */
    double cooldownSec = 30.0;
};

/** One tick's outcome. */
struct ScaleDecision
{
    enum class Kind { None, Add, Drain };
    Kind kind = Kind::None;
    int node = -1; //!< node index to drain (Kind::Drain only)
};

/** Deterministic scaling policy over fleet state. */
class Autoscaler
{
  public:
    explicit Autoscaler(AutoscalerConfig cfg);

    const AutoscalerConfig &config() const { return cfg_; }

    /**
     * Evaluate at fleet time `now`. `backlog` is the router's unplaced
     * arrival count (only non-zero while nothing is routable).
     */
    ScaleDecision tick(
        const std::vector<std::unique_ptr<Node>> &nodes,
        std::size_t backlog, double now);

  private:
    AutoscalerConfig cfg_;
    unsigned lowTicks_ = 0;
    double lastActionAt_ = -1e300;
};

} // namespace cllm::fleet

#endif // CLLM_FLEET_AUTOSCALER_HH
