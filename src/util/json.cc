#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace cllm {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        cllm_panic("JsonWriter destroyed with open containers");
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (wroteRoot_)
            cllm_panic("JsonWriter: multiple root values");
        wroteRoot_ = true;
        return;
    }
    if (stack_.back() == Frame::Object && !pendingKey_)
        cllm_panic("JsonWriter: value in object without key");
    if (stack_.back() == Frame::Array) {
        if (!first_.back())
            os_ << ",";
        first_.back() = false;
    }
    pendingKey_ = false;
}

void
JsonWriter::escape(const std::string &s)
{
    os_ << '"';
    for (char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (raw) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\b':
            os_ << "\\b";
            break;
          case '\f':
            os_ << "\\f";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\r':
            os_ << "\\r";
            break;
          case '\t':
            os_ << "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << raw;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << "{";
    stack_.push_back(Frame::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        cllm_panic("JsonWriter: endObject outside object");
    if (pendingKey_)
        cllm_panic("JsonWriter: dangling key at endObject");
    os_ << "}";
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << "[";
    stack_.push_back(Frame::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        cllm_panic("JsonWriter: endArray outside array");
    os_ << "]";
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        cllm_panic("JsonWriter: key outside object");
    if (pendingKey_)
        cllm_panic("JsonWriter: consecutive keys");
    if (!first_.back())
        os_ << ",";
    first_.back() = false;
    escape(name);
    os_ << ":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no inf/nan
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

namespace {

/** Cursor over flat-JSON text with fatal diagnostics. */
struct FlatCursor
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            cllm_fatal("flat JSON: unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            cllm_fatal("flat JSON: expected '", c, "' at offset ",
                       pos, ", got '", text[pos], "'");
        ++pos;
    }

    std::string
    parseKey()
    {
        expect('"');
        std::string key;
        while (pos < text.size() && text[pos] != '"') {
            char ch = text[pos];
            if (ch == '\\') {
                ++pos;
                if (pos >= text.size())
                    cllm_fatal("flat JSON: unterminated key");
                // Mirror of JsonWriter::escape, so every key the
                // writer can emit reads back to the original bytes.
                switch (text[pos]) {
                  case '"': ch = '"'; break;
                  case '\\': ch = '\\'; break;
                  case '/': ch = '/'; break;
                  case 'b': ch = '\b'; break;
                  case 'f': ch = '\f'; break;
                  case 'n': ch = '\n'; break;
                  case 'r': ch = '\r'; break;
                  case 't': ch = '\t'; break;
                  case 'u': {
                    if (pos + 4 >= text.size())
                        cllm_fatal("flat JSON: truncated \\u escape "
                                   "in key");
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        const char h = text[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a') +
                                    10u;
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A') +
                                    10u;
                        else
                            cllm_fatal("flat JSON: bad hex digit in "
                                       "\\u escape");
                    }
                    // The writer only ever emits \u00XX for ASCII
                    // control bytes; anything wider would need UTF-8
                    // re-encoding this flat reader does not do.
                    if (code > 0x7f)
                        cllm_fatal("flat JSON: non-ASCII \\u escape "
                                   "in key");
                    pos += 4;
                    ch = static_cast<char>(code);
                    break;
                  }
                  default:
                    cllm_fatal("flat JSON: unsupported escape in key");
                }
            }
            key.push_back(ch);
            ++pos;
        }
        if (pos >= text.size())
            cllm_fatal("flat JSON: unterminated key");
        ++pos; // closing quote
        return key;
    }

    double
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            cllm_fatal("flat JSON: expected a number at offset ", pos);
        std::size_t used = 0;
        const std::string token = text.substr(start, pos - start);
        double v = 0.0;
        try {
            v = std::stod(token, &used);
        } catch (...) {
            cllm_fatal("flat JSON: malformed number '", token, "'");
        }
        if (used != token.size())
            cllm_fatal("flat JSON: malformed number '", token, "'");
        return v;
    }
};

} // namespace

std::map<std::string, double>
parseFlatJsonNumbers(const std::string &text)
{
    std::map<std::string, double> out;
    FlatCursor c{text};
    c.expect('{');
    if (c.peek() == '}') {
        ++c.pos;
        return out;
    }
    for (;;) {
        const std::string key = c.parseKey();
        c.expect(':');
        if (!out.emplace(key, c.parseNumber()).second)
            cllm_fatal("flat JSON: duplicate key '", key, "'");
        const char next = c.peek();
        if (next == ',') {
            ++c.pos;
            continue;
        }
        c.expect('}');
        break;
    }
    return out;
}

} // namespace cllm
