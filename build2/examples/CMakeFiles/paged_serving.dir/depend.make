# Empty dependencies file for paged_serving.
# This may be replaced when dependencies are built.
