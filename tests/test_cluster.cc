/**
 * @file
 * Tests for the multi-GPU scale-out model (Section V-D4): capacity,
 * confidential communication collapse, and IPsec taxes.
 */

#include <gtest/gtest.h>

#include "llm/perf_cluster.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

ClusterRunParams
params(unsigned gpus, bool confidential, unsigned batch = 4)
{
    ClusterRunParams p;
    p.gpus = gpus;
    p.confidential = confidential;
    p.batch = batch;
    p.inLen = 128;
    p.outLen = 64;
    return p;
}

} // namespace

TEST(Cluster, SeventyBFitsOnFourGpus)
{
    GpuClusterPerfModel m;
    EXPECT_FALSE(m.fits(hw::h100Nvl(), llama2_70b(), params(1, false)));
    EXPECT_TRUE(m.fits(hw::h100Nvl(), llama2_70b(), params(4, false)));
}

TEST(Cluster, ThirteenBFitsEverywhere)
{
    GpuClusterPerfModel m;
    EXPECT_TRUE(m.fits(hw::h100Nvl(), llama2_13b(), params(1, false)));
    EXPECT_TRUE(m.fits(hw::h100Nvl(), llama2_13b(), params(2, true)));
}

TEST(Cluster, RawScaleOutSpeedsUpDecode)
{
    GpuClusterPerfModel m;
    const auto one =
        m.run(hw::h100Nvl(), llama2_13b(), params(1, false));
    const auto two =
        m.run(hw::h100Nvl(), llama2_13b(), params(2, false));
    const double speedup = two.decodeTput / one.decodeTput;
    EXPECT_GT(speedup, 1.3); // decent TP scaling over RDMA
    EXPECT_LT(speedup, 2.0);
}

TEST(Cluster, ConfidentialScaleOutCollapses)
{
    // Insight 11 / Section V-D4: without RDMA and GPUdirect, all
    // inter-GPU traffic crosses the host at ~3 GB/s; adding a second
    // confidential GPU is not worth it for decode.
    GpuClusterPerfModel m;
    const auto one = m.run(hw::h100Nvl(), llama2_13b(), params(1, true));
    const auto two = m.run(hw::h100Nvl(), llama2_13b(), params(2, true));
    const double speedup = two.decodeTput / one.decodeTput;
    EXPECT_LT(speedup, 1.1);
}

TEST(Cluster, ConfidentialLinkIsThirteenTimesSlower)
{
    GpuClusterPerfModel m;
    EXPECT_NEAR(m.linkBandwidth(params(2, false)) /
                    m.linkBandwidth(params(2, true)),
                40.0 / 3.0, 0.1);
}

TEST(Cluster, IpsecTaxesTheLink)
{
    GpuClusterPerfModel m;
    auto p = params(2, false);
    const auto plain = m.run(hw::h100Nvl(), llama2_13b(), p);
    p.ipsec = true;
    const auto ipsec = m.run(hw::h100Nvl(), llama2_13b(), p);
    EXPECT_LT(m.linkBandwidth(p), m.linkBandwidth(params(2, false)));
    EXPECT_LT(ipsec.decodeTput, plain.decodeTput);
}

TEST(Cluster, SingleGpuMatchesNoCommOverhead)
{
    // TP=1 must not pay any collective costs: the cluster model and
    // the plain GPU model should agree within noise.
    GpuClusterPerfModel cluster;
    GpuPerfModel plain;
    const auto c = cluster.run(hw::h100Nvl(), llama2_7b(),
                               params(1, false, 8));
    GpuRunParams g;
    g.batch = 8;
    g.inLen = 128;
    g.outLen = 64;
    const auto p = plain.run(hw::h100Nvl(), llama2_7b(), g);
    EXPECT_NEAR(c.decodeTput / p.decodeTput, 1.0, 0.05);
}

TEST(Cluster, SeventyBConfidentialDecodeBelowReadingSpeed)
{
    // The headline scale-up comparison: 70B across 4 confidential
    // GPUs is throttled by host-routed collectives.
    GpuClusterPerfModel m;
    const auto raw = m.run(hw::h100Nvl(), llama2_70b(),
                           params(4, false, 1));
    const auto cc = m.run(hw::h100Nvl(), llama2_70b(),
                          params(4, true, 1));
    EXPECT_GT(cc.meanTokenLatency, 1.5 * raw.meanTokenLatency);
}

TEST(ClusterDeath, DoesNotFitFatal)
{
    GpuClusterPerfModel m;
    EXPECT_DEATH(m.run(hw::h100Nvl(), llama2_70b(), params(1, false)),
                 "does not fit");
}

TEST(ClusterDeath, ZeroGpusFatal)
{
    GpuClusterPerfModel m;
    EXPECT_DEATH(m.run(hw::h100Nvl(), llama2_7b(), params(0, false)),
                 "degenerate");
}
