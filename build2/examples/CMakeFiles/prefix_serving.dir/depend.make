# Empty dependencies file for prefix_serving.
# This may be replaced when dependencies are built.
