
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_session.cc" "tests/CMakeFiles/test_session.dir/test_session.cc.o" "gcc" "tests/CMakeFiles/test_session.dir/test_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/cllm_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/rag/CMakeFiles/cllm_rag.dir/DependInfo.cmake"
  "/root/repo/build2/src/serve/CMakeFiles/cllm_serve.dir/DependInfo.cmake"
  "/root/repo/build2/src/cost/CMakeFiles/cllm_cost.dir/DependInfo.cmake"
  "/root/repo/build2/src/llm/CMakeFiles/cllm_llm.dir/DependInfo.cmake"
  "/root/repo/build2/src/tee/CMakeFiles/cllm_tee.dir/DependInfo.cmake"
  "/root/repo/build2/src/hw/CMakeFiles/cllm_hw.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/cllm_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/cllm_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/cllm_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
