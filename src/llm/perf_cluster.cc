#include "llm/perf_cluster.hh"

#include <algorithm>
#include <cmath>

#include "tee/backend.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace cllm::llm {

GpuClusterPerfModel::GpuClusterPerfModel(GpuPerfConfig gpu_cfg,
                                         ClusterLinkConfig link_cfg)
    : cfg_(gpu_cfg), link_(link_cfg)
{
}

double
GpuClusterPerfModel::linkBandwidth(const ClusterRunParams &params) const
{
    double bw = params.confidential ? link_.hostRoutedBwBytes
                                    : link_.rawBwBytes;
    if (params.ipsec)
        bw *= link_.ipsecBwFactor;
    return bw;
}

bool
GpuClusterPerfModel::fits(const hw::GpuSpec &gpu, const ModelConfig &model,
                          const ClusterRunParams &params) const
{
    const double tp = params.gpus;
    const double weight_bytes = model.weightBytes(params.dtype) / tp;
    const double kv_total = params.batch *
                            model.kvBytesPerToken(params.dtype) *
                            (params.inLen + params.outLen) / tp;
    return weight_bytes + kv_total <= gpu.hbmBytes;
}

TimingResult
GpuClusterPerfModel::run(const hw::GpuSpec &gpu, const ModelConfig &model,
                         const ClusterRunParams &params) const
{
    if (params.gpus == 0 || params.batch == 0 || params.outLen == 0)
        cllm_fatal("cluster run: degenerate parameters");
    if (!fits(gpu, model, params)) {
        cllm_fatal("model does not fit ", params.gpus, "x ", gpu.name,
                   " (", model.name, ")");
    }

    const double tp = params.gpus;
    const tee::GpuTax tax =
        params.confidential ? tee::cgpuTax(gpu) : tee::GpuTax{};
    const double launch_s =
        gpu.kernelLaunchUs * 1e-6 + tax.launchExtraSec;
    const double rate = gpu.peakOps(params.dtype) * cfg_.computeEff;
    const double bw = gpu.hbmBwBytes * cfg_.memEff * tax.hbmBwFactor;

    const double link_bw = linkBandwidth(params);
    double link_lat = (params.confidential ? link_.hostRoutedLatencyUs
                                           : link_.rawLatencyUs) *
                      1e-6;
    if (params.ipsec)
        link_lat *= 1.8;

    // Ring all-reduce moves 2*(tp-1)/tp of the payload per member;
    // two collectives per layer (attention output, MLP output).
    const double act_bytes =
        params.dtype == hw::Dtype::Fp32 ? 4.0 : 2.0;
    const double ring = 2.0 * (tp - 1.0) / tp;
    auto comm_seconds = [&](double tokens) {
        if (params.gpus == 1)
            return 0.0;
        const double payload =
            tokens * model.hidden * act_bytes * ring;
        const double per_layer = payload / link_bw + link_lat;
        return 2.0 * model.layers * per_layer;
    };

    TimingResult result;
    const double weight_bytes = model.weightBytes(params.dtype) / tp;
    result.workingSetBytes =
        weight_bytes + params.batch *
                           model.kvBytesPerToken(params.dtype) *
                           (params.inLen + params.outLen) / tp;

    // ---- Prefill -----------------------------------------------------
    {
        const double s = params.inLen;
        const double flops =
            params.batch *
            (2.0 * static_cast<double>(model.matmulParams()) * s +
             2.0 * model.layers * model.hidden * s * s) /
            tp;
        const double bytes =
            weight_bytes + params.batch *
                               model.kvBytesPerToken(params.dtype) *
                               s / tp;
        result.prefillSeconds =
            std::max(flops / rate, bytes / bw) +
            cfg_.launchesPerStep * launch_s +
            comm_seconds(params.batch * s);
    }

    // ---- Decode ------------------------------------------------------
    Rng rng(params.seed);
    double decode_total = 0.0;
    for (unsigned step = 0; step < params.outLen; ++step) {
        const double pos = params.inLen + step;
        const double flops =
            params.batch *
            (2.0 * static_cast<double>(model.matmulParams()) +
             4.0 * model.layers * model.hidden * pos) /
            tp;
        const double bytes =
            weight_bytes + params.batch *
                               model.kvBytesPerToken(params.dtype) *
                               (pos + 1.0) / tp;
        const double t_comp = flops / rate;
        const double t_mem = bytes / bw;
        double t = std::max(t_comp, t_mem) +
                   cfg_.overlapBeta * std::min(t_comp, t_mem) +
                   cfg_.launchesPerStep * launch_s +
                   comm_seconds(params.batch);
        t *= rng.lognormal(1.0, tax.noiseSigma);
        result.tokenLatencies.push_back(t);
        decode_total += t;
    }

    const SampleSummary lat = summarize(result.tokenLatencies, 3.0);
    result.meanTokenLatency = lat.mean;
    result.decodeTput = params.batch / lat.mean;
    result.totalSeconds = result.prefillSeconds + decode_total;
    result.e2eTput = params.batch * params.outLen / result.totalSeconds;
    result.memoryBound = true;
    return result;
}

} // namespace cllm::llm
