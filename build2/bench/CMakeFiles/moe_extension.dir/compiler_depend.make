# Empty compiler generated dependencies file for moe_extension.
# This may be replaced when dependencies are built.
