file(REMOVE_RECURSE
  "CMakeFiles/chunked_serving.dir/chunked_serving.cpp.o"
  "CMakeFiles/chunked_serving.dir/chunked_serving.cpp.o.d"
  "chunked_serving"
  "chunked_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunked_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
