file(REMOVE_RECURSE
  "CMakeFiles/confidential_session.dir/confidential_session.cpp.o"
  "CMakeFiles/confidential_session.dir/confidential_session.cpp.o.d"
  "confidential_session"
  "confidential_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidential_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
