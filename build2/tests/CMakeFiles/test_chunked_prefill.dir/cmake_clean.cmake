file(REMOVE_RECURSE
  "CMakeFiles/test_chunked_prefill.dir/test_chunked_prefill.cc.o"
  "CMakeFiles/test_chunked_prefill.dir/test_chunked_prefill.cc.o.d"
  "test_chunked_prefill"
  "test_chunked_prefill.pdb"
  "test_chunked_prefill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunked_prefill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
