/**
 * @file
 * Dense retrieval: a deterministic sentence embedder (MiniSbert,
 * standing in for Sentence-BERT) and a brute-force cosine-similarity
 * index. MiniSbert hashes unigrams and bigrams into a sparse feature
 * space and projects them through a fixed random matrix with tanh
 * nonlinearity — a real (if small) encoder whose embeddings preserve
 * lexical similarity, which is what the retrieval-quality tests need.
 */

#ifndef CLLM_RAG_DENSE_HH
#define CLLM_RAG_DENSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rag/analyzer.hh"
#include "rag/elastic_lite.hh"

namespace cllm::rag {

/** Work counters for dense retrieval. */
struct DenseStats
{
    std::uint64_t embedFlops = 0;
    std::uint64_t vectorsCompared = 0;
    std::uint64_t bytesTouched = 0;
};

/**
 * Deterministic sentence embedder.
 */
class MiniSbert
{
  public:
    /**
     * @param dim embedding dimension
     * @param feature_dim hashed sparse feature space size
     * @param seed projection-matrix seed
     */
    explicit MiniSbert(unsigned dim = 128, unsigned feature_dim = 2048,
                       std::uint64_t seed = 7);

    /** Embed a text into a unit-norm vector. */
    std::vector<float> embed(const std::string &text,
                             DenseStats *stats = nullptr) const;

    unsigned dim() const { return dim_; }

    /** FLOPs per embedding (for the timing model). */
    std::uint64_t flopsPerEmbed() const;

  private:
    unsigned dim_;
    unsigned featureDim_;
    std::vector<float> projection_; // [featureDim x dim]
    Analyzer analyzer_;
};

/** Cosine similarity of two unit vectors. */
double cosine(const std::vector<float> &a, const std::vector<float> &b);

/**
 * Brute-force dense index over unit-norm vectors.
 */
class DenseIndex
{
  public:
    explicit DenseIndex(unsigned dim);

    /** Add a vector for a document. */
    void add(DocId id, const std::vector<float> &vec);

    /**
     * Top-k by cosine similarity. The scan fans out over the
     * cllm::par pool as a deterministic chunked reduction (per-chunk
     * top-k merged in fixed chunk order), so results are bit-identical
     * to a serial scan at any CLLM_THREADS.
     */
    std::vector<SearchHit> search(const std::vector<float> &query,
                                  std::size_t k,
                                  DenseStats *stats = nullptr) const;

    std::size_t size() const { return ids_.size(); }

  private:
    unsigned dim_;
    std::vector<DocId> ids_;
    std::vector<float> vecs_; // packed row-major
};

} // namespace cllm::rag

#endif // CLLM_RAG_DENSE_HH
