/**
 * @file
 * End-to-end confidential deployment flow, the scenario the paper's
 * threat model protects (Figure 1): a model provider only releases
 * weight-decryption keys to an attested enclave.
 *
 *  1. Operator writes a Gramine manifest for the inference stack.
 *  2. The platform measures the enclave (binary + manifest).
 *  3. The enclave requests a quote binding its key-exchange value.
 *  4. The model provider verifies the quote against the expected
 *     measurement and provisions the weights key.
 *  5. Weights are stored through the encrypted-FS shield; tampering
 *     with stored ciphertext is detected on load.
 *  6. A malicious enclave (different measurement) is refused.
 */

#include <iostream>

#include "tee/attest.hh"
#include "tee/fs_shield.hh"
#include "tee/manifest.hh"
#include "crypto/sha256.hh"

using namespace cllm;

int
main()
{
    // -- 1. Manifest ---------------------------------------------------
    const std::string manifest_text = tee::exampleLlamaManifest();
    auto parsed = tee::parseManifest(manifest_text);
    if (!parsed.ok) {
        std::cerr << "manifest parse failed: " << parsed.error << "\n";
        return 1;
    }
    auto valid = tee::validateManifest(parsed.manifest);
    if (!valid.ok) {
        std::cerr << "manifest invalid: " << valid.error << "\n";
        return 1;
    }
    std::cout << "manifest ok: enclave "
              << parsed.manifest.enclaveSizeBytes / (1ULL << 30)
              << " GiB, " << parsed.manifest.maxThreads << " threads\n";

    // -- 2. Measurement ------------------------------------------------
    tee::MeasurementBuilder mb;
    mb.extend("binary", std::string("\x7f""ELF...inference-runtime-v1"));
    parsed.manifest.extendMeasurement(mb);
    const tee::Measurement enclave = mb.finish();

    // -- 3. Quote ------------------------------------------------------
    const crypto::Digest256 hw_key =
        crypto::sha256(std::string("platform-fused-key"));
    tee::QuotingEnclave qe(hw_key, /*security_version=*/2);
    const crypto::Digest256 kex_pub =
        crypto::sha256(std::string("enclave-ecdh-public-value"));
    const tee::Quote quote = qe.generateQuote(enclave, kex_pub);

    // -- 4. Verification by the model provider --------------------------
    tee::QuoteVerifier verifier(qe.verificationKey(),
                                /*min_security_version=*/2);
    verifier.allow(enclave);
    const tee::VerifyStatus status = verifier.verify(quote);
    std::cout << "provider verdict: " << tee::verifyStatusName(status)
              << "\n";
    if (status != tee::VerifyStatus::Ok)
        return 1;

    // -- 5. Weight storage through the FS shield ------------------------
    const crypto::Digest256 seal = qe.sealingKey(enclave);
    tee::FsShield fs(seal);
    std::vector<std::uint8_t> weights(4096);
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] = static_cast<std::uint8_t>(i * 31);
    fs.put("/models/llama2-7b/shard0.bin", weights);

    auto loaded = fs.get("/models/llama2-7b/shard0.bin");
    std::cout << "weights load: "
              << (loaded && *loaded == weights ? "ok (verified)"
                                               : "FAILED")
              << "\n";

    fs.tamper("/models/llama2-7b/shard0.bin", 1234);
    auto tampered = fs.get("/models/llama2-7b/shard0.bin");
    std::cout << "after ciphertext tampering: "
              << (tampered ? "UNDETECTED (bad!)" : "rejected (good)")
              << "\n";

    // -- 6. A different enclave gets nothing ----------------------------
    tee::MeasurementBuilder evil;
    evil.extend("binary", std::string("\x7f""ELF...weight-exfiltrator"));
    const tee::Quote evil_quote =
        qe.generateQuote(evil.finish(), kex_pub);
    std::cout << "malicious enclave verdict: "
              << tee::verifyStatusName(verifier.verify(evil_quote))
              << "\n";
    return 0;
}
