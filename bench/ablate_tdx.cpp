/**
 * @file
 * Ablation: where does TDX's overhead come from? Starting from the
 * full TDX model, disable one mechanism at a time (TME-MK memory
 * encryption, the SEPT walk surcharge, the 1 GiB hugepage downgrade,
 * per-op fixed transition costs, the virtualization tax) and measure
 * the surviving overhead on the paper's Figure 4 throughput workload.
 * This decomposition is what DESIGN.md Section 3 claims the model is
 * made of — the ablation proves no single hidden constant does the
 * work.
 */

#include <iostream>

#include "core/experiment.hh"
#include "llm/perf_cpu.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace cllm;

namespace {

double
overheadWith(const tee::TdxConfig &cfg, bool sockets2 = false)
{
    const hw::CpuSpec cpu = hw::emr1();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams p;
    p.batch = 6;
    p.beam = 4;
    p.inLen = 1024;
    p.outLen = 128;
    p.sockets = sockets2 ? 2 : 1;
    p.cores = p.sockets * cpu.coresPerSocket;

    llm::CpuPerfModel perf;
    const auto tdx = tee::makeTdx(cfg);
    const auto bare = tee::makeBareMetal();
    const auto rt = perf.run(cpu, *tdx, model, p);
    const auto rb = perf.run(cpu, *bare, model, p);
    return overheadPct(rb.decodeTput, rt.decodeTput);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: sources of TDX overhead (Fig. 4 "
                 "workload) ===\n\n";

    tee::TdxConfig full;
    const double base = overheadWith(full);

    Table t({"configuration", "tput overhead", "delta vs full TDX"});
    t.addRow({"full TDX model", fmtPct(base), "-"});

    {
        tee::TdxConfig c = full;
        c.tmeBwTax = 0.0;
        const double ov = overheadWith(c);
        t.addRow({"- TME-MK memory encryption", fmtPct(ov),
                  fmtPct(ov - base)});
    }
    {
        tee::TdxConfig c = full;
        c.perOpFixedUs = 0.0;
        const double ov = overheadWith(c);
        t.addRow({"- per-op transition costs", fmtPct(ov),
                  fmtPct(ov - base)});
    }
    {
        tee::TdxConfig c = full;
        c.vm.virtComputeTax = 0.0;
        const double ov = overheadWith(c);
        t.addRow({"- virtualization compute tax", fmtPct(ov),
                  fmtPct(ov - base)});
    }
    t.print(std::cout);

    // Mechanisms that live outside TdxConfig, shown by comparison.
    std::cout << "\ntranslation-layer contributions (separate runs):\n";
    {
        // TDX vs a 2M-page VM isolates the SEPT surcharge + TME.
        core::Experiment exp;
        const hw::CpuSpec cpu = hw::emr1();
        const llm::ModelConfig model = llm::llama2_7b();
        llm::RunParams p;
        p.batch = 6;
        p.beam = 4;
        p.inLen = 1024;
        p.outLen = 128;
        p.sockets = 1;
        p.cores = cpu.coresPerSocket;
        const auto vmth =
            exp.runCpu(cpu, core::Backend::VmTh, model, p);
        const auto vmfh = exp.runCpu(cpu, core::Backend::Vm, model, p);
        const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        std::cout << "  2M-vs-1G hugepage cost (VM TH over VM FH): "
                  << fmtPct(core::Experiment::compare(vmth, vmfh)
                                .tputOverheadPct)
                  << "\n  SEPT+TME on top of 2M pages (TDX over VM "
                     "TH): "
                  << fmtPct(core::Experiment::compare(tdx, vmth)
                                .tputOverheadPct)
                  << "\n";
    }
    std::cout << "\nNUMA contribution (two sockets, 70B):\n";
    {
        const double two = overheadWith(full, true);
        std::cout << "  full TDX on 2 sockets: " << fmtPct(two)
                  << " (striped placement + UPI encryption)\n";
    }
    return 0;
}
