# Empty dependencies file for cllm_par.
# This may be replaced when dependencies are built.
