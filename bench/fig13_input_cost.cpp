/**
 * @file
 * Figure 13: input-size scaling of the CPU-vs-cGPU cost comparison at
 * batch 4 (bf16, 128 out tokens, single socket, throughput including
 * the first-token latency). The paper: CPU TEEs are considerably more
 * sensitive to input size than cGPUs; the cost advantage collapses as
 * inputs grow because attention compute scales quadratically.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 13", "input scaling + cost, batch 4 (EMR2 vs cGPU)",
           "CPU advantage fades with input size; GPUs win once "
           "compute demand is sufficient");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const cost::CpuPricing cpu_price = cost::gcpSpotUsEast1();
    const cost::GpuPricing gpu_price = cost::cgpuH100();
    const double mem_gb = 128.0;
    const unsigned cores = 32;

    Table t({"input", "TDX tput [tok/s]", "TDX $/1M",
             "cGPU tput [tok/s]", "cGPU $/1M", "CPU advantage"});
    for (unsigned in_len : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        llm::RunParams p;
        p.batch = 4;
        p.inLen = in_len;
        p.outLen = 128;
        p.sockets = 1;
        p.cores = cores;
        const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, p);
        const double cpu_usd = core::Experiment::cpuCostPerMTokens(
            tdx, cpu_price, cores, mem_gb);

        llm::GpuRunParams g;
        g.batch = 4;
        g.inLen = in_len;
        g.outLen = 128;
        g.confidential = true;
        const auto gr = exp.runGpu(hw::h100Nvl(), model, g);
        const double gpu_usd =
            core::Experiment::gpuCostPerMTokens(gr, gpu_price);

        t.addRow({std::to_string(in_len), fmt(tdx.timing.e2eTput),
                  fmt(cpu_usd, 3), fmt(gr.timing.e2eTput),
                  fmt(gpu_usd, 3),
                  fmtPct(100.0 * (gpu_usd / cpu_usd - 1.0))});
    }
    t.print(std::cout);
    std::cout << "\n(positive advantage: the CPU TEE is cheaper per "
                 "token)\n";
    return 0;
}
