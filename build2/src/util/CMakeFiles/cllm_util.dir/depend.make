# Empty dependencies file for cllm_util.
# This may be replaced when dependencies are built.
