file(REMOVE_RECURSE
  "CMakeFiles/sweep_tool.dir/sweep_tool.cpp.o"
  "CMakeFiles/sweep_tool.dir/sweep_tool.cpp.o.d"
  "sweep_tool"
  "sweep_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
