/**
 * @file
 * Tests for the functional compute kernels: reference comparisons,
 * mathematical properties, and quantization error bounds. Shape sweeps
 * use parameterized tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "llm/kernels.hh"
#include "par/pool.hh"
#include "util/rng.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Tensor t(r, c);
    Rng rng(seed);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < c; ++j)
            t.at(i, j) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return t;
}

void
naiveGemm(const Tensor &a, const Tensor &b, Tensor &c)
{
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
            c.at(i, j) = static_cast<float>(acc);
        }
    }
}

} // namespace

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, MatchesNaiveReference)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = randomTensor(m, k, 1);
    const Tensor b = randomTensor(k, n, 2);
    Tensor c(m, n), ref(m, n);
    gemm(a, b, c);
    naiveGemm(a, b, ref);
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j)
            EXPECT_NEAR(c.at(i, j), ref.at(i, j),
                        1e-3 * (1.0 + std::abs(ref.at(i, j))));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 66),
                      std::make_tuple(128, 17, 40),
                      std::make_tuple(1, 256, 1)));

TEST(Gemm, ZeroTimesAnythingIsZero)
{
    Tensor a(4, 8);
    const Tensor b = randomTensor(8, 4, 3);
    Tensor c(4, 4);
    c.fill(99.0f);
    gemm(a, b, c);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(c.at(i, j), 0.0f);
}

TEST(GemmDeath, ShapeMismatchPanics)
{
    Tensor a(2, 3), b(4, 2), c(2, 2);
    EXPECT_DEATH(gemm(a, b, c), "shape mismatch");
}

TEST(Matvec, MatchesGemmColumn)
{
    const Tensor w = randomTensor(32, 48, 4);
    const Tensor x = randomTensor(48, 1, 5);
    std::vector<float> y(32);
    matvec(w, x.data(), y.data());
    Tensor ref(32, 1);
    naiveGemm(w, x, ref);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(y[i], ref.at(i, 0), 1e-3);
}

TEST(RmsNorm, ProducesUnitRms)
{
    Rng rng(6);
    std::vector<float> x(256), w(256, 1.0f), y(256);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian(0.0, 3.0));
    rmsnorm(x.data(), w.data(), y.data(), x.size());
    double sum_sq = 0.0;
    for (float v : y)
        sum_sq += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(sum_sq / 256.0), 1.0, 1e-3);
}

TEST(RmsNorm, WeightScalesOutput)
{
    std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
    std::vector<float> w = {2.0f, 2.0f, 2.0f, 2.0f};
    std::vector<float> y1(4), y2(4);
    std::vector<float> ones(4, 1.0f);
    rmsnorm(x.data(), ones.data(), y1.data(), 4);
    rmsnorm(x.data(), w.data(), y2.data(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(y2[i], 2.0f * y1[i], 1e-6);
}

TEST(RmsNorm, ScaleInvariantDirection)
{
    std::vector<float> x = {1.0f, -2.0f, 0.5f, 3.0f};
    std::vector<float> x10 = x;
    for (auto &v : x10)
        v *= 10.0f;
    std::vector<float> w(4, 1.0f), y1(4), y2(4);
    rmsnorm(x.data(), w.data(), y1.data(), 4);
    rmsnorm(x10.data(), w.data(), y2.data(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-4);
}

TEST(Softmax, SumsToOne)
{
    std::vector<float> x = {1.0f, 2.0f, 3.0f, -1.0f, 0.0f};
    softmaxInPlace(x.data(), x.size());
    double sum = 0.0;
    for (float v : x) {
        EXPECT_GT(v, 0.0f);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Softmax, PreservesOrdering)
{
    std::vector<float> x = {0.5f, 3.0f, -2.0f};
    softmaxInPlace(x.data(), x.size());
    EXPECT_GT(x[1], x[0]);
    EXPECT_GT(x[0], x[2]);
}

TEST(Softmax, NumericallyStableForLargeInputs)
{
    std::vector<float> x = {10000.0f, 10001.0f};
    softmaxInPlace(x.data(), x.size());
    EXPECT_FALSE(std::isnan(x[0]));
    EXPECT_NEAR(x[0] + x[1], 1.0, 1e-6);
    EXPECT_GT(x[1], x[0]);
}

TEST(Softmax, EmptyIsNoop)
{
    softmaxInPlace(nullptr, 0); // must not crash
}

TEST(Rope, PreservesNorm)
{
    Rng rng(9);
    std::vector<float> v(64);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    double before = 0.0;
    for (float x : v)
        before += static_cast<double>(x) * x;
    applyRope(v.data(), v.size(), 1234);
    double after = 0.0;
    for (float x : v)
        after += static_cast<double>(x) * x;
    EXPECT_NEAR(before, after, 1e-3 * before);
}

TEST(Rope, PositionZeroIsIdentity)
{
    std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
    auto orig = v;
    applyRope(v.data(), v.size(), 0);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(v[i], orig[i], 1e-6);
}

TEST(Rope, DotDependsOnlyOnDistance)
{
    // The defining RoPE property: <R_m q, R_n k> == <R_{m+d} q,
    // R_{n+d} k> for any shift d.
    Rng rng(10);
    std::vector<float> q(32), k(32);
    for (std::size_t i = 0; i < 32; ++i) {
        q[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        k[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    auto dot_at = [&](std::size_t pq, std::size_t pk) {
        auto qq = q, kk = k;
        applyRope(qq.data(), qq.size(), pq);
        applyRope(kk.data(), kk.size(), pk);
        double d = 0.0;
        for (std::size_t i = 0; i < qq.size(); ++i)
            d += static_cast<double>(qq[i]) * kk[i];
        return d;
    };
    EXPECT_NEAR(dot_at(10, 3), dot_at(110, 103), 1e-3);
    EXPECT_NEAR(dot_at(5, 5), dot_at(900, 900), 1e-3);
}

TEST(RopeDeath, OddHeadDimPanics)
{
    std::vector<float> v(3);
    EXPECT_DEATH(applyRope(v.data(), 3, 1), "odd");
}

TEST(Silu, KnownValues)
{
    std::vector<float> x = {0.0f, 100.0f, -100.0f};
    siluInPlace(x.data(), x.size());
    EXPECT_NEAR(x[0], 0.0f, 1e-6);
    EXPECT_NEAR(x[1], 100.0f, 1e-3); // ~identity for large positive
    EXPECT_NEAR(x[2], 0.0f, 1e-3);   // ~zero for large negative
}

TEST(Bf16, RoundtripErrorBounded)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const float x = static_cast<float>(rng.gaussian(0.0, 100.0));
        const float r = toBf16(x);
        // bf16 has 8 mantissa bits -> relative error < 2^-8.
        EXPECT_LE(std::abs(r - x), std::abs(x) * (1.0f / 256.0f) + 1e-30f);
    }
}

TEST(Bf16, ExactForSmallIntegers)
{
    for (float v : {0.0f, 1.0f, -2.0f, 64.0f, 128.0f})
        EXPECT_EQ(toBf16(v), v);
}

TEST(Bf16, QuantizeTensorAppliesEverywhere)
{
    Tensor t = randomTensor(8, 8, 12);
    quantizeBf16(t);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_EQ(t.at(i, j), toBf16(t.at(i, j)));
}

TEST(Int8Quant, DequantizeErrorBounded)
{
    const Tensor w = randomTensor(16, 64, 13);
    const QuantizedTensor q = QuantizedTensor::quantize(w);
    const Tensor d = q.dequantize();
    for (std::size_t r = 0; r < 16; ++r) {
        float max_abs = 0.0f;
        for (std::size_t c = 0; c < 64; ++c)
            max_abs = std::max(max_abs, std::abs(w.at(r, c)));
        for (std::size_t c = 0; c < 64; ++c) {
            // Error at most half a quantization step per element.
            EXPECT_LE(std::abs(d.at(r, c) - w.at(r, c)),
                      max_abs / 127.0f * 0.51f + 1e-6f);
        }
    }
}

TEST(Int8Quant, MatvecCloseToFloat)
{
    const Tensor w = randomTensor(32, 128, 14);
    const QuantizedTensor q = QuantizedTensor::quantize(w);
    Rng rng(15);
    std::vector<float> x(128), yf(32), yq(32);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    matvec(w, x.data(), yf.data());
    matvecQuantized(q, x.data(), yq.data());
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(yq[i], yf[i], 0.15 * (std::abs(yf[i]) + 1.0));
}

TEST(Int8Quant, ZeroRowHandled)
{
    Tensor w(2, 4); // all zeros
    const QuantizedTensor q = QuantizedTensor::quantize(w);
    std::vector<float> x(4, 1.0f), y(2, 99.0f);
    matvecQuantized(q, x.data(), y.data());
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
}

TEST(Tensor, AccessorsAndFill)
{
    Tensor t(2, 3);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    t.fill(7.0f);
    EXPECT_EQ(t.at(1, 2), 7.0f);
    t.at(0, 0) = 1.0f;
    EXPECT_EQ(t.row(0)[0], 1.0f);
}

TEST(TensorDeath, OutOfRangePanics)
{
    Tensor t(2, 2);
    EXPECT_DEATH(t.at(2, 0), "out of range");
    EXPECT_DEATH(t.row(5), "out of range");
}

// ------------------------------------------------- thread determinism

namespace {

/** Run `fn` under each thread count and require bit-identical float
 *  output — the cllm::par contract the golden files rely on. */
template <typename Fn>
void
expectBitIdenticalAcrossThreads(Fn &&fn)
{
    par::setThreadCount(1);
    const std::vector<float> serial = fn();
    for (unsigned threads : {2u, 4u, 8u}) {
        par::setThreadCount(threads);
        const std::vector<float> parallel = fn();
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial[i], parallel[i])
                << "index " << i << " at " << threads << " threads";
    }
    par::setThreadCount(0);
}

} // namespace

TEST(ThreadDeterminism, GemmBitIdentical)
{
    const Tensor a = randomTensor(97, 65, 21);
    const Tensor b = randomTensor(65, 83, 22);
    expectBitIdenticalAcrossThreads([&] {
        Tensor c(97, 83);
        gemm(a, b, c);
        return std::vector<float>(c.data(), c.data() + c.size());
    });
}

TEST(ThreadDeterminism, GemmTransBBitIdentical)
{
    const Tensor a = randomTensor(8, 128, 23);
    const Tensor w = randomTensor(200, 128, 24);
    expectBitIdenticalAcrossThreads([&] {
        Tensor c(8, 200);
        gemmTransB(a, w, c);
        return std::vector<float>(c.data(), c.data() + c.size());
    });
}

TEST(ThreadDeterminism, MatvecBitIdentical)
{
    const Tensor w = randomTensor(301, 128, 25);
    const Tensor x = randomTensor(128, 1, 26);
    expectBitIdenticalAcrossThreads([&] {
        std::vector<float> y(301);
        matvec(w, x.data(), y.data());
        return y;
    });
}

TEST(ThreadDeterminism, MatvecQuantizedBitIdentical)
{
    const QuantizedTensor q =
        QuantizedTensor::quantize(randomTensor(301, 128, 27));
    const Tensor x = randomTensor(128, 1, 28);
    expectBitIdenticalAcrossThreads([&] {
        std::vector<float> y(301);
        matvecQuantized(q, x.data(), y.data());
        return y;
    });
}
