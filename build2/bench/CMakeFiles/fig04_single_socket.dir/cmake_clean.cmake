file(REMOVE_RECURSE
  "CMakeFiles/fig04_single_socket.dir/fig04_single_socket.cpp.o"
  "CMakeFiles/fig04_single_socket.dir/fig04_single_socket.cpp.o.d"
  "fig04_single_socket"
  "fig04_single_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_single_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
