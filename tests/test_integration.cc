/**
 * @file
 * Cross-module integration tests: the paper's end-to-end confidential
 * deployment, wired through real components — manifest, measurement,
 * attestation, sealing, encrypted weight storage, attested session,
 * actual inference — with the attacks the threat model (Figure 1)
 * lists exercised against it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha256.hh"
#include "llm/runtime.hh"
#include "llm/tokenizer.hh"
#include "tee/attest.hh"
#include "tee/fs_shield.hh"
#include "tee/manifest.hh"
#include "tee/session.hh"

using namespace cllm;
using namespace cllm::llm;
using namespace cllm::tee;

namespace {

ModelConfig
tinyConfig()
{
    ModelConfig m;
    m.layers = 2;
    m.hidden = 32;
    m.heads = 4;
    m.kvHeads = 4;
    m.ffn = 64;
    m.vocab = ByteTokenizer::kVocabSize;
    return m;
}

Measurement
measuredEnclave()
{
    MeasurementBuilder mb;
    mb.extend("binary", std::string("inference-runtime"));
    const auto parsed = parseManifest(exampleLlamaManifest());
    parsed.manifest.extendMeasurement(mb);
    return mb.finish();
}

} // namespace

TEST(Integration, WeightsRoundtripThroughSealedStorage)
{
    // Provider trains (here: seeds) a model and seals its weights for
    // a specific enclave on a specific platform.
    const TinyLlama provider_model(tinyConfig(), hw::Dtype::Fp32, 555);
    const auto weights = provider_model.saveWeights();

    QuotingEnclave platform(crypto::sha256(std::string("plat")));
    const Measurement enclave = measuredEnclave();
    FsShield fs(platform.sealingKey(enclave));
    fs.put("/models/tiny.bin", weights);

    // The enclave boots, unseals, and loads the weights.
    const auto unsealed = fs.get("/models/tiny.bin");
    ASSERT_TRUE(unsealed.has_value());
    TinyLlama enclave_model(tinyConfig(), hw::Dtype::Fp32, 1);
    ASSERT_TRUE(enclave_model.loadWeights(*unsealed));

    // Identical behaviour: same greedy generation as the provider's.
    ByteTokenizer tok;
    const auto prompt = tok.encode("the patient presents with");
    EXPECT_EQ(enclave_model.generateGreedy(prompt, 12),
              provider_model.generateGreedy(prompt, 12));
}

TEST(Integration, TamperedWeightsNeverLoad)
{
    const TinyLlama model(tinyConfig(), hw::Dtype::Fp32, 555);
    QuotingEnclave platform(crypto::sha256(std::string("plat")));
    FsShield fs(platform.sealingKey(measuredEnclave()));
    fs.put("/w", model.saveWeights());

    fs.tamper("/w", 4096); // storage attacker flips a weight byte
    EXPECT_FALSE(fs.get("/w").has_value());
}

TEST(Integration, WrongEnclaveCannotUnseal)
{
    // Sealing keys derive from the measurement: a different enclave
    // (e.g. an exfiltration tool) gets a different key and its shield
    // cannot authenticate the provider's files.
    const TinyLlama model(tinyConfig(), hw::Dtype::Fp32, 555);
    QuotingEnclave platform(crypto::sha256(std::string("plat")));

    FsShield good(platform.sealingKey(measuredEnclave()));
    good.put("/w", model.saveWeights());

    MeasurementBuilder evil;
    evil.extend("binary", std::string("weight-stealer"));
    const auto evil_key = platform.sealingKey(evil.finish());
    EXPECT_FALSE(crypto::digestEqual(
        evil_key, platform.sealingKey(measuredEnclave())));
}

TEST(Integration, LoadWeightsRejectsGarbage)
{
    TinyLlama model(tinyConfig(), hw::Dtype::Fp32, 1);
    const auto before = model.saveWeights();

    EXPECT_FALSE(model.loadWeights({}));
    EXPECT_FALSE(model.loadWeights({1, 2, 3, 4}));
    auto truncated = before;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(model.loadWeights(truncated));
    auto trailing = before;
    trailing.push_back(0);
    EXPECT_FALSE(model.loadWeights(trailing));

    // Architecture mismatch.
    ModelConfig other = tinyConfig();
    other.layers = 3;
    const TinyLlama bigger(other, hw::Dtype::Fp32, 2);
    EXPECT_FALSE(model.loadWeights(bigger.saveWeights()));

    // All failures left the model untouched.
    EXPECT_EQ(model.saveWeights(), before);
}

TEST(Integration, LoadAppliesComputeModeConversions)
{
    // Loading fp32 master weights into an int8 model must requantize,
    // and into a bf16 model must re-round.
    const TinyLlama master(tinyConfig(), hw::Dtype::Fp32, 777);
    const auto blob = master.saveWeights();

    TinyLlama i8(tinyConfig(), hw::Dtype::Int8, 1);
    ASSERT_TRUE(i8.loadWeights(blob));
    TinyLlama i8_direct(tinyConfig(), hw::Dtype::Int8, 777);
    KvCache a = i8.makeCache(), b = i8_direct.makeCache();
    EXPECT_EQ(i8.forward(65, a), i8_direct.forward(65, b));

    TinyLlama bf(tinyConfig(), hw::Dtype::Bf16, 1);
    ASSERT_TRUE(bf.loadWeights(blob));
    TinyLlama bf_direct(tinyConfig(), hw::Dtype::Bf16, 777);
    KvCache c = bf.makeCache(), d = bf_direct.makeCache();
    EXPECT_EQ(bf.forward(65, c), bf_direct.forward(65, d));
}

TEST(Integration, FullConfidentialInferenceSession)
{
    // The complete flow: attest -> key exchange -> encrypted prompt ->
    // in-enclave generation -> encrypted reply.
    QuotingEnclave platform(crypto::sha256(std::string("plat")), 2);
    const Measurement enclave = measuredEnclave();

    DhKeyPair server_keys(100), client_keys(200);
    const ServerHello hello =
        makeServerHello(platform, enclave, server_keys);

    QuoteVerifier verifier(platform.verificationKey(), 2);
    verifier.allow(enclave);
    const HandshakeResult hs =
        completeHandshake(verifier, hello, client_keys);
    ASSERT_TRUE(hs.ok);

    const SessionKeys server_session = deriveSessionKeys(
        server_keys.sharedSecret(client_keys.publicValue()));
    SecureChannel c2s_tx(hs.keys.clientToServer);
    SecureChannel c2s_rx(server_session.clientToServer);
    SecureChannel s2c_tx(server_session.serverToClient);
    SecureChannel s2c_rx(hs.keys.serverToClient);

    const std::string prompt = "summarize: quarterly earnings";
    const auto sealed = c2s_tx.seal(
        std::vector<std::uint8_t>(prompt.begin(), prompt.end()));
    const auto received = c2s_rx.open(sealed);
    ASSERT_TRUE(received.has_value());

    const TinyLlama model(tinyConfig(), hw::Dtype::Bf16, 321);
    ByteTokenizer tok;
    const auto out_tokens = model.generateGreedy(
        tok.encode(std::string(received->begin(), received->end())),
        16);
    const std::string reply = tok.decode(out_tokens);

    const auto sealed_reply = s2c_tx.seal(
        std::vector<std::uint8_t>(reply.begin(), reply.end()));
    const auto client_view = s2c_rx.open(sealed_reply);
    ASSERT_TRUE(client_view.has_value());
    EXPECT_EQ(std::string(client_view->begin(), client_view->end()),
              reply);

    // A network attacker's replay of the prompt is rejected.
    EXPECT_FALSE(c2s_rx.open(sealed).has_value());
}
