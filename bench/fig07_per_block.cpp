/**
 * @file
 * Figure 7: duration and TDX overhead of each decoder-block operator
 * for Llama2-7B (128 in/out tokens, batch 4) on one EMR2 socket. The
 * paper: decoder blocks take 99.9% of inference time; the biggest raw
 * costs are self-attention and the linear-SiLU projections; the norms
 * have the largest *relative* overheads but only ~3% of block time.
 */

#include "bench_util.hh"

using namespace cllm;
using namespace cllm::bench;

int
main()
{
    banner("Figure 7",
           "per-operator decode breakdown, Llama2-7B batch 4 (EMR2)",
           "self-attention and linear SiLU dominate raw time; norms "
           "have the largest relative overheads at ~3% of block time");

    core::Experiment exp;
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();

    llm::RunParams p;
    p.batch = 4;
    p.inLen = 128;
    p.outLen = 128;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;

    const auto bare = exp.runCpu(cpu, core::Backend::Bare, model, p);
    const auto tdx = exp.runCpu(cpu, core::Backend::Tdx, model, p);

    double total = 0.0;
    for (const auto &op : tdx.timing.blockBreakdown)
        total += op.seconds;

    Table t({"operator", "duration [us]", "share", "TDX overhead"});
    for (std::size_t i = 0; i < tdx.timing.blockBreakdown.size(); ++i) {
        const auto &ot = tdx.timing.blockBreakdown[i];
        const auto &ob = bare.timing.blockBreakdown[i];
        t.addRow({ot.name, fmt(1e6 * ot.seconds),
                  fmtPct(100.0 * ot.seconds / total),
                  fmtPct(100.0 * (ot.seconds / ob.seconds - 1.0))});
    }
    t.print(std::cout);
    return 0;
}
