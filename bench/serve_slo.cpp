/**
 * @file
 * Serving extension: online SLO behaviour of confidential deployments
 * — an operational reading of Insight 11. Replays a Poisson trace
 * against CPU (bare/TDX) and GPU (raw/cGPU) deployments under static
 * and continuous batching, reporting TTFT/TPOT percentiles, SLO
 * attainment (200 ms/token, the paper's reading-speed bar), and
 * sustained tokens/s.
 *
 * With `--faults [seed]`, instead runs the resilience experiment: a
 * seeded fault schedule (attestation failures, enclave restarts, EPC
 * paging storms, KV exhaustion) is injected into a TDX deployment
 * under a retry/timeout/shedding policy, reporting availability,
 * retries, sheds, and downtime, plus the JSON event timeline.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.hh"
#include "cost/pricing.hh"
#include "fault/schedule.hh"
#include "obs/chrome_export.hh"
#include "obs/trace.hh"
#include "serve/serving.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;
using bench::serveDeployParams;
using bench::serveSeedWorkload;
using bench::sharedBackend;

namespace {

void
usage(std::ostream &os)
{
    os << "usage: serve_slo [--faults [seed]] [--kv-sweep] "
          "[--prefix-sweep] [--chunk-sweep] [--spec-sweep] "
          "[--trace [path]] [--metrics-out path]\n\n"
          "  --faults [seed]     run the resilience experiment "
          "(seeded fault schedule\n"
          "                      against a TDX deployment) instead of "
          "the SLO sweep;\n"
          "                      seed defaults to 1\n"
          "  --kv-sweep          run the paged-vs-reserved KV "
          "discipline sweep (fixed\n"
          "                      pool sizes; recompute and "
          "swap-to-EPC preemption)\n"
          "  --prefix-sweep      run the prefix-caching sweep "
          "(off/per_tenant/global\n"
          "                      sharing on a shared-system-prompt "
          "mix; TTFT and\n"
          "                      $/1k-token deltas); honours the "
          "--prefix-* mix flags\n"
          "  --chunk-sweep       run the chunked-prefill sweep "
          "(monolithic baseline vs\n"
          "                      64..512-token slices; TTFT/ITL "
          "percentiles, max\n"
          "                      single-step prefill tokens, "
          "$/1k-token deltas)\n"
          "  --spec-sweep        run the speculative-decoding sweep "
          "(draft depth k = 1..8\n"
          "                      vs a non-speculative baseline; "
          "accepted length,\n"
          "                      verify steps, ITL percentiles, "
          "$/1k-token deltas);\n"
          "                      honours --spec-ratio / --spec-accept\n"
       << bench::prefixUsage() << bench::chunkUsage()
       << bench::specUsage() << bench::obsUsage();
}

/** Export the recorded trace and report where it went. */
void
finishTrace(const obs::Tracer &tracer, const bench::ObsOptions &opt)
{
    const std::string out =
        obs::traceOutputPath(opt.tracePath, "serve_slo.trace.json");
    obs::writeChromeTraceFile(out, tracer, &obs::Registry::global());
    std::cout << "wrote trace: " << out << " ("
              << tracer.simEvents().size() << " events)\n";
}

int
runFaultMode(std::uint64_t fault_seed, const bench::ObsOptions &opt)
{
    std::cout << "=== Serving under faults: resilience of a TDX "
                 "deployment ===\n";
    std::cout << "fault seed " << fault_seed
              << "; attestation failures, enclave restarts, EPC "
                 "storms, KV exhaustion\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    fault::FaultScheduleConfig fs;
    fs.seed = fault_seed;
    fs.horizon = 700.0;
    fs.attestFail = {1.0 / 120.0, 4.0, 0.0};
    fs.enclaveRestart = {1.0 / 250.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 90.0, 10.0,
                   fault::epcStormSlowdown(6ULL << 30, 4ULL << 30,
                                           0.5)};
    fs.kvExhaustion = {1.0 / 150.0, 15.0, 0.5};

    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 4096;
    cfg.kvBlockTokens = 16;
    cfg.faults = fault::FaultSchedule::generate(fs);
    cfg.weightBytes = model.weightBytes(hw::Dtype::Bf16);
    cfg.resilience.requestTimeout = 120.0;
    cfg.resilience.maxRetries = 3;
    cfg.resilience.retryBackoff = 0.5;
    cfg.resilience.shedOnKvPressure = true;
    cfg.resilience.shedThreshold = 0.95;
    cfg.resilience.degradedMaxBatch = 8;

    ServerConfig baseline = cfg;
    baseline.faults = {};

    // Lane 0 = fault-free baseline, lane 1 = faulty run, so both
    // request timelines land side by side in the viewer.
    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    tracer.laneName(0, "TDX fault-free");
    tracer.laneName(1, "TDX + faults");

    Table t({"run", "avail", "tok/s", "TTFT p95 [s]", "retries",
             "shed", "timeout", "restarts", "downtime [s]"});
    ServeMetrics faulty;
    for (bool with_faults : {false, true}) {
        ServerConfig run_cfg = with_faults ? cfg : baseline;
        if (opt.trace) {
            run_cfg.tracer = &tracer;
            run_cfg.traceLane = with_faults ? 1 : 0;
        }
        Server server(
            makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()), model,
                             deploy),
            run_cfg);
        const ServeMetrics m = server.run(generateWorkload(load));
        if (with_faults)
            faulty = m;
        t.addRow({with_faults ? "TDX + faults" : "TDX fault-free",
                  fmtPct(100.0 * m.availability),
                  fmt(m.tokensPerSecond), fmt(m.ttft.p95, 2),
                  fmtInt(m.retries), fmtInt(m.shed),
                  fmtInt(m.timedOut), fmtInt(m.restarts),
                  fmt(m.faultDowntime, 2)});
    }
    t.print(std::cout);

    std::cout << "\nfault timeline (JSON):\n";
    JsonWriter json(std::cout);
    writeMetrics(json, faulty);
    std::cout << "\n";

    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runKvSweepMode(const bench::ObsOptions &opt)
{
    std::cout << "=== Paged vs reserved KV: batch density at fixed "
                 "enclave memory ===\n";
    std::cout << "TDX deployment, Llama2-7B bf16; reserved pins "
                 "inLen+outLen blocks at admission,\n"
                 "paged admits by free-block headroom and preempts "
                 "(recompute or swap to EPC)\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    struct Variant
    {
        const char *name;
        KvMode mode;
        KvPreemptPolicy preempt;
    };
    const Variant variants[] = {
        {"reserved", KvMode::Reserved, KvPreemptPolicy::Recompute},
        {"paged/recompute", KvMode::Paged,
         KvPreemptPolicy::Recompute},
        {"paged/swap-epc", KvMode::Paged, KvPreemptPolicy::SwapToEpc},
    };

    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    for (std::uint64_t blocks : {768ULL, 1280ULL, 2560ULL}) {
        std::cout << "--- KV pool: " << blocks << " blocks x 16 "
                  << "tokens ---\n";
        Table t({"discipline", "completed", "tok/s", "TTFT p95 [s]",
                 "peak batch", "KV mean", "KV peak", "preempts",
                 "swap [s]"});
        for (const Variant &v : variants) {
            ServerConfig cfg;
            cfg.policy = BatchPolicy::Continuous;
            cfg.kvBlocks = blocks;
            cfg.kvBlockTokens = 16;
            cfg.kvMode = v.mode;
            cfg.paged.preempt = v.preempt;
            cfg.paged.kvBytesPerToken =
                model.kvBytesPerToken(hw::Dtype::Bf16);
            if (opt.trace) {
                cfg.tracer = &tracer;
                cfg.traceLane = lane;
                tracer.laneName(lane,
                                std::to_string(blocks) + " blk / " +
                                    v.name);
            }
            ++lane;
            Server server(
                makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()),
                                 model, deploy),
                cfg);
            const ServeMetrics m = server.run(generateWorkload(load));
            t.addRow({v.name, fmtInt(m.completed),
                      fmt(m.tokensPerSecond), fmt(m.ttft.p95, 2),
                      fmtInt(static_cast<std::size_t>(
                          m.peakBatchOccupancy)),
                      fmtPct(100.0 * m.kvUtilizationMean),
                      fmtPct(100.0 * m.kvUtilizationPeak),
                      fmtInt(m.kvPreemptions),
                      fmt(m.kvSwapSeconds, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runPrefixSweepMode(const bench::PrefixOptions &popt,
                   const bench::ObsOptions &opt)
{
    std::cout << "=== Prefix caching: radix-tree KV reuse on a TDX "
                 "deployment ===\n";
    std::cout << "Llama2-7B bf16, paged KV (2560 blocks x 16 "
                 "tokens); shared-system-prompt mix:\n"
              << popt.mix.tenants << " tenants, "
              << popt.mix.promptsPerTenant << " prompts/tenant, "
              << popt.mix.prefixLen << "-token shared prefixes, "
              << fmtPct(100.0 * popt.mix.sharedFraction)
              << " of requests shared\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);

    std::vector<Request> base = generateWorkload(serveSeedWorkload());
    applySharedPrefixMix(base, popt.mix);

    // Spot-priced node bill, so the prefill seconds a cache hit
    // saves show up as a $/1k-token delta.
    const double instance_hr = cost::cpuInstanceHr(
        cost::gcpSpotUsEast1(), deploy.cores, 256.0);

    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    struct Run
    {
        const char *name;
        PrefixMode mode;
        ServeMetrics m{};
        double usdPer1k = 0.0;
    };
    Run runs[] = {
        {"off", PrefixMode::Off},
        {"per_tenant", PrefixMode::PerTenant},
        {"global", PrefixMode::Global},
    };

    Table t({"prefix mode", "hit rate", "prefill tok", "TTFT p50 [s]",
             "TTFT p95 [s]", "tok/s", "$/1k tok"});
    for (Run &run : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2560;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = KvMode::Paged;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        cfg.prefixMode = run.mode;
        if (opt.trace) {
            cfg.tracer = &tracer;
            cfg.traceLane = lane;
            tracer.laneName(lane, std::string("prefix ") + run.name);
        }
        ++lane;
        Server server(
            makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()),
                             model, deploy),
            cfg);
        run.m = server.run(base);
        run.usdPer1k = cost::costPer1kTokens(
            run.m.outputTokens,
            cost::nodeSecondsUsd(instance_hr, run.m.makespan));
        const std::size_t matches =
            run.m.prefixHits + run.m.prefixMisses;
        t.addRow({run.name,
                  matches ? fmtPct(100.0 * run.m.prefixHits /
                                   static_cast<double>(matches))
                          : std::string("-"),
                  fmtInt(run.m.prefillTokensComputed),
                  fmt(run.m.ttft.p50, 3), fmt(run.m.ttft.p95, 3),
                  fmt(run.m.tokensPerSecond),
                  fmt(run.usdPer1k, 5)});
    }
    t.print(std::cout);

    const Run &off = runs[0];
    std::cout << "\nprefix sweep (JSON):\n";
    JsonWriter json(std::cout);
    json.beginObject();
    json.field("pool_blocks", 2560);
    json.field("block_tokens", 16);
    json.field("tenants", popt.mix.tenants);
    json.field("prefix_len", popt.mix.prefixLen);
    json.field("shared_fraction", popt.mix.sharedFraction);
    json.key("runs");
    json.beginArray();
    for (const Run &run : runs) {
        json.beginObject();
        json.field("prefix_mode", std::string(run.name));
        json.field("ttft_p50_s", run.m.ttft.p50);
        json.field("ttft_p95_s", run.m.ttft.p95);
        json.field("tokens_per_s", run.m.tokensPerSecond);
        json.field("makespan_s", run.m.makespan);
        json.field("prefix_hits", run.m.prefixHits);
        json.field("prefix_misses", run.m.prefixMisses);
        json.field("prefix_cached_tokens", run.m.prefixCachedTokens);
        json.field("prefill_tokens_computed",
                   run.m.prefillTokensComputed);
        json.field("prefix_evictions", run.m.prefixEvictions);
        json.field("cost_per_1k_tokens_usd", run.usdPer1k);
        // Improvements over the cache-off baseline (positive =
        // caching won).
        json.field("ttft_p50_improvement_s",
                   off.m.ttft.p50 - run.m.ttft.p50);
        json.field("ttft_p95_improvement_s",
                   off.m.ttft.p95 - run.m.ttft.p95);
        json.field("prefill_tokens_saved",
                   off.m.prefillTokensComputed -
                       run.m.prefillTokensComputed);
        json.field("cost_per_1k_tokens_improvement_usd",
                   off.usdPer1k - run.usdPer1k);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cout << "\n";

    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runChunkSweepMode(const bench::ObsOptions &opt)
{
    std::cout << "=== Chunked prefill: bounding the per-step TEE "
                 "working set ===\n";
    std::cout << "Llama2-7B bf16 on TDX, paged KV (2560 blocks x 16 "
                 "tokens); monolithic\nbaseline vs decode-priority "
                 "chunking at 64..512-token slices\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const std::vector<Request> base =
        generateWorkload(serveSeedWorkload());

    // Spot-priced node bill so the latency shift prices out as a
    // $/1k-token delta, mirroring the prefix sweep.
    const double instance_hr = cost::cpuInstanceHr(
        cost::gcpSpotUsEast1(), deploy.cores, 256.0);

    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    struct Run
    {
        std::string name;
        unsigned chunkTokens; //!< 0 = chunking off
        ServeMetrics m{};
        double usdPer1k = 0.0;
    };
    std::vector<Run> runs;
    runs.push_back({"off", 0});
    for (unsigned chunk : {64u, 128u, 256u, 512u})
        runs.push_back({"chunk " + std::to_string(chunk), chunk});

    Table t({"schedule", "max step pf", "TTFT p50 [s]", "TTFT p99 [s]",
             "ITL p50 [ms]", "ITL p99 [ms]", "tok/s", "$/1k tok"});
    for (Run &run : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2560;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = KvMode::Paged;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        if (run.chunkTokens) {
            cfg.chunkedPrefill.mode = ChunkMode::DecodePriority;
            cfg.chunkedPrefill.chunkTokens = run.chunkTokens;
        }
        if (opt.trace) {
            cfg.tracer = &tracer;
            cfg.traceLane = lane;
            tracer.laneName(lane, "chunk " + run.name);
        }
        ++lane;
        Server server(
            makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()),
                             model, deploy),
            cfg);
        run.m = server.run(base);
        run.usdPer1k = cost::costPer1kTokens(
            run.m.outputTokens,
            cost::nodeSecondsUsd(instance_hr, run.m.makespan));
        t.addRow({run.name, fmtInt(run.m.maxStepPrefillTokens),
                  fmt(run.m.ttft.p50, 3), fmt(run.m.ttft.p99, 3),
                  fmt(1e3 * run.m.itl.p50, 1),
                  fmt(1e3 * run.m.itl.p99, 1),
                  fmt(run.m.tokensPerSecond),
                  fmt(run.usdPer1k, 5)});
    }
    t.print(std::cout);

    const Run &off = runs[0];
    std::cout << "\nchunk sweep (JSON):\n";
    JsonWriter json(std::cout);
    json.beginObject();
    json.field("pool_blocks", 2560);
    json.field("block_tokens", 16);
    json.field("mode", std::string("decode"));
    json.key("runs");
    json.beginArray();
    for (const Run &run : runs) {
        json.beginObject();
        json.field("chunk_tokens", run.chunkTokens);
        json.field("max_step_prefill_tokens",
                   run.m.maxStepPrefillTokens);
        json.field("ttft_p50_s", run.m.ttft.p50);
        json.field("ttft_p99_s", run.m.ttft.p99);
        json.field("itl_p50_s", run.m.itl.p50);
        json.field("itl_p99_s", run.m.itl.p99);
        json.field("tokens_per_s", run.m.tokensPerSecond);
        json.field("makespan_s", run.m.makespan);
        json.field("completed", run.m.completed);
        json.field("output_tokens", run.m.outputTokens);
        json.field("chunk_slices", run.m.chunkSlices);
        json.field("mixed_steps", run.m.mixedSteps);
        json.field("starvation_kicks", run.m.starvationKicks);
        json.field("cost_per_1k_tokens_usd", run.usdPer1k);
        // Improvements over the monolithic baseline (positive =
        // chunking won).
        json.field("itl_p99_improvement_s",
                   off.m.itl.p99 - run.m.itl.p99);
        json.field("ttft_p99_improvement_s",
                   off.m.ttft.p99 - run.m.ttft.p99);
        json.field("cost_per_1k_tokens_improvement_usd",
                   off.usdPer1k - run.usdPer1k);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cout << "\n";

    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runSpecSweepMode(const bench::SpecOptions &sopt,
                 const bench::ObsOptions &opt)
{
    std::cout << "=== Speculative decoding: amortizing per-step TEE "
                 "overheads ===\n";
    std::cout << "Llama2-7B bf16 on TDX, paged KV (2560 blocks x 16 "
                 "tokens); non-speculative\nbaseline vs draft depth "
                 "k = 1..8 (draft cost ratio "
              << fmt(sopt.draftCostRatio, 2) << ", acceptance "
              << fmt(sopt.acceptProb, 2) << ")\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    // The seed trace backed off to 0.40 req/s: at 0.45 the queue is
    // saturated enough that monolithic-prefill stalls, not decode
    // cadence, set the ITL tail, and deep drafts cannot shift it.
    WorkloadConfig load = serveSeedWorkload();
    load.arrivalRate = 0.40;
    const std::vector<Request> base = generateWorkload(load);

    // Spot-priced node bill so fewer target steps price out as a
    // $/1k-token delta, mirroring the chunk sweep.
    const double instance_hr = cost::cpuInstanceHr(
        cost::gcpSpotUsEast1(), deploy.cores, 256.0);

    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    struct Run
    {
        std::string name;
        unsigned draftTokens; //!< 0 = speculation off
        ServeMetrics m{};
        double usdPer1k = 0.0;
    };
    std::vector<Run> runs;
    runs.push_back({"off", 0});
    for (unsigned k = 1; k <= 8; ++k)
        runs.push_back({"k=" + std::to_string(k), k});

    Table t({"run", "target steps", "mean acc len", "ITL p50 [ms]",
             "ITL p99 [ms]", "tok/s", "$/1k tok"});
    for (Run &run : runs) {
        ServerConfig cfg;
        cfg.policy = BatchPolicy::Continuous;
        cfg.kvBlocks = 2560;
        cfg.kvBlockTokens = 16;
        cfg.kvMode = KvMode::Paged;
        cfg.paged.kvBytesPerToken =
            model.kvBytesPerToken(hw::Dtype::Bf16);
        if (run.draftTokens) {
            bench::SpecOptions per_k = sopt;
            per_k.enabled = true;
            per_k.draftTokens = run.draftTokens;
            bench::applySpecDecode(cfg, per_k);
        }
        if (opt.trace) {
            cfg.tracer = &tracer;
            cfg.traceLane = lane;
            tracer.laneName(lane, "spec " + run.name);
        }
        ++lane;
        Server server(
            makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()),
                             model, deploy),
            cfg);
        run.m = server.run(base);
        run.usdPer1k = cost::costPer1kTokens(
            run.m.outputTokens,
            cost::nodeSecondsUsd(instance_hr, run.m.makespan));
        // Per-sequence verify cycles end in a bonus token or a
        // rejection resample, so their sum counts cycles.
        const std::uint64_t cycles =
            run.m.specBonus + run.m.specRejected;
        const double mean_acc =
            cycles ? static_cast<double>(run.m.specAccepted) /
                         static_cast<double>(cycles)
                   : 0.0;
        t.addRow({run.name, fmtInt(run.m.decodeSteps),
                  run.draftTokens ? fmt(mean_acc, 2)
                                  : std::string("-"),
                  fmt(1e3 * run.m.itl.p50, 1),
                  fmt(1e3 * run.m.itl.p99, 1),
                  fmt(run.m.tokensPerSecond),
                  fmt(run.usdPer1k, 5)});
    }
    t.print(std::cout);

    const Run &off = runs[0];
    std::cout << "\nspec sweep (JSON):\n";
    JsonWriter json(std::cout);
    json.beginObject();
    json.field("pool_blocks", 2560);
    json.field("block_tokens", 16);
    json.field("draft_cost_ratio", sopt.draftCostRatio);
    json.field("accept_prob", sopt.acceptProb);
    json.key("runs");
    json.beginArray();
    for (const Run &run : runs) {
        json.beginObject();
        json.field("draft_tokens", run.draftTokens);
        json.field("spec_verify_steps", run.m.specVerifySteps);
        json.field("spec_draft_tokens", run.m.specDraftTokens);
        json.field("spec_accepted_tokens", run.m.specAccepted);
        json.field("spec_rejected_tokens", run.m.specRejected);
        json.field("spec_bonus_tokens", run.m.specBonus);
        json.field("spec_mean_accepted_len",
                   run.m.specBonus + run.m.specRejected
                       ? static_cast<double>(run.m.specAccepted) /
                             static_cast<double>(run.m.specBonus +
                                                 run.m.specRejected)
                       : 0.0);
        json.field("decode_steps", run.m.decodeSteps);
        json.field("itl_p50_s", run.m.itl.p50);
        json.field("itl_p99_s", run.m.itl.p99);
        json.field("tokens_per_s", run.m.tokensPerSecond);
        json.field("makespan_s", run.m.makespan);
        json.field("completed", run.m.completed);
        json.field("output_tokens", run.m.outputTokens);
        json.field("cost_per_1k_tokens_usd", run.usdPer1k);
        // Improvements over the non-speculative baseline (positive =
        // speculation won).
        json.field("itl_p50_improvement_s",
                   off.m.itl.p50 - run.m.itl.p50);
        json.field("itl_p99_improvement_s",
                   off.m.itl.p99 - run.m.itl.p99);
        json.field("cost_per_1k_tokens_improvement_usd",
                   off.usdPer1k - run.usdPer1k);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cout << "\n";

    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

int
runSloMode(const bench::ChunkOptions &copt,
           const bench::SpecOptions &sopt,
           const bench::ObsOptions &opt)
{
    std::cout << "=== Serving extension: SLO attainment under TEEs "
                 "===\n";
    std::cout << "Llama2-7B bf16; Poisson arrivals; TTFT SLO 2 s, "
                 "TPOT SLO 200 ms/token\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    const llm::RunParams deploy = serveDeployParams(cpu);
    const WorkloadConfig load = serveSeedWorkload();

    struct Deployment
    {
        std::string name;
        std::unique_ptr<StepModel> step;
    };
    std::vector<Deployment> deployments;
    deployments.push_back(
        {"CPU bare", makeCpuStepModel(cpu, sharedBackend(tee::makeBareMetal()),
                                      model, deploy)});
    deployments.push_back(
        {"CPU TDX", makeCpuStepModel(cpu, sharedBackend(tee::makeTdx()), model,
                                     deploy)});
    deployments.push_back(
        {"GPU raw", makeGpuStepModel(hw::h100Nvl(), false, model,
                                     hw::Dtype::Bf16)});
    deployments.push_back(
        {"cGPU", makeGpuStepModel(hw::h100Nvl(), true, model,
                                  hw::Dtype::Bf16)});

    // One trace lane per (policy, deployment) run.
    obs::Tracer tracer(opt.trace ? obs::TraceMode::Sim
                                 : obs::TraceMode::Off);
    std::uint32_t lane = 0;

    for (BatchPolicy policy :
         {BatchPolicy::Continuous, BatchPolicy::Static}) {
        std::cout << "--- " << batchPolicyName(policy)
                  << " batching ---\n";
        Table t({"deployment", "tok/s", "TTFT p50 [s]", "TTFT p95 [s]",
                 "TPOT p95 [ms]", "SLO attainment", "avg batch"});
        for (auto &d : deployments) {
            ServerConfig cfg;
            cfg.policy = policy;
            // Chunked prefill and speculative decoding require
            // continuous batching; the static-batch rows stay
            // monolithic and non-speculative.
            if (policy == BatchPolicy::Continuous) {
                bench::applyChunkedPrefill(cfg, copt);
                if (sopt.enabled)
                    bench::applySpecDecode(cfg, sopt);
            }
            if (opt.trace) {
                cfg.tracer = &tracer;
                cfg.traceLane = lane;
                tracer.laneName(lane, std::string(
                                          batchPolicyName(policy)) +
                                          " / " + d.name);
            }
            ++lane;
            // Re-create the step models per run is unnecessary; Server
            // borrows, so build a fresh server around the same model.
            Server server(
                d.name.rfind("CPU", 0) == 0
                    ? makeCpuStepModel(
                          cpu,
                          sharedBackend(d.name == "CPU TDX"
                                     ? tee::makeTdx()
                                     : tee::makeBareMetal()),
                          model, deploy)
                    : makeGpuStepModel(hw::h100Nvl(), d.name == "cGPU",
                                       model, hw::Dtype::Bf16),
                cfg);
            const ServeMetrics m = server.run(generateWorkload(load));
            t.addRow({d.name, fmt(m.tokensPerSecond),
                      fmt(m.ttft.p50, 2), fmt(m.ttft.p95, 2),
                      fmt(1e3 * m.tpot.p95, 1),
                      fmtPct(100.0 * m.sloAttainment),
                      fmt(m.meanBatchOccupancy, 1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    if (opt.trace)
        finishTrace(tracer, opt);
    bench::writeMetricsSnapshot(opt.metricsOut);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsOptions opt;
    bench::PrefixOptions popt;
    bench::ChunkOptions copt;
    bench::SpecOptions sopt;
    bool fault_mode = false;
    bool kv_sweep = false;
    bool prefix_sweep = false;
    bool chunk_sweep = false;
    bool spec_sweep = false;
    std::uint64_t fault_seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(argv[i], "--faults") == 0) {
            fault_mode = true;
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                fault_seed = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        if (std::strcmp(argv[i], "--kv-sweep") == 0) {
            kv_sweep = true;
            continue;
        }
        if (std::strcmp(argv[i], "--prefix-sweep") == 0) {
            prefix_sweep = true;
            continue;
        }
        if (std::strcmp(argv[i], "--chunk-sweep") == 0) {
            chunk_sweep = true;
            continue;
        }
        if (std::strcmp(argv[i], "--spec-sweep") == 0) {
            spec_sweep = true;
            continue;
        }
        if (bench::parsePrefixArg(popt, argc, argv, i))
            continue;
        if (bench::parseChunkArg(copt, argc, argv, i))
            continue;
        if (bench::parseSpecArg(sopt, argc, argv, i))
            continue;
        if (bench::parseObsArg(opt, argc, argv, i))
            continue;
        std::cerr << "serve_slo: unknown argument '" << argv[i]
                  << "'\n";
        usage(std::cerr);
        return 2;
    }
    if (fault_mode)
        return runFaultMode(fault_seed, opt);
    if (kv_sweep)
        return runKvSweepMode(opt);
    if (prefix_sweep)
        return runPrefixSweepMode(popt, opt);
    if (chunk_sweep)
        return runChunkSweepMode(opt);
    if (spec_sweep)
        return runSpecSweepMode(sopt, opt);
    return runSloMode(copt, sopt, opt);
}
