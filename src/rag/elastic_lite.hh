/**
 * @file
 * ElasticLite: a small in-memory search engine standing in for the
 * Elasticsearch instance the paper runs inside TDX (Section VI).
 * Documents are analyzed into an inverted index; queries are ranked
 * with Okapi BM25. Search returns both results and work counters
 * (postings visited, bytes touched) that the RAG timing model prices
 * under a TEE backend.
 */

#ifndef CLLM_RAG_ELASTIC_LITE_HH
#define CLLM_RAG_ELASTIC_LITE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rag/analyzer.hh"

namespace cllm::rag {

/** Document identifier. */
using DocId = std::uint32_t;

/** One stored document. */
struct Document
{
    DocId id = 0;
    std::string title;
    std::string body;
};

/** One search hit. */
struct SearchHit
{
    DocId id = 0;
    double score = 0.0;
};

/** Work counters of one search, for the timing model. */
struct SearchStats
{
    std::uint64_t postingsVisited = 0;
    std::uint64_t docsScored = 0;
    std::uint64_t bytesTouched = 0;
    std::uint64_t termsLookedUp = 0;
};

/** BM25 parameters (Elasticsearch defaults). */
struct Bm25Params
{
    double k1 = 1.2;
    double b = 0.75;
};

/**
 * In-memory inverted index with BM25 ranking.
 */
class ElasticLite
{
  public:
    explicit ElasticLite(AnalyzerConfig analyzer = {},
                         Bm25Params bm25 = {});

    /** Index one document; returns its id. */
    DocId index(const std::string &title, const std::string &body);

    /** Bulk-index; returns the first id of the contiguous range. */
    DocId bulkIndex(const std::vector<Document> &docs);

    /** Number of indexed documents. */
    std::size_t size() const { return docs_.size(); }

    /** Fetch a stored document. */
    const Document &doc(DocId id) const;

    /** BM25 top-k search. */
    std::vector<SearchHit> search(const std::string &query,
                                  std::size_t k,
                                  SearchStats *stats = nullptr) const;

    /** BM25 score of one document for an analyzed query (testing). */
    double scoreDoc(const std::vector<std::string> &query_terms,
                    DocId id) const;

    /** Approximate index memory footprint in bytes. */
    std::uint64_t indexBytes() const;

    const Analyzer &analyzer() const { return analyzer_; }

  private:
    struct Posting
    {
        DocId doc;
        std::uint32_t freq;
    };

    Analyzer analyzer_;
    Bm25Params bm25_;
    std::vector<Document> docs_;
    std::vector<std::uint32_t> docLens_;
    double totalLen_ = 0.0;
    std::unordered_map<std::string, std::vector<Posting>> postings_;
};

} // namespace cllm::rag

#endif // CLLM_RAG_ELASTIC_LITE_HH
