/**
 * @file
 * Calibration tests for the GPU timing model against the paper's
 * Section V: cGPU overheads of 4-8% that shrink with batch and input
 * size, and the H100's capacity limits.
 */

#include <gtest/gtest.h>

#include "hw/gpu.hh"
#include "llm/model_config.hh"
#include "llm/perf_gpu.hh"
#include "util/stats.hh"

using namespace cllm;
using namespace cllm::llm;

namespace {

double
ccOverheadPct(unsigned batch, unsigned in_len,
              const ModelConfig &model = llama2_7b())
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = batch;
    p.inLen = in_len;
    p.outLen = 128;
    const auto raw = m.run(hw::h100Nvl(), model, p);
    p.confidential = true;
    const auto cc = m.run(hw::h100Nvl(), model, p);
    // Generation-phase throughput, the paper's Figure 11 metric.
    return overheadPct(raw.decodeTput, cc.decodeTput);
}

} // namespace

TEST(PerfGpuFig11, OverheadInPaperBand)
{
    // Paper: oscillates between 7.5% and 4.4% over the sweep.
    for (unsigned batch : {1u, 4u, 16u}) {
        for (unsigned in : {128u, 512u, 2048u}) {
            const double ov = ccOverheadPct(batch, in);
            EXPECT_GT(ov, 2.0) << batch << "x" << in;
            EXPECT_LT(ov, 9.0) << batch << "x" << in;
        }
    }
}

TEST(PerfGpuFig11, OverheadShrinksWithBatch)
{
    EXPECT_GT(ccOverheadPct(1, 128), ccOverheadPct(32, 128));
}

TEST(PerfGpuFig11, OverheadShrinksWithInput)
{
    EXPECT_GT(ccOverheadPct(4, 128), ccOverheadPct(4, 4096));
}

TEST(PerfGpuFig11, ThroughputGrowsWithBatch)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.inLen = 128;
    p.outLen = 64;
    double prev = 0.0;
    for (unsigned b : {1u, 8u, 64u}) {
        p.batch = b;
        const auto r = m.run(hw::h100Nvl(), llama2_7b(), p);
        EXPECT_GT(r.decodeTput, prev);
        prev = r.decodeTput;
    }
}

TEST(PerfGpu, RawGpuFarFasterThanPaperCpuNumbers)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 1;
    p.inLen = 128;
    p.outLen = 64;
    const auto r = m.run(hw::h100Nvl(), llama2_7b(), p);
    // H100 decode of 7B bf16 is worth hundreds of tokens/s.
    EXPECT_GT(r.decodeTput, 100.0);
    EXPECT_LT(r.decodeTput, 1000.0);
}

TEST(PerfGpu, SeventyBDoesNotFit)
{
    // Section V-D4: a single H100 NVL fits ~30B; 70B must be refused.
    GpuPerfModel m;
    GpuRunParams p;
    EXPECT_DEATH(m.run(hw::h100Nvl(), llama2_70b(), p),
                 "exceed GPU memory");
}

TEST(PerfGpu, ThirtyBClassFits)
{
    ModelConfig m30 = llama2_13b();
    m30.name = "30B-class";
    m30.layers = 60;
    m30.hidden = 6656;
    m30.heads = 52;
    m30.kvHeads = 52;
    m30.ffn = 17920;
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 1;
    p.inLen = 128;
    p.outLen = 16;
    const auto r = m.run(hw::h100Nvl(), m30, p);
    EXPECT_GT(r.decodeTput, 0.0);
}

TEST(PerfGpu, KvCacheLimitsBatchAtLongInput)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 256;
    p.inLen = 4096;
    p.outLen = 128;
    EXPECT_DEATH(m.run(hw::h100Nvl(), llama2_7b(), p), "exceed");
}

TEST(PerfGpu, ConfidentialPrefillPaysBounceBuffer)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 8;
    p.inLen = 8000;
    p.outLen = 16;
    const auto raw = m.run(hw::h100Nvl(), llama2_7b(), p);
    p.confidential = true;
    const auto cc = m.run(hw::h100Nvl(), llama2_7b(), p);
    EXPECT_GT(cc.prefillSeconds, raw.prefillSeconds);
}

TEST(PerfGpu, DecodeIsMemoryBoundAtSmallBatch)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 1;
    p.inLen = 128;
    p.outLen = 16;
    EXPECT_TRUE(m.run(hw::h100Nvl(), llama2_7b(), p).memoryBound);
}

TEST(PerfGpu, SeedReproducible)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 2;
    p.inLen = 64;
    p.outLen = 32;
    const auto a = m.run(hw::h100Nvl(), llama2_7b(), p);
    const auto b = m.run(hw::h100Nvl(), llama2_7b(), p);
    EXPECT_EQ(a.tokenLatencies, b.tokenLatencies);
}

TEST(PerfGpuDeath, ZeroBatchFatal)
{
    GpuPerfModel m;
    GpuRunParams p;
    p.batch = 0;
    EXPECT_DEATH(m.run(hw::h100Nvl(), llama2_7b(), p), "positive");
}
