#include "par/pool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace cllm::par {

namespace {

/** Set while a thread is executing chunk bodies; nested parallel
 *  calls on such a thread run inline and sequentially. */
thread_local bool tl_in_task = false;

/** Chunks executed process-wide (all parallel regions). */
obs::Counter &
chunkCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("par.chunks");
    return c;
}

/** One parallelFor invocation. Heap-allocated and shared so a worker
 *  that wakes late still holds the job it saw, never a newer one. */
struct Job
{
    std::function<void(std::size_t, std::size_t, std::size_t)> body;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;

    std::atomic<std::size_t> next{0}; //!< next unclaimed chunk
    std::atomic<std::size_t> done{0}; //!< completed chunks

    std::mutex errMutex;
    std::size_t errChunk = SIZE_MAX; //!< lowest chunk that threw
    std::exception_ptr error;

    std::mutex doneMutex;
    std::condition_variable doneCv;

    /** Claim-and-run loop shared by the caller and the workers. */
    void
    execute()
    {
        tl_in_task = true;
        for (;;) {
            const std::size_t chunk = next.fetch_add(1);
            if (chunk >= chunks)
                break;
            const std::size_t b = begin + chunk * grain;
            const std::size_t e = std::min(b + grain, end);
            chunkCounter().inc();
            try {
                // Wall-clock chunk span, active only under
                // CLLM_TRACE=all; one relaxed load otherwise.
                obs::WallSpan span("par.chunk");
                body(chunk, b, e);
            } catch (...) {
                std::lock_guard<std::mutex> lk(errMutex);
                if (chunk < errChunk) {
                    errChunk = chunk;
                    error = std::current_exception();
                }
            }
            if (done.fetch_add(1) + 1 == chunks) {
                { std::lock_guard<std::mutex> lk(doneMutex); }
                doneCv.notify_all();
            }
        }
        tl_in_task = false;
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lk(doneMutex);
        doneCv.wait(lk, [&] { return done.load() >= chunks; });
    }
};

/**
 * Fixed-size pool of `width - 1` workers (the calling thread is the
 * width-th participant). Jobs are serialized: one parallelFor runs at
 * a time; nested calls run inline. Shutdown joins every worker (TSan
 * clean), triggered from the static destructor or setThreadCount.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    ~ThreadPool() { stopWorkers(); }

    unsigned width() const { return width_; }

    void
    resize(unsigned n)
    {
        std::lock_guard<std::mutex> serial(jobSerialMutex_);
        stopWorkers();
        width_ = n == 0 ? defaultWidth() : n;
        startWorkers();
    }

    void
    run(const std::shared_ptr<Job> &job)
    {
        // Inline when parallelism cannot help or would self-deadlock:
        // nested call from a task, single chunk, or width-1 pool.
        if (tl_in_task || width_ <= 1 || job->chunks <= 1) {
            const bool outer = !tl_in_task;
            for (std::size_t c = 0; c < job->chunks; ++c) {
                const std::size_t b = job->begin + c * job->grain;
                const std::size_t e = std::min(b + job->grain, job->end);
                if (outer)
                    tl_in_task = true;
                chunkCounter().inc();
                try {
                    obs::WallSpan span("par.chunk");
                    job->body(c, b, e);
                } catch (...) {
                    if (outer)
                        tl_in_task = false;
                    throw;
                }
                if (outer)
                    tl_in_task = false;
            }
            return;
        }

        std::lock_guard<std::mutex> serial(jobSerialMutex_);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            job_ = job;
            ++generation_;
        }
        cv_.notify_all();
        job->execute(); // caller participates
        job->wait();
        {
            // Drop the pool's reference before rethrowing so the job
            // (and any captured state) dies with this call.
            std::lock_guard<std::mutex> lk(mutex_);
            job_.reset();
        }
        if (job->error)
            std::rethrow_exception(job->error);
    }

  private:
    ThreadPool() : width_(defaultWidth()) { startWorkers(); }

    static unsigned
    defaultWidth()
    {
        if (const char *env = std::getenv("CLLM_THREADS")) {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && v > 0 && v <= 1024)
                return static_cast<unsigned>(v);
            warn("ignoring invalid CLLM_THREADS=\"", env, "\"");
        }
        const unsigned hc = std::thread::hardware_concurrency();
        return hc == 0 ? 1 : hc;
    }

    void
    startWorkers()
    {
        stop_ = false;
        for (unsigned i = 1; i < width_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : workers_)
            t.join();
        workers_.clear();
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lk(mutex_);
                cv_.wait(lk, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                job = job_;
            }
            if (job)
                job->execute();
        }
    }

    unsigned width_;
    std::vector<std::thread> workers_;

    std::mutex jobSerialMutex_; //!< serializes top-level jobs

    std::mutex mutex_; //!< guards job_/generation_/stop_
    std::condition_variable cv_;
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace

unsigned
threadCount()
{
    return ThreadPool::instance().width();
}

void
setThreadCount(unsigned n)
{
    ThreadPool::instance().resize(n);
}

std::size_t
chunkCount(std::size_t count, std::size_t grain)
{
    if (grain == 0)
        cllm_panic("chunkCount: zero grain");
    return (count + grain - 1) / grain;
}

void
forEachChunk(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &body)
{
    if (grain == 0)
        cllm_panic("forEachChunk: zero grain");
    if (begin >= end)
        return;
    auto job = std::make_shared<Job>();
    job->body = body;
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunks = chunkCount(end - begin, grain);
    ThreadPool::instance().run(job);
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const std::function<void(std::size_t, std::size_t)> &body)
{
    forEachChunk(begin, end, grain,
                 [&](std::size_t, std::size_t b, std::size_t e) {
                     body(b, e);
                 });
}

} // namespace cllm::par
