/**
 * @file
 * End-to-end RAG pipelines (Section VI, Figure 14): BM25, Reranked
 * BM25, and dense SBERT retrieval over ElasticLite, evaluated on a
 * BEIR-style dataset, with per-query work counters priced under a TEE
 * backend by a scalar-workload timing model (RAG is not an AMX
 * workload; it streams the index and scores documents).
 */

#ifndef CLLM_RAG_RAG_PIPELINE_HH
#define CLLM_RAG_RAG_PIPELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "rag/beir.hh"
#include "rag/dense.hh"
#include "rag/elastic_lite.hh"
#include "rag/reranker.hh"
#include "tee/backend.hh"

namespace cllm::rag {

/** Retrieval methods evaluated in the paper. */
enum class RagMethod { Bm25, RerankedBm25, Sbert };

/** Printable method name. */
const char *ragMethodName(RagMethod m);

/** Quality + work outcome of running a benchmark. */
struct RagEvalResult
{
    double ndcg10 = 0.0;
    double recall100 = 0.0;
    double mrr = 0.0;
    /** Aggregate work over all queries. */
    std::uint64_t totalFlops = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t pairsScored = 0;     //!< cross-encoder invocations
    std::uint64_t queriesEmbedded = 0; //!< dense query embeddings
    std::size_t queries = 0;
    double queriesPerSecondFunctional = 0.0; //!< host wall-clock rate
};

/**
 * A ready-to-query RAG deployment: indexes built over a corpus.
 */
class RagPipeline
{
  public:
    /** Build all indexes over a dataset's corpus. */
    explicit RagPipeline(const BeirDataset &dataset);

    /** Retrieve top-k with a method (functional). */
    std::vector<SearchHit> retrieve(RagMethod method,
                                    const std::string &query,
                                    std::size_t k,
                                    SearchStats *sstats = nullptr,
                                    DenseStats *dstats = nullptr,
                                    RerankStats *rstats = nullptr) const;

    /** Run the full benchmark for a method. */
    RagEvalResult evaluate(RagMethod method, std::size_t k = 100) const;

    const ElasticLite &store() const { return store_; }
    const BeirDataset &dataset() const { return *dataset_; }

  private:
    const BeirDataset *dataset_;
    ElasticLite store_;
    MiniSbert embedder_;
    DenseIndex dense_;
    CrossEncoder reranker_;
};

/** Timing of a RAG benchmark under one execution environment. */
struct RagTiming
{
    double meanQuerySeconds = 0.0;
    double totalSeconds = 0.0;
};

/** Knobs of the RAG timing model. */
struct RagPerfConfig
{
    /** Scalar FLOPs per core per cycle RAG code achieves. */
    double scalarOpsPerCycle = 2.2;
    /** Index bytes re-streamed per query beyond counted postings
     *  (cache misses over the full index working set). */
    double indexStreamFraction = 0.35;
    /** Fixed per-query software overhead (parsing, HTTP-ish). */
    double perQueryFixedUs = 180.0;
    /** Syscalls per query (network + storage). */
    double syscallsPerQuery = 24.0;
    /** Kernel-ish operator launches per query on the hot path. */
    double opsPerQuery = 4.0;

    // Production-model equivalents: our functional MiniSbert and
    // feature cross-encoder stand in for SBERT / MiniLM-class models;
    // pricing uses the full-size models' work so Figure 14 has the
    // paper's cost structure.
    double rerankPairFlops = 5.0e7;  //!< distilled cross-encoder pair
    double sbertEmbedFlops = 1.0e8;  //!< SBERT query embedding
    double modelBytesPerFlop = 3.0;  //!< bandwidth-bound inference
    double opsPerPair = 25.0;        //!< launches per reranked pair
    double opsPerEmbed = 25.0;       //!< launches per embedding
};

/**
 * Price a benchmark run on a CPU under a TEE backend.
 */
RagTiming priceRagRun(const hw::CpuSpec &cpu,
                      const tee::TeeBackend &backend,
                      const RagEvalResult &eval,
                      std::uint64_t index_bytes, unsigned cores,
                      const RagPerfConfig &cfg = {});

} // namespace cllm::rag

#endif // CLLM_RAG_RAG_PIPELINE_HH
