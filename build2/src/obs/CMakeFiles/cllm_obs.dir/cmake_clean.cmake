file(REMOVE_RECURSE
  "CMakeFiles/cllm_obs.dir/chrome_export.cc.o"
  "CMakeFiles/cllm_obs.dir/chrome_export.cc.o.d"
  "CMakeFiles/cllm_obs.dir/metrics.cc.o"
  "CMakeFiles/cllm_obs.dir/metrics.cc.o.d"
  "CMakeFiles/cllm_obs.dir/trace.cc.o"
  "CMakeFiles/cllm_obs.dir/trace.cc.o.d"
  "libcllm_obs.a"
  "libcllm_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
