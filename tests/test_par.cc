/**
 * @file
 * Tests for the deterministic parallel execution layer: chunk-shape
 * edge cases, exception propagation, the reduction determinism
 * contract across thread counts, and nested-call behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/pool.hh"
#include "util/rng.hh"

using namespace cllm;

namespace {

/** Scoped thread-count override; restores the default on exit so
 *  test order cannot leak pool state. */
struct ScopedThreads
{
    explicit ScopedThreads(unsigned n) { par::setThreadCount(n); }
    ~ScopedThreads() { par::setThreadCount(0); }
};

} // namespace

TEST(ChunkCount, MatchesCeilDiv)
{
    EXPECT_EQ(par::chunkCount(0, 1), 0u);
    EXPECT_EQ(par::chunkCount(1, 1), 1u);
    EXPECT_EQ(par::chunkCount(10, 3), 4u);
    EXPECT_EQ(par::chunkCount(9, 3), 3u);
    EXPECT_EQ(par::chunkCount(2, 100), 1u);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody)
{
    std::atomic<int> calls{0};
    par::parallelFor(5, 5, 1,
                     [&](std::size_t, std::size_t) { ++calls; });
    par::parallelFor(7, 3, 4,
                     [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk)
{
    std::atomic<int> calls{0};
    std::size_t seen_b = 99, seen_e = 99;
    par::parallelFor(2, 6, 100, [&](std::size_t b, std::size_t e) {
        ++calls;
        seen_b = b;
        seen_e = e;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen_b, 2u);
    EXPECT_EQ(seen_e, 6u);
}

TEST(ParallelFor, SingleElementRange)
{
    std::vector<int> hit(1, 0);
    par::parallelFor(0, 1, 4, [&](std::size_t b, std::size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        hit[b] = 1;
    });
    EXPECT_EQ(hit[0], 1);
}

TEST(ParallelFor, ChunkBoundariesDependOnlyOnRangeAndGrain)
{
    // The same (range, grain) must produce the same chunk set at any
    // thread count — the heart of the determinism contract.
    for (unsigned threads : {1u, 2u, 8u}) {
        ScopedThreads st(threads);
        std::mutex m;
        std::set<std::pair<std::size_t, std::size_t>> chunks;
        par::forEachChunk(
            3, 103, 7,
            [&](std::size_t chunk, std::size_t b, std::size_t e) {
                std::lock_guard<std::mutex> lk(m);
                EXPECT_EQ(b, 3 + chunk * 7);
                EXPECT_EQ(e, std::min<std::size_t>(b + 7, 103));
                chunks.insert({b, e});
            });
        EXPECT_EQ(chunks.size(), par::chunkCount(100, 7));
        // Chunks tile the range with no gaps or overlaps.
        std::size_t expect_b = 3;
        for (const auto &[b, e] : chunks) {
            EXPECT_EQ(b, expect_b);
            expect_b = e;
        }
        EXPECT_EQ(expect_b, 103u);
    }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ScopedThreads st(8);
    std::vector<std::atomic<int>> touched(1000);
    par::parallelFor(0, touched.size(), 9,
                     [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                             touched[i].fetch_add(1);
                     });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ScopedThreads st(4);
    EXPECT_THROW(
        par::parallelFor(0, 100, 1,
                         [&](std::size_t b, std::size_t) {
                             if (b == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);
}

TEST(ParallelFor, PoolUsableAfterException)
{
    ScopedThreads st(4);
    EXPECT_THROW(par::parallelFor(0, 8, 1,
                                  [](std::size_t, std::size_t) {
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    std::atomic<int> calls{0};
    par::parallelFor(0, 8, 1,
                     [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelFor, LowestFailingChunkWinsWhenSeveralThrow)
{
    ScopedThreads st(8);
    try {
        par::parallelFor(0, 64, 1, [](std::size_t b, std::size_t) {
            if (b % 3 == 1) // chunks 1, 4, 7, ... all throw
                throw std::runtime_error("chunk " + std::to_string(b));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "chunk 1");
    }
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    ScopedThreads st(4);
    std::vector<double> out(64, 0.0);
    par::parallelFor(0, 8, 1, [&](std::size_t b0, std::size_t e0) {
        for (std::size_t i = b0; i < e0; ++i) {
            par::parallelFor(0, 8, 1,
                             [&](std::size_t b1, std::size_t e1) {
                                 for (std::size_t j = b1; j < e1; ++j)
                                     out[i * 8 + j] =
                                         static_cast<double>(i * 8 + j);
                             });
        }
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<double>(i));
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity)
{
    const double r = par::parallelReduce(
        4, 4, 2, 42.0,
        [](std::size_t, std::size_t) { return 1.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, 42.0);
}

TEST(ParallelReduce, FloatSumBitIdenticalAcrossThreadCounts)
{
    // A float sum is non-associative, so bit-identity across thread
    // counts holds only because chunk bounds and the combine order
    // are fixed by (range, grain).
    std::vector<float> xs(10007);
    Rng rng(5);
    for (auto &x : xs)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));

    auto sum_at = [&](unsigned threads) {
        ScopedThreads st(threads);
        return par::parallelReduce(
            0, xs.size(), 64, 0.0f,
            [&](std::size_t b, std::size_t e) {
                float s = 0.0f;
                for (std::size_t i = b; i < e; ++i)
                    s += xs[i];
                return s;
            },
            [](float a, float b) { return a + b; });
    };

    const float serial = sum_at(1);
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(serial, sum_at(threads))
            << "thread count " << threads;
}

TEST(ParallelReduce, CombineOrderIsAscendingChunkOrder)
{
    ScopedThreads st(8);
    // Concatenation is order-sensitive: the result pins the fold
    // order to chunk 0, 1, 2, ...
    const auto joined = par::parallelReduce(
        0, 26, 4, std::string{},
        [](std::size_t b, std::size_t e) {
            std::string s;
            for (std::size_t i = b; i < e; ++i)
                s.push_back(static_cast<char>('a' + i));
            return s;
        },
        [](std::string a, std::string b) { return a + b; });
    EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ThreadCount, ResizeAndRestore)
{
    par::setThreadCount(3);
    EXPECT_EQ(par::threadCount(), 3u);
    std::atomic<int> calls{0};
    par::parallelFor(0, 16, 1,
                     [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
    par::setThreadCount(0);
    EXPECT_GE(par::threadCount(), 1u);
}

TEST(ParallelFor, ZeroGrainPanics)
{
    EXPECT_DEATH(par::parallelFor(
                     0, 4, 0, [](std::size_t, std::size_t) {}),
                 "zero grain");
}
