/**
 * @file
 * Confidential RAG chatbot (Section VI): builds a document corpus in
 * an ElasticLite index, retrieves context for a question with all
 * three methods (BM25, reranked BM25, dense SBERT), generates an
 * answer with the functional TinyLlama runtime over the retrieved
 * context, and prices the retrieval under TDX versus bare metal.
 */

#include <iostream>

#include "core/experiment.hh"
#include "llm/runtime.hh"
#include "llm/tokenizer.hh"
#include "rag/rag_pipeline.hh"
#include "util/table.hh"

using namespace cllm;

int
main()
{
    // A small synthetic knowledge base.
    rag::BeirConfig cfg;
    cfg.numDocs = 500;
    cfg.numQueries = 20;
    cfg.seed = 2026;
    const rag::BeirDataset dataset = rag::generateBeir(cfg);
    rag::RagPipeline pipeline(dataset);

    std::cout << "indexed " << pipeline.store().size() << " documents ("
              << pipeline.store().indexBytes() / 1024 << " KiB index)\n\n";

    // Ask one of the benchmark questions with each method.
    const std::string question = dataset.queries.front().text;
    std::cout << "question: \"" << question << "\"\n";
    for (auto method : {rag::RagMethod::Bm25, rag::RagMethod::RerankedBm25,
                        rag::RagMethod::Sbert}) {
        const auto hits = pipeline.retrieve(method, question, 3);
        std::cout << "  " << rag::ragMethodName(method) << " top hit: ";
        if (hits.empty()) {
            std::cout << "(none)\n";
            continue;
        }
        std::cout << "doc " << hits.front().id << " \""
                  << pipeline.store().doc(hits.front().id).title
                  << "\"\n";
    }

    // Generate an answer from the retrieved context with the
    // functional runtime (laptop-scale weights, byte tokenizer).
    llm::ModelConfig tiny;
    tiny.name = "tiny-llama";
    tiny.layers = 2;
    tiny.hidden = 64;
    tiny.heads = 4;
    tiny.kvHeads = 2;
    tiny.ffn = 128;
    tiny.vocab = llm::ByteTokenizer::kVocabSize;
    llm::TinyLlama model(tiny, hw::Dtype::Bf16, 7);
    llm::ByteTokenizer tok;

    const auto best =
        pipeline.retrieve(rag::RagMethod::RerankedBm25, question, 1);
    const std::string context =
        best.empty() ? "" : pipeline.store().doc(best.front().id).body;
    const std::string prompt =
        "context: " + context.substr(0, 96) + "\nq: " + question + "\na:";
    const auto answer_tokens =
        model.generateGreedy(tok.encode(prompt), 24);
    std::cout << "\ngenerated (random weights, demo): \""
              << tok.decode(answer_tokens) << "\"\n\n";

    // Price the full benchmark per method under TDX vs bare metal.
    const hw::CpuSpec cpu = hw::emr2();
    const auto bare = tee::makeBareMetal();
    const auto tdx = tee::makeTdx();
    Table t({"method", "nDCG@10", "bare [ms/q]", "TDX [ms/q]",
             "overhead"});
    for (auto method : {rag::RagMethod::Bm25, rag::RagMethod::RerankedBm25,
                        rag::RagMethod::Sbert}) {
        const auto eval = pipeline.evaluate(method);
        const auto tb = rag::priceRagRun(cpu, *bare, eval,
                                         pipeline.store().indexBytes(),
                                         8);
        const auto tt = rag::priceRagRun(cpu, *tdx, eval,
                                         pipeline.store().indexBytes(),
                                         8);
        t.addRow({rag::ragMethodName(method), fmt(eval.ndcg10, 3),
                  fmt(1e3 * tb.meanQuerySeconds, 3),
                  fmt(1e3 * tt.meanQuerySeconds, 3),
                  fmtPct(100.0 * (tt.meanQuerySeconds /
                                      tb.meanQuerySeconds -
                                  1.0))});
    }
    t.print(std::cout);
    return 0;
}
