#include "rag/rag_pipeline.hh"

#include <chrono>

#include "mem/tlb.hh"
#include "util/logging.hh"

namespace cllm::rag {

const char *
ragMethodName(RagMethod m)
{
    switch (m) {
      case RagMethod::Bm25:
        return "BM25";
      case RagMethod::RerankedBm25:
        return "Reranked BM25";
      case RagMethod::Sbert:
        return "SBERT";
    }
    return "?";
}

RagPipeline::RagPipeline(const BeirDataset &dataset)
    : dataset_(&dataset), embedder_(128, 2048, 7),
      dense_(embedder_.dim()), reranker_(16, 11)
{
    store_.bulkIndex(dataset.corpus);
    for (const auto &doc : dataset.corpus)
        dense_.add(doc.id, embedder_.embed(doc.title + " " + doc.body));
}

std::vector<SearchHit>
RagPipeline::retrieve(RagMethod method, const std::string &query,
                      std::size_t k, SearchStats *sstats,
                      DenseStats *dstats, RerankStats *rstats) const
{
    switch (method) {
      case RagMethod::Bm25:
        return store_.search(query, k, sstats);
      case RagMethod::RerankedBm25: {
        // Retrieve a wider candidate set, then rerank the head.
        auto hits = store_.search(query, std::max<std::size_t>(k, 50),
                                  sstats);
        auto reranked = reranker_.rerank(query, store_, hits, rstats);
        if (reranked.size() > k)
            reranked.resize(k);
        return reranked;
      }
      case RagMethod::Sbert:
        return dense_.search(embedder_.embed(query, dstats), k, dstats);
    }
    cllm_panic("unknown RagMethod");
}

RagEvalResult
RagPipeline::evaluate(RagMethod method, std::size_t k) const
{
    RagEvalResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &q : dataset_->queries) {
        SearchStats ss;
        DenseStats ds;
        RerankStats rs;
        const auto hits = retrieve(method, q.text, k, &ss, &ds, &rs);
        r.ndcg10 += ndcgAtK(hits, q.qrels, 10);
        r.recall100 += recallAtK(hits, q.qrels, 100);
        r.mrr += reciprocalRank(hits, q.qrels);
        r.totalBytes += ss.bytesTouched + ds.bytesTouched;
        r.totalFlops += ds.embedFlops + rs.flops +
                        ss.postingsVisited * 12; // BM25 math per posting
        r.pairsScored += rs.pairsScored;
        if (method == RagMethod::Sbert)
            ++r.queriesEmbedded;
        ++r.queries;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    if (r.queries) {
        r.ndcg10 /= r.queries;
        r.recall100 /= r.queries;
        r.mrr /= r.queries;
        r.queriesPerSecondFunctional =
            wall > 0.0 ? r.queries / wall : 0.0;
    }
    return r;
}

RagTiming
priceRagRun(const hw::CpuSpec &cpu, const tee::TeeBackend &backend,
            const RagEvalResult &eval, std::uint64_t index_bytes,
            unsigned cores, const RagPerfConfig &cfg)
{
    if (eval.queries == 0)
        cllm_fatal("priceRagRun: no queries evaluated");

    tee::TeeRequest req;
    req.sockets = 1;
    req.workingSetBytes = index_bytes;
    req.syscallsPerToken = cfg.syscallsPerQuery;
    const tee::ExecTax tax = backend.tax(cpu, req);

    // Scalar compute rate (RAG does not use AMX).
    const double rate = cfg.scalarOpsPerCycle * cpu.freqGhz * 1e9 *
                        cores * tax.computeFactor;

    // Memory: counted traffic plus a fraction of the index streamed
    // per query (cache-miss refills over the resident index).
    const double per_query_bytes =
        static_cast<double>(eval.totalBytes) / eval.queries +
        cfg.indexStreamFraction * static_cast<double>(index_bytes) /
            eval.queries;

    mem::NumaConfig ncfg = cpu.numa;
    ncfg.upiEncrypted = tax.upiEncrypted;
    mem::NumaModel numa(ncfg);
    double bw = numa.effective(tax.placement, 1).bandwidthBytes;
    // Single-threaded-ish query path: a few cores' worth of bandwidth.
    bw *= 0.35;

    mem::TlbModel tlb(cpu.tlb);
    mem::AccessPattern pattern;
    pattern.workingSetBytes = index_bytes;
    pattern.randomFraction = 0.06; // postings chasing is scattered
    bw *= tlb.bandwidthFactor(bw, tax.effectivePage, tax.xlate, pattern);
    bw *= tax.encBwFactor;

    // Production-model equivalents for the neural components.
    const double pairs_per_q =
        static_cast<double>(eval.pairsScored) / eval.queries;
    const double embeds_per_q =
        static_cast<double>(eval.queriesEmbedded) / eval.queries;
    const double model_flops = pairs_per_q * cfg.rerankPairFlops +
                               embeds_per_q * cfg.sbertEmbedFlops;
    const double model_bytes = model_flops * cfg.modelBytesPerFlop;

    const double per_query_flops =
        static_cast<double>(eval.totalFlops) / eval.queries +
        model_flops;
    const double all_bytes = per_query_bytes + model_bytes;

    const double t_mem =
        all_bytes / bw + all_bytes * tax.extraSecPerByte;
    const double t_comp = per_query_flops / rate;
    const double ops_per_q = cfg.opsPerQuery +
                             pairs_per_q * cfg.opsPerPair +
                             embeds_per_q * cfg.opsPerEmbed;
    const double fixed =
        cfg.perQueryFixedUs * 1e-6 +
        cfg.syscallsPerQuery / 4.0 * tax.perTokenFixedSec +
        ops_per_q * tax.perOpFixedSec;

    RagTiming t;
    t.meanQuerySeconds = t_mem + t_comp + fixed;
    t.totalSeconds = t.meanQuerySeconds * eval.queries;
    return t;
}

} // namespace cllm::rag
