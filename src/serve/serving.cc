#include "serve/serving.hh"

#include <algorithm>
#include <cmath>

#include "serve/engine.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::serve {

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Deterministic:
        return "deterministic";
      case ArrivalProcess::BurstyOnOff:
        return "bursty";
    }
    return "?";
}

std::vector<Request>
generateWorkload(const WorkloadConfig &cfg)
{
    if (cfg.arrivalRate <= 0.0 || cfg.numRequests == 0)
        cllm_fatal("generateWorkload: degenerate workload");
    if (cfg.process == ArrivalProcess::BurstyOnOff &&
        (cfg.burstRateFactor <= 0.0 || cfg.idleRateFactor <= 0.0 ||
         cfg.meanOnSec <= 0.0 || cfg.meanOffSec <= 0.0))
        cllm_fatal("generateWorkload: degenerate bursty phases");
    Rng rng(cfg.seed);
    // Exponential gap at `rate`; the rejection loop and draw order
    // match the original Poisson-only generator exactly, which keeps
    // seeded Poisson traces stable across the arrival-process seam.
    auto exp_gap = [&rng](double rate) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        return -std::log(u) / rate;
    };
    std::vector<Request> out;
    out.reserve(cfg.numRequests);
    double clock = 0.0;
    bool on = true;
    double phase_end =
        cfg.process == ArrivalProcess::BurstyOnOff
            ? exp_gap(1.0 / cfg.meanOnSec)
            : 0.0;
    for (unsigned i = 0; i < cfg.numRequests; ++i) {
        switch (cfg.process) {
          case ArrivalProcess::Poisson:
            clock += exp_gap(cfg.arrivalRate);
            break;
          case ArrivalProcess::Deterministic:
            clock += 1.0 / cfg.arrivalRate;
            break;
          case ArrivalProcess::BurstyOnOff:
            // Modulated Poisson: draw at the current phase's rate;
            // a gap crossing the phase boundary is redrawn from the
            // boundary at the next phase's rate (memorylessness).
            for (;;) {
                const double rate =
                    cfg.arrivalRate * (on ? cfg.burstRateFactor
                                          : cfg.idleRateFactor);
                const double gap = exp_gap(rate);
                if (clock + gap <= phase_end) {
                    clock += gap;
                    break;
                }
                clock = phase_end;
                on = !on;
                phase_end =
                    clock + exp_gap(1.0 / (on ? cfg.meanOnSec
                                              : cfg.meanOffSec));
            }
            break;
        }
        Request r;
        r.id = i;
        r.arrival = clock;
        r.inLen = std::max<unsigned>(
            8, static_cast<unsigned>(
                   rng.lognormal(cfg.meanInLen, cfg.lengthSigma)));
        r.outLen = std::max<unsigned>(
            4, static_cast<unsigned>(
                   rng.lognormal(cfg.meanOutLen, cfg.lengthSigma)));
        out.push_back(r);
    }
    return out;
}

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Static:
        return "static";
      case BatchPolicy::Continuous:
        return "continuous";
    }
    return "?";
}

const char *
kvModeName(KvMode m)
{
    switch (m) {
      case KvMode::Reserved:
        return "reserved";
      case KvMode::Paged:
        return "paged";
    }
    return "?";
}

KvMode
parseKvMode(const std::string &name)
{
    if (name == "reserved")
        return KvMode::Reserved;
    if (name == "paged")
        return KvMode::Paged;
    cllm_fatal("unknown KV mode '", name, "' (reserved|paged)");
}

const char *
kvPreemptPolicyName(KvPreemptPolicy p)
{
    switch (p) {
      case KvPreemptPolicy::Recompute:
        return "recompute";
      case KvPreemptPolicy::SwapToEpc:
        return "swap";
    }
    return "?";
}

const char *
prefixModeName(PrefixMode m)
{
    switch (m) {
      case PrefixMode::Off:
        return "off";
      case PrefixMode::PerTenant:
        return "per_tenant";
      case PrefixMode::Global:
        return "global";
    }
    return "?";
}

PrefixMode
parsePrefixMode(const std::string &name)
{
    if (name == "off")
        return PrefixMode::Off;
    if (name == "per_tenant")
        return PrefixMode::PerTenant;
    if (name == "global")
        return PrefixMode::Global;
    cllm_fatal("unknown prefix mode '", name,
               "' (off|per_tenant|global)");
}

const char *
chunkModeName(ChunkMode m)
{
    switch (m) {
      case ChunkMode::Off:
        return "off";
      case ChunkMode::DecodePriority:
        return "decode";
      case ChunkMode::PrefillPriority:
        return "prefill";
    }
    return "?";
}

ChunkMode
parseChunkMode(const std::string &name)
{
    if (name == "off")
        return ChunkMode::Off;
    if (name == "decode")
        return ChunkMode::DecodePriority;
    if (name == "prefill")
        return ChunkMode::PrefillPriority;
    cllm_fatal("unknown chunk mode '", name,
               "' (off|decode|prefill)");
}

void
applySharedPrefixMix(std::vector<Request> &trace,
                     const SharedPrefixMix &mix)
{
    if (mix.tenants == 0 || mix.promptsPerTenant == 0)
        cllm_fatal("applySharedPrefixMix: degenerate mix");
    // Token streams are split-seeded per request, never touching the
    // workload generator's RNG: annotating a trace cannot perturb
    // arrivals or lengths.
    for (Request &r : trace) {
        Rng rng(splitSeed(mix.seed, r.id));
        r.tenant = static_cast<std::uint32_t>(
            rng.uniformInt(0, mix.tenants - 1));
        const bool shared = rng.chance(mix.sharedFraction);
        const unsigned group = static_cast<unsigned>(
            rng.uniformInt(0, mix.promptsPerTenant - 1));
        const unsigned plen = std::min(mix.prefixLen, r.inLen);
        r.promptTokens.resize(r.inLen);
        for (unsigned j = 0; j < r.inLen; ++j) {
            // Shared heads are a pure function of (tenant, group,
            // position); tails and unshared prompts are unique per
            // request id.
            const std::uint64_t tok =
                (shared && j < plen)
                    ? splitSeed(splitSeed(0x9e3779b97f4a7c15ULL ^
                                              r.tenant,
                                          group),
                                j)
                    : splitSeed(splitSeed(0xc2b2ae3d27d4eb4fULL,
                                          r.id),
                                j);
            r.promptTokens[j] =
                static_cast<std::int32_t>(tok & 0x7fffffff);
        }
    }
}

namespace {

/** CPU-backed step model. */
class CpuStepModel : public StepModel
{
  public:
    CpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
        : cpu_(cpu), backend_(std::move(backend)), model_(model),
          params_(params)
    {
        rates_ = perf_.rates(cpu_, *backend_, model_, params_);
    }

    double
    prefill(unsigned in_len) const override
    {
        return perf_.prefillSeconds(rates_, model_, params_, in_len);
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        return perf_.decodeStepSeconds(rates_, model_, params_, nseq,
                                       avg_pos);
    }

    double
    prefillChunk(unsigned done, unsigned chunk,
                 bool shared) const override
    {
        return perf_.prefillChunkSeconds(rates_, model_, params_,
                                         done, chunk, shared);
    }

    double
    verifyStep(double nseq, double k, double avg_pos) const override
    {
        return perf_.verifyStepSeconds(rates_, model_, params_, nseq,
                                       k, avg_pos);
    }

  private:
    hw::CpuSpec cpu_;
    std::shared_ptr<const tee::TeeBackend> backend_;
    llm::ModelConfig model_;
    llm::RunParams params_;
    llm::CpuPerfModel perf_;
    llm::DeploymentRates rates_;
};

/** GPU-backed step model. */
class GpuStepModel : public StepModel
{
  public:
    GpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
        : gpu_(gpu), model_(model), dtype_(dtype)
    {
        tax_ = confidential ? tee::cgpuTax(gpu) : tee::GpuTax{};
    }

    double
    prefill(unsigned in_len) const override
    {
        const double s = in_len;
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            2.0 * static_cast<double>(model_.matmulParams()) * s +
            2.0 * model_.layers * model_.hidden * s * s;
        const double rate =
            gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bytes = model_.weightBytes(dtype_) +
                             model_.kvBytesPerToken(dtype_) * s;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch + s * 4.0 / host_bw;
    }

    double
    decodeStep(double nseq, double avg_pos) const override
    {
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            nseq *
            (2.0 * static_cast<double>(model_.matmulParams()) +
             4.0 * model_.layers * model_.hidden * avg_pos);
        const double bytes =
            model_.weightBytes(dtype_) +
            nseq * model_.kvBytesPerToken(dtype_) * (avg_pos + 1.0);
        const double rate = gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch +
               nseq * cfg.hostBytesPerToken / host_bw;
    }

    double
    prefillChunk(unsigned done, unsigned chunk,
                 bool shared) const override
    {
        // Marginal working set of one slice: its own attention FLOPs
        // (the s^2 term over [done, done+chunk)), the KV it writes
        // plus the prefix KV it re-reads — and the weights only when
        // the slice runs alone. A shared step already streamed the
        // weights through the CC bounce buffer for the co-scheduled
        // work, so the slice rides along; the per-launch encryption
        // cost, however, is paid in full by every slice, which is
        // exactly the unamortized overhead that makes tiny chunks
        // expensive on a confidential GPU.
        const double s = chunk;
        const double t1 = static_cast<double>(done) + s;
        const double t0 = done;
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            2.0 * static_cast<double>(model_.matmulParams()) * s +
            2.0 * model_.layers * model_.hidden * (t1 * t1 - t0 * t0);
        const double rate = gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bytes =
            (shared ? 0.0 : model_.weightBytes(dtype_)) +
            model_.kvBytesPerToken(dtype_) * (s + t0);
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch + s * 4.0 / host_bw;
    }

    double
    verifyStep(double nseq, double k, double avg_pos) const override
    {
        // One fused pass scores k+1 positions per sequence: matmul
        // FLOPs and attention scale with the width (attention at the
        // mean depth), KV is read once per scored position, but the
        // weight stream and — decisively for CC mode — the per-step
        // kernel launches with their encryption overhead happen once.
        // Host-link bounce-buffer traffic is per emitted token, so it
        // scales with the width. k = 0 reduces to decodeStep exactly.
        const double width = k + 1.0;
        const double mid = avg_pos + k / 2.0;
        const llm::GpuPerfConfig &cfg = perf_.config();
        const double flops =
            nseq * width *
            (2.0 * static_cast<double>(model_.matmulParams()) +
             4.0 * model_.layers * model_.hidden * mid);
        const double bytes =
            model_.weightBytes(dtype_) +
            nseq * model_.kvBytesPerToken(dtype_) * width *
                (mid + 1.0);
        const double rate = gpu_.peakOps(dtype_) * cfg.computeEff;
        const double bw =
            gpu_.hbmBwBytes * cfg.memEff * tax_.hbmBwFactor;
        const double launch =
            gpu_.kernelLaunchUs * 1e-6 + tax_.launchExtraSec;
        const double host_bw = tax_.hostLinkBwBytes > 0.0
                                   ? tax_.hostLinkBwBytes
                                   : gpu_.pcieBwBytes;
        return std::max(flops / rate, bytes / bw) +
               cfg.launchesPerStep * launch +
               nseq * width * cfg.hostBytesPerToken / host_bw;
    }

  private:
    hw::GpuSpec gpu_;
    llm::ModelConfig model_;
    hw::Dtype dtype_;
    tee::GpuTax tax_;
    llm::GpuPerfModel perf_;
};

} // namespace

std::unique_ptr<StepModel>
makeCpuStepModel(const hw::CpuSpec &cpu,
                 std::shared_ptr<const tee::TeeBackend> backend,
                 const llm::ModelConfig &model,
                 const llm::RunParams &params)
{
    return std::make_unique<CpuStepModel>(cpu, std::move(backend), model,
                                          params);
}

std::unique_ptr<StepModel>
makeGpuStepModel(const hw::GpuSpec &gpu, bool confidential,
                 const llm::ModelConfig &model, hw::Dtype dtype)
{
    return std::make_unique<GpuStepModel>(gpu, confidential, model,
                                          dtype);
}

Server::Server(std::unique_ptr<StepModel> step, ServerConfig cfg)
    : step_(std::move(step)), cfg_(std::move(cfg))
{
    if (!step_)
        cllm_fatal("Server requires a step model");
    if (cfg_.maxBatch == 0)
        cllm_fatal("Server: zero batch capacity");
    if (!cfg_.faults.empty()) {
        if (cfg_.policy == BatchPolicy::Static)
            cllm_fatal("Server: fault injection requires continuous "
                       "batching");
        if (cfg_.resilience.retryBackoff <= 0.0)
            cllm_fatal("Server: fault injection requires a positive "
                       "retry backoff");
    }
    if (cfg_.resilience.backoffMultiplier < 1.0)
        cllm_fatal("Server: backoff multiplier below 1");
    if (cfg_.resilience.shedOnKvPressure &&
        (cfg_.resilience.shedThreshold <= 0.0 ||
         cfg_.resilience.shedThreshold > 1.0))
        cllm_fatal("Server: shed threshold outside (0, 1]");
    if (cfg_.kvMode == KvMode::Paged) {
        if (cfg_.policy == BatchPolicy::Static)
            cllm_fatal("Server: paged KV requires continuous "
                       "batching");
        if (cfg_.kvBlocks == 0)
            cllm_fatal("Server: paged KV requires a bounded pool");
        if (cfg_.paged.minFreeBlocks >= cfg_.kvBlocks)
            cllm_fatal("Server: paged KV watermark swallows the "
                       "pool");
        if (cfg_.paged.preempt == KvPreemptPolicy::SwapToEpc &&
            cfg_.paged.kvBytesPerToken <= 0.0)
            cllm_fatal("Server: swap preemption requires KV bytes "
                       "per token");
    }
    if (cfg_.prefixMode != PrefixMode::Off &&
        cfg_.kvMode != KvMode::Paged)
        cllm_fatal("Server: prefix caching requires paged KV");
    if (cfg_.chunkedPrefill.mode != ChunkMode::Off) {
        if (cfg_.policy == BatchPolicy::Static)
            cllm_fatal("Server: chunked prefill requires continuous "
                       "batching");
        if (cfg_.chunkedPrefill.chunkTokens == 0)
            cllm_fatal("Server: zero chunk size");
        if (cfg_.chunkedPrefill.stepTokenBudget != 0 &&
            cfg_.chunkedPrefill.stepTokenBudget <
                cfg_.chunkedPrefill.chunkTokens)
            cllm_fatal("Server: step token budget below the chunk "
                       "size");
        if (cfg_.chunkedPrefill.starvationIters == 0)
            cllm_fatal("Server: zero starvation-guard window");
    }
    if (cfg_.specDecode.enabled) {
        if (cfg_.policy == BatchPolicy::Static)
            cllm_fatal("Server: speculative decoding requires "
                       "continuous batching");
        if (cfg_.specDecode.draftTokens == 0)
            cllm_fatal("Server: speculative decoding with zero draft "
                       "tokens");
        if (cfg_.specDecode.draftCostRatio <= 0.0 ||
            cfg_.specDecode.draftCostRatio >= 1.0)
            cllm_fatal("Server: draft cost ratio outside (0, 1)");
        if (cfg_.specDecode.acceptProb < 0.0 ||
            cfg_.specDecode.acceptProb > 1.0)
            cllm_fatal("Server: acceptance probability outside "
                       "[0, 1]");
    }
}

ServeMetrics
Server::run(std::vector<Request> trace) const
{
    std::vector<Request> annotated;
    return run(std::move(trace), annotated);
}

ServeMetrics
Server::run(std::vector<Request> trace,
            std::vector<Request> &annotated) const
{
    if (trace.empty())
        cllm_fatal("Server::run: empty trace");
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    ServeMetrics m = cfg_.policy == BatchPolicy::Static
                         ? runStatic(trace)
                         : runContinuous(trace);
    annotated = std::move(trace);
    return m;
}

ServeMetrics
Server::runStatic(std::vector<Request> &trace) const
{
    double clock = 0.0;
    double occupancy_sum = 0.0;
    unsigned peak_active = 0;
    std::size_t steps = 0;
    std::size_t next = 0;

    while (next < trace.size()) {
        // Form the next batch from queued arrivals.
        clock = std::max(clock, trace[next].arrival);
        std::vector<Request *> batch;
        while (next < trace.size() && batch.size() < cfg_.maxBatch &&
               trace[next].arrival <= clock) {
            batch.push_back(&trace[next]);
            ++next;
        }

        // Prefill everyone, then decode until the whole batch drains.
        for (Request *r : batch) {
            clock += step_->prefill(r->inLen);
            r->firstToken = clock;
        }
        unsigned max_out = 0;
        for (Request *r : batch)
            max_out = std::max(max_out, r->outLen);
        for (unsigned t = 0; t < max_out; ++t) {
            unsigned active = 0;
            double avg_pos = 0.0;
            for (Request *r : batch) {
                if (t < r->outLen) {
                    ++active;
                    avg_pos += r->inLen + t;
                }
            }
            if (active == 0)
                break;
            avg_pos /= active;
            clock += step_->decodeStep(active, avg_pos);
            occupancy_sum += active;
            peak_active = std::max(peak_active, active);
            ++steps;
            for (Request *r : batch) {
                if (t + 1 == r->outLen)
                    r->finish = clock;
            }
        }
    }
    ServeMetrics m =
        finalize(trace, clock, occupancy_sum, steps, ServeTally{});
    m.peakBatchOccupancy = peak_active;
    return m;
}

ServeMetrics
Server::runContinuous(std::vector<Request> &trace) const
{
    // The loop itself lives in ContinuousEngine so the fleet layer
    // can drive the identical simulation incrementally; submitting
    // the whole trace up front and iterating to quiescence is
    // bit-identical to the historical in-place loop.
    ContinuousEngine eng(*step_, cfg_);
    for (Request &r : trace)
        eng.submit(&r, r.arrival, 0);
    while (!eng.idle())
        eng.iterate();
    ServeMetrics m = finalize(trace, eng.clock(), eng.occupancySum(),
                              eng.steps(), eng.tally());
    m.kvUtilizationPeak = eng.kvPeak();
    m.kvUtilizationMean = eng.kvUtilizationMean();
    m.peakBatchOccupancy = static_cast<double>(eng.peakBatch());
    m.faultTimeline = eng.timeline();
    return m;
}

ServeMetrics
Server::finalize(const std::vector<Request> &trace, double makespan,
                 double occupancy_sum, std::size_t steps,
                 const ServeTally &tally) const
{
    std::vector<const Request *> reqs;
    reqs.reserve(trace.size());
    for (const Request &r : trace)
        reqs.push_back(&r);
    return finalizeRequests(reqs, makespan, occupancy_sum, steps,
                            tally, cfg_.ttftSlo, cfg_.tpotSlo);
}


void
writeMetrics(JsonWriter &json, const ServeMetrics &m)
{
    json.beginObject();
    json.field("completed", m.completed);
    json.field("submitted", m.submitted);
    json.field("availability", m.availability);
    json.field("makespan_s", m.makespan);
    json.field("tokens_per_s", m.tokensPerSecond);
    json.field("output_tokens", m.outputTokens);
    json.field("ttft_p50_s", m.ttft.p50);
    json.field("ttft_p95_s", m.ttft.p95);
    json.field("tpot_p95_s", m.tpot.p95);
    json.field("slo_attainment", m.sloAttainment);
    json.field("mean_batch_occupancy", m.meanBatchOccupancy);
    json.field("peak_batch_occupancy", m.peakBatchOccupancy);
    json.field("kv_utilization_peak", m.kvUtilizationPeak);
    json.field("kv_utilization_mean", m.kvUtilizationMean);
    json.field("kv_preemptions", m.kvPreemptions);
    json.field("kv_swap_outs", m.kvSwapOuts);
    json.field("kv_swap_ins", m.kvSwapIns);
    json.field("kv_swap_s", m.kvSwapSeconds);
    if (m.prefixEnabled) {
        json.field("prefix_hits", m.prefixHits);
        json.field("prefix_misses", m.prefixMisses);
        json.field("prefix_cached_tokens", m.prefixCachedTokens);
        json.field("prefill_tokens_computed",
                   m.prefillTokensComputed);
        json.field("prefix_evictions", m.prefixEvictions);
        json.field("prefix_evicted_blocks", m.prefixEvictedBlocks);
        json.field("prefix_pinned_peak_blocks", m.prefixPinnedPeak);
    }
    if (m.chunkedEnabled) {
        json.field("itl_p50_s", m.itl.p50);
        json.field("itl_p95_s", m.itl.p95);
        json.field("itl_p99_s", m.itl.p99);
        json.field("chunk_slices", m.chunkSlices);
        json.field("chunk_prefill_tokens", m.chunkPrefillTokens);
        json.field("mixed_steps", m.mixedSteps);
        json.field("starvation_kicks", m.starvationKicks);
        json.field("max_step_prefill_tokens", m.maxStepPrefillTokens);
    }
    if (m.specEnabled) {
        json.field("spec_verify_steps", m.specVerifySteps);
        json.field("spec_draft_tokens", m.specDraftTokens);
        json.field("spec_accepted_tokens", m.specAccepted);
        json.field("spec_rejected_tokens", m.specRejected);
        json.field("spec_bonus_tokens", m.specBonus);
        // Each per-sequence verify cycle ends in either a bonus
        // token (k/k accepted) or a rejection resample, so their sum
        // counts cycles and accepted/cycles is the mean accepted
        // draft length.
        json.field("spec_mean_accepted_len",
                   m.specBonus + m.specRejected
                       ? static_cast<double>(m.specAccepted) /
                             static_cast<double>(m.specBonus +
                                                 m.specRejected)
                       : 0.0);
        // ITL is tracked in every mode but emitted by the chunked
        // block when chunking is on; spec-only runs surface it here.
        if (!m.chunkedEnabled) {
            json.field("itl_p50_s", m.itl.p50);
            json.field("itl_p95_s", m.itl.p95);
            json.field("itl_p99_s", m.itl.p99);
        }
    }
    json.field("retries", m.retries);
    json.field("shed", m.shed);
    json.field("timed_out", m.timedOut);
    json.field("failed", m.failed);
    json.field("restarts", m.restarts);
    json.field("attest_rejections", m.attestRejections);
    json.field("fault_downtime_s", m.faultDowntime);
    json.key("fault_timeline");
    fault::writeTimeline(json, m.faultTimeline);
    json.endObject();
}

} // namespace cllm::serve
