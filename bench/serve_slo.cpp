/**
 * @file
 * Serving extension: online SLO behaviour of confidential deployments
 * — an operational reading of Insight 11. Replays a Poisson trace
 * against CPU (bare/TDX) and GPU (raw/cGPU) deployments under static
 * and continuous batching, reporting TTFT/TPOT percentiles, SLO
 * attainment (200 ms/token, the paper's reading-speed bar), and
 * sustained tokens/s.
 */

#include <iostream>
#include <memory>

#include "serve/serving.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

} // namespace

int
main()
{
    std::cout << "=== Serving extension: SLO attainment under TEEs "
                 "===\n";
    std::cout << "Llama2-7B bf16; Poisson arrivals; TTFT SLO 2 s, "
                 "TPOT SLO 200 ms/token\n\n";

    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy;
    deploy.inLen = 1024;
    deploy.outLen = 256;
    deploy.batch = 32;
    deploy.sockets = 1;
    deploy.cores = cpu.coresPerSocket;

    WorkloadConfig load;
    load.arrivalRate = 0.45;
    load.numRequests = 250;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 99;

    struct Deployment
    {
        std::string name;
        std::unique_ptr<StepModel> step;
    };
    std::vector<Deployment> deployments;
    deployments.push_back(
        {"CPU bare", makeCpuStepModel(cpu, shared(tee::makeBareMetal()),
                                      model, deploy)});
    deployments.push_back(
        {"CPU TDX", makeCpuStepModel(cpu, shared(tee::makeTdx()), model,
                                     deploy)});
    deployments.push_back(
        {"GPU raw", makeGpuStepModel(hw::h100Nvl(), false, model,
                                     hw::Dtype::Bf16)});
    deployments.push_back(
        {"cGPU", makeGpuStepModel(hw::h100Nvl(), true, model,
                                  hw::Dtype::Bf16)});

    for (BatchPolicy policy :
         {BatchPolicy::Continuous, BatchPolicy::Static}) {
        std::cout << "--- " << batchPolicyName(policy)
                  << " batching ---\n";
        Table t({"deployment", "tok/s", "TTFT p50 [s]", "TTFT p95 [s]",
                 "TPOT p95 [ms]", "SLO attainment", "avg batch"});
        for (auto &d : deployments) {
            ServerConfig cfg;
            cfg.policy = policy;
            // Re-create the step models per run is unnecessary; Server
            // borrows, so build a fresh server around the same model.
            Server server(
                d.name.rfind("CPU", 0) == 0
                    ? makeCpuStepModel(
                          cpu,
                          shared(d.name == "CPU TDX"
                                     ? tee::makeTdx()
                                     : tee::makeBareMetal()),
                          model, deploy)
                    : makeGpuStepModel(hw::h100Nvl(), d.name == "cGPU",
                                       model, hw::Dtype::Bf16),
                cfg);
            const ServeMetrics m = server.run(generateWorkload(load));
            t.addRow({d.name, fmt(m.tokensPerSecond),
                      fmt(m.ttft.p50, 2), fmt(m.ttft.p95, 2),
                      fmt(1e3 * m.tpot.p95, 1),
                      fmtPct(100.0 * m.sloAttainment),
                      fmt(m.meanBatchOccupancy, 1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
