# Empty dependencies file for resilient_serving.
# This may be replaced when dependencies are built.
