/**
 * @file
 * Statistics helpers used throughout the benchmark harness: streaming
 * moments, percentiles, and the Z-score outlier filter the paper applies
 * to per-token latency samples (Section III-D, Z > 3).
 */

#ifndef CLLM_UTIL_STATS_HH
#define CLLM_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace cllm {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 * Numerically stable; O(1) memory.
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (Chan et al.). */
    void merge(const OnlineStats &other);

    /** Number of samples seen so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 when n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return n_ ? mean_ * n_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a sample set via linear interpolation between closest
 * ranks (the "linear" / type-7 method). p in [0, 100]; out-of-range p
 * panics. Edge cases are well-defined: an empty sample set yields 0
 * (matching OnlineStats and SampleSummary), a single sample is every
 * percentile of itself, and p = 0 / p = 100 are exactly min / max.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Several percentiles of one sample set in a single pass: the samples
 * are copied once and partially ordered with nth_element per distinct
 * rank (ascending, over an ever-shrinking suffix) instead of fully
 * sorted once per percentile. Bit-identical to calling percentile()
 * for each entry of `ps` — same type-7 interpolation, same edge
 * cases — just cheaper: O(n · |ps|) worst case instead of
 * O(n log n · |ps|). Returns one value per entry of `ps`, in the
 * caller's order (which need not be sorted).
 */
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double> &ps);

/** Median (50th percentile); 0 when empty. */
double median(std::vector<double> samples);

/**
 * Drop samples whose Z-score exceeds `z_max`, as the paper does for
 * TEE memory-encryption outliers (Z > 3 excluded ~0.64% of samples).
 *
 * @param samples input samples (unmodified)
 * @param z_max threshold on |x - mean| / stddev
 * @param removed optional out-param: number of dropped samples
 * @return surviving samples in original order
 */
std::vector<double> zScoreFilter(const std::vector<double> &samples,
                                 double z_max,
                                 std::size_t *removed = nullptr);

/** Summary of a sample set after optional outlier filtering. */
struct SampleSummary
{
    std::size_t count = 0;      //!< samples after filtering
    std::size_t outliers = 0;   //!< samples removed by the Z filter
    double mean = 0.0;
    double stddev = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Build a SampleSummary, filtering at Z > z_max first (0 disables). */
SampleSummary summarize(const std::vector<double> &samples,
                        double z_max = 3.0);

/** Relative overhead of `value` versus `baseline`, as a fraction. */
double overhead(double value, double baseline);

/** Relative overhead in percent. */
double overheadPct(double value, double baseline);

} // namespace cllm

#endif // CLLM_UTIL_STATS_HH
