# Empty dependencies file for secure_weight_provisioning.
# This may be replaced when dependencies are built.
