#include "fault/injector.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "util/json.hh"

namespace cllm::fault {

namespace {

bool
windowActive(const FaultEvent &e, double t)
{
    return t >= e.time && t < e.time + e.duration;
}

} // namespace

FaultInjector::FaultInjector(const FaultSchedule &schedule)
{
    records_.reserve(schedule.size());
    for (const FaultEvent &e : schedule.events())
        records_.push_back(FaultRecord{e, -1.0, 0});
}

void
FaultInjector::setTrace(obs::Tracer *tracer, std::uint32_t lane)
{
    tracer_ = tracer;
    traceLane_ = lane;
}

void
FaultInjector::touch(FaultRecord &r, double t, unsigned impact)
{
    if (r.applied < 0.0) {
        r.applied = t;
        if (tracer_ && tracer_->simEnabled()) {
            tracer_->instant(
                traceLane_,
                std::string("fault:") +
                    faultKindName(r.event.kind),
                t,
                {{"scheduled", r.event.time},
                 {"duration", r.event.duration},
                 {"magnitude", r.event.magnitude}},
                {{"cause", faultKindName(r.event.kind)}});
        }
    }
    r.affected += impact;
}

double
FaultInjector::slowdown(double t)
{
    double factor = 1.0;
    for (FaultRecord &r : records_) {
        if (r.event.kind != FaultKind::EpcStorm)
            continue;
        if (!windowActive(r.event, t))
            continue;
        factor *= std::max(1.0, r.event.magnitude);
        touch(r, t, 1);
    }
    return factor;
}

bool
FaultInjector::attestationFails(double t)
{
    bool fails = false;
    for (FaultRecord &r : records_) {
        if (r.event.kind != FaultKind::AttestFail)
            continue;
        if (!windowActive(r.event, t))
            continue;
        touch(r, t, 1);
        fails = true;
    }
    return fails;
}

double
FaultInjector::kvCapacityFactor(double t)
{
    double lost = 0.0;
    for (FaultRecord &r : records_) {
        if (r.event.kind != FaultKind::KvExhaustion)
            continue;
        if (!windowActive(r.event, t))
            continue;
        touch(r, t, 0);
        lost += r.event.magnitude;
    }
    return std::clamp(1.0 - lost, 0.0, 1.0);
}

unsigned
FaultInjector::consumeRestarts(double t, unsigned inflight)
{
    unsigned crossed = 0;
    while (nextRestart_ < records_.size()) {
        // Find the next unfired restart in time order.
        FaultRecord &r = records_[nextRestart_];
        if (r.event.kind != FaultKind::EnclaveRestart) {
            ++nextRestart_;
            continue;
        }
        if (r.event.time > t)
            break;
        touch(r, t, inflight);
        ++crossed;
        ++nextRestart_;
    }
    return crossed;
}

bool
FaultInjector::anyWindowActive(double t) const
{
    for (const FaultRecord &r : records_) {
        if (r.event.duration <= 0.0)
            continue;
        if (windowActive(r.event, t))
            return true;
    }
    return false;
}

double
FaultInjector::nextWindowEnd(double t) const
{
    double end = t;
    bool found = false;
    for (const FaultRecord &r : records_) {
        if (r.event.duration <= 0.0 || !windowActive(r.event, t))
            continue;
        const double e = r.event.time + r.event.duration;
        if (!found || e < end) {
            end = e;
            found = true;
        }
    }
    return end;
}

std::size_t
FaultInjector::firedCount() const
{
    std::size_t n = 0;
    for (const FaultRecord &r : records_) {
        if (r.applied >= 0.0)
            ++n;
    }
    return n;
}

void
writeTimeline(JsonWriter &json,
              const std::vector<FaultRecord> &timeline)
{
    json.beginArray();
    for (const FaultRecord &r : timeline) {
        json.beginObject();
        json.field("kind", faultKindName(r.event.kind));
        json.field("time", r.event.time);
        json.field("duration", r.event.duration);
        json.field("magnitude", r.event.magnitude);
        json.field("fired", r.applied >= 0.0);
        if (r.applied >= 0.0)
            json.field("applied", r.applied);
        json.field("affected", r.affected);
        json.endObject();
    }
    json.endArray();
}

} // namespace cllm::fault
