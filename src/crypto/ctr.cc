#include "crypto/ctr.hh"

namespace cllm::crypto {

AesCtr::AesCtr(const AesKey &key) : aes_(key) {}

void
AesCtr::transform(std::uint64_t nonce, std::uint64_t counter,
                  std::uint8_t *data, std::size_t len) const
{
    std::size_t off = 0;
    std::uint64_t block_idx = counter;
    while (off < len) {
        AesBlock ks;
        for (int i = 0; i < 8; ++i) {
            ks[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
            ks[8 + i] = static_cast<std::uint8_t>(block_idx >> (56 - 8 * i));
        }
        aes_.encryptBlock(ks);
        const std::size_t take = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < take; ++i)
            data[off + i] ^= ks[i];
        off += take;
        ++block_idx;
    }
}

void
AesCtr::transform(std::uint64_t nonce, std::uint64_t counter,
                  std::vector<std::uint8_t> &data) const
{
    transform(nonce, counter, data.data(), data.size());
}

} // namespace cllm::crypto
