#include "llm/kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "par/pool.hh"
#include "util/logging.hh"

namespace cllm::llm {

void
gemm(const Tensor &a, const Tensor &b, Tensor &c)
{
    if (a.cols() != b.rows() || c.rows() != a.rows() ||
        c.cols() != b.cols()) {
        cllm_panic("gemm shape mismatch: (", a.rows(), "x", a.cols(),
                   ") * (", b.rows(), "x", b.cols(), ") -> (", c.rows(),
                   "x", c.cols(), ")");
    }
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    c.fill(0.0f);

    // Row blocks are the parallel unit: each owns a disjoint slice of
    // C, and the (p0, j0, i, p, j) accumulation order within a row is
    // exactly the serial blocked loop's, so results are bit-identical
    // at any thread count.
    constexpr std::size_t kBlock = 64;
    par::parallelFor(0, m, kBlock, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
            for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
                const std::size_t p1 = std::min(p0 + kBlock, k);
                const std::size_t j1 = std::min(j0 + kBlock, n);
                for (std::size_t i = i0; i < i1; ++i) {
                    float *crow = c.row(i);
                    const float *arow = a.row(i);
                    for (std::size_t p = p0; p < p1; ++p) {
                        const float av = arow[p];
                        const float *brow = b.row(p);
                        for (std::size_t j = j0; j < j1; ++j)
                            crow[j] += av * brow[j];
                    }
                }
            }
        }
    });
}

void
gemmTransB(const Tensor &a, const Tensor &b, Tensor &c)
{
    if (a.cols() != b.cols() || c.rows() != a.rows() ||
        c.cols() != b.rows()) {
        cllm_panic("gemmTransB shape mismatch: (", a.rows(), "x",
                   a.cols(), ") * (", b.rows(), "x", b.cols(),
                   ")^T -> (", c.rows(), "x", c.cols(), ")");
    }
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    // Partition the (large) output-feature axis, not the (small)
    // batch axis: each chunk owns columns [j0, j1) of every row of C.
    // Every C(i, j) is an independent dot product, so the split
    // cannot change any value.
    constexpr std::size_t kColGrain = 32;
    par::parallelFor(0, n, kColGrain, [&](std::size_t j0,
                                          std::size_t j1) {
        for (std::size_t i = 0; i < m; ++i) {
            const float *arow = a.row(i);
            float *crow = c.row(i);
            for (std::size_t j = j0; j < j1; ++j) {
                const float *brow = b.row(j);
                float acc = 0.0f;
                for (std::size_t p = 0; p < k; ++p)
                    acc += arow[p] * brow[p];
                crow[j] = acc;
            }
        }
    });
}

void
matvec(const Tensor &w, const float *x, float *y)
{
    const std::size_t rows = w.rows(), cols = w.cols();
    // Each output row is an independent dot product.
    constexpr std::size_t kRowGrain = 32;
    par::parallelFor(0, rows, kRowGrain, [&](std::size_t r0,
                                             std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float *wr = w.row(r);
            float acc = 0.0f;
            for (std::size_t c = 0; c < cols; ++c)
                acc += wr[c] * x[c];
            y[r] = acc;
        }
    });
}

void
rmsnorm(const float *x, const float *weight, float *y, std::size_t n,
        float eps)
{
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        sum_sq += static_cast<double>(x[i]) * x[i];
    const float inv_rms = 1.0f / std::sqrt(
        static_cast<float>(sum_sq / static_cast<double>(n)) + eps);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = x[i] * inv_rms * weight[i];
}

void
softmaxInPlace(float *x, std::size_t n)
{
    if (n == 0)
        return;
    float max_v = x[0];
    for (std::size_t i = 1; i < n; ++i)
        max_v = std::max(max_v, x[i]);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::exp(x[i] - max_v);
        sum += x[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t i = 0; i < n; ++i)
        x[i] *= inv;
}

void
applyRope(float *vec, std::size_t head_dim, std::size_t pos, float theta)
{
    if (head_dim % 2 != 0)
        cllm_panic("applyRope: odd head_dim ", head_dim);
    for (std::size_t i = 0; i < head_dim; i += 2) {
        const float freq =
            std::pow(theta, -static_cast<float>(i) /
                                static_cast<float>(head_dim));
        const float angle = static_cast<float>(pos) * freq;
        const float c = std::cos(angle), s = std::sin(angle);
        const float x0 = vec[i], x1 = vec[i + 1];
        vec[i] = x0 * c - x1 * s;
        vec[i + 1] = x0 * s + x1 * c;
    }
}

void
siluInPlace(float *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float v = x[i];
        x[i] = v / (1.0f + std::exp(-v));
    }
}

float
toBf16(float x)
{
    std::uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    // Round-to-nearest-even on the truncated 16 bits.
    const std::uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7fffu + lsb;
    bits &= 0xffff0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
quantizeBf16(Tensor &t)
{
    float *p = t.data();
    for (std::size_t i = 0; i < t.size(); ++i)
        p[i] = toBf16(p[i]);
}

QuantizedTensor
QuantizedTensor::quantize(const Tensor &w)
{
    QuantizedTensor q;
    q.rows = w.rows();
    q.cols = w.cols();
    q.data.resize(q.rows * q.cols);
    q.scales.resize(q.rows);
    for (std::size_t r = 0; r < q.rows; ++r) {
        const float *row = w.row(r);
        float max_abs = 0.0f;
        for (std::size_t c = 0; c < q.cols; ++c)
            max_abs = std::max(max_abs, std::abs(row[c]));
        const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
        q.scales[r] = scale;
        for (std::size_t c = 0; c < q.cols; ++c) {
            const float v = std::round(row[c] / scale);
            q.data[r * q.cols + c] = static_cast<std::int8_t>(
                std::clamp(v, -127.0f, 127.0f));
        }
    }
    return q;
}

Tensor
QuantizedTensor::dequantize() const
{
    Tensor t(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        float *row = t.row(r);
        for (std::size_t c = 0; c < cols; ++c)
            row[c] = data[r * cols + c] * scales[r];
    }
    return t;
}

void
matvecQuantized(const QuantizedTensor &w, const float *x, float *y)
{
    constexpr std::size_t kRowGrain = 32;
    par::parallelFor(0, w.rows, kRowGrain, [&](std::size_t r0,
                                               std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const std::int8_t *row = w.data.data() + r * w.cols;
            float acc = 0.0f;
            for (std::size_t c = 0; c < w.cols; ++c)
                acc += static_cast<float>(row[c]) * x[c];
            y[r] = acc * w.scales[r];
        }
    });
}

} // namespace cllm::llm
