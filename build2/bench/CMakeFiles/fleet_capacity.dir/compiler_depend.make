# Empty compiler generated dependencies file for fleet_capacity.
# This may be replaced when dependencies are built.
