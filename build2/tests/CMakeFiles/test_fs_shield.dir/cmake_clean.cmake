file(REMOVE_RECURSE
  "CMakeFiles/test_fs_shield.dir/test_fs_shield.cc.o"
  "CMakeFiles/test_fs_shield.dir/test_fs_shield.cc.o.d"
  "test_fs_shield"
  "test_fs_shield.pdb"
  "test_fs_shield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_shield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
