#include "serve/engine.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::serve {

namespace {

/** Request-lifecycle async category shared by every engine event. */
constexpr const char *kReqCat = "request";

/** Hot counters shared by every engine in the process. */
obs::Counter &
prefillCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.prefills");
    return c;
}

obs::Counter &
decodeStepCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.decode_steps");
    return c;
}

obs::Counter &
tokenCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.output_tokens");
    return c;
}

obs::Counter &
preemptCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.kv_preempts");
    return c;
}

obs::Counter &
swapOutCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.kv_swap_outs");
    return c;
}

obs::Counter &
swapInCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.kv_swap_ins");
    return c;
}

// Prefix-cache counters are only ever touched on prefix-enabled
// paths, so a prefixMode=off run never registers them and the obs
// registry snapshot stays byte-identical to older builds.
obs::Counter &
prefixHitCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.prefix_hits");
    return c;
}

obs::Counter &
prefixMissCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.prefix_misses");
    return c;
}

obs::Counter &
prefixEvictCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.prefix_evicted_blocks");
    return c;
}

// Chunked-prefill counters follow the same lazy-registration rule:
// only chunked paths ever touch them, so an off-mode run's registry
// snapshot stays byte-identical to older builds.
obs::Counter &
chunkSliceCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.chunk_slices");
    return c;
}

obs::Counter &
chunkTokenCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.chunk_prefill_tokens");
    return c;
}

obs::Counter &
mixedStepCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.chunk_mixed_steps");
    return c;
}

obs::Counter &
starvationCounter()
{
    static obs::Counter &c = obs::Registry::global().counter(
        "serve.chunk_starvation_kicks");
    return c;
}

// Speculative-decoding counters are lazy for the same reason: a
// specDecode=off run never registers them, keeping its registry
// snapshot byte-identical to older builds.
obs::Counter &
specVerifyCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.spec_verify_steps");
    return c;
}

obs::Counter &
specDraftCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.spec_draft_tokens");
    return c;
}

obs::Counter &
specAcceptCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.spec_accepted_tokens");
    return c;
}

obs::Counter &
specRejectCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.spec_rejected_tokens");
    return c;
}

obs::Counter &
specBonusCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("serve.spec_bonus_tokens");
    return c;
}

/**
 * Whether the target accepts draft position `pos` (0-based output
 * index) of request `id`: a uniform draw in [0, 1) keyed purely on
 * (spec seed, request id, position), so the outcome is identical at
 * any CLLM_THREADS setting and replays bit-exactly when a preempted
 * or restarted sequence regenerates the same positions.
 */
bool
specAccept(const SpecDecodePolicy &sp, std::uint32_t id, unsigned pos)
{
    const std::uint64_t h = splitSeed(splitSeed(sp.seed, id), pos);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < sp.acceptProb;
}

/** The config's tracer when sim recording is live, else null. */
obs::Tracer *
simTracer(const ServerConfig &cfg)
{
    return cfg.tracer && cfg.tracer->simEnabled() ? cfg.tracer
                                                  : nullptr;
}

} // namespace

ContinuousEngine::ContinuousEngine(const StepModel &step,
                                   const ServerConfig &cfg)
    : step_(&step), cfg_(cfg), inj_(cfg_.faults)
{
    inj_.setTrace(cfg_.tracer, cfg_.traceLane);
    if (cfg_.maxBatch == 0)
        cllm_fatal("ContinuousEngine: zero batch capacity");
    if (cfg_.policy != BatchPolicy::Continuous)
        cllm_fatal("ContinuousEngine: requires continuous batching");
    if (!cfg_.faults.empty() && cfg_.resilience.retryBackoff <= 0.0)
        cllm_fatal("ContinuousEngine: fault injection requires a "
                   "positive retry backoff");
    if (cfg_.resilience.backoffMultiplier < 1.0)
        cllm_fatal("ContinuousEngine: backoff multiplier below 1");
    if (cfg_.resilience.shedOnKvPressure &&
        (cfg_.resilience.shedThreshold <= 0.0 ||
         cfg_.resilience.shedThreshold > 1.0))
        cllm_fatal("ContinuousEngine: shed threshold outside (0, 1]");
    if (cfg_.kvMode == KvMode::Paged) {
        if (cfg_.kvBlocks == 0)
            cllm_fatal("ContinuousEngine: paged KV requires a "
                       "bounded pool");
        if (cfg_.paged.minFreeBlocks >= cfg_.kvBlocks)
            cllm_fatal("ContinuousEngine: paged KV watermark "
                       "swallows the pool");
        if (cfg_.paged.preempt == KvPreemptPolicy::SwapToEpc &&
            cfg_.paged.kvBytesPerToken <= 0.0)
            cllm_fatal("ContinuousEngine: swap preemption requires "
                       "KV bytes per token");
    }
    if (cfg_.prefixMode != PrefixMode::Off &&
        cfg_.kvMode != KvMode::Paged)
        cllm_fatal("ContinuousEngine: prefix caching requires paged "
                   "KV");
    if (cfg_.chunkedPrefill.mode != ChunkMode::Off) {
        if (cfg_.chunkedPrefill.chunkTokens == 0)
            cllm_fatal("ContinuousEngine: zero chunk size");
        if (cfg_.chunkedPrefill.stepTokenBudget != 0 &&
            cfg_.chunkedPrefill.stepTokenBudget <
                cfg_.chunkedPrefill.chunkTokens)
            cllm_fatal("ContinuousEngine: step token budget below "
                       "the chunk size");
        if (cfg_.chunkedPrefill.starvationIters == 0)
            cllm_fatal("ContinuousEngine: zero starvation-guard "
                       "window");
        chunked_ = true;
        tally_.chunkedEnabled = true;
    }
    if (cfg_.specDecode.enabled) {
        if (cfg_.specDecode.draftTokens == 0)
            cllm_fatal("ContinuousEngine: speculative decoding with "
                       "zero draft tokens");
        if (cfg_.specDecode.draftCostRatio <= 0.0 ||
            cfg_.specDecode.draftCostRatio >= 1.0)
            cllm_fatal("ContinuousEngine: draft cost ratio outside "
                       "(0, 1)");
        if (cfg_.specDecode.acceptProb < 0.0 ||
            cfg_.specDecode.acceptProb > 1.0)
            cllm_fatal("ContinuousEngine: acceptance probability "
                       "outside [0, 1]");
        spec_ = true;
        tally_.specEnabled = true;
    }
    if (cfg_.kvBlocks)
        pool_.emplace(KvPoolConfig{cfg_.kvBlocks, cfg_.kvBlockTokens});
    if (cfg_.prefixMode != PrefixMode::Off) {
        // &*pool_ is stable: the optional is never re-emplaced.
        prefix_.emplace(cfg_.prefixMode, &*pool_,
                        cfg_.prefix.maxBlocks);
        tally_.prefixEnabled = true;
    }
}

void
ContinuousEngine::submit(Request *r, double ready_at, unsigned attempts)
{
    if (!r->promptTokens.empty() &&
        r->promptTokens.size() != r->inLen)
        cllm_fatal("ContinuousEngine: prompt token count mismatch "
                   "for request ",
                   r->id);
    pending_.push({r, ready_at, attempts, 0, false, -1.0});
    submitted_.push_back(r);
    if (obs::Tracer *t = simTracer(cfg_); t && attempts == 0)
        t->asyncBegin(cfg_.traceLane, kReqCat, r->id, "req",
                      std::max(r->arrival, ready_at));
}

double
ContinuousEngine::nextReadyTime() const
{
    if (!active_.empty())
        return clock_;
    if (!pending_.empty())
        return std::max(clock_, pending_.top().readyAt);
    return std::numeric_limits<double>::infinity();
}

double
ContinuousEngine::kvHeadroom() const
{
    return pool_ ? 1.0 - pool_->utilization() : 1.0;
}

std::uint64_t
ContinuousEngine::kvFreeBlocks() const
{
    return pool_ ? pool_->freeBlocks()
                 : std::numeric_limits<std::uint64_t>::max();
}

std::uint64_t
ContinuousEngine::kvUsedBlocks() const
{
    return pool_ ? pool_->usedBlocks() : 0;
}

std::uint64_t
ContinuousEngine::kvTotalBlocks() const
{
    return pool_ ? pool_->totalBlocks() : 0;
}

double
ContinuousEngine::kvUtilization() const
{
    return pool_ ? pool_->utilization() : 0.0;
}

const std::vector<fault::FaultRecord> &
ContinuousEngine::timeline() const
{
    return inj_.timeline();
}

std::vector<const Request *>
ContinuousEngine::drainFinished()
{
    std::vector<const Request *> out;
    out.swap(finished_);
    return out;
}

// Admission check, optionally against a pool whose usable share has
// been shrunk by an active KvExhaustion window. Reserved mode needs
// the full inLen+outLen up front; paged mode needs only the resident
// context (prompt plus tokens already generated before a preemption)
// while keeping `minFreeBlocks` of headroom, and refuses outright a
// request whose full context could never fit.
bool
ContinuousEngine::canAdmit(const Request &r, unsigned produced,
                           double factor,
                           std::uint64_t shared_blocks) const
{
    if (!pool_)
        return true;
    std::uint64_t need;
    if (cfg_.kvMode == KvMode::Paged) {
        const std::uint64_t reserve = cfg_.paged.minFreeBlocks;
        if (pool_->blocksFor(r.inLen + r.outLen) + reserve >
            cfg_.kvBlocks)
            return false;
        // Blocks already cached for this prompt's prefix are shared,
        // not allocated, so they come off the admission bill.
        need = pool_->blocksFor(r.inLen + produced) - shared_blocks +
               reserve;
        if (need > pool_->freeBlocks())
            return false;
    } else {
        if (!pool_->canAdmit(r.inLen + r.outLen))
            return false;
        need = (r.inLen + r.outLen + cfg_.kvBlockTokens - 1) /
               cfg_.kvBlockTokens;
    }
    if (factor >= 1.0)
        return true;
    const std::uint64_t used = cfg_.kvBlocks - pool_->freeBlocks();
    const auto usable = static_cast<std::uint64_t>(
        factor * static_cast<double>(cfg_.kvBlocks));
    return used + need <= usable;
}

bool
ContinuousEngine::admitCheck(const Request &r, unsigned produced,
                             double factor, bool swapped)
{
    if (!prefix_)
        return canAdmit(r, produced, factor);
    // A request whose full context can never fit is hopeless no
    // matter what gets evicted; refuse before draining the cache.
    if (pool_->blocksFor(r.inLen + r.outLen) +
            cfg_.paged.minFreeBlocks >
        cfg_.kvBlocks)
        return false;
    // A swapped-out victim resumes with its KV image intact — the
    // cache is not consulted (matching would double-credit tokens the
    // swap-in already pays for).
    const bool use_cache = !swapped && !r.promptTokens.empty();
    for (;;) {
        std::uint64_t shared = 0;
        if (use_cache)
            shared = prefix_->peek(r.tenant, r.promptTokens)
                         .blocks.size();
        if (canAdmit(r, produced, factor, shared))
            return true;
        // Short on blocks: evict LRU cached prefixes, then re-probe —
        // eviction may have reclaimed part of this prompt's own
        // match, shrinking the credit.
        const std::uint64_t need =
            pool_->blocksFor(r.inLen + produced) - shared +
            cfg_.paged.minFreeBlocks;
        const std::uint64_t free = pool_->freeBlocks();
        const std::uint64_t want = need > free ? need - free : 1;
        const std::uint64_t freed = prefix_->evictToFree(want, clock_);
        if (freed == 0)
            return false;
        prefixEvictCounter().add(freed);
        syncPrefixTally();
        if (obs::Tracer *t = simTracer(cfg_))
            t->instant(cfg_.traceLane, "prefix.evict", clock_,
                       {{"blocks", static_cast<double>(freed)}});
    }
}

void
ContinuousEngine::syncPrefixTally()
{
    const PrefixCacheStats &s = prefix_->stats();
    tally_.prefixHits = s.hits;
    tally_.prefixMisses = s.misses;
    tally_.prefixCachedTokens = s.hitTokens;
    tally_.prefixEvictions = s.evictions;
    tally_.prefixEvictedBlocks = s.evictedBlocks;
    tally_.prefixInsertedBlocks = s.insertedBlocks;
    tally_.prefixPinnedPeak = std::max<std::uint64_t>(
        tally_.prefixPinnedPeak, prefix_->pinnedBlocks());
}

/** EPC boundary traffic time to move a `tokens`-token KV image. */
double
ContinuousEngine::swapSeconds(unsigned tokens) const
{
    const auto bytes = static_cast<std::uint64_t>(
        cfg_.paged.kvBytesPerToken * static_cast<double>(tokens));
    return cfg_.paged.epcCost.swapSeconds(bytes);
}

// Evict one active sequence to make room: release its blocks, charge
// the policy's cost, and requeue it with its generated-token count
// intact so nothing already emitted is ever re-emitted.
void
ContinuousEngine::preemptActive(std::size_t idx)
{
    ActiveSeq victim = active_[idx];
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(idx));
    // Read before the release: a spec victim caught between growth and
    // emission still holds unverified draft KV past inLen + produced.
    const bool mid_verify =
        spec_ && pool_->tokens(victim.req->id) >
                     victim.req->inLen + victim.produced;
    pool_->release(victim.req->id);
    ++tally_.kvPreemptions;
    preemptCounter().inc();
    obs::Tracer *tr = simTracer(cfg_);
    if (tr)
        tr->instant(cfg_.traceLane, "kv.preempt", clock_,
                    {{"req", static_cast<double>(victim.req->id)},
                     {"produced",
                      static_cast<double>(victim.produced)}});
    bool swapped = false;
    // A victim still mid-prefill (chunked mode only) always resumes
    // by recomputation: its KV image is partial, so swapping it out
    // would pay EPC traffic for blocks holding nothing worth keeping.
    // The same goes for a victim caught mid-verify: its trailing
    // draft KV is speculative, so it recomputes from its last
    // verified token instead of swapping unverified state.
    const bool mid_prefill =
        victim.prefillDone < victim.prefillTarget;
    if (cfg_.paged.preempt == KvPreemptPolicy::SwapToEpc &&
        !mid_prefill && !mid_verify) {
        const double t0 = clock_;
        const double sec =
            swapSeconds(victim.req->inLen + victim.produced);
        clock_ += sec;
        tally_.kvSwapSeconds += sec;
        ++tally_.kvSwapOuts;
        swapOutCounter().inc();
        swapped = true;
        if (tr)
            tr->complete(
                cfg_.traceLane, "kv.swap", t0, clock_,
                {{"req", static_cast<double>(victim.req->id)},
                 {"dir", 0.0}});
    }
    // Not a fault retry: re-enters the queue at the same attempt
    // count, ordered by (readyAt, id) like any other pending request.
    pending_.push({victim.req, clock_, victim.attempts,
                   victim.produced, swapped, victim.lastEmit});
}

// Before a paged decode step every active sequence must be able to
// append one token. Grow in index order (admission order); on pool
// exhaustion evict from the tail (LIFO — the youngest sequence has
// the least sunk cost), or the growing sequence itself when it is
// the youngest. The head of the batch can always finish: admission
// guaranteed its full context fits in the pool alone.
void
ContinuousEngine::growActivePaged()
{
    for (std::size_t i = 0; i < active_.size();) {
        const ActiveSeq &a = active_[i];
        Request *r = a.req;
        // A spec cycle appends k drafts plus the verified emission;
        // plain decode appends one token. draftK <= outLen-produced-1
        // keeps the target inside the admission-checked full context,
        // so the head of the batch can still always finish.
        const unsigned target =
            r->inLen + a.produced + (spec_ ? a.draftK + 1u : 1u);
        if (pool_->tokens(r->id) >= target) {
            ++i;
            continue;
        }
        const bool needs_block =
            pool_->tokens(r->id) % cfg_.kvBlockTokens == 0;
        if (needs_block && pool_->freeBlocks() == 0) {
            // Cached prefixes are the cheapest thing to give back:
            // reclaim idle cache blocks before preempting a live
            // sequence (which costs recompute or swap traffic).
            if (prefix_) {
                const std::uint64_t freed =
                    prefix_->evictToFree(1, clock_);
                if (freed > 0) {
                    prefixEvictCounter().add(freed);
                    syncPrefixTally();
                    continue;
                }
            }
            preemptActive(i + 1 < active_.size() ? active_.size() - 1
                                                 : i);
            continue; // retry the same slot (or fall off the end)
        }
        if (!pool_->appendToken(r->id))
            cllm_panic("paged KV append failed with free blocks");
    }
}

// Chunked-mode growth: prefilling sequences already hold their whole
// resident context (allocated at admission), so only decoding
// sequences need a token's worth of room this step. Victim selection
// is unchanged — LIFO from the batch tail, whatever phase the victim
// is in; preemptActive downgrades mid-prefill victims to recompute.
void
ContinuousEngine::growDecodingPaged()
{
    for (std::size_t i = 0; i < active_.size();) {
        ActiveSeq &a = active_[i];
        if (a.prefillDone < a.prefillTarget) {
            ++i;
            continue;
        }
        Request *r = a.req;
        const unsigned target =
            r->inLen + a.produced + (spec_ ? a.draftK + 1u : 1u);
        if (pool_->tokens(r->id) >= target) {
            ++i;
            continue;
        }
        const bool needs_block =
            pool_->tokens(r->id) % cfg_.kvBlockTokens == 0;
        if (needs_block && pool_->freeBlocks() == 0) {
            if (prefix_) {
                const std::uint64_t freed =
                    prefix_->evictToFree(1, clock_);
                if (freed > 0) {
                    prefixEvictCounter().add(freed);
                    syncPrefixTally();
                    continue;
                }
            }
            preemptActive(i + 1 < active_.size() ? active_.size() - 1
                                                 : i);
            continue;
        }
        if (!pool_->appendToken(r->id))
            cllm_panic("paged KV append failed with free blocks");
    }
}

void
ContinuousEngine::publishKvGauges() const
{
    static obs::Gauge &used =
        obs::Registry::global().gauge("serve.kv_blocks_used");
    static obs::Gauge &free =
        obs::Registry::global().gauge("serve.kv_blocks_free");
    used.set(static_cast<double>(pool_->usedBlocks()));
    free.set(static_cast<double>(pool_->freeBlocks()));
    if (prefix_) {
        static obs::Gauge &pinned = obs::Registry::global().gauge(
            "serve.prefix_pinned_blocks");
        pinned.set(static_cast<double>(prefix_->pinnedBlocks()));
    }
}

// Bounded retry with exponential backoff; a request that spends its
// budget is dropped for good.
void
ContinuousEngine::requeue(Request *r, unsigned attempts,
                          double last_emit)
{
    const ResiliencePolicy &rp = cfg_.resilience;
    obs::Tracer *t = simTracer(cfg_);
    if (attempts > rp.maxRetries) {
        ++tally_.failed;
        if (t) {
            t->instant(cfg_.traceLane, "retries_exhausted", clock_,
                       {{"req", static_cast<double>(r->id)}});
            t->asyncEnd(cfg_.traceLane, kReqCat, r->id, "failed",
                        clock_);
        }
        return;
    }
    ++tally_.retries;
    double backoff = rp.retryBackoff;
    for (unsigned i = 1; i < attempts; ++i)
        backoff *= rp.backoffMultiplier;
    pending_.push({r, clock_ + backoff, attempts, 0, false,
                   last_emit});
    if (t)
        t->asyncInstant(cfg_.traceLane, kReqCat, r->id, "retry",
                        clock_);
}

void
ContinuousEngine::iterate(double admit_horizon)
{
    if (idle())
        return;

    const ResiliencePolicy &rp = cfg_.resilience;
    obs::Tracer *tr = simTracer(cfg_);
    const std::uint32_t lane = cfg_.traceLane;

    double kv_factor = 1.0;
    unsigned max_batch = cfg_.maxBatch;
    if (inAdmission_) {
        // Resuming a horizon-paused admission loop: keep the fault
        // snapshot sampled when this iteration started.
        inAdmission_ = false;
        kv_factor = admitKvFactor_;
        max_batch = admitMaxBatch_;
    } else {
        // Enclave/TD restarts wipe everything in secure memory: the
        // KV pool, the weights, the attested session state. Pay the
        // re-provisioning downtime and retry what was in flight.
        if (inj_.enabled()) {
            const unsigned crossed = inj_.consumeRestarts(
                clock_, static_cast<unsigned>(active_.size()));
            if (crossed) {
                const double t0 = clock_;
                const double down =
                    crossed *
                    cfg_.reprovision.seconds(cfg_.weightBytes);
                clock_ += down;
                tally_.faultDowntime += down;
                tally_.restarts += crossed;
                if (tr)
                    tr->complete(
                        lane, "reprovision", t0, clock_,
                        {{"restarts",
                          static_cast<double>(crossed)},
                         {"requeued",
                          static_cast<double>(active_.size())}});
                for (ActiveSeq &a : active_) {
                    if (pool_)
                        pool_->release(a.req->id);
                    requeue(a.req, a.attempts + 1, a.lastEmit);
                }
                active_.clear();
            }
        }

        if (inj_.enabled())
            kv_factor = inj_.kvCapacityFactor(clock_);
        if (rp.degradedMaxBatch && inj_.enabled() &&
            inj_.anyWindowActive(clock_)) {
            max_batch = std::max(
                1u, std::min(max_batch, rp.degradedMaxBatch));
        }
    }

    // Admit arrivals up to batch and KV capacity; prefill on
    // admission, reserving the full context worth of blocks. Pause
    // (without stepping) once the clock reaches the caller's horizon:
    // a not-yet-submitted request has become eligible and must enter
    // the queue before any later-ready request is admitted.
    while (active_.size() < max_batch) {
        if (clock_ >= admit_horizon) {
            inAdmission_ = true;
            admitKvFactor_ = kv_factor;
            admitMaxBatch_ = max_batch;
            return;
        }
        if (pending_.empty() || pending_.top().readyAt > clock_)
            break;
        const PendingReq p = pending_.top();
        // Deadline: reject queued work already past its budget. A
        // preempted victim timing out here takes its already-emitted
        // tokens back out of the occupancy sum — only completed
        // requests bill tokens, so occupancySum == outputTokens holds
        // in any restart-free run, timeouts included.
        if (rp.requestTimeout > 0.0 &&
            clock_ - p.req->arrival > rp.requestTimeout) {
            pending_.pop();
            ++tally_.timedOut;
            occupancySum_ -= static_cast<double>(p.produced);
            if (tr) {
                tr->instant(
                    lane, "timeout_queued", clock_,
                    {{"req", static_cast<double>(p.req->id)}});
                tr->asyncEnd(lane, kReqCat, p.req->id, "timeout",
                             clock_);
            }
            continue;
        }
        // Admission shedding under KV pressure. A preempted request
        // (produced > 0) is never shed: its generated tokens are
        // already with the client and must not be abandoned.
        if (rp.shedOnKvPressure && pool_ && p.produced == 0 &&
            pool_->utilization() >= rp.shedThreshold) {
            pending_.pop();
            ++tally_.shed;
            if (tr) {
                tr->instant(
                    lane, "shed_kv_pressure", clock_,
                    {{"req", static_cast<double>(p.req->id)},
                     {"kv_util", pool_->utilization()}});
                tr->asyncEnd(lane, kReqCat, p.req->id, "shed",
                             clock_);
            }
            continue;
        }
        // Attestation gate: no verified handshake, no admission; the
        // client backs off and retries.
        if (inj_.enabled() && inj_.attestationFails(clock_)) {
            pending_.pop();
            ++tally_.attestRejections;
            if (tr)
                tr->instant(
                    lane, "attest_reject", clock_,
                    {{"req", static_cast<double>(p.req->id)}});
            requeue(p.req, p.attempts + 1, p.lastEmit);
            continue;
        }
        if (!admitCheck(*p.req, p.produced, kv_factor, p.swapped))
            break;
        pending_.pop();
        Request *r = p.req;
        const bool paged = cfg_.kvMode == KvMode::Paged;
        const bool use_cache = prefix_ && !p.swapped &&
                               !r->promptTokens.empty();
        PrefixMatch pm;
        if (pool_) {
            // Paged admission allocates only the resident context;
            // reserved admission pins the full generation up front. A
            // cached-prefix hit shares the matched blocks instead of
            // allocating them (and counts exactly once, here, at the
            // successful admission).
            const unsigned resident =
                paged ? r->inLen + p.produced : r->inLen + r->outLen;
            bool ok;
            if (use_cache) {
                pm = prefix_->commitMatch(r->tenant, r->promptTokens,
                                          clock_);
                if (pm.tokens > 0)
                    prefixHitCounter().inc();
                else
                    prefixMissCounter().inc();
                ok = pm.tokens > 0
                         ? pool_->addSequenceWithPrefix(
                               r->id, resident, pm.blocks, pm.tokens)
                         : pool_->addSequence(r->id, resident);
            } else {
                ok = pool_->addSequence(r->id, resident);
            }
            if (!ok)
                cllm_panic("KV admission raced the pool");
            if (tr)
                tr->counterValue(lane, "kv_util", clock_,
                                 pool_->utilization());
        }
        const double admit_at = clock_;
        // Cost to make the context live again: a swap-in from EPC
        // for swapped-out victims, else a (re)prefill over prompt
        // plus any previously generated tokens — charged only from
        // the cached-prefix boundary on a hit. Fresh requests have
        // produced == 0, so the reserved-mode cost is unchanged.
        // Chunked mode defers all prefill work to token-budgeted
        // steps: admission just records the progress target (a
        // swap-in still restores the full KV image in one bulk move,
        // so swapped victims resume straight into decode).
        const bool chunk_defer = chunked_ && !(paged && p.swapped);
        double pf;
        if (paged && p.swapped)
            pf = swapSeconds(r->inLen + p.produced);
        else if (chunk_defer)
            pf = 0.0;
        else if (pm.tokens > 0)
            pf = step_->prefillFrom(pm.tokens,
                                    r->inLen + p.produced);
        else
            pf = step_->prefill(r->inLen + p.produced);
        if (!(paged && p.swapped) && !chunk_defer) {
            const std::uint64_t computed =
                r->inLen + p.produced - pm.tokens;
            tally_.prefillTokensComputed += computed;
            // Monolithic prefill hits one step with the whole
            // uncached prompt — the working-set bound chunking exists
            // to shrink; tracked in every mode so the differential
            // tests can compare.
            tally_.maxStepPrefillTokens = std::max(
                tally_.maxStepPrefillTokens, computed);
        }
        if (inj_.enabled())
            pf *= inj_.slowdown(clock_);
        clock_ += pf;
        if (!chunk_defer && r->firstToken < 0.0)
            r->firstToken = clock_;
        ActiveSeq seq{r, p.produced, p.attempts};
        seq.lastEmit = p.lastEmit >= 0.0 ? p.lastEmit : clock_;
        if (chunk_defer) {
            seq.prefillDone = pm.tokens;
            seq.prefillTarget = r->inLen + p.produced;
        }
        active_.push_back(seq);
        if (tr)
            tr->asyncInstant(lane, kReqCat, r->id, "admit",
                             admit_at);
        if (paged && p.swapped) {
            tally_.kvSwapSeconds += pf;
            ++tally_.kvSwapIns;
            swapInCounter().inc();
            if (tr)
                tr->complete(lane, "kv.swap", admit_at, clock_,
                             {{"req", static_cast<double>(r->id)},
                              {"dir", 1.0}});
        } else if (!chunk_defer) {
            prefillCounter().inc();
            if (tr)
                tr->complete(
                    lane, "prefill", admit_at, clock_,
                    {{"req", static_cast<double>(r->id)},
                     {"in_len",
                      static_cast<double>(r->inLen + p.produced)}});
        }
        if (use_cache) {
            // Cache the freshly prefilled prompt (idempotent on a
            // full hit: the walk just refreshes LRU stamps). Chunked
            // admissions have nothing prefilled yet — their prompt is
            // inserted when the last slice lands, so another request
            // can never share KV that has not been computed.
            if (!chunk_defer) {
                prefix_->insert(r->tenant, r->promptTokens,
                                pool_->blockTable(r->id), clock_);
                syncPrefixTally();
            }
            if (tr && pm.tokens > 0)
                tr->instant(
                    lane, "prefix.hit", admit_at,
                    {{"req", static_cast<double>(r->id)},
                     {"cached_tokens",
                      static_cast<double>(pm.tokens)}});
        }
    }
    if (pool_) {
        kvPeak_ = std::max(kvPeak_, pool_->utilization());
        publishKvGauges();
    }
    // If KV capacity blocks the head of the queue while nothing runs,
    // time must still advance: to the end of a transient exhaustion
    // window, or past a request too big to ever fit.
    if (active_.empty() && !pending_.empty()) {
        const PendingReq head = pending_.top();
        if (head.readyAt <= clock_ &&
            !canAdmit(*head.req, head.produced, kv_factor)) {
            if (canAdmit(*head.req, head.produced, 1.0)) {
                // Transient KvExhaustion window: wait it out.
                const double t0 = clock_;
                clock_ = inj_.nextWindowEnd(clock_);
                if (tr)
                    tr->complete(lane, "kv_blocked", t0, clock_);
            } else {
                // Request larger than the whole pool: drop it.
                pending_.pop();
                ++tally_.shed;
                if (tr) {
                    tr->instant(
                        lane, "shed_oversized", clock_,
                        {{"req",
                          static_cast<double>(head.req->id)}});
                    tr->asyncEnd(lane, kReqCat, head.req->id,
                                 "shed", clock_);
                }
            }
            return;
        }
        clock_ = std::max(clock_, head.readyAt);
        return;
    }
    if (active_.empty())
        return; // everything remaining was dropped

    // Chunked mode with any sequence still prefilling runs one mixed
    // token-budgeted step instead of the monolithic decode below;
    // once every active sequence is decoding the paths converge.
    if (chunked_) {
        bool any_prefilling = false;
        for (const ActiveSeq &a : active_) {
            if (a.prefillDone < a.prefillTarget) {
                any_prefilling = true;
                break;
            }
        }
        if (any_prefilling) {
            chunkedStep();
            return;
        }
    }

    // Speculative decoding runs its own propose->verify cycle (which
    // does its own KV growth: draft widths must be fixed first).
    if (spec_) {
        specStep();
        return;
    }

    // Paged mode: make room for this step's tokens, evicting from the
    // batch tail when the pool is exhausted.
    if (pool_ && cfg_.kvMode == KvMode::Paged) {
        growActivePaged();
        kvPeak_ = std::max(kvPeak_, pool_->utilization());
        if (active_.empty())
            return; // whole batch preempted (pathological pool)
    }

    // One decode step for everyone currently active.
    double avg_pos = 0.0;
    for (const ActiveSeq &a : active_)
        avg_pos += a.req->inLen + a.produced;
    avg_pos /= active_.size();
    const double step_t0 = clock_;
    double step_sec = step_->decodeStep(
        static_cast<double>(active_.size()), avg_pos);
    if (inj_.enabled())
        step_sec *= inj_.slowdown(clock_);
    clock_ += step_sec;
    maxActive_ = std::max(maxActive_, active_.size());
    kvUtilSum_ += pool_ ? pool_->utilization() : 0.0;
    ++steps_;
    ++tally_.decodeSteps;
    decodeStepCounter().inc();
    if (tr)
        tr->complete(
            lane, "decode", step_t0, clock_,
            {{"batch", static_cast<double>(active_.size())},
             {"avg_pos", avg_pos}});

    std::uint64_t emitted_total = 0;
    for (auto it = active_.begin(); it != active_.end();) {
        // Deadline first: a token completing past the deadline is
        // never delivered, so it enters neither itlSamples nor the
        // occupancy sum, and the victim's earlier emissions come back
        // out of the sum — only completed requests bill tokens, and
        // occupancySum == outputTokens holds in any restart-free run.
        if (rp.requestTimeout > 0.0 &&
            clock_ - it->req->arrival > rp.requestTimeout) {
            ++tally_.timedOut;
            occupancySum_ -= static_cast<double>(it->produced);
            if (pool_)
                pool_->release(it->req->id);
            if (tr) {
                tr->instant(
                    lane, "timeout_decoding", clock_,
                    {{"req",
                      static_cast<double>(it->req->id)}});
                tr->asyncEnd(lane, kReqCat, it->req->id, "timeout",
                             clock_);
            }
            it = active_.erase(it);
            continue;
        }
        ++it->produced;
        ++emitted_total;
        // Inter-token gap, measured client-side: from the previous
        // emission (wherever it happened — before a preemption, even
        // before a restart) to this one.
        tally_.itlSamples.push_back(clock_ - it->lastEmit);
        it->lastEmit = clock_;
        if (it->produced >= it->req->outLen) {
            it->req->finish = clock_;
            finished_.push_back(it->req);
            if (pool_)
                pool_->release(it->req->id);
            if (tr)
                tr->asyncEnd(lane, kReqCat, it->req->id,
                             "complete", clock_);
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
    occupancySum_ += static_cast<double>(emitted_total);
    tokenCounter().add(emitted_total);
    if (pool_) {
        publishKvGauges();
        if (tr)
            tr->counterValue(lane, "kv_util", clock_,
                             pool_->utilization());
    }
}

// One speculative propose->verify cycle. The draft model proposes up
// to k tokens per sequence (capped so the cycle never runs past the
// sequence's last token — the verify emission covers it); the target
// scores all drafts in one fused verify step, paying the weight
// stream and the per-step TEE tax (MEE/EPC traffic, enclave
// transitions, launch encryption) once for up to k+1 tokens. Each
// sequence then emits its accepted draft prefix plus one token: the
// bonus token when every draft survived, the rejection-resampled
// correction otherwise. Rejected draft KV rolls back out of the
// paged pool so reuse, forks, and pins stay consistent.
void
ContinuousEngine::specStep()
{
    const ResiliencePolicy &rp = cfg_.resilience;
    obs::Tracer *tr = simTracer(cfg_);
    const std::uint32_t lane = cfg_.traceLane;
    const SpecDecodePolicy &sp = cfg_.specDecode;

    // Fix draft widths first: KV growth must know how many tokens of
    // room each sequence needs this cycle.
    for (ActiveSeq &a : active_) {
        const unsigned remaining = a.req->outLen - a.produced;
        a.draftK = std::min(sp.draftTokens, remaining - 1);
    }
    if (pool_ && cfg_.kvMode == KvMode::Paged) {
        growActivePaged();
        kvPeak_ = std::max(kvPeak_, pool_->utilization());
        if (active_.empty())
            return; // whole batch preempted (pathological pool)
    }

    const double n = static_cast<double>(active_.size());
    double avg_pos = 0.0;
    double mean_k = 0.0;
    for (const ActiveSeq &a : active_) {
        avg_pos += a.req->inLen + a.produced;
        mean_k += a.draftK;
    }
    avg_pos /= n;
    mean_k /= n;

    // Price one draft pass plus one fused verify step. The draft
    // model runs k sequential decode steps at draftCostRatio of the
    // target's price; the verify streams the weights once for the
    // whole k+1-token window.
    const double step_t0 = clock_;
    const double slow = inj_.enabled() ? inj_.slowdown(clock_) : 1.0;
    const double draft_sec =
        mean_k > 0.0
            ? sp.draftCostRatio * mean_k *
                  step_->decodeStep(n, avg_pos) * slow
            : 0.0;
    const double verify_sec =
        step_->verifyStep(n, mean_k, avg_pos) * slow;
    clock_ += draft_sec + verify_sec;
    maxActive_ = std::max(maxActive_, active_.size());
    kvUtilSum_ += pool_ ? pool_->utilization() : 0.0;
    ++steps_;
    ++tally_.decodeSteps;
    ++tally_.specVerifySteps;
    decodeStepCounter().inc();
    specVerifyCounter().inc();
    if (tr) {
        const double draft_end = step_t0 + draft_sec;
        if (draft_sec > 0.0)
            tr->complete(lane, "decode.draft", step_t0, draft_end,
                         {{"batch", n}, {"draft_k", mean_k}});
        tr->complete(lane, "decode.verify", draft_end, clock_,
                     {{"batch", n},
                      {"draft_k", mean_k},
                      {"avg_pos", avg_pos}});
    }

    const bool paged = pool_ && cfg_.kvMode == KvMode::Paged;
    std::uint64_t emitted_total = 0;
    std::uint64_t drafted = 0;
    std::uint64_t accepted_total = 0;
    std::uint64_t bonus_total = 0;
    std::uint64_t reject_total = 0;
    for (auto it = active_.begin(); it != active_.end();) {
        // Deadline first, before anything from this cycle is
        // delivered (see the monolithic loop).
        if (rp.requestTimeout > 0.0 &&
            clock_ - it->req->arrival > rp.requestTimeout) {
            ++tally_.timedOut;
            occupancySum_ -= static_cast<double>(it->produced);
            if (pool_)
                pool_->release(it->req->id);
            if (tr) {
                tr->instant(
                    lane, "timeout_decoding", clock_,
                    {{"req",
                      static_cast<double>(it->req->id)}});
                tr->asyncEnd(lane, kReqCat, it->req->id, "timeout",
                             clock_);
            }
            it = active_.erase(it);
            continue;
        }
        // Longest accepted draft prefix: position produced+j is a
        // pure function of (seed, id, j), replayable anywhere.
        unsigned acc = 0;
        while (acc < it->draftK &&
               specAccept(sp, it->req->id, it->produced + acc))
            ++acc;
        const unsigned emit = acc + 1;
        drafted += it->draftK;
        accepted_total += acc;
        tally_.specDraftTokens += it->draftK;
        tally_.specAccepted += acc;
        // The +1 token is a bonus token when every draft survived,
        // else the rejection-resampled correction — so accepted +
        // rejected + bonus counts every emitted token exactly once.
        if (acc == it->draftK) {
            ++tally_.specBonus;
            ++bonus_total;
        } else {
            ++tally_.specRejected;
            ++reject_total;
        }
        // The cycle's tokens reach the client together at the verify
        // boundary; spread the gap across them so ITL samples keep
        // their per-token meaning.
        const double gap = (clock_ - it->lastEmit) /
                           static_cast<double>(emit);
        for (unsigned j = 0; j < emit; ++j)
            tally_.itlSamples.push_back(gap);
        it->lastEmit = clock_;
        it->produced += emit;
        emitted_total += emit;
        // Roll rejected draft KV back out of the pool (no-op when
        // every draft survived; reserved mode holds the full
        // reservation and never trims).
        if (paged && it->produced < it->req->outLen)
            pool_->trimTokens(it->req->id,
                              it->req->inLen + it->produced);
        if (it->produced >= it->req->outLen) {
            it->req->finish = clock_;
            finished_.push_back(it->req);
            if (pool_)
                pool_->release(it->req->id);
            if (tr)
                tr->asyncEnd(lane, kReqCat, it->req->id,
                             "complete", clock_);
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
    occupancySum_ += static_cast<double>(emitted_total);
    tokenCounter().add(emitted_total);
    specDraftCounter().add(drafted);
    specAcceptCounter().add(accepted_total);
    specRejectCounter().add(reject_total);
    specBonusCounter().add(bonus_total);
    if (pool_) {
        publishKvGauges();
        if (tr)
            tr->counterValue(lane, "kv_util", clock_,
                             pool_->utilization());
    }
}

// One mixed prefill/decode iteration under the token budget. Every
// decoding sequence emits a token; prefilling sequences advance by at
// most one chunk each, planned in admission order from whatever
// budget decode left over (DecodePriority) or ahead of decode
// (PrefillPriority — decode still runs, it just stops constraining
// the slices). The step is priced as one fused launch: the decode
// batch streams the weights once, and every slice after the first
// co-scheduled phase rides that stream, paying only its marginal
// working set (its attention FLOPs, its activations, the KV it
// writes, the prefix KV it re-reads) plus its own per-op fixed costs.
void
ContinuousEngine::chunkedStep()
{
    const ResiliencePolicy &rp = cfg_.resilience;
    obs::Tracer *tr = simTracer(cfg_);
    const std::uint32_t lane = cfg_.traceLane;
    const ChunkedPrefillPolicy &cp = cfg_.chunkedPrefill;
    const SpecDecodePolicy &sp = cfg_.specDecode;
    // The default budget always fits one full slice beside a full
    // decode batch, so no legal configuration can deadlock.
    const unsigned budget =
        cp.stepTokenBudget ? cp.stepTokenBudget
                           : cp.chunkTokens + cfg_.maxBatch;

    // Decoding sequences need a token's worth of KV room (a spec
    // cycle's worth when speculation is on — widths fixed before
    // growth); growth may preempt from the tail (possibly a
    // prefilling sequence), so partition phases only afterwards.
    if (spec_) {
        for (ActiveSeq &a : active_) {
            if (a.prefillDone < a.prefillTarget)
                continue;
            const unsigned remaining = a.req->outLen - a.produced;
            a.draftK = std::min(sp.draftTokens, remaining - 1);
        }
    }
    if (pool_ && cfg_.kvMode == KvMode::Paged) {
        growDecodingPaged();
        kvPeak_ = std::max(kvPeak_, pool_->utilization());
        if (active_.empty())
            return; // whole batch preempted (pathological pool)
    }

    std::vector<std::size_t> decoding, prefilling;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].prefillDone < active_[i].prefillTarget)
            prefilling.push_back(i);
        else
            decoding.push_back(i);
    }
    const unsigned ndecode =
        static_cast<unsigned>(decoding.size());

    // Plan the slices. DecodePriority reserves one budget token per
    // decoding sequence before any slice is cut; PrefillPriority
    // hands the whole budget to the slices. A sequence starved of
    // budget for starvationIters consecutive iterations gets a
    // forced slice — at most one forced slice per step (contended in
    // admission order), which keeps the step's prefill tokens under
    // budget + chunkTokens while still bounding every sequence's
    // wait no matter how busy decode keeps the step.
    unsigned rem = cp.mode == ChunkMode::DecodePriority
                       ? (budget > ndecode ? budget - ndecode : 0)
                       : budget;
    struct Slice
    {
        std::size_t idx;
        unsigned tokens;
        bool forced;
    };
    std::vector<Slice> slices;
    bool forced_used = false;
    for (std::size_t idx : prefilling) {
        ActiveSeq &a = active_[idx];
        const unsigned remaining = a.prefillTarget - a.prefillDone;
        unsigned take =
            std::min(std::min(cp.chunkTokens, remaining), rem);
        bool forced = false;
        if (take == 0) {
            if (a.stallIters < cp.starvationIters)
                ++a.stallIters;
            if (a.stallIters < cp.starvationIters || forced_used)
                continue;
            take = std::min(cp.chunkTokens, remaining);
            forced = forced_used = true;
        }
        a.stallIters = 0;
        rem -= std::min(take, rem);
        slices.push_back({idx, take, forced});
    }

    // Price the fused step: decode first, then the slices in plan
    // order, each laid out sequentially on the trace timeline. The
    // first phase of the step streams the weights; everything after
    // it is marginal.
    const double step_t0 = clock_;
    const double slow = inj_.enabled() ? inj_.slowdown(clock_) : 1.0;
    double t = clock_;
    if (ndecode) {
        double avg_pos = 0.0;
        double mean_k = 0.0;
        for (std::size_t idx : decoding) {
            avg_pos += active_[idx].req->inLen +
                       active_[idx].produced;
            mean_k += active_[idx].draftK;
        }
        avg_pos /= ndecode;
        mean_k /= ndecode;
        if (spec_) {
            // Propose->verify cycle fused with the slices: the draft
            // pass runs first, then the verify streams the weights
            // that the co-scheduled slices ride on.
            const double draft_sec =
                mean_k > 0.0
                    ? sp.draftCostRatio * mean_k *
                          step_->decodeStep(ndecode, avg_pos) * slow
                    : 0.0;
            const double verify_sec =
                step_->verifyStep(ndecode, mean_k, avg_pos) * slow;
            if (tr && draft_sec > 0.0)
                tr->complete(
                    lane, "decode.draft", t, t + draft_sec,
                    {{"batch", static_cast<double>(ndecode)},
                     {"draft_k", mean_k}});
            t += draft_sec;
            if (tr)
                tr->complete(
                    lane, "decode.verify", t, t + verify_sec,
                    {{"batch", static_cast<double>(ndecode)},
                     {"draft_k", mean_k},
                     {"avg_pos", avg_pos}});
            t += verify_sec;
        } else {
            const double dec_sec =
                step_->decodeStep(ndecode, avg_pos) * slow;
            t += dec_sec;
            if (tr)
                tr->complete(
                    lane, "decode", step_t0, t,
                    {{"batch", static_cast<double>(ndecode)},
                     {"avg_pos", avg_pos}});
        }
    }
    bool shared = ndecode > 0;
    std::uint64_t step_prefill_tokens = 0;
    for (const Slice &s : slices) {
        ActiveSeq &a = active_[s.idx];
        const double sec =
            step_->prefillChunk(a.prefillDone, s.tokens, shared) *
            slow;
        shared = true;
        if (tr)
            tr->complete(
                lane, "prefill.chunk", t, t + sec,
                {{"req", static_cast<double>(a.req->id)},
                 {"done", static_cast<double>(a.prefillDone)},
                 {"tokens", static_cast<double>(s.tokens)}});
        t += sec;
        a.prefillDone += s.tokens;
        step_prefill_tokens += s.tokens;
        tally_.prefillTokensComputed += s.tokens;
        ++tally_.chunkSlices;
        tally_.chunkPrefillTokens += s.tokens;
        chunkSliceCounter().inc();
        chunkTokenCounter().add(s.tokens);
        if (s.forced) {
            ++tally_.starvationKicks;
            starvationCounter().inc();
        }
    }
    clock_ = t;
    tally_.maxStepPrefillTokens =
        std::max(tally_.maxStepPrefillTokens, step_prefill_tokens);
    if (ndecode && !slices.empty()) {
        ++tally_.mixedSteps;
        mixedStepCounter().inc();
    }
    if (ndecode) {
        ++tally_.decodeSteps;
        decodeStepCounter().inc();
        if (spec_) {
            ++tally_.specVerifySteps;
            specVerifyCounter().inc();
        }
    }
    maxActive_ = std::max(maxActive_, active_.size());
    kvUtilSum_ += pool_ ? pool_->utilization() : 0.0;
    ++steps_;

    // Sequences whose final slice landed become decoding next
    // iteration; their first token completes with this step.
    for (const Slice &s : slices) {
        ActiveSeq &a = active_[s.idx];
        if (a.prefillDone < a.prefillTarget)
            continue;
        Request *r = a.req;
        if (r->firstToken < 0.0) {
            r->firstToken = clock_;
            a.lastEmit = clock_;
        }
        prefillCounter().inc();
        if (prefix_ && !r->promptTokens.empty()) {
            // The prompt's KV is fully computed only now — cache it.
            prefix_->insert(r->tenant, r->promptTokens,
                            pool_->blockTable(r->id), clock_);
            syncPrefixTally();
        }
    }

    // Token emission for decoding sequences, deadline checks for
    // everyone (a prefilling sequence can blow its budget too).
    // Deadlines are checked before emission: a token completing past
    // the deadline is never delivered, and a timed-out victim's
    // earlier emissions come back out of the occupancy sum so
    // occupancySum == outputTokens holds in any restart-free run.
    std::vector<char> was_decoding(active_.size(), 0);
    for (std::size_t idx : decoding)
        was_decoding[idx] = 1;
    const bool paged = pool_ && cfg_.kvMode == KvMode::Paged;
    std::uint64_t emitted_total = 0;
    std::uint64_t drafted = 0;
    std::uint64_t accepted_total = 0;
    std::uint64_t bonus_total = 0;
    std::uint64_t reject_total = 0;
    std::size_t i = 0;
    for (auto it = active_.begin(); it != active_.end(); ++i) {
        if (rp.requestTimeout > 0.0 &&
            clock_ - it->req->arrival > rp.requestTimeout) {
            ++tally_.timedOut;
            occupancySum_ -= static_cast<double>(it->produced);
            if (pool_)
                pool_->release(it->req->id);
            if (tr) {
                tr->instant(
                    lane, "timeout_decoding", clock_,
                    {{"req", static_cast<double>(it->req->id)}});
                tr->asyncEnd(lane, kReqCat, it->req->id, "timeout",
                             clock_);
            }
            it = active_.erase(it);
            continue;
        }
        if (was_decoding[i]) {
            unsigned emit = 1;
            if (spec_) {
                // Same pure-function acceptance walk as specStep.
                unsigned acc = 0;
                while (acc < it->draftK &&
                       specAccept(sp, it->req->id,
                                  it->produced + acc))
                    ++acc;
                emit = acc + 1;
                drafted += it->draftK;
                accepted_total += acc;
                tally_.specDraftTokens += it->draftK;
                tally_.specAccepted += acc;
                if (acc == it->draftK) {
                    ++tally_.specBonus;
                    ++bonus_total;
                } else {
                    ++tally_.specRejected;
                    ++reject_total;
                }
            }
            const double gap = (clock_ - it->lastEmit) /
                               static_cast<double>(emit);
            for (unsigned j = 0; j < emit; ++j)
                tally_.itlSamples.push_back(gap);
            it->lastEmit = clock_;
            it->produced += emit;
            emitted_total += emit;
            if (spec_ && paged &&
                it->produced < it->req->outLen)
                pool_->trimTokens(it->req->id,
                                  it->req->inLen + it->produced);
            if (it->produced >= it->req->outLen) {
                it->req->finish = clock_;
                finished_.push_back(it->req);
                if (pool_)
                    pool_->release(it->req->id);
                if (tr)
                    tr->asyncEnd(lane, kReqCat, it->req->id,
                                 "complete", clock_);
                it = active_.erase(it);
                continue;
            }
        }
        ++it;
    }
    occupancySum_ += static_cast<double>(emitted_total);
    if (emitted_total)
        tokenCounter().add(emitted_total);
    if (spec_ && ndecode) {
        specDraftCounter().add(drafted);
        specAcceptCounter().add(accepted_total);
        specRejectCounter().add(reject_total);
        specBonusCounter().add(bonus_total);
    }
    if (pool_) {
        publishKvGauges();
        if (tr)
            tr->counterValue(lane, "kv_util", clock_,
                             pool_->utilization());
    }
}

ServeMetrics
finalizeRequests(const std::vector<const Request *> &reqs,
                 double makespan, double occupancy_sum,
                 std::size_t steps, const ServeTally &tally,
                 double ttft_slo, double tpot_slo)
{
    ServeMetrics m;
    m.makespan = makespan;
    std::vector<double> ttft, tpot;
    std::uint64_t tokens = 0;
    std::size_t slo_ok = 0;
    for (const Request *r : reqs) {
        if (r->finish < 0.0)
            continue;
        ++m.completed;
        tokens += r->outLen;
        const double first = r->firstToken - r->arrival;
        const double per_tok =
            r->outLen > 1
                ? (r->finish - r->firstToken) / (r->outLen - 1)
                : 0.0;
        ttft.push_back(first);
        if (r->outLen > 1)
            tpot.push_back(per_tok);
        if (first <= ttft_slo &&
            (r->outLen <= 1 || per_tok <= tpot_slo))
            ++slo_ok;
    }
    const bool dropped_any =
        tally.shed || tally.timedOut || tally.failed;
    if (!reqs.empty() && m.completed == 0 && !dropped_any)
        cllm_panic("serving simulation completed no requests");
    m.tokensPerSecond = makespan > 0.0 ? tokens / makespan : 0.0;
    m.ttft = summarize(ttft, 0.0);
    if (!tpot.empty())
        m.tpot = summarize(tpot, 0.0);
    m.sloAttainment =
        m.completed ? static_cast<double>(slo_ok) /
                          static_cast<double>(m.completed)
                    : 0.0;
    m.meanBatchOccupancy =
        steps ? occupancy_sum / static_cast<double>(steps) : 0.0;

    m.submitted = reqs.size();
    m.outputTokens = tokens;
    m.availability = m.submitted
                         ? static_cast<double>(m.completed) /
                               static_cast<double>(m.submitted)
                         : 0.0;
    m.retries = tally.retries;
    m.shed = tally.shed;
    m.timedOut = tally.timedOut;
    m.failed = tally.failed;
    m.restarts = tally.restarts;
    m.attestRejections = tally.attestRejections;
    m.faultDowntime = tally.faultDowntime;
    m.kvPreemptions = tally.kvPreemptions;
    m.kvSwapOuts = tally.kvSwapOuts;
    m.kvSwapIns = tally.kvSwapIns;
    m.kvSwapSeconds = tally.kvSwapSeconds;
    m.prefixEnabled = tally.prefixEnabled;
    m.prefixHits = tally.prefixHits;
    m.prefixMisses = tally.prefixMisses;
    m.prefixCachedTokens = tally.prefixCachedTokens;
    m.prefillTokensComputed = tally.prefillTokensComputed;
    m.prefixEvictions = tally.prefixEvictions;
    m.prefixEvictedBlocks = tally.prefixEvictedBlocks;
    m.prefixPinnedPeak = tally.prefixPinnedPeak;
    m.chunkedEnabled = tally.chunkedEnabled;
    if (!tally.itlSamples.empty())
        m.itl = summarize(tally.itlSamples, 0.0);
    m.chunkSlices = tally.chunkSlices;
    m.chunkPrefillTokens = tally.chunkPrefillTokens;
    m.mixedSteps = tally.mixedSteps;
    m.starvationKicks = tally.starvationKicks;
    m.maxStepPrefillTokens = tally.maxStepPrefillTokens;
    m.decodeSteps = tally.decodeSteps;
    m.specEnabled = tally.specEnabled;
    m.specVerifySteps = tally.specVerifySteps;
    m.specDraftTokens = tally.specDraftTokens;
    m.specAccepted = tally.specAccepted;
    m.specRejected = tally.specRejected;
    m.specBonus = tally.specBonus;
    return m;
}

} // namespace cllm::serve
