/**
 * @file
 * Tests for the deterministic RNG: reproducibility, distribution
 * sanity, the Zipf sampler's shape, and the thread-compatibility of
 * the split-seed helpers (one private Rng per stream).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include "util/rng.hh"

using namespace cllm;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitMixIsStateful)
{
    std::uint64_t s = 42;
    const std::uint64_t v1 = splitmix64(s);
    const std::uint64_t v2 = splitmix64(s);
    EXPECT_NE(v1, v2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.5);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(13);
    EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(17);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale)
{
    Rng rng(19);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedianIsParameter)
{
    Rng rng(23);
    std::vector<double> v;
    for (int i = 0; i < 50001; ++i)
        v.push_back(rng.lognormal(4.0, 0.5));
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    EXPECT_NEAR(v[v.size() / 2], 4.0, 0.1);
}

TEST(Rng, LognormalAlwaysPositive)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.lognormal(1.0, 1.0), 0.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfRespectsSupport)
{
    Rng rng(41);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.zipf(100, 1.1), 100u);
}

TEST(Rng, ZipfHeadHeavierThanTail)
{
    Rng rng(43);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.zipf(1000, 1.2)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 50000 / 50); // rank 0 clearly dominant
}

TEST(Rng, ZipfSingleElement)
{
    Rng rng(47);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, ZipfApproximatesPowerLaw)
{
    Rng rng(53);
    const double s = 1.0;
    std::map<std::uint64_t, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.zipf(10000, s)];
    // count(rank 1) / count(rank 2) should approximate 2^s = 2.
    ASSERT_GT(counts[0], 0);
    ASSERT_GT(counts[1], 0);
    const double ratio =
        static_cast<double>(counts[0]) / counts[1];
    EXPECT_NEAR(ratio, 2.0, 0.4);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(59);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitSeedIsPureAcrossCalls)
{
    // splitSeed must be a pure function of (root, stream): repeated
    // and interleaved calls cannot perturb each other.
    const std::uint64_t a1 = splitSeed(99, 0);
    const std::uint64_t b1 = splitSeed(99, 1);
    const std::uint64_t a2 = splitSeed(99, 0);
    const std::uint64_t b2 = splitSeed(99, 1);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
    EXPECT_NE(a1, b1);
}

TEST(Rng, ConcurrentSplitSeedStreamsMatchSerialReference)
{
    // The supported concurrency pattern: each task derives a child
    // seed with splitSeed(root, stream) and owns a private Rng. The
    // draws of every stream must be identical whether the streams run
    // serially on one thread or concurrently on many.
    constexpr std::uint64_t kRoot = 0xabcdef12345ULL;
    constexpr unsigned kStreams = 16;
    constexpr int kDraws = 2000;

    std::vector<std::vector<std::uint64_t>> serial(kStreams);
    for (unsigned s = 0; s < kStreams; ++s) {
        Rng rng(splitSeed(kRoot, s));
        for (int i = 0; i < kDraws; ++i)
            serial[s].push_back(rng.next());
    }

    std::vector<std::vector<std::uint64_t>> parallel(kStreams);
    std::vector<std::thread> workers;
    for (unsigned s = 0; s < kStreams; ++s) {
        workers.emplace_back([&, s] {
            Rng rng(splitSeed(kRoot, s));
            for (int i = 0; i < kDraws; ++i)
                parallel[s].push_back(rng.next());
        });
    }
    for (auto &w : workers)
        w.join();

    for (unsigned s = 0; s < kStreams; ++s)
        EXPECT_EQ(serial[s], parallel[s]) << "stream " << s;
}

TEST(Rng, ConcurrentGaussianStreamsMatchSerialReference)
{
    // Box-Muller keeps per-instance spare state; confirm the state
    // stays private to each stream's Rng under concurrency.
    constexpr unsigned kStreams = 8;
    constexpr int kDraws = 1000;

    std::vector<std::vector<double>> serial(kStreams);
    for (unsigned s = 0; s < kStreams; ++s) {
        Rng rng(splitSeed(7, s));
        for (int i = 0; i < kDraws; ++i)
            serial[s].push_back(rng.gaussian());
    }

    std::vector<std::vector<double>> parallel(kStreams);
    std::vector<std::thread> workers;
    for (unsigned s = 0; s < kStreams; ++s) {
        workers.emplace_back([&, s] {
            Rng rng(splitSeed(7, s));
            for (int i = 0; i < kDraws; ++i)
                parallel[s].push_back(rng.gaussian());
        });
    }
    for (auto &w : workers)
        w.join();

    for (unsigned s = 0; s < kStreams; ++s)
        EXPECT_EQ(serial[s], parallel[s]) << "stream " << s;
}

TEST(RngDeath, LognormalNonPositiveMedianPanics)
{
    Rng rng(61);
    EXPECT_DEATH(rng.lognormal(0.0, 1.0), "median");
}

TEST(RngDeath, UniformIntReversedBoundsPanics)
{
    Rng rng(67);
    EXPECT_DEATH(rng.uniformInt(10, 3), "lo > hi");
}
