# Empty dependencies file for cllm_fault.
# This may be replaced when dependencies are built.
