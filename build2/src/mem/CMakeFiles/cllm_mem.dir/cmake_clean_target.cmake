file(REMOVE_RECURSE
  "libcllm_mem.a"
)
