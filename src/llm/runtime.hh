/**
 * @file
 * Functional transformer inference runtime. Runs real (laptop-scale)
 * Llama-architecture models end to end: embedding, RMSNorm, RoPE
 * attention with a KV cache, SwiGLU MLP, greedy and beam decoding, in
 * fp32, emulated bf16, or weight-only int8. This is the workload whose
 * op structure the timing model prices; tests use it to validate the
 * kernels and the KV-cache/beam machinery.
 */

#ifndef CLLM_LLM_RUNTIME_HH
#define CLLM_LLM_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "hw/cpu.hh"
#include "llm/kernels.hh"
#include "llm/model_config.hh"
#include "llm/tensor.hh"
#include "llm/tokenizer.hh"

namespace cllm::llm {

/**
 * Per-layer key/value cache for one sequence.
 */
class KvCache
{
  public:
    /** Create for a model's layer count and KV width. */
    KvCache(unsigned layers, unsigned kv_dim);

    /** Append one position's K and V for a layer. */
    void append(unsigned layer, const std::vector<float> &k,
                const std::vector<float> &v);

    /** Cached positions (same for every layer). */
    std::size_t length() const;

    /** Key vector of `layer` at `pos`. */
    const std::vector<float> &key(unsigned layer, std::size_t pos) const;

    /** Value vector of `layer` at `pos`. */
    const std::vector<float> &value(unsigned layer,
                                    std::size_t pos) const;

  private:
    unsigned kvDim_;
    std::vector<std::vector<std::vector<float>>> keys_;   // [layer][pos]
    std::vector<std::vector<std::vector<float>>> values_;
};

/** A scored hypothesis from beam search. */
struct Hypothesis
{
    std::vector<TokenId> tokens;
    double logProb = 0.0;
};

/**
 * A runnable Llama-architecture model with deterministic random
 * weights (seeded), in one of three compute modes.
 */
class TinyLlama
{
  public:
    /**
     * Build with random weights.
     *
     * @param cfg architecture (use small dims; vocab must match the
     *            tokenizer when driving text)
     * @param mode fp32 / emulated bf16 / weight-only int8
     * @param seed weight-init seed
     */
    TinyLlama(const ModelConfig &cfg, hw::Dtype mode,
              std::uint64_t seed = 1234);

    /**
     * Run one token through the model at the cache's current position,
     * appending to the cache; returns the next-token logits.
     */
    std::vector<float> forward(TokenId token, KvCache &cache) const;

    /**
     * Batched decode step: one token per independent sequence, using
     * matrix-matrix projections (a real batched GEMM path) instead of
     * per-sequence matvecs. Semantically identical to calling
     * forward() per sequence, which the tests assert.
     *
     * @param tokens one next-token per sequence
     * @param caches parallel array of per-sequence caches
     * @return per-sequence logits
     */
    std::vector<std::vector<float>>
    forwardBatch(const std::vector<TokenId> &tokens,
                 std::vector<KvCache *> &caches) const;

    /** Make an empty cache for this model. */
    KvCache makeCache() const;

    /** Greedy decoding: feed prompt, then generate `steps` tokens. */
    std::vector<TokenId> generateGreedy(const std::vector<TokenId> &prompt,
                                        unsigned steps) const;

    /**
     * Beam-search decoding with `beams` hypotheses; returns all final
     * hypotheses sorted by score (best first).
     */
    std::vector<Hypothesis>
    generateBeam(const std::vector<TokenId> &prompt, unsigned steps,
                 unsigned beams) const;

    /**
     * Serialize the fp32 master weights (header + raw tensors). The
     * bytes round-trip through loadWeights() and are what a real
     * deployment would seal into the encrypted FS shield.
     */
    std::vector<std::uint8_t> saveWeights() const;

    /**
     * Replace this model's weights from a saveWeights() blob; the
     * architecture must match (checked), and the compute mode's
     * bf16/int8 conversions are re-applied. Returns false (leaving
     * the model untouched) on malformed or mismatched blobs.
     */
    bool loadWeights(const std::vector<std::uint8_t> &blob);

    const ModelConfig &config() const { return cfg_; }
    hw::Dtype mode() const { return mode_; }

  private:
    struct Layer
    {
        Tensor wq, wk, wv, wo;        // [out x in]
        Tensor wGate, wUp, wDown;
        QuantizedTensor qwq, qwk, qwv, qwo, qwGate, qwUp, qwDown;
        std::vector<float> inputNorm, postNorm;
    };

    /** Apply the right matvec for the compute mode. */
    void project(const Tensor &w, const QuantizedTensor &q,
                 const float *x, float *y) const;

    /** Round activations when emulating bf16. */
    void roundActs(std::vector<float> &v) const;

    /** Re-apply bf16 rounding / int8 quantization after a weight load. */
    void applyModeConversions();

    ModelConfig cfg_;
    hw::Dtype mode_;
    Tensor embedding_;                 // [vocab x d]
    Tensor lmHead_;                    // [vocab x d]
    QuantizedTensor qLmHead_;
    std::vector<float> finalNorm_;
    std::vector<Layer> layers_;
};

} // namespace cllm::llm

#endif // CLLM_LLM_RUNTIME_HH
