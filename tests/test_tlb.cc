/**
 * @file
 * Tests for the analytic translation model behind Insights 6-7: page
 * size ordering, nesting penalties, and working-set effects.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"
#include "util/units.hh"

using namespace cllm;
using namespace cllm::mem;

TEST(Tlb, ReachScalesWithPageSize)
{
    TlbModel m;
    EXPECT_EQ(m.reach(PageSize::Page4K),
              m.config().stlbEntries * 4096ULL);
    EXPECT_GT(m.reach(PageSize::Page2M), m.reach(PageSize::Page4K));
    EXPECT_GT(m.reach(PageSize::Page1G), m.reach(PageSize::Page2M));
}

TEST(Tlb, WalkLatencyOrdering)
{
    TlbModel m;
    const double native = m.walkLatencyNs(TranslationMode::Native);
    const double nested = m.walkLatencyNs(TranslationMode::Nested);
    const double tdx = m.walkLatencyNs(TranslationMode::NestedTdx);
    EXPECT_LT(native, nested);
    EXPECT_LT(nested, tdx);
}

TEST(Tlb, MissProbabilityZeroWhenFits)
{
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = m.reach(PageSize::Page2M) / 2;
    EXPECT_EQ(m.missProbability(PageSize::Page2M, p), 0.0);
}

TEST(Tlb, MissProbabilityGrowsWithWorkingSet)
{
    TlbModel m;
    AccessPattern small, big;
    small.workingSetBytes = 8ULL * GiB;
    big.workingSetBytes = 64ULL * GiB;
    EXPECT_LT(m.missProbability(PageSize::Page2M, small),
              m.missProbability(PageSize::Page2M, big));
}

TEST(Tlb, OneGigPagesCoverLlmWorkingSets)
{
    // Insight 7's counterfactual: with true 1 GiB pages a 70B-class
    // working set still fits in reach, so scattered misses vanish.
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 140ULL * GiB;
    EXPECT_EQ(m.missProbability(PageSize::Page1G, p), 0.0);
    EXPECT_GT(m.missProbability(PageSize::Page2M, p), 0.9);
}

TEST(Tlb, ExtraCostOrderingByPageSize)
{
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 30ULL * GiB;
    const double c4k = m.extraSecondsPerByte(PageSize::Page4K,
                                             TranslationMode::Nested, p);
    const double c2m = m.extraSecondsPerByte(PageSize::Page2M,
                                             TranslationMode::Nested, p);
    const double c1g = m.extraSecondsPerByte(PageSize::Page1G,
                                             TranslationMode::Nested, p);
    EXPECT_GT(c4k, c2m);
    EXPECT_GT(c2m, c1g);
}

TEST(Tlb, NestedCostsMoreThanNative)
{
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 30ULL * GiB;
    EXPECT_GT(m.extraSecondsPerByte(PageSize::Page2M,
                                    TranslationMode::NestedTdx, p),
              m.extraSecondsPerByte(PageSize::Page2M,
                                    TranslationMode::Native, p));
}

TEST(Tlb, BandwidthFactorInUnitInterval)
{
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 30ULL * GiB;
    for (auto page : {PageSize::Page4K, PageSize::Page2M,
                      PageSize::Page1G}) {
        const double f = m.bandwidthFactor(300e9, page,
                                           TranslationMode::NestedTdx, p);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
}

TEST(Tlb, TdxTwoMegPenaltyMatchesPaperBand)
{
    // Insight 7: the missing 1 GiB hugepage support costs up to ~5%
    // of raw performance. Our model's 2M-vs-1G gap under nested
    // translation for an LLM-sized working set must land in 1-8%.
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 28ULL * GiB; // Llama2-7B weights + KV
    const double f2m = m.bandwidthFactor(250e9, PageSize::Page2M,
                                         TranslationMode::NestedTdx, p);
    const double f1g = m.bandwidthFactor(250e9, PageSize::Page1G,
                                         TranslationMode::NestedTdx, p);
    const double gap = f1g / f2m - 1.0;
    EXPECT_GT(gap, 0.01);
    EXPECT_LT(gap, 0.08);
}

TEST(Tlb, RandomFractionAmplifiesCost)
{
    TlbModel m;
    AccessPattern seq, rnd;
    seq.workingSetBytes = rnd.workingSetBytes = 30ULL * GiB;
    seq.randomFraction = 0.0;
    rnd.randomFraction = 0.10;
    EXPECT_LT(m.extraSecondsPerByte(PageSize::Page2M,
                                    TranslationMode::Nested, seq),
              m.extraSecondsPerByte(PageSize::Page2M,
                                    TranslationMode::Nested, rnd));
}

TEST(Tlb, EmptyWorkingSetCostsOnlyStreamWalks)
{
    TlbModel m;
    AccessPattern p;
    p.workingSetBytes = 0;
    EXPECT_EQ(m.missProbability(PageSize::Page4K, p), 0.0);
}

TEST(TlbDeath, ZeroEntriesFatal)
{
    TlbConfig cfg;
    cfg.stlbEntries = 0;
    EXPECT_DEATH(TlbModel{cfg}, "STLB");
}

TEST(TlbDeath, NonPositiveBandwidthPanics)
{
    TlbModel m;
    AccessPattern p;
    EXPECT_DEATH(m.bandwidthFactor(0.0, PageSize::Page4K,
                                   TranslationMode::Native, p),
                 "bandwidth");
}
