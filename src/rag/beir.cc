#include "rag/beir.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cllm::rag {

namespace {

/** Deterministic word string for a vocabulary index. */
std::string
word(std::uint64_t idx)
{
    // Readable pseudo-words: consonant-vowel syllables from the index.
    static const char *cons = "bcdfgklmnprstvz";
    static const char *vows = "aeiou";
    std::string w;
    std::uint64_t v = idx + 7;
    for (int i = 0; i < 3 || v > 0; ++i) {
        w += cons[v % 15];
        v /= 15;
        w += vows[v % 5];
        v /= 5;
        if (i >= 4)
            break;
    }
    return w;
}

} // namespace

BeirDataset
generateBeir(const BeirConfig &cfg)
{
    if (cfg.numTopics == 0 || cfg.vocabSize < 100)
        cllm_fatal("generateBeir: degenerate configuration");

    Rng rng(cfg.seed);
    BeirDataset ds;

    // Topic pools: disjoint-ish slices of mid-frequency vocabulary.
    const std::size_t pool = 25;
    std::vector<std::vector<std::uint64_t>> topics(cfg.numTopics);
    for (std::size_t t = 0; t < cfg.numTopics; ++t) {
        for (std::size_t i = 0; i < pool; ++i) {
            topics[t].push_back(100 + (t * pool + i) %
                                          (cfg.vocabSize - 100));
        }
    }

    std::vector<std::size_t> doc_topic(cfg.numDocs);
    for (std::size_t d = 0; d < cfg.numDocs; ++d) {
        const std::size_t topic = rng.uniformInt(0, cfg.numTopics - 1);
        doc_topic[d] = topic;
        std::string title = "doc " + std::to_string(d) + " " +
                            word(topics[topic][0]) + " " +
                            word(topics[topic][1]);
        std::string body;
        for (std::size_t w = 0; w < cfg.docLen; ++w) {
            std::uint64_t idx;
            if (rng.chance(cfg.topicalFraction)) {
                idx = topics[topic][rng.uniformInt(0, pool - 1)];
            } else {
                idx = rng.zipf(cfg.vocabSize, cfg.zipfExponent);
            }
            if (!body.empty())
                body += ' ';
            body += word(idx);
        }
        ds.corpus.push_back({static_cast<DocId>(d), std::move(title),
                             std::move(body)});
    }

    for (std::size_t q = 0; q < cfg.numQueries; ++q) {
        const DocId src = static_cast<DocId>(
            rng.uniformInt(0, cfg.numDocs - 1));
        const std::size_t topic = doc_topic[src];
        BeirQuery query;
        for (std::size_t w = 0; w < cfg.queryLen; ++w) {
            std::uint64_t idx;
            if (rng.chance(0.8)) {
                idx = topics[topic][rng.uniformInt(0, pool - 1)];
            } else {
                idx = rng.zipf(cfg.vocabSize, cfg.zipfExponent);
            }
            if (!query.text.empty())
                query.text += ' ';
            query.text += word(idx);
        }
        // Graded qrels: the source doc is highly relevant; other
        // same-topic docs are partially relevant.
        query.qrels[src] = 2;
        for (std::size_t d = 0; d < cfg.numDocs; ++d) {
            if (d != src && doc_topic[d] == topic)
                query.qrels[static_cast<DocId>(d)] = 1;
        }
        ds.queries.push_back(std::move(query));
    }
    return ds;
}

double
ndcgAtK(const std::vector<SearchHit> &ranked, const Qrels &qrels,
        std::size_t k)
{
    const std::size_t n = std::min(k, ranked.size());
    double dcg = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        auto it = qrels.find(ranked[i].id);
        if (it == qrels.end())
            continue;
        const double gain = std::pow(2.0, it->second) - 1.0;
        dcg += gain / std::log2(static_cast<double>(i) + 2.0);
    }
    // Ideal DCG from sorted grades.
    std::vector<int> grades;
    grades.reserve(qrels.size());
    for (const auto &[id, g] : qrels)
        grades.push_back(g);
    std::sort(grades.rbegin(), grades.rend());
    double idcg = 0.0;
    for (std::size_t i = 0; i < std::min(k, grades.size()); ++i) {
        idcg += (std::pow(2.0, grades[i]) - 1.0) /
                std::log2(static_cast<double>(i) + 2.0);
    }
    return idcg > 0.0 ? dcg / idcg : 0.0;
}

double
recallAtK(const std::vector<SearchHit> &ranked, const Qrels &qrels,
          std::size_t k)
{
    if (qrels.empty())
        return 0.0;
    std::size_t found = 0;
    const std::size_t n = std::min(k, ranked.size());
    for (std::size_t i = 0; i < n; ++i)
        found += qrels.count(ranked[i].id) ? 1 : 0;
    return static_cast<double>(found) /
           static_cast<double>(qrels.size());
}

double
reciprocalRank(const std::vector<SearchHit> &ranked, const Qrels &qrels)
{
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (qrels.count(ranked[i].id))
            return 1.0 / static_cast<double>(i + 1);
    }
    return 0.0;
}

} // namespace cllm::rag
