#include "hw/cpu.hh"

#include "util/logging.hh"

namespace cllm::hw {

const char *
dtypeName(Dtype t)
{
    switch (t) {
      case Dtype::Fp32:
        return "fp32";
      case Dtype::Bf16:
        return "bf16";
      case Dtype::Int8:
        return "int8";
    }
    return "?";
}

double
CpuSpec::peakOps(Dtype dtype, bool amx, unsigned cores) const
{
    if (cores == 0 || cores > totalCores())
        cllm_fatal("peakOps: invalid core count ", cores);
    double per_core_cycle = 0.0;
    switch (dtype) {
      case Dtype::Fp32:
        per_core_cycle = tput.fp32Avx; // AMX has no fp32 tiles
        break;
      case Dtype::Bf16:
        per_core_cycle = amx ? tput.bf16Amx : tput.bf16Avx;
        break;
      case Dtype::Int8:
        per_core_cycle = amx ? tput.int8Amx : tput.int8Avx;
        break;
    }
    return per_core_cycle * freqGhz * 1e9 * static_cast<double>(cores);
}

CpuSpec
emr1()
{
    CpuSpec s;
    s.name = "EMR1 (2x Xeon Gold 6530)";
    s.sockets = 2;
    s.coresPerSocket = 32;
    s.freqGhz = 2.1;
    s.dramBwPerSocket = 307e9;
    s.llcBytesPerSocket = 160.0 * 1024 * 1024;
    s.cpuPriceUsd = 2130.0;
    s.numa.nodes = 2;
    s.numa.localBwBytes = s.dramBwPerSocket;
    s.numa.upiBwBytes = 62e9;
    s.epcBytesPerSocket = 256ULL << 30;
    return s;
}

CpuSpec
emr2()
{
    CpuSpec s;
    s.name = "EMR2 (2x Xeon Platinum 8580)";
    s.sockets = 2;
    s.coresPerSocket = 60;
    s.freqGhz = 2.0;
    s.dramBwPerSocket = 307e9;
    s.llcBytesPerSocket = 300.0 * 1024 * 1024;
    s.cpuPriceUsd = 10710.0;
    s.numa.nodes = 2;
    s.numa.localBwBytes = s.dramBwPerSocket;
    s.numa.upiBwBytes = 62e9;
    s.epcBytesPerSocket = 256ULL << 30;
    return s;
}

CpuSpec
spr()
{
    CpuSpec s = emr2();
    s.name = "SPR (2x Xeon Platinum 8480+)";
    s.coresPerSocket = 56;
    s.freqGhz = 2.0;
    // "performing up to 40% worse" (Section V-D) via lower effective
    // kernel efficiency and memory bandwidth.
    s.kernelEfficiency = 0.45 * 0.72;
    s.dramBwPerSocket = 250e9;
    s.llcBytesPerSocket = 105.0 * 1024 * 1024;
    s.cpuPriceUsd = 10710.0 * 0.55;
    s.numa.localBwBytes = s.dramBwPerSocket;
    return s;
}

} // namespace cllm::hw
