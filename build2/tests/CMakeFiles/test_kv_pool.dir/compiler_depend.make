# Empty compiler generated dependencies file for test_kv_pool.
# This may be replaced when dependencies are built.
