/**
 * @file
 * Tests for the operator FLOP/byte profiles feeding the timing model
 * and Figure 7.
 */

#include <gtest/gtest.h>

#include "llm/model_config.hh"
#include "llm/ops.hh"

using namespace cllm;
using namespace cllm::llm;

TEST(Ops, BlockHasExpectedOperators)
{
    const auto ops = blockDecodeOps(llama2_7b(), hw::Dtype::Bf16, 512);
    ASSERT_EQ(ops.size(), 9u);
    EXPECT_EQ(ops.front().kind, OpKind::InputNorm);
    EXPECT_EQ(ops.back().kind, OpKind::DownProj);
}

TEST(Ops, StepTotalsAggregateBlocksAndTop)
{
    const ModelConfig m = llama2_7b();
    const double pos = 777;
    const auto block = blockDecodeOps(m, hw::Dtype::Bf16, pos);
    const auto top = topLevelDecodeOps(m, hw::Dtype::Bf16);
    const StepTotals t = stepTotals(m, hw::Dtype::Bf16, pos);

    double flops = 0.0, weights = 0.0;
    for (const auto &op : block) {
        flops += op.flopsPerSeq * m.layers;
        weights += op.weightBytes * m.layers;
    }
    for (const auto &op : top) {
        flops += op.flopsPerSeq;
        weights += op.weightBytes;
    }
    EXPECT_DOUBLE_EQ(t.flopsPerSeq, flops);
    EXPECT_DOUBLE_EQ(t.weightBytes, weights);
    EXPECT_EQ(t.opCount, 9 * m.layers + 3);
}

TEST(Ops, StepFlopsApproxTwiceMatmulParams)
{
    // At small context, decode FLOPs/token ~= 2 x matmul params.
    const ModelConfig m = llama2_7b();
    const StepTotals t = stepTotals(m, hw::Dtype::Bf16, 1);
    const double expect = 2.0 * static_cast<double>(m.matmulParams());
    EXPECT_NEAR(t.flopsPerSeq / expect, 1.0, 0.02);
}

TEST(Ops, WeightBytesApproxModelSize)
{
    const ModelConfig m = llama2_7b();
    const StepTotals t = stepTotals(m, hw::Dtype::Bf16, 1);
    // Per-step weight traffic ~ all matmul weights in bf16 (embedding
    // rows are fetched per token, not streamed).
    const double expect =
        2.0 * static_cast<double>(m.matmulParams());
    EXPECT_NEAR(t.weightBytes / expect, 1.0, 0.05);
}

TEST(Ops, AttentionScalesWithPosition)
{
    const ModelConfig m = llama2_7b();
    const auto near = blockDecodeOps(m, hw::Dtype::Bf16, 128);
    const auto far = blockDecodeOps(m, hw::Dtype::Bf16, 4096);
    double f_near = 0, f_far = 0, kv_near = 0, kv_far = 0;
    for (const auto &op : near) {
        if (op.kind == OpKind::Attention) {
            f_near = op.flopsPerSeq;
            kv_near = op.kvBytesPerSeq;
        }
    }
    for (const auto &op : far) {
        if (op.kind == OpKind::Attention) {
            f_far = op.flopsPerSeq;
            kv_far = op.kvBytesPerSeq;
        }
    }
    EXPECT_NEAR(f_far / f_near, 4096.0 / 128.0, 0.01);
    EXPECT_GT(kv_far, kv_near);
}

TEST(Ops, OnlyAttentionTouchesKv)
{
    for (const auto &op :
         blockDecodeOps(llama2_7b(), hw::Dtype::Bf16, 100)) {
        if (op.kind != OpKind::Attention) {
            EXPECT_EQ(op.kvBytesPerSeq, 0.0) << opName(op.kind);
        }
    }
}

TEST(Ops, NormsAreTiny)
{
    const auto ops = blockDecodeOps(llama2_7b(), hw::Dtype::Bf16, 1024);
    double norm_flops = 0, total_flops = 0;
    for (const auto &op : ops) {
        total_flops += op.flopsPerSeq;
        if (op.kind == OpKind::InputNorm || op.kind == OpKind::PostNorm)
            norm_flops += op.flopsPerSeq;
    }
    EXPECT_LT(norm_flops / total_flops, 0.001);
}

TEST(Ops, Int8HalvesWeightTraffic)
{
    const ModelConfig m = llama2_7b();
    const StepTotals bf = stepTotals(m, hw::Dtype::Bf16, 64);
    const StepTotals i8 = stepTotals(m, hw::Dtype::Int8, 64);
    EXPECT_NEAR(i8.weightBytes / bf.weightBytes, 0.5, 0.01);
    // KV stays bf16 under weight-only quantization.
    EXPECT_DOUBLE_EQ(i8.kvBytesPerSeq, bf.kvBytesPerSeq);
}

TEST(Ops, GqaReducesKvTraffic)
{
    const StepTotals mha = stepTotals(llama2_7b(), hw::Dtype::Bf16, 512);
    const StepTotals gqa = stepTotals(llama2_70b(), hw::Dtype::Bf16, 512);
    // Per layer, 70B GQA KV width (1024) < 7B MHA (4096).
    EXPECT_LT(gqa.kvBytesPerSeq / 80.0, mha.kvBytesPerSeq / 32.0);
}

TEST(Ops, UngatedMlpHasFewerOps)
{
    ModelConfig m = llama2_7b();
    m.gatedMlp = false;
    const auto ops = blockDecodeOps(m, hw::Dtype::Bf16, 10);
    double gateup = 0;
    for (const auto &op : ops)
        if (op.kind == OpKind::GateUpProj)
            gateup = op.weightBytes;
    // Single matrix instead of two.
    EXPECT_DOUBLE_EQ(gateup,
                     static_cast<double>(m.hidden) * m.ffn * 2.0);
}

TEST(Ops, LmHeadWeightMatchesVocab)
{
    const ModelConfig m = llama2_7b();
    for (const auto &op : topLevelDecodeOps(m, hw::Dtype::Bf16)) {
        if (op.kind == OpKind::LmHead) {
            EXPECT_DOUBLE_EQ(op.weightBytes,
                             static_cast<double>(m.vocab) * m.hidden *
                                 2.0);
        }
    }
}

TEST(Ops, AllOpsNamed)
{
    for (const auto &op :
         blockDecodeOps(llama2_7b(), hw::Dtype::Bf16, 1)) {
        EXPECT_STRNE(opName(op.kind), "?");
    }
}
