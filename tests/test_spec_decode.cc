/**
 * @file
 * Differential and regression harness for speculative decoding. Four
 * layers:
 *
 *  1. Step-model identity — verifyStep(n, 0, pos) must price exactly
 *     like the decode step it degenerates to (CPU, GPU, and the base
 *     default), and a fused k-token verify must undercut k+1
 *     sequential decode steps, more so under a TEE (that asymmetry
 *     is the whole point of speculating inside an enclave).
 *  2. Engine differential — the same trace replayed with speculation
 *     off and on (across k, KV disciplines, chunking, and prefix
 *     caching) must complete the identical request set with
 *     identical per-request output counts, in strictly fewer target
 *     passes.
 *  3. Acceptance accounting — accepted + rejected + bonus tokens
 *     close exactly on the output token count, drafts are bounded by
 *     k per cycle, and the per-sequence acceptance walk is a pure
 *     function of (seed, id, position) — independent of batch
 *     composition and replay.
 *  4. Regression pins — double-run byte identity of the metrics
 *     JSON, off-mode emitting no spec keys, a golden seeded run, and
 *     fatal-path checks on config validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.hh"
#include "serve/engine.hh"
#include "serve/serving.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

std::unique_ptr<StepModel>
cpuModel(bool tdx = true)
{
    const hw::CpuSpec cpu = hw::emr2();
    llm::RunParams p;
    p.inLen = 1024;
    p.outLen = 256;
    p.batch = 32;
    p.sockets = 1;
    p.cores = cpu.coresPerSocket;
    return makeCpuStepModel(
        cpu, shared(tdx ? tee::makeTdx() : tee::makeBareMetal()),
        llm::llama2_7b(), p);
}

/** Paged config with an ample pool, so speculative runs differ from
 *  the baseline only in how tokens are produced, never in shedding. */
ServerConfig
specConfig(unsigned draft_k, KvMode kv = KvMode::Paged)
{
    ServerConfig cfg;
    cfg.policy = BatchPolicy::Continuous;
    cfg.kvBlocks = 4096;
    cfg.kvBlockTokens = 16;
    cfg.kvMode = kv;
    cfg.paged.kvBytesPerToken =
        llm::llama2_7b().kvBytesPerToken(hw::Dtype::Bf16);
    if (draft_k) {
        cfg.specDecode.enabled = true;
        cfg.specDecode.draftTokens = draft_k;
    }
    return cfg;
}

/** Decode-heavy seeded trace: generations long enough that every
 *  draft depth under test runs many verify cycles per request. */
std::vector<Request>
chatTrace()
{
    WorkloadConfig load;
    load.arrivalRate = 0.4;
    load.numRequests = 80;
    load.meanInLen = 256;
    load.meanOutLen = 160;
    load.seed = 53;
    return generateWorkload(load);
}

std::string
metricsJson(const ServeMetrics &m)
{
    std::ostringstream os;
    JsonWriter json(os);
    writeMetrics(json, m);
    return os.str();
}

/** Same request ids finishing with the same output token counts —
 *  the simulator's notion of an identical completion stream. */
void
expectIdenticalCompletions(const std::vector<Request> &a,
                           const std::vector<Request> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "request " << i;
        EXPECT_EQ(a[i].outLen, b[i].outLen) << "request " << i;
    }
}

} // namespace

// ---------------------------------------------------------------------
// 1. Step-model identity
// ---------------------------------------------------------------------

TEST(SpecStepModel, ZeroDraftVerifyEqualsDecodeStep)
{
    const auto tdx = cpuModel(true);
    const auto gpu = makeGpuStepModel(hw::h100Nvl(), true,
                                      llm::llama2_7b(),
                                      hw::Dtype::Bf16);
    for (double n : {1.0, 8.0, 32.0}) {
        for (double pos : {128.0, 512.0, 2048.0}) {
            EXPECT_DOUBLE_EQ(tdx->verifyStep(n, 0.0, pos),
                             tdx->decodeStep(n, pos))
                << "cpu n=" << n << " pos=" << pos;
            EXPECT_DOUBLE_EQ(gpu->verifyStep(n, 0.0, pos),
                             gpu->decodeStep(n, pos))
                << "gpu n=" << n << " pos=" << pos;
        }
    }
}

TEST(SpecStepModel, FusedVerifyUndercutsSequentialDecodes)
{
    // One k-token verify streams the weights once and pays the
    // per-step fixed costs once; k+1 sequential decode steps pay
    // both k+1 times.
    const auto tdx = cpuModel(true);
    for (double k : {1.0, 4.0, 8.0}) {
        const double fused = tdx->verifyStep(32.0, k, 512.0);
        const double sequential =
            (k + 1.0) * tdx->decodeStep(32.0, 512.0 + k / 2.0);
        EXPECT_LT(fused, sequential) << "k=" << k;
    }
}

TEST(SpecStepModel, TeeWidensTheAmortizationGap)
{
    // The TEE taxes (MEE byte overheads, per-op fixed costs) are
    // per-step, so the relative saving of fusing k+1 positions into
    // one pass must be at least as large under TDX as bare-metal.
    const auto tdx = cpuModel(true);
    const auto bare = cpuModel(false);
    const double k = 4.0;
    const double tdx_ratio =
        tdx->verifyStep(32.0, k, 512.0) /
        ((k + 1.0) * tdx->decodeStep(32.0, 512.0 + k / 2.0));
    const double bare_ratio =
        bare->verifyStep(32.0, k, 512.0) /
        ((k + 1.0) * bare->decodeStep(32.0, 512.0 + k / 2.0));
    EXPECT_LE(tdx_ratio, bare_ratio + 1e-12);
}

// ---------------------------------------------------------------------
// 2. Engine differential
// ---------------------------------------------------------------------

TEST(SpecDifferential, IdenticalCompletionsStrictlyFewerSteps)
{
    const std::vector<Request> trace = chatTrace();

    for (KvMode kv : {KvMode::Paged, KvMode::Reserved}) {
        std::vector<Request> off_out;
        const ServeMetrics off =
            Server(cpuModel(), specConfig(0, kv)).run(trace, off_out);
        ASSERT_GT(off.decodeSteps, 0u);

        std::size_t prev_steps = off.decodeSteps;
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            std::vector<Request> on_out;
            const ServeMetrics on =
                Server(cpuModel(), specConfig(k, kv))
                    .run(trace, on_out);

            EXPECT_EQ(on.completed, off.completed) << "k=" << k;
            EXPECT_EQ(on.outputTokens, off.outputTokens) << "k=" << k;
            EXPECT_EQ(on.shed, off.shed);
            EXPECT_EQ(on.timedOut, off.timedOut);
            expectIdenticalCompletions(off_out, on_out);

            EXPECT_TRUE(on.specEnabled);
            EXPECT_LT(on.decodeSteps, off.decodeSteps) << "k=" << k;
            // Deeper drafts weakly reduce the pass count further.
            EXPECT_LE(on.decodeSteps, prev_steps) << "k=" << k;
            prev_steps = on.decodeSteps;
            EXPECT_EQ(on.decodeSteps, on.specVerifySteps);
        }
    }
}

TEST(SpecDifferential, ComposesWithChunkedPrefill)
{
    const std::vector<Request> trace = chatTrace();
    ServerConfig off_cfg = specConfig(0);
    off_cfg.chunkedPrefill.mode = ChunkMode::DecodePriority;
    off_cfg.chunkedPrefill.chunkTokens = 128;
    std::vector<Request> off_out;
    const ServeMetrics off =
        Server(cpuModel(), off_cfg).run(trace, off_out);
    ASSERT_GT(off.chunkSlices, 0u);

    ServerConfig on_cfg = specConfig(4);
    on_cfg.chunkedPrefill.mode = ChunkMode::DecodePriority;
    on_cfg.chunkedPrefill.chunkTokens = 128;
    std::vector<Request> on_out;
    const ServeMetrics on =
        Server(cpuModel(), on_cfg).run(trace, on_out);

    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.outputTokens, off.outputTokens);
    expectIdenticalCompletions(off_out, on_out);
    EXPECT_LT(on.decodeSteps, off.decodeSteps);
    // Chunked slice accounting is untouched by speculation.
    EXPECT_EQ(on.chunkPrefillTokens, off.chunkPrefillTokens);
    EXPECT_EQ(on.specAccepted + on.specRejected + on.specBonus,
              on.outputTokens);
}

TEST(SpecDifferential, SurvivesPagedPreemptionPressure)
{
    // A pool tight enough to preempt mid-decode: victims of a
    // mid-verify eviction recompute their prefix, and the closure
    // and completion guarantees must hold regardless.
    WorkloadConfig load;
    load.arrivalRate = 1.2;
    load.numRequests = 60;
    load.meanInLen = 384;
    load.meanOutLen = 128;
    load.seed = 11;
    const std::vector<Request> trace = generateWorkload(load);

    ServerConfig off_cfg = specConfig(0);
    off_cfg.kvBlocks = 640;
    std::vector<Request> off_out;
    const ServeMetrics off =
        Server(cpuModel(), off_cfg).run(trace, off_out);

    ServerConfig on_cfg = specConfig(6);
    on_cfg.kvBlocks = 640;
    std::vector<Request> on_out;
    const ServeMetrics on =
        Server(cpuModel(), on_cfg).run(trace, on_out);
    ASSERT_GT(on.kvPreemptions, 0u)
        << "pool must be tight enough to preempt";

    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.outputTokens, off.outputTokens);
    expectIdenticalCompletions(off_out, on_out);
    EXPECT_EQ(on.specAccepted + on.specRejected + on.specBonus,
              on.outputTokens);
}

// ---------------------------------------------------------------------
// 3. Acceptance accounting
// ---------------------------------------------------------------------

TEST(SpecAccounting, ClosureOverAcceptedRejectedBonus)
{
    const std::vector<Request> trace = chatTrace();
    for (unsigned k : {1u, 3u, 5u}) {
        const ServeMetrics m =
            Server(cpuModel(), specConfig(k)).run(trace);
        EXPECT_EQ(m.specAccepted + m.specRejected + m.specBonus,
                  m.outputTokens)
            << "k=" << k;
        // Every cycle proposes at most k drafts and accepts a prefix
        // of them.
        EXPECT_LE(m.specAccepted, m.specDraftTokens) << "k=" << k;
        const std::uint64_t cycles = m.specBonus + m.specRejected;
        EXPECT_LE(m.specDraftTokens, cycles * k) << "k=" << k;
        EXPECT_GT(m.specVerifySteps, 0u);
    }
}

TEST(SpecAccounting, AcceptProbExtremesPinTheCycleShape)
{
    const std::vector<Request> trace = chatTrace();

    // acceptProb = 1: every cycle accepts all drafts and lands the
    // bonus token — nothing is ever rejected.
    ServerConfig all = specConfig(4);
    all.specDecode.acceptProb = 1.0;
    const ServeMetrics ma = Server(cpuModel(), all).run(trace);
    EXPECT_EQ(ma.specRejected, 0u);
    EXPECT_EQ(ma.specAccepted + ma.specBonus, ma.outputTokens);

    // acceptProb = 0: every cycle rejects its first draft and emits
    // only the correction — one token per sequence per verify pass,
    // so speculation degenerates to (more expensive) autoregression.
    // The sole exception is each sequence's final cycle: the draft
    // depth is clamped to the remaining budget, a one-token tail
    // drafts nothing, and its k=0 verify lands as the bonus token.
    ServerConfig none = specConfig(4);
    none.specDecode.acceptProb = 0.0;
    const ServeMetrics mn = Server(cpuModel(), none).run(trace);
    EXPECT_EQ(mn.specAccepted, 0u);
    EXPECT_EQ(mn.specBonus, mn.completed);
    EXPECT_EQ(mn.specRejected + mn.specBonus, mn.outputTokens);
    EXPECT_EQ(mn.decodeSteps, mn.specVerifySteps);
}

TEST(SpecAccounting, MeanEmittedLengthTracksTheGeometricModel)
{
    // With acceptance probability a, a k-draft cycle emits
    // (1 - a^(k+1)) / (1 - a) tokens in expectation; over tens of
    // thousands of cycles the sample mean should sit within a few
    // percent of it.
    const std::vector<Request> trace = chatTrace();
    const double a = 0.7;
    const unsigned k = 4;
    const ServeMetrics m =
        Server(cpuModel(), specConfig(k)).run(trace);
    const double cycles =
        static_cast<double>(m.specBonus + m.specRejected);
    ASSERT_GT(cycles, 1000.0);
    const double mean_emit =
        static_cast<double>(m.outputTokens) / cycles;
    const double expected =
        (1.0 - std::pow(a, k + 1.0)) / (1.0 - a);
    EXPECT_NEAR(mean_emit, expected, 0.05 * expected);
}

// ---------------------------------------------------------------------
// 4. Regression pins
// ---------------------------------------------------------------------

TEST(SpecRegression, DoubleRunMetricsJsonByteIdentical)
{
    const std::vector<Request> trace = chatTrace();
    const ServeMetrics a =
        Server(cpuModel(), specConfig(4)).run(trace);
    const ServeMetrics b =
        Server(cpuModel(), specConfig(4)).run(trace);
    EXPECT_EQ(metricsJson(a), metricsJson(b));
}

TEST(SpecRegression, OffModeEmitsNoSpecKeys)
{
    const std::vector<Request> trace = chatTrace();
    const ServeMetrics off =
        Server(cpuModel(), specConfig(0)).run(trace);
    const std::string json = metricsJson(off);
    EXPECT_EQ(json.find("spec_"), std::string::npos)
        << "off-mode metrics JSON must stay byte-identical to the "
           "pre-speculation format";
    EXPECT_FALSE(off.specEnabled);
    EXPECT_EQ(off.specVerifySteps, 0u);
    EXPECT_EQ(off.specDraftTokens, 0u);
}

TEST(SpecRegression, GoldenSeededRun)
{
    const std::vector<Request> trace = chatTrace();
    const ServeMetrics m =
        Server(cpuModel(), specConfig(4)).run(trace);
    std::map<std::string, double> actual;
    actual["completed"] = static_cast<double>(m.completed);
    actual["output_tokens"] = static_cast<double>(m.outputTokens);
    actual["decode_steps"] = static_cast<double>(m.decodeSteps);
    actual["spec_verify_steps"] =
        static_cast<double>(m.specVerifySteps);
    actual["spec_draft_tokens"] =
        static_cast<double>(m.specDraftTokens);
    actual["spec_accepted_tokens"] =
        static_cast<double>(m.specAccepted);
    actual["spec_rejected_tokens"] =
        static_cast<double>(m.specRejected);
    actual["spec_bonus_tokens"] = static_cast<double>(m.specBonus);
    actual["ttft_p50_s"] = m.ttft.p50;
    actual["ttft_p99_s"] = m.ttft.p99;
    actual["itl_p50_s"] = m.itl.p50;
    actual["itl_p99_s"] = m.itl.p99;
    actual["makespan_s"] = m.makespan;
    cllm::testing::checkAgainstGolden("spec_small.json", actual);
}

TEST(SpecRegression, TimeoutAccountingKeepsOccupancyClosed)
{
    // Timed-out requests never deliver tokens past their deadline,
    // and their partial production is backed out of the occupancy
    // sum, so meanBatchOccupancy * decodeSteps == outputTokens in
    // any restart-free run — with and without speculation.
    WorkloadConfig load;
    load.arrivalRate = 1.5;
    load.numRequests = 80;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 7;
    const std::vector<Request> trace = generateWorkload(load);

    for (unsigned k : {0u, 4u}) {
        ServerConfig cfg = specConfig(k);
        cfg.resilience.requestTimeout = 60.0;
        std::vector<Request> out;
        const ServeMetrics m =
            Server(cpuModel(), cfg).run(trace, out);
        ASSERT_GT(m.timedOut, 0u)
            << "trace must actually hit the timeout (k=" << k << ")";
        const double occupancy_sum =
            m.meanBatchOccupancy * static_cast<double>(m.decodeSteps);
        EXPECT_NEAR(occupancy_sum,
                    static_cast<double>(m.outputTokens),
                    1e-6 * static_cast<double>(m.outputTokens))
            << "k=" << k;
        for (const Request &r : out)
            EXPECT_LE(r.finish, r.arrival +
                                    cfg.resilience.requestTimeout)
                << "request " << r.id
                << " delivered tokens past its deadline";
    }
}

TEST(SpecDeath, ZeroDraftTokensIsFatal)
{
    ServerConfig cfg = specConfig(4);
    cfg.specDecode.draftTokens = 0;
    EXPECT_DEATH(Server(cpuModel(), cfg), "zero draft");
}

TEST(SpecDeath, DraftCostRatioOutsideUnitIntervalIsFatal)
{
    ServerConfig high = specConfig(4);
    high.specDecode.draftCostRatio = 1.0;
    EXPECT_DEATH(Server(cpuModel(), high), "draft cost ratio");
    ServerConfig zero = specConfig(4);
    zero.specDecode.draftCostRatio = 0.0;
    EXPECT_DEATH(Server(cpuModel(), zero), "draft cost ratio");
}

TEST(SpecDeath, AcceptProbOutsideUnitIntervalIsFatal)
{
    ServerConfig cfg = specConfig(4);
    cfg.specDecode.acceptProb = 1.5;
    EXPECT_DEATH(Server(cpuModel(), cfg), "acceptance probability");
}

TEST(SpecDeath, SpeculationRequiresContinuousBatching)
{
    ServerConfig cfg = specConfig(4);
    cfg.policy = BatchPolicy::Static;
    EXPECT_DEATH(Server(cpuModel(), cfg), "continuous");
}
