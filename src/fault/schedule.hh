/**
 * @file
 * Deterministic fault schedules for confidential serving. A schedule
 * is a time-sorted list of fault events — attestation failures,
 * enclave/TD restarts, EPC paging storms, KV-capacity losses — drawn
 * reproducibly from a seed, so a resilience experiment can be replayed
 * bit-for-bit. The failure classes mirror what confidential-serving
 * studies report as the dominant operational pain points: attestation
 * flakiness at admission, enclave restarts that wipe in-TEE state
 * (weights, KV cache) and force re-provisioning, and secure-memory
 * pressure that manifests as paging storms or shrunken KV pools.
 */

#ifndef CLLM_FAULT_SCHEDULE_HH
#define CLLM_FAULT_SCHEDULE_HH

#include <cstdint>
#include <vector>

namespace cllm {
class Config;
}

namespace cllm::fault {

/** Classes of injected faults. */
enum class FaultKind
{
    AttestFail,     //!< admission handshakes fail for a window
    EnclaveRestart, //!< enclave/TD dies; all in-TEE state is lost
    EpcStorm,       //!< secure-memory paging storm slows every step
    KvExhaustion,   //!< part of the KV pool becomes unusable
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind k);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::EpcStorm;
    double time = 0.0;     //!< seconds into the run
    double duration = 0.0; //!< window length (0 for point events)
    /**
     * Kind-specific intensity: EpcStorm — step-time multiplier (>= 1);
     * KvExhaustion — fraction of the pool lost in [0, 1]; unused for
     * AttestFail and EnclaveRestart.
     */
    double magnitude = 0.0;
};

/** Per-kind generation knobs: a Poisson process of windows. */
struct FaultProcess
{
    double rate = 0.0;         //!< events per second (0 disables)
    double meanDuration = 0.0; //!< exponential window length
    double magnitude = 0.0;    //!< passed through to the events
};

/** Seed-driven schedule generation parameters. */
struct FaultScheduleConfig
{
    std::uint64_t seed = 1;
    double horizon = 600.0; //!< generate events in [0, horizon)

    FaultProcess attestFail{};
    FaultProcess enclaveRestart{};
    FaultProcess epcStorm{};
    FaultProcess kvExhaustion{};
};

/**
 * A time-sorted fault schedule.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Draw a reproducible schedule from the config's seed. */
    static FaultSchedule generate(const FaultScheduleConfig &cfg);

    /**
     * Read a schedule config from a `[fault]` section: `seed`,
     * `horizon`, and `<kind>_rate` / `<kind>_duration` /
     * `<kind>_magnitude` keys with kind in {attest, restart,
     * epc_storm, kv_exhaustion}.
     */
    static FaultScheduleConfig configFrom(const Config &cfg);

    /** Insert one event, keeping time order. */
    void add(const FaultEvent &e);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Slowdown factor of an EPC paging storm, derived from the mem::epc
 * cost model: the ratio of a decode pass that pages its working set
 * through a shrunken secure region versus one whose baseline step
 * takes `baseline_step_sec`. Always >= 1.
 */
double epcStormSlowdown(std::uint64_t working_set_bytes,
                        std::uint64_t epc_bytes,
                        double baseline_step_sec);

} // namespace cllm::fault

#endif // CLLM_FAULT_SCHEDULE_HH
