#include "rag/analyzer.hh"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace cllm::rag {

namespace {

const std::unordered_set<std::string> &
stopwords()
{
    static const std::unordered_set<std::string> kSet = {
        "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",
        "by",   "for",  "if",   "in",   "into", "is",   "it",   "no",
        "not",  "of",   "on",   "or",   "such", "that", "the",  "their",
        "then", "there", "these", "they", "this", "to",  "was",  "will",
        "with",
    };
    return kSet;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

Analyzer::Analyzer(AnalyzerConfig cfg) : cfg_(cfg) {}

bool
Analyzer::isStopword(const std::string &token)
{
    return stopwords().count(token) != 0;
}

std::string
Analyzer::stem(const std::string &token)
{
    std::string t = token;
    // Order matters: longest suffixes first.
    if (endsWith(t, "ational"))
        t = t.substr(0, t.size() - 7) + "ate";
    else if (endsWith(t, "ization"))
        t = t.substr(0, t.size() - 7) + "ize";
    else if (endsWith(t, "fulness"))
        t = t.substr(0, t.size() - 4);
    else if (endsWith(t, "ness"))
        t = t.substr(0, t.size() - 4);
    else if (endsWith(t, "ment"))
        t = t.substr(0, t.size() - 4);
    else if (endsWith(t, "tion"))
        t = t.substr(0, t.size() - 3) + "e";
    else if (endsWith(t, "ing") && t.size() > 5)
        t = t.substr(0, t.size() - 3);
    else if (endsWith(t, "edly") && t.size() > 6)
        t = t.substr(0, t.size() - 4);
    else if (endsWith(t, "ed") && t.size() > 4)
        t = t.substr(0, t.size() - 2);
    else if (endsWith(t, "ies") && t.size() > 4)
        t = t.substr(0, t.size() - 3) + "y";
    else if (endsWith(t, "sses"))
        t = t.substr(0, t.size() - 2);
    else if (endsWith(t, "s") && !endsWith(t, "ss") && t.size() > 3)
        t = t.substr(0, t.size() - 1);
    return t;
}

std::vector<std::string>
Analyzer::analyze(const std::string &text) const
{
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&]() {
        if (cur.size() < cfg_.minTokenLen) {
            cur.clear();
            return;
        }
        if (cfg_.removeStopwords && isStopword(cur)) {
            cur.clear();
            return;
        }
        out.push_back(cfg_.stem ? stem(cur) : cur);
        cur.clear();
    };
    for (char raw : text) {
        const unsigned char c = static_cast<unsigned char>(raw);
        if (std::isalnum(c)) {
            cur.push_back(cfg_.lowercase
                              ? static_cast<char>(std::tolower(c))
                              : raw);
        } else {
            flush();
        }
    }
    flush();
    return out;
}

} // namespace cllm::rag
