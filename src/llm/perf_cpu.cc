#include "llm/perf_cpu.hh"

#include <algorithm>
#include <cmath>

#include "mem/numa.hh"
#include "mem/tlb.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace cllm::llm {

CpuPerfModel::CpuPerfModel(CpuPerfConfig cfg) : cfg_(cfg) {}

namespace {

/** Roofline with partial overlap of the shorter leg. */
double
rooflineTime(double t_comp, double t_mem, double beta)
{
    return std::max(t_comp, t_mem) + beta * std::min(t_comp, t_mem);
}

/** Weight bytes per parameter for a run. */
double
weightBytesPerParam(const RunParams &p)
{
    if (p.framework.weightBytesPerParam > 0.0)
        return p.framework.weightBytesPerParam;
    return hw::dtypeBytes(p.dtype);
}

} // namespace

double
CpuPerfModel::effectiveBandwidth(const hw::CpuSpec &cpu,
                                 const tee::ExecTax &tax,
                                 const RunParams &params,
                                 double working_set_bytes,
                                 double context_depth) const
{
    // NUMA placement: what the environment actually does with the
    // binding request, amplified by framework NUMA awareness.
    mem::NumaConfig ncfg = cpu.numa;
    ncfg.upiEncrypted = tax.upiEncrypted;
    mem::NumaModel numa(ncfg);
    mem::NumaPlacement placement = tax.placement;
    if (!params.framework.numaAware &&
        placement == mem::NumaPlacement::Local) {
        placement = mem::NumaPlacement::Unbound;
    }
    const mem::NumaEffective eff = numa.effective(placement,
                                                  params.sockets);

    // Bandwidth ramps with active cores per socket (concave).
    const unsigned cores = params.cores
                               ? params.cores
                               : params.sockets * cpu.coresPerSocket;
    const double cores_per_socket =
        static_cast<double>(cores) / params.sockets;
    const double ramp =
        1.0 - std::exp(-cores_per_socket / cfg_.bwSaturationCores);

    double bw = eff.bandwidthBytes * ramp * params.framework.memEff;

    // Translation (TLB/EPT) tax. The scattered-access share of the
    // traffic grows with the KV cache's share of the working set:
    // weight streaming is sequential, KV gathers are block-random.
    mem::TlbModel tlb(cpu.tlb);
    mem::AccessPattern pattern;
    pattern.workingSetBytes =
        static_cast<std::uint64_t>(working_set_bytes);
    pattern.randomFraction = 0.008 + 0.030 * context_depth;
    bw *= tlb.bandwidthFactor(bw, tax.effectivePage, tax.xlate, pattern);

    // Memory-encryption tax (TME-MK / MEE).
    bw *= tax.encBwFactor;

    // Generic virtualization memory-path tax for any nested regime.
    if (tax.xlate != mem::TranslationMode::Native)
        bw *= 1.0 - cfg_.vmMemTax;

    return bw;
}

DeploymentRates
CpuPerfModel::rates(const hw::CpuSpec &cpu, const tee::TeeBackend &backend,
                    const ModelConfig &model,
                    const RunParams &params) const
{
    const bool amx = params.amx && params.framework.supportsAmx;
    const double nseq = params.sequences();
    const double final_ctx = params.inLen + params.outLen;

    DeploymentRates r;
    r.weightBytesPerParam = weightBytesPerParam(params);
    r.actFactor = params.framework.actTrafficFactor *
                  (amx ? 1.0 : cfg_.noAmxActFactor);

    const double weight_bytes =
        static_cast<double>(model.numParams()) * r.weightBytesPerParam;
    const double kv_total =
        nseq * model.kvBytesPerToken(params.dtype) * final_ctx;

    tee::TeeRequest req;
    req.sockets = params.sockets;
    req.workingSetBytes =
        static_cast<std::uint64_t>(weight_bytes + kv_total);
    req.sncEnabled = params.sncEnabled;
    r.tax = backend.tax(cpu, req);

    const double context_depth = std::min(1.0, final_ctx / 4096.0);
    r.bw = effectiveBandwidth(cpu, r.tax, params,
                              weight_bytes + kv_total, context_depth);

    const unsigned cores = params.cores
                               ? params.cores
                               : params.sockets * cpu.coresPerSocket;
    const double peak = cpu.peakOps(params.dtype, amx, cores);
    r.decodeRate = peak *
                   params.framework.effectiveComputeEff(params.dtype) *
                   r.tax.computeFactor;
    r.prefillRate =
        peak * params.framework.prefillEff * r.tax.computeFactor;
    return r;
}

double
CpuPerfModel::decodeStepSeconds(const DeploymentRates &r,
                                const ModelConfig &model,
                                const RunParams &params, double nseq,
                                double pos) const
{
    const StepTotals tot =
            stepTotals(model, params.dtype, pos, nseq);
    const double flops = nseq * tot.flopsPerSeq;
    const double weight_traffic =
        tot.weightBytes *
        (r.weightBytesPerParam / hw::dtypeBytes(params.dtype));
    const double bytes =
        weight_traffic +
        nseq * (tot.actBytesPerSeq * r.actFactor + tot.kvBytesPerSeq);
    const double t_comp = flops / r.decodeRate;
    const double t_mem = bytes / r.bw + bytes * r.tax.extraSecPerByte;
    const double op_factor =
        params.dtype == hw::Dtype::Int8 ? 1.25 : 1.0;
    return rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
           tot.opCount * op_factor * r.tax.perOpFixedSec +
           r.tax.perTokenFixedSec;
}

double
CpuPerfModel::verifyStepSeconds(const DeploymentRates &r,
                                const ModelConfig &model,
                                const RunParams &params, double nseq,
                                double k, double pos) const
{
    // k+1 positions scored per sequence; attention at the mean depth.
    const double width = k + 1.0;
    const StepTotals tot =
        stepTotals(model, params.dtype, pos + k / 2.0, nseq);
    const double flops = nseq * tot.flopsPerSeq * width;
    const double weight_traffic =
        tot.weightBytes *
        (r.weightBytesPerParam / hw::dtypeBytes(params.dtype));
    // Weights once per step; activations and KV per scored position.
    const double bytes =
        weight_traffic +
        nseq * width *
            (tot.actBytesPerSeq * r.actFactor + tot.kvBytesPerSeq);
    const double t_comp = flops / r.decodeRate;
    const double t_mem = bytes / r.bw + bytes * r.tax.extraSecPerByte;
    const double op_factor =
        params.dtype == hw::Dtype::Int8 ? 1.25 : 1.0;
    // Fixed costs once per step — the amortized TEE tax.
    return rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
           tot.opCount * op_factor * r.tax.perOpFixedSec +
           r.tax.perTokenFixedSec;
}

double
CpuPerfModel::prefillSeconds(const DeploymentRates &r,
                             const ModelConfig &model,
                             const RunParams &params,
                             unsigned in_len) const
{
    const double s = in_len;
    const double flops =
        2.0 * static_cast<double>(model.matmulParams()) * s +
        2.0 * model.layers * model.hidden * s * s;
    const double weight_bytes =
        static_cast<double>(model.numParams()) * r.weightBytesPerParam;
    const double kv_write = model.kvBytesPerToken(params.dtype) * s;
    const StepTotals tot = stepTotals(model, params.dtype, s / 2.0);
    const double bytes = weight_bytes +
                         tot.actBytesPerSeq * s * r.actFactor * 0.25 +
                         kv_write;
    const double t_comp = flops / r.prefillRate;
    const double t_mem = bytes / r.bw + bytes * r.tax.extraSecPerByte;
    return rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
           tot.opCount * r.tax.perOpFixedSec + r.tax.perTokenFixedSec;
}

double
CpuPerfModel::prefillChunkSeconds(const DeploymentRates &r,
                                  const ModelConfig &model,
                                  const RunParams &params,
                                  unsigned done, unsigned chunk,
                                  bool shared) const
{
    const double s = chunk;
    const double t0 = done;
    const double t1 = t0 + s;
    // The quadratic attention term telescopes: summed over a prompt's
    // slices it reproduces prefillSeconds' 2*L*H*s^2 exactly, so
    // chunking never hides FLOPs — it only bounds how many hit one
    // step.
    const double flops =
        2.0 * static_cast<double>(model.matmulParams()) * s +
        2.0 * model.layers * model.hidden * (t1 * t1 - t0 * t0);
    const double weight_bytes =
        static_cast<double>(model.numParams()) * r.weightBytesPerParam;
    const double kv_write = model.kvBytesPerToken(params.dtype) * s;
    const double kv_read = model.kvBytesPerToken(params.dtype) * t0;
    const StepTotals tot =
        stepTotals(model, params.dtype, t0 + s / 2.0);
    const double bytes = (shared ? 0.0 : weight_bytes) +
                         tot.actBytesPerSeq * s * r.actFactor * 0.25 +
                         kv_write + kv_read;
    const double t_comp = flops / r.prefillRate;
    const double t_mem = bytes / r.bw + bytes * r.tax.extraSecPerByte;
    return rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
           tot.opCount * r.tax.perOpFixedSec + r.tax.perTokenFixedSec;
}


TimingResult
CpuPerfModel::run(const hw::CpuSpec &cpu, const tee::TeeBackend &backend,
                  const ModelConfig &model, const RunParams &params) const
{
    if (params.sockets == 0 || params.sockets > cpu.sockets)
        cllm_fatal("run: invalid socket count ", params.sockets);
    if (params.batch == 0 || params.beam == 0 || params.outLen == 0)
        cllm_fatal("run: batch, beam, and outLen must be positive");

    const unsigned cores = params.cores
                               ? params.cores
                               : params.sockets * cpu.coresPerSocket;
    if (cores > cpu.totalCores())
        cllm_fatal("run: ", cores, " cores exceed machine capacity");

    const bool amx = params.amx && params.framework.supportsAmx;
    const double nseq = params.sequences();
    const double wbpp = weightBytesPerParam(params);

    // Working set: weights + full KV at final length + activations.
    const double weight_bytes =
        static_cast<double>(model.numParams()) * wbpp;
    const double final_ctx = params.inLen + params.outLen;
    const double kv_total = nseq * model.kvBytesPerToken(params.dtype) *
                            final_ctx;
    const double act_factor = params.framework.actTrafficFactor *
                              (amx ? 1.0 : cfg_.noAmxActFactor);

    tee::TeeRequest req;
    req.sockets = params.sockets;
    req.workingSetBytes =
        static_cast<std::uint64_t>(weight_bytes + kv_total);
    req.sncEnabled = params.sncEnabled;
    const tee::ExecTax tax = backend.tax(cpu, req);

    // Scattered-access share of traffic grows with how deep each
    // sequence's KV context is (page-granular gathers over long
    // contexts), not with how many sequences there are: batching
    // APPENDS contiguous KV, longer contexts SCATTER reads.
    const double context_depth = std::min(1.0, final_ctx / 4096.0);
    const double bw = effectiveBandwidth(
        cpu, tax, params, weight_bytes + kv_total, context_depth);

    // Weight-only int8 inserts explicit dequantization kernels on the
    // hot path, inflating the per-step operator count.
    const double op_factor =
        params.dtype == hw::Dtype::Int8 ? 1.25 : 1.0;

    const double peak = cpu.peakOps(params.dtype, amx, cores);
    const double decode_rate =
        peak * params.framework.effectiveComputeEff(params.dtype) *
        tax.computeFactor;
    const double prefill_rate =
        peak * params.framework.prefillEff * tax.computeFactor;

    TimingResult result;
    result.workingSetBytes = weight_bytes + kv_total;

    // ---- Prefill ----------------------------------------------------
    {
        const double s = params.inLen;
        // Matmul FLOPs for all prompt tokens plus quadratic attention.
        const double flops =
            params.batch *
            (2.0 * static_cast<double>(model.matmulParams()) * s +
             2.0 * model.layers * model.hidden * s * s);
        const double kv_write =
            params.batch * model.kvBytesPerToken(params.dtype) * s;
        const StepTotals tot = stepTotals(model, params.dtype, s / 2.0);
        const double bytes = weight_bytes +
                             params.batch * tot.actBytesPerSeq * s *
                                 act_factor * 0.25 +
                             kv_write;
        const double t_comp = flops / prefill_rate;
        const double t_mem = bytes / bw + bytes * tax.extraSecPerByte;
        result.prefillSeconds =
            rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
            tot.opCount * tax.perOpFixedSec +
            params.batch * tax.perTokenFixedSec;
    }

    // ---- Decode loop -------------------------------------------------
    Rng rng(params.seed);
    double decode_total = 0.0;
    double last_tc = 0.0, last_tm = 0.0;
    for (unsigned step = 0; step < params.outLen; ++step) {
        const double pos = params.inLen + step;
        const StepTotals tot =
            stepTotals(model, params.dtype, pos, nseq);
        const double flops = nseq * tot.flopsPerSeq;
        // Weights are batch-shared; KV and activations are per-seq.
        const double weight_traffic =
            tot.weightBytes * (wbpp / hw::dtypeBytes(params.dtype));
        const double bytes = weight_traffic +
                             nseq * (tot.actBytesPerSeq * act_factor +
                                     tot.kvBytesPerSeq);
        const double t_comp = flops / decode_rate;
        const double t_mem = bytes / bw + bytes * tax.extraSecPerByte;
        double t = rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
                   tot.opCount * op_factor * tax.perOpFixedSec +
                   tax.perTokenFixedSec;
        last_tc = t_comp;
        last_tm = t_mem;

        // Per-token jitter and encryption-stall outliers.
        t *= rng.lognormal(1.0, tax.noiseSigma);
        if (tax.outlierProb > 0.0 && rng.chance(tax.outlierProb))
            t *= tax.outlierScale;

        result.tokenLatencies.push_back(t);
        decode_total += t;
    }
    result.memoryBound = last_tm > last_tc;

    const SampleSummary lat = summarize(result.tokenLatencies, 3.0);
    result.meanTokenLatency = lat.mean;
    result.decodeTput = params.batch / lat.mean;
    result.totalSeconds = result.prefillSeconds + decode_total;
    result.e2eTput =
        params.batch * params.outLen / result.totalSeconds;

    // ---- Per-op attribution for one block (Figure 7) -----------------
    {
        const double pos = params.inLen + params.outLen / 2.0;
        for (const auto &op :
             blockDecodeOps(model, params.dtype, pos, nseq)) {
            const double flops = nseq * op.flopsPerSeq;
            const double bytes =
                op.weightBytes * (wbpp / hw::dtypeBytes(params.dtype)) +
                nseq * (op.actBytesPerSeq * act_factor +
                        op.kvBytesPerSeq);
            const double t_comp = flops / decode_rate;
            const double t_mem = bytes / bw + bytes * tax.extraSecPerByte;
            OpTiming ot;
            ot.name = opName(op.kind);
            ot.seconds = rooflineTime(t_comp, t_mem, cfg_.overlapBeta) +
                         tax.perOpFixedSec;
            ot.flops = flops;
            ot.bytes = bytes;
            result.blockBreakdown.push_back(std::move(ot));
        }
    }

    return result;
}

} // namespace cllm::llm
