#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace cllm::obs {

namespace {

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr std::size_t kRingCapacity = 8192;

} // namespace

TraceMode
parseTraceMode(const char *s)
{
    if (!s || !*s)
        return TraceMode::Off;
    if (!std::strcmp(s, "sim") || !std::strcmp(s, "1"))
        return TraceMode::Sim;
    if (!std::strcmp(s, "all") || !std::strcmp(s, "wall") ||
        !std::strcmp(s, "2"))
        return TraceMode::All;
    return TraceMode::Off;
}

/** Per-thread circular buffer of wall spans; written only by its
 *  owning thread, drained under the registration mutex. */
struct Tracer::WallRing
{
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;     //!< spans ever recorded here
    std::vector<WallEvent> buf;

    explicit WallRing(std::uint32_t id) : tid(id)
    {
        buf.reserve(kRingCapacity);
    }
};

Tracer::Tracer(TraceMode mode) : mode_(mode), epochNs_(steadyNs()) {}

Tracer::~Tracer() = default;

Tracer &
Tracer::global()
{
    static Tracer t(parseTraceMode(std::getenv("CLLM_TRACE")));
    return t;
}

void
Tracer::laneName(std::uint32_t lane, const std::string &name)
{
    if (!simEnabled())
        return;
    laneNames_[lane] = name;
}

void
Tracer::complete(std::uint32_t lane, std::string name, double t0,
                 double t1,
                 std::vector<std::pair<std::string, double>> args)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::Complete;
    e.lane = lane;
    e.name = std::move(name);
    e.t0 = t0;
    e.t1 = t1;
    e.args = std::move(args);
    auto it = depth_.find(lane);
    e.depth = it == depth_.end() ? 0 : it->second;
    sim_.push_back(std::move(e));
}

void
Tracer::instant(
    std::uint32_t lane, std::string name, double t,
    std::vector<std::pair<std::string, double>> args,
    std::vector<std::pair<std::string, std::string>> sargs)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::Instant;
    e.lane = lane;
    e.name = std::move(name);
    e.t0 = t;
    e.args = std::move(args);
    e.sargs = std::move(sargs);
    sim_.push_back(std::move(e));
}

void
Tracer::asyncBegin(std::uint32_t lane, std::string cat,
                   std::uint64_t id, std::string name, double t)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::AsyncBegin;
    e.lane = lane;
    e.cat = std::move(cat);
    e.id = id;
    e.name = std::move(name);
    e.t0 = t;
    sim_.push_back(std::move(e));
}

void
Tracer::asyncInstant(std::uint32_t lane, std::string cat,
                     std::uint64_t id, std::string name, double t)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::AsyncInstant;
    e.lane = lane;
    e.cat = std::move(cat);
    e.id = id;
    e.name = std::move(name);
    e.t0 = t;
    sim_.push_back(std::move(e));
}

void
Tracer::asyncEnd(std::uint32_t lane, std::string cat,
                 std::uint64_t id, std::string name, double t)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::AsyncEnd;
    e.lane = lane;
    e.cat = std::move(cat);
    e.id = id;
    e.name = std::move(name);
    e.t0 = t;
    sim_.push_back(std::move(e));
}

void
Tracer::counterValue(std::uint32_t lane, std::string name, double t,
                     double value)
{
    if (!simEnabled())
        return;
    SimEvent e;
    e.ph = SimEvent::Ph::Counter;
    e.lane = lane;
    e.name = std::move(name);
    e.t0 = t;
    e.value = value;
    sim_.push_back(std::move(e));
}

int
Tracer::simDepth(std::uint32_t lane) const
{
    const auto it = depth_.find(lane);
    return it == depth_.end() ? 0 : it->second;
}

int
Tracer::pushSpan(std::uint32_t lane)
{
    return depth_[lane]++;
}

void
Tracer::popSpan(std::uint32_t lane)
{
    auto it = depth_.find(lane);
    if (it != depth_.end() && it->second > 0)
        --it->second;
}

Tracer::WallRing &
Tracer::myRing()
{
    thread_local std::map<const Tracer *, WallRing *> tl_rings;
    WallRing *&slot = tl_rings[this];
    if (!slot) {
        std::lock_guard<std::mutex> lock(wallMu_);
        rings_.push_back(std::make_unique<WallRing>(
            static_cast<std::uint32_t>(rings_.size())));
        slot = rings_.back().get();
    }
    return *slot;
}

void
Tracer::wallSpan(const char *name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns)
{
    if (!wallEnabled())
        return;
    WallRing &r = myRing();
    WallEvent e;
    e.name = name;
    e.t0Ns = t0_ns;
    e.t1Ns = t1_ns;
    e.tid = r.tid;
    e.seq = r.seq++;
    if (r.buf.size() < kRingCapacity)
        r.buf.push_back(e);
    else
        r.buf[e.seq % kRingCapacity] = e; // overwrite oldest
}

std::uint64_t
Tracer::nowNs() const
{
    return steadyNs() - epochNs_;
}

std::vector<WallEvent>
Tracer::collectWall() const
{
    std::vector<WallEvent> out;
    std::lock_guard<std::mutex> lock(wallMu_);
    for (const auto &r : rings_)
        out.insert(out.end(), r->buf.begin(), r->buf.end());
    std::sort(out.begin(), out.end(),
              [](const WallEvent &a, const WallEvent &b) {
                  if (a.t0Ns != b.t0Ns)
                      return a.t0Ns < b.t0Ns;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
    return out;
}

std::uint64_t
Tracer::wallDropped() const
{
    std::lock_guard<std::mutex> lock(wallMu_);
    std::uint64_t dropped = 0;
    for (const auto &r : rings_)
        if (r->seq > r->buf.size())
            dropped += r->seq - r->buf.size();
    return dropped;
}

void
Tracer::clear()
{
    sim_.clear();
    depth_.clear();
    std::lock_guard<std::mutex> lock(wallMu_);
    for (auto &r : rings_) {
        r->buf.clear();
        r->seq = 0;
    }
}

SimSpan::SimSpan(Tracer *tracer, std::uint32_t lane, std::string name,
                 double t0)
    : lane_(lane), t0_(t0)
{
    if (!tracer || !tracer->simEnabled())
        return;
    tracer_ = tracer;
    name_ = std::move(name);
    depth_ = tracer_->pushSpan(lane_);
}

SimSpan::~SimSpan()
{
    if (tracer_)
        end(t0_);
}

void
SimSpan::end(double t1,
             std::vector<std::pair<std::string, double>> args)
{
    if (!tracer_)
        return;
    Tracer *t = tracer_;
    tracer_ = nullptr;
    t->popSpan(lane_);
    SimEvent e;
    e.ph = SimEvent::Ph::Complete;
    e.lane = lane_;
    e.name = std::move(name_);
    e.t0 = t0_;
    e.t1 = t1;
    e.depth = t->simDepth(lane_);
    e.args = std::move(args);
    t->sim_.push_back(std::move(e));
}

} // namespace cllm::obs
