/**
 * @file
 * Fault-injection walkthrough: what a confidential deployment's SLOs
 * look like when the TEE misbehaves, and how much a resilience policy
 * buys back. A TDX serving instance replays the same Poisson trace
 * three times — fault-free, faulted with no policy, and faulted under
 * a timeout/retry/shedding policy — and prints the comparison plus
 * the JSON fault timeline of the final run.
 */

#include <iostream>
#include <memory>

#include "fault/schedule.hh"
#include "serve/serving.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace cllm;
using namespace cllm::serve;

namespace {

std::shared_ptr<const tee::TeeBackend>
shared(std::unique_ptr<tee::TeeBackend> p)
{
    return std::shared_ptr<const tee::TeeBackend>(std::move(p));
}

} // namespace

int
main()
{
    const hw::CpuSpec cpu = hw::emr2();
    const llm::ModelConfig model = llm::llama2_7b();
    llm::RunParams deploy;
    deploy.inLen = 1024;
    deploy.outLen = 256;
    deploy.batch = 32;
    deploy.sockets = 1;
    deploy.cores = cpu.coresPerSocket;

    WorkloadConfig load;
    load.arrivalRate = 0.4;
    load.numRequests = 200;
    load.meanInLen = 512;
    load.meanOutLen = 128;
    load.seed = 21;

    // The operational pain points of confidential serving, as a
    // seeded schedule: flaky attestations, one enclave restart, an
    // EPC paging storm, and a KV-capacity squeeze.
    fault::FaultScheduleConfig fs;
    fs.seed = 7;
    fs.horizon = 650.0;
    fs.attestFail = {1.0 / 150.0, 5.0, 0.0};
    fs.enclaveRestart = {1.0 / 300.0, 0.0, 0.0};
    fs.epcStorm = {1.0 / 120.0, 12.0,
                   fault::epcStormSlowdown(6ULL << 30, 4ULL << 30,
                                           0.5)};
    fs.kvExhaustion = {1.0 / 200.0, 20.0, 0.5};

    ServerConfig base;
    base.policy = BatchPolicy::Continuous;
    base.kvBlocks = 4096;
    base.kvBlockTokens = 16;
    base.weightBytes = model.weightBytes(hw::Dtype::Bf16);

    ServerConfig faulted = base;
    faulted.faults = fault::FaultSchedule::generate(fs);

    ServerConfig resilient = faulted;
    resilient.resilience.requestTimeout = 90.0;
    resilient.resilience.maxRetries = 3;
    resilient.resilience.retryBackoff = 0.5;
    resilient.resilience.shedOnKvPressure = true;
    resilient.resilience.shedThreshold = 0.9;
    resilient.resilience.degradedMaxBatch = 8;

    struct Scenario
    {
        const char *name;
        const ServerConfig *cfg;
    };
    const Scenario scenarios[] = {
        {"fault-free", &base},
        {"faults, no policy", &faulted},
        {"faults + policy", &resilient},
    };

    std::cout << "Resilient confidential serving: TDX, Llama2-7B "
                 "bf16\n\n";
    Table t({"scenario", "avail", "SLO attain", "TTFT p95 [s]",
             "retries", "shed", "timeout", "downtime [s]"});
    ServeMetrics last;
    for (const Scenario &s : scenarios) {
        Server server(makeCpuStepModel(cpu, shared(tee::makeTdx()),
                                       model, deploy),
                      *s.cfg);
        last = server.run(generateWorkload(load));
        t.addRow({s.name, fmtPct(100.0 * last.availability),
                  fmtPct(100.0 * last.sloAttainment),
                  fmt(last.ttft.p95, 2), fmtInt(last.retries),
                  fmtInt(last.shed), fmtInt(last.timedOut),
                  fmt(last.faultDowntime, 2)});
    }
    t.print(std::cout);

    std::cout << "\nfault timeline of the policy run:\n";
    JsonWriter json(std::cout);
    fault::writeTimeline(json, last.faultTimeline);
    std::cout << "\n";
    return 0;
}
