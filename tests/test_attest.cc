/**
 * @file
 * Tests for the attestation stack: measurement construction, quote
 * generation/verification, sealing keys, and the failure modes a
 * relying party must catch.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"
#include "tee/attest.hh"

using namespace cllm;
using namespace cllm::tee;

namespace {

Measurement
measureOf(const std::string &binary)
{
    MeasurementBuilder b;
    b.extend("binary", binary);
    return b.finish();
}

crypto::Digest256
hwKey(const std::string &platform = "platform-a")
{
    return crypto::sha256(platform);
}

} // namespace

TEST(Measurement, DeterministicAndContentSensitive)
{
    EXPECT_TRUE(measureOf("app-v1") == measureOf("app-v1"));
    EXPECT_FALSE(measureOf("app-v1") == measureOf("app-v2"));
}

TEST(Measurement, LabelFramingPreventsConcatAmbiguity)
{
    MeasurementBuilder a, b;
    a.extend("ab", std::string("c"));
    b.extend("a", std::string("bc"));
    EXPECT_FALSE(a.finish() == b.finish());
}

TEST(Measurement, OrderMatters)
{
    MeasurementBuilder a, b;
    a.extend("x", std::string("1"));
    a.extend("y", std::string("2"));
    b.extend("y", std::string("2"));
    b.extend("x", std::string("1"));
    EXPECT_FALSE(a.finish() == b.finish());
}

TEST(Quote, VerifiesWhenAllowed)
{
    QuotingEnclave qe(hwKey());
    const Measurement m = measureOf("inference-stack");
    const Quote q = qe.generateQuote(m, crypto::sha256(std::string("kx")));

    QuoteVerifier v(qe.verificationKey());
    v.allow(m);
    EXPECT_EQ(v.verify(q), VerifyStatus::Ok);
}

TEST(Quote, UnknownMeasurementRejected)
{
    QuotingEnclave qe(hwKey());
    const Quote q = qe.generateQuote(measureOf("malware"),
                                     crypto::Digest256{});
    QuoteVerifier v(qe.verificationKey());
    v.allow(measureOf("inference-stack"));
    EXPECT_EQ(v.verify(q), VerifyStatus::UnexpectedMeasurement);
}

TEST(Quote, TamperedSignatureRejected)
{
    QuotingEnclave qe(hwKey());
    const Measurement m = measureOf("app");
    Quote q = qe.generateQuote(m, crypto::Digest256{});
    q.signature[5] ^= 0x40;
    QuoteVerifier v(qe.verificationKey());
    v.allow(m);
    EXPECT_EQ(v.verify(q), VerifyStatus::BadSignature);
}

TEST(Quote, TamperedMeasurementBreaksSignature)
{
    QuotingEnclave qe(hwKey());
    Quote q = qe.generateQuote(measureOf("app"), crypto::Digest256{});
    q.measurement = measureOf("other"); // forged claim
    QuoteVerifier v(qe.verificationKey());
    v.allow(measureOf("other"));
    EXPECT_EQ(v.verify(q), VerifyStatus::BadSignature);
}

TEST(Quote, TamperedReportDataBreaksSignature)
{
    QuotingEnclave qe(hwKey());
    const Measurement m = measureOf("app");
    Quote q = qe.generateQuote(m, crypto::sha256(std::string("honest")));
    q.reportData = crypto::sha256(std::string("mitm-key"));
    QuoteVerifier v(qe.verificationKey());
    v.allow(m);
    EXPECT_EQ(v.verify(q), VerifyStatus::BadSignature);
}

TEST(Quote, StaleSecurityVersionRejected)
{
    QuotingEnclave old_platform(hwKey(), /*security_version=*/1);
    const Measurement m = measureOf("app");
    const Quote q = old_platform.generateQuote(m, crypto::Digest256{});
    QuoteVerifier v(old_platform.verificationKey(),
                    /*min_security_version=*/2);
    v.allow(m);
    EXPECT_EQ(v.verify(q), VerifyStatus::StaleSecurityVersion);
}

TEST(Quote, WrongPlatformKeyRejected)
{
    QuotingEnclave a(hwKey("platform-a"));
    QuotingEnclave b(hwKey("platform-b"));
    const Measurement m = measureOf("app");
    const Quote q = a.generateQuote(m, crypto::Digest256{});
    QuoteVerifier v(b.verificationKey());
    v.allow(m);
    EXPECT_EQ(v.verify(q), VerifyStatus::BadSignature);
}

TEST(Sealing, StablePerEnclavePerPlatform)
{
    QuotingEnclave qe(hwKey());
    const Measurement m = measureOf("app");
    EXPECT_TRUE(crypto::digestEqual(qe.sealingKey(m), qe.sealingKey(m)));
}

TEST(Sealing, DiffersAcrossEnclaves)
{
    QuotingEnclave qe(hwKey());
    EXPECT_FALSE(crypto::digestEqual(qe.sealingKey(measureOf("a")),
                                     qe.sealingKey(measureOf("b"))));
}

TEST(Sealing, DiffersAcrossPlatforms)
{
    const Measurement m = measureOf("app");
    QuotingEnclave a(hwKey("platform-a")), b(hwKey("platform-b"));
    EXPECT_FALSE(crypto::digestEqual(a.sealingKey(m), b.sealingKey(m)));
}

TEST(VerifyStatusName, AllNamed)
{
    EXPECT_STREQ(verifyStatusName(VerifyStatus::Ok), "ok");
    EXPECT_STREQ(verifyStatusName(VerifyStatus::BadSignature),
                 "bad signature");
    EXPECT_STREQ(verifyStatusName(VerifyStatus::UnexpectedMeasurement),
                 "unexpected measurement");
    EXPECT_STREQ(verifyStatusName(VerifyStatus::StaleSecurityVersion),
                 "stale security version");
}
