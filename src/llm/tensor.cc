#include "llm/tensor.hh"

#include "util/logging.hh"

namespace cllm::llm {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

float &
Tensor::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        cllm_panic("Tensor::at out of range (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        cllm_panic("Tensor::at out of range (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

float *
Tensor::row(std::size_t r)
{
    if (r >= rows_)
        cllm_panic("Tensor::row out of range ", r);
    return data_.data() + r * cols_;
}

const float *
Tensor::row(std::size_t r) const
{
    if (r >= rows_)
        cllm_panic("Tensor::row out of range ", r);
    return data_.data() + r * cols_;
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

} // namespace cllm::llm
