/**
 * @file
 * Tests for the statistics helpers, including the paper's Z>3 outlier
 * filter (Section III-D).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/stats.hh"

using namespace cllm;

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesClosedForm)
{
    OnlineStats s;
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};
    for (double x : xs)
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1: sum sq dev = 32, / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsCombined)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    // p50 of {1,2,3,4} = 2.5 under the linear method.
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(Percentile, Extremes)
{
    const std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, SingleSample)
{
    // A single sample is every percentile of itself.
    EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, EmptyIsZero)
{
    // Empty sample sets are well-defined (0), matching OnlineStats
    // and SampleSummary — obs::Histogram::summary leans on this.
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Percentile, ExtremesAreExactMinMax)
{
    // p0/p100 never interpolate, whatever the sample count.
    const std::vector<double> v = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(PercentileDeath, OutOfRangePanics)
{
    EXPECT_DEATH(percentile({1.0}, 101.0), "out of range");
    EXPECT_DEATH(percentile({}, -1.0), "out of range");
}

TEST(Percentiles, BitIdenticalToRepeatedSingleCalls)
{
    // The multi-percentile helper promises bit-identity with the
    // one-at-a-time path on an arbitrary sample set — including
    // interpolated ranks, duplicates, and unsorted query order.
    std::vector<double> samples;
    std::uint64_t x = 88172645463325252ULL; // xorshift64
    for (int i = 0; i < 257; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        samples.push_back(static_cast<double>(x % 10007) / 7.0);
    }
    samples[17] = samples[42]; // force duplicates
    samples[99] = samples[42];

    const std::vector<double> ps = {99.0, 50.0, 95.0, 0.0,
                                    100.0, 50.0, 12.5};
    const std::vector<double> got = percentiles(samples, ps);
    ASSERT_EQ(got.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(got[i], percentile(samples, ps[i]))
            << "p" << ps[i];
}

TEST(Percentiles, EdgeCasesMatchSingleCallContract)
{
    // Empty set: every requested percentile is 0.
    const std::vector<double> empty = percentiles({}, {0.0, 50.0,
                                                       100.0});
    EXPECT_EQ(empty, (std::vector<double>{0.0, 0.0, 0.0}));
    // Single sample: every percentile is that sample.
    const std::vector<double> one =
        percentiles({7.0}, {0.0, 37.5, 100.0});
    EXPECT_EQ(one, (std::vector<double>{7.0, 7.0, 7.0}));
    // No percentiles requested: no results.
    EXPECT_TRUE(percentiles({1.0, 2.0}, {}).empty());
}

TEST(PercentilesDeath, OutOfRangePanics)
{
    EXPECT_DEATH(percentiles({1.0}, {50.0, 101.0}), "out of range");
    EXPECT_DEATH(percentiles({1.0}, {-0.5}), "out of range");
}

TEST(ZScoreFilter, RemovesClearOutlier)
{
    std::vector<double> v(100, 10.0);
    for (int i = 0; i < 100; ++i)
        v[i] += (i % 2 ? 0.1 : -0.1);
    v.push_back(1000.0);
    std::size_t removed = 0;
    const auto kept = zScoreFilter(v, 3.0, &removed);
    EXPECT_EQ(removed, 1u);
    EXPECT_EQ(kept.size(), 100u);
}

TEST(ZScoreFilter, KeepsAllWhenTight)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 2.0, 1.0};
    std::size_t removed = 9;
    const auto kept = zScoreFilter(v, 3.0, &removed);
    EXPECT_EQ(removed, 0u);
    EXPECT_EQ(kept, v);
}

TEST(ZScoreFilter, ConstantSamplesSurvive)
{
    const std::vector<double> v(10, 4.2);
    const auto kept = zScoreFilter(v, 3.0);
    EXPECT_EQ(kept.size(), 10u);
}

TEST(Summarize, CountsOutliersLikePaper)
{
    // ~0.64% of samples beyond Z>3 in the paper; build 1000 samples
    // with 6 injected spikes.
    std::vector<double> v;
    for (int i = 0; i < 994; ++i)
        v.push_back(50.0 + 0.5 * std::sin(i));
    for (int i = 0; i < 6; ++i)
        v.push_back(500.0);
    const SampleSummary s = summarize(v, 3.0);
    EXPECT_EQ(s.outliers, 6u);
    EXPECT_EQ(s.count, 994u);
    EXPECT_NEAR(s.mean, 50.0, 0.5);
}

TEST(Summarize, DisabledFilterKeepsEverything)
{
    std::vector<double> v = {1.0, 1.0, 1.0, 100.0};
    const SampleSummary s = summarize(v, 0.0);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.outliers, 0u);
}

TEST(Summarize, PercentilesOrdered)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(static_cast<double>(i));
    const SampleSummary s = summarize(v, 0.0);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_GE(s.p50, s.min);
}

TEST(Overhead, BasicMath)
{
    EXPECT_NEAR(overhead(110.0, 100.0), 0.1, 1e-12);
    EXPECT_NEAR(overheadPct(110.0, 100.0), 10.0, 1e-10);
    EXPECT_NEAR(overheadPct(90.0, 100.0), -10.0, 1e-10);
}

TEST(OverheadDeath, ZeroBaselinePanics)
{
    EXPECT_DEATH(overhead(1.0, 0.0), "zero baseline");
}
