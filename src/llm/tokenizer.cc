#include "llm/tokenizer.hh"

namespace cllm::llm {

std::vector<TokenId>
ByteTokenizer::encode(const std::string &text, bool add_bos) const
{
    std::vector<TokenId> out;
    out.reserve(text.size() + 1);
    if (add_bos)
        out.push_back(kBos);
    for (unsigned char c : text)
        out.push_back(static_cast<TokenId>(c));
    return out;
}

std::string
ByteTokenizer::decode(const std::vector<TokenId> &tokens) const
{
    std::string out;
    out.reserve(tokens.size());
    for (TokenId t : tokens) {
        if (t < 256)
            out.push_back(static_cast<char>(t));
    }
    return out;
}

} // namespace cllm::llm
