# Empty dependencies file for test_beir.
# This may be replaced when dependencies are built.
