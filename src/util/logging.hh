/**
 * @file
 * Logging and error-reporting helpers, following the gem5 convention:
 * panic() for internal library bugs (aborts), fatal() for user errors
 * (clean exit), warn()/inform() for diagnostics.
 */

#ifndef CLLM_UTIL_LOGGING_HH
#define CLLM_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace cllm {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global log verbosity. Safe to call from any thread; the
 *  level is an atomic read by every log site. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation (a cllm bug) and abort.
 * Mirrors gem5's panic(): never use for conditions a user can cause.
 */
#define cllm_panic(...) \
    ::cllm::detail::panicImpl(__FILE__, __LINE__, \
                              ::cllm::detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1). Mirrors gem5's fatal().
 */
#define cllm_fatal(...) \
    ::cllm::detail::fatalImpl(__FILE__, __LINE__, \
                              ::cllm::detail::concat(__VA_ARGS__))

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace cllm

#endif // CLLM_UTIL_LOGGING_HH
