/**
 * @file
 * Functional model of a Memory Encryption Engine (MEE) integrity
 * counter tree, in the style of SGX's MEE (Gueron 2016). Protected
 * cache lines are encrypted with AES-CTR keyed by (line address,
 * version counter) and authenticated with an HMAC over (address,
 * version, ciphertext). Version counters are grouped into tree nodes;
 * each node is itself authenticated by a MAC whose key material chains
 * up to an on-chip root that an attacker cannot touch.
 *
 * This gives the library a real, attackable/verifiable implementation
 * of the mechanism the paper attributes much of the SGX/TDX overhead
 * to: every read walks and verifies the branch, every write bumps
 * counters up to the root. The walk statistics feed the analytic cost
 * model (`MeeCostModel`).
 */

#ifndef CLLM_MEM_MEE_TREE_HH
#define CLLM_MEM_MEE_TREE_HH

#include <cstdint>
#include <vector>

#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "mem/phys_mem.hh"

namespace cllm::mem {

/** Result of a verified read. */
struct MeeReadResult
{
    CacheLine data{};       //!< plaintext (valid only if ok)
    bool ok = false;        //!< false when integrity verification failed
};

/** Counters describing MEE activity, for the analytic cost model. */
struct MeeStats
{
    std::uint64_t reads = 0;       //!< protected-line reads
    std::uint64_t writes = 0;      //!< protected-line writes
    std::uint64_t nodesTouched = 0;//!< tree nodes read or updated
    std::uint64_t macChecks = 0;   //!< MAC verifications performed
    std::uint64_t integrityFailures = 0; //!< detected tampering events
};

/**
 * Counter-tree memory encryption engine over a PhysMem.
 *
 * The tree has a fixed arity (counters per node). Leaf nodes hold one
 * version counter per protected cache line; internal nodes hold one
 * counter per child node. The root counter lives "on chip" (a private
 * member an attacker cannot reach through PhysMem::raw()).
 */
class MeeTree
{
  public:
    /**
     * Protect `mem` entirely.
     *
     * @param mem simulated DRAM holding ciphertext
     * @param master_key on-chip key; all MEE keys derive from it
     * @param arity counters per tree node (SGX uses 8 per 64B node)
     */
    MeeTree(PhysMem &mem, const crypto::Digest256 &master_key,
            unsigned arity = 8);

    /** Encrypt and store one line; bumps the counter branch to root. */
    void writeLine(std::size_t line_idx, const CacheLine &plaintext);

    /** Fetch, verify, and decrypt one line. */
    MeeReadResult readLine(std::size_t line_idx) const;

    /** Depth of the counter tree (levels above the leaves). */
    unsigned depth() const { return depth_; }

    /** Activity counters (mutable across const reads). */
    const MeeStats &stats() const { return stats_; }

    /** Reset activity counters. */
    void clearStats() { stats_ = MeeStats{}; }

  private:
    /** Version-counter path for one line, leaf to root. */
    std::vector<std::size_t> branchIndices(std::size_t line_idx) const;

    /** MAC over (line index, version, ciphertext). */
    crypto::Digest256 lineMac(std::size_t line_idx, std::uint64_t version,
                              const CacheLine &cipher) const;

    /** MAC over one tree level's node (its counters + parent counter). */
    crypto::Digest256 nodeMac(unsigned level, std::size_t node_idx) const;

    PhysMem &mem_;
    unsigned arity_;
    unsigned depth_;

    // Per-level counter storage; level 0 = per-line versions. These
    // model counters held in DRAM (attack surface exposed via
    // tamperCounter() below), while rootCounter_ is on-chip.
    std::vector<std::vector<std::uint64_t>> counters_;
    // Per-level node MACs (level 0 nodes group `arity_` line counters).
    std::vector<std::vector<crypto::Digest256>> nodeMacs_;
    // Per-line data MACs.
    std::vector<crypto::Digest256> lineMacs_;

    std::uint64_t rootCounter_ = 0;

    crypto::AesCtr cipher_;
    std::vector<std::uint8_t> macKey_;

    mutable MeeStats stats_;

  public:
    /**
     * Test hook modelling a physical attacker flipping a stored
     * version counter (replay attempt). Level 0 is the per-line
     * counters.
     */
    void tamperCounter(unsigned level, std::size_t idx,
                       std::uint64_t value);
};

/**
 * Analytic cost model: converts MEE activity (or raw traffic volumes)
 * into a bandwidth tax. Calibrated so that SGX-class protection costs
 * more than TDX's TME-MK (which has no integrity tree walk on reads).
 */
struct MeeCostModel
{
    double perLineCryptoNs = 1.2;   //!< AES pipeline cost per 64B line
    double perNodeWalkNs = 2.0;     //!< per tree node touched on a miss
    double walkHitRate = 0.85;      //!< counter-cache hit rate on chip

    /** Average extra nanoseconds per protected 64-byte line. */
    double perLineNs(unsigned tree_depth) const;

    /** Effective bandwidth multiplier (<= 1) for a raw bandwidth. */
    double bandwidthFactor(double raw_bytes_per_s,
                           unsigned tree_depth) const;
};

} // namespace cllm::mem

#endif // CLLM_MEM_MEE_TREE_HH
