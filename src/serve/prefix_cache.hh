/**
 * @file
 * Automatic prefix KV caching, in the style of SGLang's RadixAttention
 * and vLLM's automatic prefix caching: a radix tree keyed by prompt
 * token IDs whose nodes own block-granular spans of KV already
 * resident in the paged pool. Admission walks the tree for the longest
 * cached prefix and charges prefill only for the uncached suffix —
 * which is where the paper's TTFT story bites, because prefill compute
 * *and* the TEE memory-encryption tax both scale with the tokens
 * actually computed.
 *
 * Retention is by external pins on `mem::PagedKvCache` blocks: a
 * cached node holds one pin per block, sequences admitted through a
 * hit add their own table references on top, and eviction (LRU over
 * leaves) may only reclaim blocks whose every reference is a pin —
 * live sequences are never yanked.
 *
 * Sharing scope is a first-class policy: PerTenant keys the forest by
 * tenant id so cached KV never crosses a tenant boundary inside the
 * enclave; Global shares one tree. See `serve::PrefixMode` for the
 * TEE isolation rationale.
 *
 * Sequential state driven by the single-threaded simulation loop;
 * determinism follows from never consulting anything but the call
 * sequence (ties in eviction break by node creation order).
 */

#ifndef CLLM_SERVE_PREFIX_CACHE_HH
#define CLLM_SERVE_PREFIX_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mem/kv_paged.hh"
#include "serve/serving.hh"

namespace cllm::serve {

/** Longest cached prefix found for a prompt. */
struct PrefixMatch
{
    unsigned tokens = 0; //!< cached tokens (multiple of blockTokens)
    std::vector<std::uint32_t> blocks; //!< pool blocks, token order
};

/** Lifetime accounting (monotonic). */
struct PrefixCacheStats
{
    std::uint64_t hits = 0;     //!< committed matches with tokens > 0
    std::uint64_t misses = 0;   //!< committed matches finding nothing
    std::uint64_t hitTokens = 0;       //!< prefill tokens skipped
    std::uint64_t insertedBlocks = 0;  //!< blocks ever pinned
    std::uint64_t evictions = 0;       //!< leaves evicted
    std::uint64_t evictedBlocks = 0;   //!< blocks unpinned by eviction
};

/**
 * Tenant-scoped radix tree over cached KV prefixes. Only whole blocks
 * are ever cached or matched: a prompt's trailing partial block is
 * always recomputed, which keeps cached blocks immutable (decode
 * appends and COW never touch a full block, so a pinned block's
 * contents are stable for the lifetime of the pin).
 */
class PrefixCache
{
  public:
    /**
     * `pool` must outlive the cache and is where pins land.
     * `maxBlocks` caps total pinned blocks (0 = uncapped).
     */
    PrefixCache(PrefixMode mode, mem::PagedKvCache *pool,
                std::uint64_t maxBlocks = 0);

    /**
     * Longest cached prefix for a prompt, without touching LRU order
     * or hit/miss counters — the admission-probe path, safe to call
     * repeatedly while an admission retries around eviction.
     */
    PrefixMatch peek(std::uint32_t tenant,
                     const std::vector<std::int32_t> &tokens);

    /**
     * Longest cached prefix, counting the hit or miss and touching
     * every matched node's LRU stamp. Call exactly once per
     * successful admission.
     */
    PrefixMatch commitMatch(std::uint32_t tenant,
                            const std::vector<std::int32_t> &tokens,
                            double now);

    /**
     * Cache a freshly prefilled prompt: walk the tree and pin the
     * prompt's not-yet-cached full blocks out of `table` (the
     * sequence's block table, token order). Splits nodes as needed.
     * Idempotent for an already-cached prompt (just touches LRU).
     */
    void insert(std::uint32_t tenant,
                const std::vector<std::int32_t> &tokens,
                const std::vector<std::uint32_t> &table, double now);

    /**
     * Evict least-recently-used leaves until at least `want` blocks
     * went back to the pool's free list or nothing evictable remains.
     * Only leaves whose every block is cache-only (refcount equals
     * pin count) qualify — blocks still referenced by running
     * sequences are skipped. Returns blocks actually freed.
     */
    std::uint64_t evictToFree(std::uint64_t want, double now);

    std::uint64_t pinnedBlocks() const { return pinnedBlocks_; }
    std::size_t nodeCount() const { return nodes_; }
    const PrefixCacheStats &stats() const { return stats_; }

    /**
     * Structural invariants: node token spans are block-aligned,
     * children are keyed by their first token, every cached block is
     * pinned in the pool, and per-node block counts sum to
     * pinnedBlocks(). Test hook.
     */
    bool consistent() const;

  private:
    struct Node
    {
        Node *parent = nullptr;
        /** Token span (empty for roots; else blocks * blockTokens). */
        std::vector<std::int32_t> tokens;
        std::vector<std::uint32_t> blocks;
        std::map<std::int32_t, std::unique_ptr<Node>> children;
        double lastUsed = 0.0;
        std::uint64_t id = 0; //!< creation order, the LRU tie-break
    };

    Node *rootFor(std::uint32_t tenant);
    PrefixMatch matchImpl(Node *root,
                          const std::vector<std::int32_t> &tokens,
                          double now, bool touch);
    void evictLeaf(Node *leaf);
    Node *lruVictim(const Node *exclude);

    PrefixMode mode_;
    mem::PagedKvCache *pool_;
    std::uint64_t maxBlocks_;
    unsigned blockTokens_;
    /** Scope key → tree root. PerTenant keys by tenant, Global by 0. */
    std::map<std::uint64_t, std::unique_ptr<Node>> roots_;
    std::uint64_t pinnedBlocks_ = 0;
    std::size_t nodes_ = 0;   //!< non-root nodes
    std::uint64_t nextId_ = 0;
    PrefixCacheStats stats_{};
};

} // namespace cllm::serve

#endif // CLLM_SERVE_PREFIX_CACHE_HH
