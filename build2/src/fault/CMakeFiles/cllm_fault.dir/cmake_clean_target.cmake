file(REMOVE_RECURSE
  "libcllm_fault.a"
)
