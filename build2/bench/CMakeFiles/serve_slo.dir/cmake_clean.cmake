file(REMOVE_RECURSE
  "CMakeFiles/serve_slo.dir/serve_slo.cpp.o"
  "CMakeFiles/serve_slo.dir/serve_slo.cpp.o.d"
  "serve_slo"
  "serve_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
