file(REMOVE_RECURSE
  "CMakeFiles/test_tee_backend.dir/test_tee_backend.cc.o"
  "CMakeFiles/test_tee_backend.dir/test_tee_backend.cc.o.d"
  "test_tee_backend"
  "test_tee_backend.pdb"
  "test_tee_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tee_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
