/**
 * @file
 * Functional remote-attestation stack, mirroring the roles of SGX/TDX
 * DCAP attestation: an enclave is *measured* (SHA-256 over its initial
 * contents and configuration), the platform's quoting facility signs a
 * *quote* binding the measurement to caller-supplied report data (for
 * example a key-exchange public value), and a relying party *verifies*
 * the quote against expected measurements before provisioning secrets
 * (such as LLM weight-decryption keys). Sealing keys are derived from
 * the hardware key and the measurement, so only the same enclave on
 * the same platform can unseal.
 *
 * The vendor PKI is stood in for by an HMAC with a per-platform
 * hardware key, preserving the protocol structure without an ECDSA
 * implementation.
 */

#ifndef CLLM_TEE_ATTEST_HH
#define CLLM_TEE_ATTEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.hh"
#include "crypto/sha256.hh"

namespace cllm::tee {

/** An enclave/TD measurement (MRENCLAVE / MRTD analogue). */
struct Measurement
{
    crypto::Digest256 value{};

    bool operator==(const Measurement &o) const
    {
        return crypto::digestEqual(value, o.value);
    }
};

/**
 * Compute a measurement over enclave contents and configuration,
 * mimicking the page-by-page EEXTEND process: each (offset, chunk)
 * pair is absorbed in order.
 */
class MeasurementBuilder
{
  public:
    /** Absorb a labelled region (binary, manifest, config). */
    void extend(const std::string &label,
                const std::vector<std::uint8_t> &data);

    /** Absorb a labelled string region. */
    void extend(const std::string &label, const std::string &data);

    /** Finalize. */
    Measurement finish();

  private:
    crypto::Sha256 hasher_;
};

/** A signed attestation quote. */
struct Quote
{
    Measurement measurement;
    crypto::Digest256 reportData{}; //!< caller-bound data (e.g. pubkey)
    std::uint64_t securityVersion = 0;
    crypto::Digest256 signature{};  //!< platform signature (HMAC model)
};

/**
 * Per-platform quoting facility holding the hardware root key.
 */
class QuotingEnclave
{
  public:
    /** Create a platform with the given hardware root key. */
    explicit QuotingEnclave(const crypto::Digest256 &hardware_key,
                            std::uint64_t security_version = 1);

    /** Produce a signed quote for a measurement + report data. */
    Quote generateQuote(const Measurement &m,
                        const crypto::Digest256 &report_data) const;

    /**
     * Derive the sealing key for an enclave measurement: stable across
     * restarts of the same enclave on the same platform.
     */
    crypto::Digest256 sealingKey(const Measurement &m) const;

    /**
     * Platform verification key material, shared out-of-band with
     * relying parties (stands in for the DCAP PCK certificate chain).
     */
    const crypto::Digest256 &verificationKey() const { return verifKey_; }

  private:
    crypto::Digest256 signQuote(const Quote &q) const;

    crypto::Digest256 hwKey_;
    crypto::Digest256 verifKey_;
    std::uint64_t securityVersion_;

    friend class QuoteVerifier;
};

/** Verification outcome. */
enum class VerifyStatus
{
    Ok,
    BadSignature,
    UnexpectedMeasurement,
    StaleSecurityVersion,
};

/** Printable name of a VerifyStatus. */
const char *verifyStatusName(VerifyStatus s);

/**
 * Relying-party verifier: checks quotes against an allow-list of
 * measurements and a minimum security version.
 */
class QuoteVerifier
{
  public:
    /** Bind to a platform's verification key. */
    explicit QuoteVerifier(const crypto::Digest256 &verification_key,
                           std::uint64_t min_security_version = 1);

    /** Add an acceptable enclave measurement. */
    void allow(const Measurement &m);

    /** Verify signature, measurement, and security version. */
    VerifyStatus verify(const Quote &quote) const;

  private:
    crypto::Digest256 verifKey_;
    std::uint64_t minSecurityVersion_;
    std::vector<Measurement> allowed_;
};

} // namespace cllm::tee

#endif // CLLM_TEE_ATTEST_HH
