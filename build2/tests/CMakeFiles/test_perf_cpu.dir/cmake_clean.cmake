file(REMOVE_RECURSE
  "CMakeFiles/test_perf_cpu.dir/test_perf_cpu.cc.o"
  "CMakeFiles/test_perf_cpu.dir/test_perf_cpu.cc.o.d"
  "test_perf_cpu"
  "test_perf_cpu.pdb"
  "test_perf_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
