file(REMOVE_RECURSE
  "CMakeFiles/cllm_rag.dir/analyzer.cc.o"
  "CMakeFiles/cllm_rag.dir/analyzer.cc.o.d"
  "CMakeFiles/cllm_rag.dir/beir.cc.o"
  "CMakeFiles/cllm_rag.dir/beir.cc.o.d"
  "CMakeFiles/cllm_rag.dir/dense.cc.o"
  "CMakeFiles/cllm_rag.dir/dense.cc.o.d"
  "CMakeFiles/cllm_rag.dir/elastic_lite.cc.o"
  "CMakeFiles/cllm_rag.dir/elastic_lite.cc.o.d"
  "CMakeFiles/cllm_rag.dir/rag_pipeline.cc.o"
  "CMakeFiles/cllm_rag.dir/rag_pipeline.cc.o.d"
  "CMakeFiles/cllm_rag.dir/reranker.cc.o"
  "CMakeFiles/cllm_rag.dir/reranker.cc.o.d"
  "libcllm_rag.a"
  "libcllm_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cllm_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
