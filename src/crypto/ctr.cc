#include "crypto/ctr.hh"

#include <algorithm>

#include "par/pool.hh"

namespace cllm::crypto {

namespace {

/** Keystream blocks per parallel chunk: 4 KiB of payload, enough to
 *  amortize chunk dispatch against ~256 AES block encryptions. */
constexpr std::size_t kBlocksPerChunk = 256;

} // namespace

AesCtr::AesCtr(const AesKey &key) : aes_(key) {}

void
AesCtr::transform(std::uint64_t nonce, std::uint64_t counter,
                  std::uint8_t *data, std::size_t len) const
{
    // Counter mode is embarrassingly parallel: byte `i` is XORed with
    // keystream block `counter + i/16`, independent of every other
    // byte. Chunks own disjoint whole-block byte ranges, so parallel
    // output is bit-identical to the serial scan.
    const std::size_t nblocks = (len + 15) / 16;
    par::parallelFor(0, nblocks, kBlocksPerChunk,
                     [&](std::size_t blk0, std::size_t blk1) {
        std::size_t off = blk0 * 16;
        std::uint64_t block_idx = counter + blk0;
        const std::size_t chunk_end = std::min(len, blk1 * 16);
        while (off < chunk_end) {
            AesBlock ks;
            for (int i = 0; i < 8; ++i) {
                ks[i] =
                    static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
                ks[8 + i] = static_cast<std::uint8_t>(
                    block_idx >> (56 - 8 * i));
            }
            aes_.encryptBlock(ks);
            const std::size_t take =
                std::min<std::size_t>(16, chunk_end - off);
            for (std::size_t i = 0; i < take; ++i)
                data[off + i] ^= ks[i];
            off += take;
            ++block_idx;
        }
    });
}

void
AesCtr::transform(std::uint64_t nonce, std::uint64_t counter,
                  std::vector<std::uint8_t> &data) const
{
    transform(nonce, counter, data.data(), data.size());
}

} // namespace cllm::crypto
