/**
 * @file
 * Tests for cllm::obs: registry merge determinism under
 * `par::parallelFor` (1 vs 8 threads), histogram summary edge cases,
 * span nesting and ordering, async lifecycle tracks, wall-clock ring
 * buffers, and a byte-golden over the Chrome trace exporter
 * (`CLLM_REGEN_GOLDEN=1` regenerates `tests/golden/trace_small.json`).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "par/pool.hh"
#include "util/json.hh"

using namespace cllm;
using namespace cllm::obs;

namespace {

/** RAII thread-count override (mirrors the test_par idiom). */
struct ThreadGuard
{
    unsigned saved;
    explicit ThreadGuard(unsigned n) : saved(par::threadCount())
    {
        par::setThreadCount(n);
    }
    ~ThreadGuard() { par::setThreadCount(saved); }
};

std::string
snapshotJson(const Registry &reg)
{
    std::ostringstream os;
    JsonWriter json(os);
    reg.snapshot(json);
    return os.str();
}

/** Drive `iters` counter adds and histogram records over the pool. */
void
hammer(Registry &reg, std::size_t iters)
{
    Counter &c = reg.counter("test.hits");
    Counter &bytes = reg.counter("test.bytes");
    Histogram &h = reg.histogram("test.lat", 1e-6, 1e3, 48);
    par::parallelFor(0, iters, 16, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
            c.inc();
            bytes.add(i);
            // A fixed value set: determinism must not depend on
            // which thread recorded which sample.
            h.record(1e-5 * static_cast<double>(1 + i % 97));
        }
    });
}

} // namespace

TEST(Counter, ExactTotalAcrossThreads)
{
    for (unsigned threads : {1u, 8u}) {
        ThreadGuard g(threads);
        Registry reg;
        hammer(reg, 10000);
        EXPECT_EQ(reg.counter("test.hits").total(), 10000u)
            << "threads=" << threads;
        // sum 0..9999
        EXPECT_EQ(reg.counter("test.bytes").total(),
                  10000u * 9999u / 2)
            << "threads=" << threads;
    }
}

TEST(Registry, SnapshotBitIdentical1v8Threads)
{
    std::string one, eight;
    {
        ThreadGuard g(1);
        Registry reg;
        hammer(reg, 20000);
        one = snapshotJson(reg);
    }
    {
        ThreadGuard g(8);
        Registry reg;
        hammer(reg, 20000);
        eight = snapshotJson(reg);
    }
    EXPECT_EQ(one, eight);
}

TEST(Registry, SameNameSameInstrument)
{
    Registry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.total(), 1u);
}

TEST(Registry, ResetKeepsReferencesValid)
{
    Registry reg;
    Counter &c = reg.counter("c");
    Gauge &gv = reg.gauge("g");
    Histogram &h = reg.histogram("h");
    c.add(5);
    gv.set(2.5);
    h.record(0.1);
    reg.reset();
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(gv.get(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    c.inc();
    EXPECT_EQ(reg.counter("c").total(), 1u);
}

TEST(Registry, SnapshotSortedAndStable)
{
    Registry reg;
    reg.counter("zeta").add(1);
    reg.counter("alpha").add(2);
    reg.gauge("mid").set(3.0);
    const std::string a = snapshotJson(reg);
    const std::string b = snapshotJson(reg);
    EXPECT_EQ(a, b);
    EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
}

TEST(Histogram, EmptySummaryIsAllZero)
{
    Histogram h(1e-6, 1e3, 48);
    const SampleSummary s = h.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_EQ(s.p99, 0.0);
    EXPECT_EQ(s.min, 0.0);
    EXPECT_EQ(s.max, 0.0);
}

TEST(Histogram, SingleSample)
{
    Histogram h(1e-6, 1e3, 48);
    h.record(0.25);
    const SampleSummary s = h.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 0.25);
    EXPECT_EQ(s.max, 0.25);
    // The lone sample is every percentile of itself (exact, because
    // percentiles clamp to the observed min/max).
    EXPECT_EQ(s.p50, 0.25);
    EXPECT_EQ(s.p95, 0.25);
    EXPECT_EQ(s.p99, 0.25);
}

TEST(Histogram, UnderOverflowBuckets)
{
    Histogram h(1e-3, 1.0, 10);
    EXPECT_EQ(h.bucketIndex(1e-4), 0u);      // below lo
    EXPECT_EQ(h.bucketIndex(-5.0), 0u);      // non-positive
    EXPECT_EQ(h.bucketIndex(1.0), 11u);      // at hi
    EXPECT_EQ(h.bucketIndex(50.0), 11u);     // above hi
    h.record(1e-4);
    h.record(50.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(11), 1u);
    const SampleSummary s = h.summary();
    EXPECT_EQ(s.min, 1e-4); // min/max stay exact even out of range
    EXPECT_EQ(s.max, 50.0);
}

TEST(Histogram, PercentilesOrderedAndBounded)
{
    Histogram h(1e-6, 1e3, 48);
    for (int i = 1; i <= 1000; ++i)
        h.record(0.001 * i);
    const SampleSummary s = h.summary();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_LE(s.min, s.p50);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_NEAR(s.p50, 0.5, 0.05); // within one log-bucket's width
}

TEST(Histogram, BucketCountsThreadCountInvariant)
{
    auto run = [](unsigned threads) {
        ThreadGuard g(threads);
        Registry reg;
        Histogram &h = reg.histogram("h", 1e-6, 1e3, 48);
        par::parallelFor(0, 5000, 8,
                         [&](std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i)
                                 h.record(1e-4 *
                                          static_cast<double>(1 + i));
                         });
        std::vector<std::uint64_t> counts;
        for (unsigned i = 0; i < h.buckets() + 2; ++i)
            counts.push_back(h.bucketCount(i));
        return counts;
    };
    EXPECT_EQ(run(1), run(8));
}

TEST(TraceMode, Parse)
{
    EXPECT_EQ(parseTraceMode(nullptr), TraceMode::Off);
    EXPECT_EQ(parseTraceMode(""), TraceMode::Off);
    EXPECT_EQ(parseTraceMode("off"), TraceMode::Off);
    EXPECT_EQ(parseTraceMode("0"), TraceMode::Off);
    EXPECT_EQ(parseTraceMode("sim"), TraceMode::Sim);
    EXPECT_EQ(parseTraceMode("1"), TraceMode::Sim);
    EXPECT_EQ(parseTraceMode("all"), TraceMode::All);
    EXPECT_EQ(parseTraceMode("wall"), TraceMode::All);
    EXPECT_EQ(parseTraceMode("2"), TraceMode::All);
    EXPECT_EQ(parseTraceMode("garbage"), TraceMode::Off);
}

TEST(Tracer, OffRecordsNothing)
{
    Tracer tr(TraceMode::Off);
    tr.complete(0, "a", 0.0, 1.0);
    tr.instant(0, "b", 0.5);
    tr.counterValue(0, "c", 0.5, 1.0);
    {
        SimSpan s(&tr, 0, "span", 0.0);
        EXPECT_FALSE(s.active());
        s.end(1.0);
    }
    EXPECT_TRUE(tr.simEvents().empty());
}

TEST(Tracer, NullTracerSpanIsSafe)
{
    SimSpan s(nullptr, 0, "span", 0.0);
    EXPECT_FALSE(s.active());
    s.end(1.0); // must be a no-op, not a crash
}

TEST(SimSpan, NestingDepthsAndOrder)
{
    Tracer tr(TraceMode::Sim);
    {
        SimSpan outer(&tr, 3, "outer", 0.0);
        EXPECT_EQ(tr.simDepth(3), 1);
        {
            SimSpan inner(&tr, 3, "inner", 0.5);
            EXPECT_EQ(tr.simDepth(3), 2);
            inner.end(1.0);
        }
        EXPECT_EQ(tr.simDepth(3), 1);
        outer.end(2.0, {{"n", 2.0}});
    }
    EXPECT_EQ(tr.simDepth(3), 0);
    ASSERT_EQ(tr.simEvents().size(), 2u);
    // Spans close inner-first; depth captures the nesting level.
    EXPECT_EQ(tr.simEvents()[0].name, "inner");
    EXPECT_EQ(tr.simEvents()[0].depth, 1);
    EXPECT_EQ(tr.simEvents()[0].t1, 1.0);
    EXPECT_EQ(tr.simEvents()[1].name, "outer");
    EXPECT_EQ(tr.simEvents()[1].depth, 0);
    ASSERT_EQ(tr.simEvents()[1].args.size(), 1u);
    EXPECT_EQ(tr.simEvents()[1].args[0].first, "n");
}

TEST(SimSpan, EarlyExitClosesAtStart)
{
    Tracer tr(TraceMode::Sim);
    {
        SimSpan s(&tr, 0, "abandoned", 4.0);
    }
    ASSERT_EQ(tr.simEvents().size(), 1u);
    EXPECT_EQ(tr.simEvents()[0].t0, 4.0);
    EXPECT_EQ(tr.simEvents()[0].t1, 4.0);
    EXPECT_EQ(tr.simDepth(0), 0);
}

TEST(SimSpan, EndIsIdempotent)
{
    Tracer tr(TraceMode::Sim);
    SimSpan s(&tr, 0, "once", 0.0);
    s.end(1.0);
    s.end(2.0); // ignored
    ASSERT_EQ(tr.simEvents().size(), 1u);
    EXPECT_EQ(tr.simEvents()[0].t1, 1.0);
}

TEST(Tracer, AsyncLifecycleTrack)
{
    Tracer tr(TraceMode::Sim);
    tr.asyncBegin(1, "request", 7, "req", 0.0);
    tr.asyncInstant(1, "request", 7, "admit", 0.5);
    tr.asyncEnd(1, "request", 7, "complete", 2.0);
    ASSERT_EQ(tr.simEvents().size(), 3u);
    for (const SimEvent &e : tr.simEvents()) {
        EXPECT_EQ(e.cat, "request");
        EXPECT_EQ(e.id, 7u);
        EXPECT_EQ(e.lane, 1u);
    }
    EXPECT_EQ(tr.simEvents()[0].ph, SimEvent::Ph::AsyncBegin);
    EXPECT_EQ(tr.simEvents()[2].ph, SimEvent::Ph::AsyncEnd);
}

TEST(Tracer, ClearKeepsLaneNames)
{
    Tracer tr(TraceMode::Sim);
    tr.laneName(0, "fleet");
    tr.instant(0, "x", 1.0);
    tr.clear();
    EXPECT_TRUE(tr.simEvents().empty());
    ASSERT_EQ(tr.lanes().count(0), 1u);
    EXPECT_EQ(tr.lanes().at(0), "fleet");
}

TEST(WallSpans, RecordOnGlobalTracerWhenEnabled)
{
    Tracer &g = Tracer::global();
    const TraceMode saved = g.mode();
    g.setMode(TraceMode::All);
    {
        WallSpan outer("test.outer");
        WallSpan inner("test.inner");
    }
    g.setMode(saved);
    const auto events = g.collectWall();
    ASSERT_GE(events.size(), 2u);
    bool saw_outer = false, saw_inner = false;
    for (const WallEvent &e : events) {
        EXPECT_LE(e.t0Ns, e.t1Ns);
        if (std::string(e.name) == "test.outer")
            saw_outer = true;
        if (std::string(e.name) == "test.inner")
            saw_inner = true;
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
    EXPECT_EQ(g.wallDropped(), 0u);
    g.clear();
}

TEST(WallSpans, NoOpWhenGlobalOff)
{
    Tracer &g = Tracer::global();
    ASSERT_EQ(g.mode(), TraceMode::Off)
        << "test suite expects CLLM_TRACE unset";
    g.clear();
    {
        WallSpan s("test.noop");
    }
    EXPECT_TRUE(g.collectWall().empty());
}

namespace {

/** The small synthetic trace pinned by the exporter golden. */
std::string
exportSmallTrace()
{
    Tracer tr(TraceMode::Sim);
    tr.laneName(0, "fleet");
    tr.laneName(1, "tdx #0");
    tr.complete(0, "provision", 0.0, 0.5, {{"node", 0.0}});
    tr.asyncBegin(1, "request", 7, "req", 0.25);
    {
        SimSpan prefill(&tr, 1, "prefill", 0.25);
        prefill.end(0.375, {{"req", 7.0}, {"in_len", 512.0}});
    }
    tr.instant(1, "fault:epc_storm", 0.3, {{"duration", 10.0}},
               {{"cause", "epc_storm"}});
    tr.counterValue(1, "kv_util", 0.4, 0.53125);
    tr.asyncEnd(1, "request", 7, "complete", 0.5);
    std::ostringstream os;
    writeChromeTrace(os, tr);
    return os.str();
}

} // namespace

TEST(ChromeExport, GoldenByteCompare)
{
    const std::string got = exportSmallTrace();
    const std::string path =
        std::string(CLLM_GOLDEN_DIR) + "/trace_small.json";
    const char *regen = std::getenv("CLLM_REGEN_GOLDEN");
    if (regen && *regen && std::string(regen) != "0") {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing " << path
        << " (run with CLLM_REGEN_GOLDEN=1 to create)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(ChromeExport, DeterministicAcrossCalls)
{
    EXPECT_EQ(exportSmallTrace(), exportSmallTrace());
}

TEST(ChromeExport, MetricsSnapshotRidesAlong)
{
    Registry reg;
    reg.counter("serve.prefills").add(3);
    Tracer tr(TraceMode::Sim);
    tr.instant(0, "x", 0.0);
    std::ostringstream os;
    writeChromeTrace(os, tr, &reg);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"metrics\""), std::string::npos);
    EXPECT_NE(s.find("\"serve.prefills\""), std::string::npos);
}

TEST(ChromeExport, OutputPathPrecedence)
{
    ::setenv("CLLM_TRACE_OUT", "/tmp/env.trace.json", 1);
    EXPECT_EQ(traceOutputPath("explicit.json", "fallback.json"),
              "explicit.json");
    EXPECT_EQ(traceOutputPath("", "fallback.json"),
              "/tmp/env.trace.json");
    ::unsetenv("CLLM_TRACE_OUT");
    EXPECT_EQ(traceOutputPath("", "fallback.json"), "fallback.json");
}
