file(REMOVE_RECURSE
  "CMakeFiles/fig13_input_cost.dir/fig13_input_cost.cpp.o"
  "CMakeFiles/fig13_input_cost.dir/fig13_input_cost.cpp.o.d"
  "fig13_input_cost"
  "fig13_input_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_input_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
