#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cllm {

namespace {
// Atomic so worker threads on the par pool can log while another
// thread adjusts verbosity; relaxed ordering suffices for a filter.
std::atomic<LogLevel> g_level{LogLevel::Warn};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace cllm
