
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rag/analyzer.cc" "src/rag/CMakeFiles/cllm_rag.dir/analyzer.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/analyzer.cc.o.d"
  "/root/repo/src/rag/beir.cc" "src/rag/CMakeFiles/cllm_rag.dir/beir.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/beir.cc.o.d"
  "/root/repo/src/rag/dense.cc" "src/rag/CMakeFiles/cllm_rag.dir/dense.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/dense.cc.o.d"
  "/root/repo/src/rag/elastic_lite.cc" "src/rag/CMakeFiles/cllm_rag.dir/elastic_lite.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/elastic_lite.cc.o.d"
  "/root/repo/src/rag/rag_pipeline.cc" "src/rag/CMakeFiles/cllm_rag.dir/rag_pipeline.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/rag_pipeline.cc.o.d"
  "/root/repo/src/rag/reranker.cc" "src/rag/CMakeFiles/cllm_rag.dir/reranker.cc.o" "gcc" "src/rag/CMakeFiles/cllm_rag.dir/reranker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/cllm_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/cllm_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/llm/CMakeFiles/cllm_llm.dir/DependInfo.cmake"
  "/root/repo/build2/src/tee/CMakeFiles/cllm_tee.dir/DependInfo.cmake"
  "/root/repo/build2/src/hw/CMakeFiles/cllm_hw.dir/DependInfo.cmake"
  "/root/repo/build2/src/mem/CMakeFiles/cllm_mem.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/cllm_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cllm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
