#include "mem/phys_mem.hh"

#include <cstring>

#include "util/logging.hh"

namespace cllm::mem {

PhysMem::PhysMem(std::size_t lines) : data_(lines * kLineBytes, 0)
{
    if (lines == 0)
        cllm_panic("PhysMem with zero lines");
}

CacheLine
PhysMem::readLine(std::size_t line_idx) const
{
    if (line_idx >= lines())
        cllm_panic("PhysMem read out of range: line ", line_idx);
    CacheLine out;
    std::memcpy(out.data(), data_.data() + line_idx * kLineBytes,
                kLineBytes);
    return out;
}

void
PhysMem::writeLine(std::size_t line_idx, const CacheLine &line)
{
    if (line_idx >= lines())
        cllm_panic("PhysMem write out of range: line ", line_idx);
    std::memcpy(data_.data() + line_idx * kLineBytes, line.data(),
                kLineBytes);
}

} // namespace cllm::mem
