/**
 * @file
 * Multi-GPU scale-out timing model for the paper's Section V-D4:
 * tensor-parallel inference across H100s. Non-confidential GPUs
 * communicate over NVLINK/RDMA; confidential H100s must route all
 * inter-GPU traffic through the host CPU because cGPU instances
 * support neither RDMA nor GPUdirect, capping throughput at ~3 GB/s
 * versus ~40 GB/s (the paper cites [89]), and NVLINK itself is
 * unprotected. Optionally layers an IPsec-style network-protection
 * tax (up to ~90% overhead, [25]) for cross-node deployments.
 */

#ifndef CLLM_LLM_PERF_CLUSTER_HH
#define CLLM_LLM_PERF_CLUSTER_HH

#include "hw/gpu.hh"
#include "llm/model_config.hh"
#include "llm/perf_cpu.hh"
#include "llm/perf_gpu.hh"

namespace cllm::llm {

/** Parameters of a tensor-parallel GPU cluster run. */
struct ClusterRunParams
{
    hw::Dtype dtype = hw::Dtype::Bf16;
    unsigned batch = 1;
    unsigned inLen = 128;
    unsigned outLen = 128;
    unsigned gpus = 2;          //!< tensor-parallel degree
    bool confidential = false;  //!< cGPU mode (host-routed comms)
    bool ipsec = false;         //!< network protection on the links
    std::uint64_t seed = 42;
};

/** Interconnect figures of the cluster. */
struct ClusterLinkConfig
{
    double rawBwBytes = 40e9;      //!< RDMA/GPUdirect path
    double hostRoutedBwBytes = 3e9;//!< confidential bounce path [89]
    double ipsecBwFactor = 0.53;   //!< ~90% overhead worst case [25]
    double rawLatencyUs = 20.0;    //!< per collective
    double hostRoutedLatencyUs = 90.0;
};

/**
 * Tensor-parallel timing: per decode step each layer all-reduces its
 * attention and MLP outputs across the group; weights and KV shard
 * across GPUs.
 */
class GpuClusterPerfModel
{
  public:
    explicit GpuClusterPerfModel(GpuPerfConfig gpu_cfg = {},
                                 ClusterLinkConfig link_cfg = {});

    /** Whether the sharded model + KV fits the cluster's memory. */
    bool fits(const hw::GpuSpec &gpu, const ModelConfig &model,
              const ClusterRunParams &params) const;

    /** Simulate a run; fatal if the model does not fit. */
    TimingResult run(const hw::GpuSpec &gpu, const ModelConfig &model,
                     const ClusterRunParams &params) const;

    /** Effective inter-GPU bandwidth for a configuration. */
    double linkBandwidth(const ClusterRunParams &params) const;

    const ClusterLinkConfig &linkConfig() const { return link_; }

  private:
    GpuPerfConfig cfg_;
    ClusterLinkConfig link_;
};

} // namespace cllm::llm

#endif // CLLM_LLM_PERF_CLUSTER_HH
